"""Configuration of the Herbgrind analysis.

Every tunable the paper discusses is explicit here so the Section 8
experiments can sweep them:

* ``local_error_threshold`` — Tℓ, Figure 5a's sweep axis,
* ``max_expression_depth`` — Figures 5c/5d's sweep axis,
* ``input_characteristics`` — Figure 5b's three configurations,
* ``equivalence_depth`` — the Section 6.1 anti-unification bound,
* ``detect_compensation`` — the Section 8.3 subsystem,
* ``track_influences`` — disabling yields an FpDebug-like analysis,
* ``shadow_precision`` — Section 5.1's MPFR precision (1000 default),
* ``precision_policy`` / ``working_precision`` /
  ``escalation_guard_bits`` — the adaptive shadow-precision tiers
  (:mod:`repro.bigfloat.policy`); "fixed" reproduces the paper,
* ``substrate`` — which BigFloat kernel substrate evaluates the
  shadow reals (:mod:`repro.bigfloat.backend`); "python" is the
  dependency-free reference, "native" uses gmpy2/mpmath when present.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

#: Input-characteristic configurations (paper Section 4.4: the system is
#: modular and ships three implementations).
CHARACTERISTICS_NONE = "none"
CHARACTERISTICS_REPRESENTATIVE = "representative"
CHARACTERISTICS_RANGE = "range"
CHARACTERISTICS_SIGN_SPLIT = "sign_split"

ALL_CHARACTERISTICS = (
    CHARACTERISTICS_NONE,
    CHARACTERISTICS_REPRESENTATIVE,
    CHARACTERISTICS_RANGE,
    CHARACTERISTICS_SIGN_SPLIT,
)


#: Execution engines (see :mod:`repro.machine.compiled`).
ENGINE_COMPILED = "compiled"
ENGINE_REFERENCE = "reference"
ALL_ENGINES = (ENGINE_COMPILED, ENGINE_REFERENCE)


@dataclass(frozen=True)
class AnalysisConfig:
    """All knobs of the analysis, with the paper's defaults."""

    #: Shadow-real precision in bits (paper Section 5.1, footnote 10).
    shadow_precision: int = 1000

    #: Execution engine: "compiled" runs the threaded-code interpreter
    #: with hash-consed traces and the steady-state anti-unification
    #: fast path; "reference" runs the original interpreter and the
    #: unoptimized analysis walks.  Results are byte-identical (the
    #: engine-parity suite enforces it); "reference" exists as the
    #: oracle and as a fallback when debugging the fast path itself.
    engine: str = ENGINE_COMPILED

    #: Precision tiering of the shadow execution: "fixed" runs every
    #: operation at ``shadow_precision`` (the paper's behaviour);
    #: "adaptive" runs at ``working_precision`` and escalates
    #: precision-sensitive decisions to ``shadow_precision`` (see
    #: :mod:`repro.bigfloat.policy`).
    precision_policy: str = "fixed"

    #: BigFloat kernel substrate for the shadow-real execution
    #: (:mod:`repro.bigfloat.backend`): "python" runs the package's own
    #: integer-limb kernels (the reference), "native" runs gmpy2 (MPFR)
    #: or mpmath kernels when importable, falling back to "python"
    #: when neither is.  Corpus reports are byte-identical across
    #: substrates (the substrate-parity suite enforces it).
    substrate: str = "python"

    #: Working-tier precision of the adaptive policy.
    working_precision: int = 144

    #: Guard band, in bits, around every adaptive-tier decision: the
    #: decision escalates when its margin is within the accumulated
    #: drift bound plus this many bits.
    escalation_guard_bits: int = 16

    #: Tℓ: bits of *local* error above which an operation becomes a
    #: candidate root cause (Figure 5a sweeps this).
    local_error_threshold: float = 5.0

    #: Tm: bits of output error above which an output spot records its
    #: influences (Section 8.1 uses 5 bits of significance).
    output_error_threshold: float = 5.0

    #: Maximum depth of concrete trace expressions; deeper sub-trees are
    #: truncated to opaque leaves (Figures 5c/5d sweep this; depth 1
    #: effectively disables symbolic expressions, like FpDebug).
    max_expression_depth: int = 20

    #: Depth to which anti-unification compares sub-trees for
    #: equivalence (Section 6.1; 5 by default).
    equivalence_depth: int = 5

    #: Which input-characteristics implementation to run (Figure 5b).
    input_characteristics: str = CHARACTERISTICS_SIGN_SPLIT

    #: Detect compensating terms and stop their influence propagation
    #: (Section 5.3 / 8.3).
    detect_compensation: bool = True

    #: Track influence taint from candidate root causes to spots.
    #: Turning this off reduces Herbgrind to per-op error detection.
    track_influences: bool = True

    #: Hardware shadow tier of the adaptive policy: run shadow
    #: arithmetic as compensated double-double pairs
    #: (:mod:`repro.bigfloat.doubledouble`) and escalate to the
    #: BigFloat working tier on any decision the hardware pair cannot
    #: certify.  ``None`` (the default) resolves from the
    #: ``REPRO_HWTIER`` environment variable (on unless it is "0"); the
    #: field is serialized only when explicitly set, so default request
    #: digests are unchanged.  Ignored by the "fixed" policy and by
    #: non-round-to-nearest roundings, and reports are byte-identical
    #: either way (the hw-tier parity suite enforces it).
    hw_tier: Optional[bool] = None

    #: Wall-clock budget of one analysis, in seconds; ``None`` (the
    #: default) is unlimited.  When set, a :class:`ResourceGuard`
    #: (:mod:`repro.core.analysis`) raises
    #: :class:`~repro.resilience.errors.AnalysisDeadlineExceeded`
    #: mid-analysis, which the degradation ladder classifies like any
    #: other degradable failure.  Guard fields are serialized only when
    #: set, so default request digests are unchanged.
    deadline_seconds: Optional[float] = None

    #: Budget of analysed floating-point operations for one analysis;
    #: ``None`` (the default) is unlimited.  When spent, the guard
    #: raises :class:`~repro.resilience.errors.OpBudgetExceeded`.
    op_budget: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.bigfloat.policy import available_policies

        if self.shadow_precision < 24:
            raise ValueError("shadow precision below single precision")
        if self.engine not in ALL_ENGINES:
            raise ValueError(
                f"unknown engine: {self.engine!r} "
                f"(known: {', '.join(ALL_ENGINES)})"
            )
        if self.precision_policy not in available_policies():
            raise ValueError(
                f"unknown precision policy: {self.precision_policy!r} "
                f"(known: {', '.join(available_policies())})"
            )
        from repro.bigfloat.backend import ALL_SUBSTRATES

        if self.substrate not in ALL_SUBSTRATES:
            raise ValueError(
                f"unknown substrate: {self.substrate!r} "
                f"(known: {', '.join(ALL_SUBSTRATES)})"
            )
        if self.working_precision < 64:
            raise ValueError("working precision must be >= 64 bits")
        if self.escalation_guard_bits < 8:
            raise ValueError("escalation guard band must be >= 8 bits")
        if self.precision_policy == "adaptive" and \
                self.working_precision < 53 + self.escalation_guard_bits + 8:
            # Mirror AdaptivePrecisionPolicy's constructor check so a
            # bad combination fails at config time, not mid-analysis
            # inside a worker process.
            raise ValueError(
                f"working precision {self.working_precision} too small "
                f"for {self.escalation_guard_bits} guard bits over a "
                "53-bit target"
            )
        if self.max_expression_depth < 1:
            raise ValueError("max expression depth must be >= 1")
        if self.equivalence_depth < 1:
            raise ValueError("equivalence depth must be >= 1")
        if self.input_characteristics not in ALL_CHARACTERISTICS:
            raise ValueError(
                f"unknown characteristics kind: {self.input_characteristics!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("analysis deadline must be positive seconds")
        if self.op_budget is not None and self.op_budget < 1:
            raise ValueError("op budget must be >= 1 operation")

    def with_(self, **changes) -> "AnalysisConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def resolve_hw_tier(config: AnalysisConfig) -> bool:
    """Effective hardware-tier switch for ``config``.

    The tier only exists under the adaptive policy; an unset field
    defers to the ``REPRO_HWTIER`` environment variable (the CI
    kill-switch), defaulting to on.
    """
    import os

    if config.precision_policy != "adaptive":
        return False
    if config.hw_tier is not None:
        return bool(config.hw_tier)
    return os.environ.get("REPRO_HWTIER", "1") != "0"
