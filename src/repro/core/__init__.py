"""The Herbgrind analysis — the paper's primary contribution.

Subsystems, mirroring Section 4:

* spots-and-influences (``analysis``, ``records``, ``localerror``) —
  which operations influence which outputs/branches/conversions,
* symbolic expressions (``trace``, ``antiunify``) — abstracting the
  erroneous computation across function and heap boundaries,
* input characteristics (``inputs``) — on which inputs the computation
  is erroneous,
plus compensation detection and library wrapping (Section 5.3), and
the configuration knobs every Section 8 experiment sweeps (``config``).
"""

from repro.core.analysis import (
    EngineFeatures,
    HerbgrindAnalysis,
    analyze_program,
)
from repro.core.config import (
    ALL_CHARACTERISTICS,
    ALL_ENGINES,
    AnalysisConfig,
    CHARACTERISTICS_NONE,
    CHARACTERISTICS_RANGE,
    CHARACTERISTICS_REPRESENTATIVE,
    CHARACTERISTICS_SIGN_SPLIT,
    ENGINE_COMPILED,
    ENGINE_REFERENCE,
)
from repro.core.driver import analyze_fpcore, precondition_box, sample_inputs
from repro.core.records import (
    OpRecord,
    SpotRecord,
    SPOT_BRANCH,
    SPOT_CONVERSION,
    SPOT_OUTPUT,
)
from repro.core.report import (
    AnalysisReport,
    RootCauseReport,
    SpotReport,
    generate_report,
    root_cause_report,
)
from repro.core.shadow import ShadowValue

__all__ = [
    "ALL_CHARACTERISTICS",
    "ALL_ENGINES",
    "AnalysisConfig",
    "AnalysisReport",
    "ENGINE_COMPILED",
    "ENGINE_REFERENCE",
    "EngineFeatures",
    "CHARACTERISTICS_NONE",
    "CHARACTERISTICS_RANGE",
    "CHARACTERISTICS_REPRESENTATIVE",
    "CHARACTERISTICS_SIGN_SPLIT",
    "HerbgrindAnalysis",
    "OpRecord",
    "RootCauseReport",
    "SPOT_BRANCH",
    "SPOT_CONVERSION",
    "SPOT_OUTPUT",
    "ShadowValue",
    "SpotRecord",
    "SpotReport",
    "analyze_fpcore",
    "analyze_program",
    "generate_report",
    "precondition_box",
    "root_cause_report",
    "sample_inputs",
]
