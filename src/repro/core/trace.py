"""Concrete-expression trace nodes (paper Section 4.3, Section 6).

Every shadowed float value carries a :class:`TraceNode` recording the
floating-point computation that produced it.  Copies through registers,
the heap, and function boundaries *share* nodes (the DAG mirrors the
sharing of shadow values), so a single trace can span multiple
functions and data structures — that is what makes the extracted
expressions non-local.

Function boundaries, loads and stores are deliberately *not* recorded:
a trace contains only floating-point operations, constants, program
inputs, and opaque leaves (values whose float origin the analysis
cannot see: integer conversions, unrecognized bit manipulations,
truncation at the depth bound).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

#: Node kinds.
KIND_OP = "op"
KIND_INPUT = "input"
KIND_CONST = "const"
KIND_OPAQUE = "opaque"

_leaf_counter = itertools.count()


class TraceNode:
    """An immutable node of the concrete-expression DAG."""

    __slots__ = ("kind", "op", "args", "value", "loc", "depth", "ident",
                 "_keys")

    def __init__(
        self,
        kind: str,
        value: float,
        op: Optional[str] = None,
        args: Tuple["TraceNode", ...] = (),
        loc: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.op = op
        self.args = args
        self.value = value
        self.loc = loc
        self.depth = 1 + max((a.depth for a in args), default=0)
        self.ident = next(_leaf_counter)
        #: Lazy cache of structural keys by depth (nodes are immutable,
        #: so a key never changes once computed).
        self._keys: Optional[dict] = None

    def __repr__(self) -> str:
        if self.kind == KIND_OP:
            return f"<{self.op} depth={self.depth} value={self.value!r}>"
        return f"<{self.kind} value={self.value!r}>"


def input_leaf(value: float, index: int, loc: Optional[str] = None) -> TraceNode:
    """A program-input leaf; ``op`` holds the canonical input name."""
    return TraceNode(KIND_INPUT, value, op=f"x{index}", loc=loc)


def const_leaf(value: float, loc: Optional[str] = None) -> TraceNode:
    """A literal constant leaf."""
    return TraceNode(KIND_CONST, value, loc=loc)


def opaque_leaf(value: float, loc: Optional[str] = None) -> TraceNode:
    """A leaf for values of unknown floating-point provenance."""
    return TraceNode(KIND_OPAQUE, value, loc=loc)


def op_node(
    op: str,
    args: Tuple[TraceNode, ...],
    value: float,
    loc: Optional[str] = None,
) -> TraceNode:
    """An operation node over existing children (a DAG link, no copying).

    The expression-depth bound (Figures 5c/5d) is applied when traces
    are *generalized*, not here: each operation site's symbolic
    expression keeps only its top ``max_expression_depth`` levels, with
    deeper sub-trees becoming variables.  Keeping the full DAG here is
    cheap (one node per executed operation) and lets every site see its
    own most-recent levels.
    """
    return TraceNode(KIND_OP, value, op=op, args=args, loc=loc)


def structural_key(node: TraceNode, depth: int) -> tuple:
    """A hashable key identifying ``node`` up to ``depth`` levels.

    This is the Section 6.1 approximation: equivalence of sub-trees is
    computed exactly only to a bounded depth, so keys of two nodes are
    equal iff the nodes agree structurally (ops, leaf kinds, values) to
    that depth.
    """
    if node.kind == KIND_INPUT:
        return (KIND_INPUT, node.op)
    if node.kind == KIND_CONST:
        return (KIND_CONST, node.value)
    if node.kind == KIND_OPAQUE:
        # Opaque leaves are only equivalent when they are the *same*
        # shared leaf (same box copied around) — compare by identity.
        return (KIND_OPAQUE, node.ident)
    cache = node._keys
    if cache is None:
        cache = node._keys = {}
    else:
        cached = cache.get(depth)
        if cached is not None:
            return cached
    if depth <= 1:
        key = (KIND_OP, node.op, node.value)
    else:
        key = (
            KIND_OP,
            node.op,
            tuple(structural_key(a, depth - 1) for a in node.args),
        )
    cache[depth] = key
    return key


def node_count(node: TraceNode) -> int:
    """Number of distinct operation nodes in the trace DAG."""
    seen = set()

    def walk(current: TraceNode) -> None:
        if current.ident in seen or current.kind != KIND_OP:
            return
        seen.add(current.ident)
        for argument in current.args:
            walk(argument)

    walk(node)
    return len(seen)
