"""Concrete-expression trace nodes (paper Section 4.3, Section 6).

Every shadowed float value carries a :class:`TraceNode` recording the
floating-point computation that produced it.  Copies through registers,
the heap, and function boundaries *share* nodes (the DAG mirrors the
sharing of shadow values), so a single trace can span multiple
functions and data structures — that is what makes the extracted
expressions non-local.

Function boundaries, loads and stores are deliberately *not* recorded:
a trace contains only floating-point operations, constants, program
inputs, and opaque leaves (values whose float origin the analysis
cannot see: integer conversions, unrecognized bit manipulations,
truncation at the depth bound).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from repro.ieee.float64 import double_to_bits as _bits

#: Node kinds.
KIND_OP = "op"
KIND_INPUT = "input"
KIND_CONST = "const"
KIND_OPAQUE = "opaque"

_leaf_counter = itertools.count()

_EMPTY_FROZEN: frozenset = frozenset()


class TraceNode:
    """An immutable node of the concrete-expression DAG."""

    __slots__ = ("kind", "op", "args", "value", "loc", "depth", "ident",
                 "_keys", "levels")

    def __init__(
        self,
        kind: str,
        value: float,
        op: Optional[str] = None,
        args: Tuple["TraceNode", ...] = (),
        loc: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.op = op
        self.args = args
        self.value = value
        self.loc = loc
        self.depth = 1 + max((a.depth for a in args), default=0)
        self.ident = next(_leaf_counter)
        #: Lazy cache of structural keys by depth (nodes are immutable,
        #: so a key never changes once computed).
        self._keys: Optional[dict] = None
        #: Optional per-distance descendant index maintained by
        #: :class:`TracePool`: ``levels[d]`` is the frozenset of idents
        #: of *operation* descendants at distance exactly ``d`` (0 =
        #: the node itself).  Gives anti-unification its truncation
        #: frontier — the nodes at depth ``max_depth + 1`` of a trace
        #: rooted here are exactly ``levels[max_depth]`` — in O(1).
        self.levels: Optional[tuple] = None

    def __repr__(self) -> str:
        if self.kind == KIND_OP:
            return f"<{self.op} depth={self.depth} value={self.value!r}>"
        return f"<{self.kind} value={self.value!r}>"


def input_leaf(value: float, index: int, loc: Optional[str] = None) -> TraceNode:
    """A program-input leaf; ``op`` holds the canonical input name."""
    return TraceNode(KIND_INPUT, value, op=f"x{index}", loc=loc)


def const_leaf(value: float, loc: Optional[str] = None) -> TraceNode:
    """A literal constant leaf."""
    return TraceNode(KIND_CONST, value, loc=loc)


def opaque_leaf(value: float, loc: Optional[str] = None) -> TraceNode:
    """A leaf for values of unknown floating-point provenance."""
    return TraceNode(KIND_OPAQUE, value, loc=loc)


def op_node(
    op: str,
    args: Tuple[TraceNode, ...],
    value: float,
    loc: Optional[str] = None,
) -> TraceNode:
    """An operation node over existing children (a DAG link, no copying).

    The expression-depth bound (Figures 5c/5d) is applied when traces
    are *generalized*, not here: each operation site's symbolic
    expression keeps only its top ``max_expression_depth`` levels, with
    deeper sub-trees becoming variables.  Keeping the full DAG here is
    cheap (one node per executed operation) and lets every site see its
    own most-recent levels.
    """
    return TraceNode(KIND_OP, value, op=op, args=args, loc=loc)


def _leaf_key(node: TraceNode) -> tuple:
    """The (depth-independent) structural key of a non-op node."""
    kind = node.kind
    if kind == KIND_INPUT:
        return (KIND_INPUT, node.op)
    if kind == KIND_CONST:
        return (KIND_CONST, node.value)
    # Opaque leaves are only equivalent when they are the *same* shared
    # leaf (same box copied around) — compare by identity.
    return (KIND_OPAQUE, node.ident)


def structural_key(node: TraceNode, depth: int) -> tuple:
    """A hashable key identifying ``node`` up to ``depth`` levels.

    This is the Section 6.1 approximation: equivalence of sub-trees is
    computed exactly only to a bounded depth, so keys of two nodes are
    equal iff the nodes agree structurally (ops, leaf kinds, values) to
    that depth.

    The walk is iterative (an explicit post-order stack), so arbitrarily
    large ``depth`` bounds cannot hit Python's recursion limit, and the
    key of every visited (node, depth) pair is cached — with hash-consed
    traces, a key is computed once per *unique* sub-DAG.
    """
    if node.kind != KIND_OP:
        return _leaf_key(node)
    cache = node._keys
    if cache is not None:
        cached = cache.get(depth)
        if cached is not None:
            return cached
    stack = [(node, depth)]
    while stack:
        current, d = stack[-1]
        cache = current._keys
        if cache is None:
            cache = current._keys = {}
        elif d in cache:
            stack.pop()
            continue
        if d <= 1:
            cache[d] = (KIND_OP, current.op, current.value)
            stack.pop()
            continue
        child_depth = d - 1
        missing = [
            (a, child_depth) for a in current.args
            if a.kind == KIND_OP
            and (a._keys is None or child_depth not in a._keys)
        ]
        if missing:
            stack.extend(missing)
            continue
        cache[d] = (
            KIND_OP,
            current.op,
            tuple(
                a._keys[child_depth] if a.kind == KIND_OP else _leaf_key(a)
                for a in current.args
            ),
        )
        stack.pop()
    return node._keys[depth]


def node_count(node: TraceNode) -> int:
    """Number of distinct operation nodes in the trace DAG.

    Iterative, so deep traces (long loop chains) cannot overflow the
    recursion limit.
    """
    seen = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.kind != KIND_OP or current.ident in seen:
            continue
        seen.add(current.ident)
        stack.extend(current.args)
    return len(seen)


class TracePool:
    """Hash-consing of trace nodes (the compiled engine's trace layer).

    Structurally identical sub-DAGs share one :class:`TraceNode`, so a
    loop that recomputes the same sub-expression allocates nothing after
    the first iteration and every per-node cache (structural keys, deep
    marks, escalator memos) is computed once per *unique* node:

    * constant leaves are interned across executions (keyed by site and
      bit pattern, so ``-0.0``/``0.0`` and NaN payloads never conflate,
      and the table stays bounded by the program's constant sites),
    * operation nodes and input/int-conversion leaves are interned per
      execution — :meth:`begin_execution` drops those tables so idents
      never leak across runs and memory cannot grow with the number of
      sampled points,
    * opaque leaves are **never** interned: their structural identity is
      object identity (see :func:`structural_key`).

    Interning keys include the creating instruction (``site``), so
    nodes from different program sites never merge; two nodes merge
    only when the *same site* recomputed over the same argument nodes —
    operations are deterministic, so the value is implied and the trace
    is *exactly* the paper's concrete expression, just maximally shared
    across loop iterations.

    The pool also maintains each op node's :attr:`TraceNode.levels`
    index (op descendants by exact distance, up to ``levels_depth``),
    which hands the anti-unification walks their truncation frontier
    without re-walking the DAG.  Depth bounds beyond ``levels_depth``
    fall back to the explicit frontier walk.
    """

    __slots__ = ("_consts", "_inputs", "_ints", "_ops",
                 "_levels_depth", "_empty_tail")

    #: Cap on the per-node distance index; configurations with a larger
    #: ``max_expression_depth`` degrade to the walk, keeping per-node
    #: memory bounded.
    MAX_LEVELS_DEPTH = 128

    def __init__(self, levels_depth: int = 20) -> None:
        self._consts: dict = {}
        self._inputs: dict = {}
        self._ints: dict = {}
        self._ops: dict = {}
        depth = min(levels_depth, self.MAX_LEVELS_DEPTH)
        self._levels_depth = depth
        self._empty_tail = (frozenset(),) * depth

    def begin_execution(self) -> None:
        """Start a fresh execution.

        The operation table always resets (op idents must not leak
        between runs).  Input and int-conversion leaf tables reset too:
        their values change run to run, so keeping them would grow
        memory monotonically over large point sets for near-zero reuse.
        Constant leaves persist — they are bounded by the program's
        constant sites and are the leaves loop bodies replay millions
        of times.
        """
        self._ops.clear()
        self._inputs.clear()
        self._ints.clear()

    def const_leaf(
        self, value: float, loc: Optional[str] = None, site: int = 0
    ) -> TraceNode:
        # The value participates in the key even though a site's
        # constant is fixed: `site` is an id(), and ids can be recycled
        # if a caller outlives the program it analysed — a collision
        # must never hand back a different constant.
        key = (site, _bits(value))
        node = self._consts.get(key)
        if node is None:
            node = self._consts[key] = const_leaf(value, loc)
        return node

    def input_leaf(
        self, value: float, index: int, loc: Optional[str] = None,
        site: int = 0,
    ) -> TraceNode:
        key = (site, index, _bits(value))
        node = self._inputs.get(key)
        if node is None:
            node = self._inputs[key] = input_leaf(value, index, loc)
        return node

    def int_leaf(
        self, value: float, int_value: int, loc: Optional[str] = None,
        site: int = 0,
    ) -> TraceNode:
        """A constant leaf for an int→float conversion, keyed by the
        *exact* integer: two integers rounding to the same double stay
        distinct leaves, because the escalator pins a different exact
        value on each."""
        key = (site, int_value)
        node = self._ints.get(key)
        if node is None:
            node = self._ints[key] = const_leaf(value, loc)
        return node

    def op_node(
        self,
        op: str,
        args: Tuple[TraceNode, ...],
        value: float,
        loc: Optional[str] = None,
        site: int = 0,
    ) -> TraceNode:
        if len(args) == 1:
            key = (site, args[0].ident)
        else:
            key = (site,) + tuple(a.ident for a in args)
        node = self._ops.get(key)
        if node is None:
            node = self._ops[key] = TraceNode(
                KIND_OP, value, op=op, args=args, loc=loc
            )
            node.levels = self._build_levels(node, args)
        return node

    def _build_levels(
        self, node: TraceNode, args: Tuple[TraceNode, ...]
    ) -> Optional[tuple]:
        """The per-distance op-descendant index of a fresh op node."""
        head = (frozenset((node.ident,)),)
        op_levels = []
        for arg in args:
            if arg.kind == KIND_OP:
                if arg.levels is None:
                    return None  # a foreign (unpooled) sub-DAG: degrade
                op_levels.append(arg.levels)
        if not op_levels:
            return head + self._empty_tail
        depth = self._levels_depth
        if len(op_levels) == 1:
            # Chains (one op argument) shift the argument's index by
            # one distance — a tuple slice, no set is rebuilt.
            return head + op_levels[0][:depth]
        if len(op_levels) == 2:
            left, right = op_levels
            return head + tuple(
                (a | b) if (a and b) else (a or b)
                for a, b in zip(left[:depth], right[:depth])
            )
        merged = []
        for distance in range(depth):
            sets = [
                levels[distance] for levels in op_levels if levels[distance]
            ]
            if not sets:
                merged.append(_EMPTY_FROZEN)
            elif len(sets) == 1:
                merged.append(sets[0])
            else:
                merged.append(frozenset().union(*sets))
        return head + tuple(merged)


