"""Concrete-expression trace nodes (paper Section 4.3, Section 6).

Every shadowed float value carries a :class:`TraceNode` recording the
floating-point computation that produced it.  Copies through registers,
the heap, and function boundaries *share* nodes (the DAG mirrors the
sharing of shadow values), so a single trace can span multiple
functions and data structures — that is what makes the extracted
expressions non-local.

Function boundaries, loads and stores are deliberately *not* recorded:
a trace contains only floating-point operations, constants, program
inputs, and opaque leaves (values whose float origin the analysis
cannot see: integer conversions, unrecognized bit manipulations,
truncation at the depth bound).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from repro.ieee.float64 import double_to_bits as _bits

#: Node kinds.
KIND_OP = "op"
KIND_INPUT = "input"
KIND_CONST = "const"
KIND_OPAQUE = "opaque"

_leaf_counter = itertools.count()

_EMPTY_FROZEN: frozenset = frozenset()


class TraceNode:
    """An immutable node of the concrete-expression DAG."""

    __slots__ = ("kind", "op", "args", "value", "loc", "depth", "ident",
                 "_keys", "levels")

    def __init__(
        self,
        kind: str,
        value: float,
        op: Optional[str] = None,
        args: Tuple["TraceNode", ...] = (),
        loc: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.op = op
        self.args = args
        self.value = value
        self.loc = loc
        self.depth = 1 + max((a.depth for a in args), default=0)
        self.ident = next(_leaf_counter)
        #: Lazy cache of structural keys by depth (nodes are immutable,
        #: so a key never changes once computed).
        self._keys: Optional[dict] = None
        #: Optional per-distance descendant index maintained by
        #: :class:`TracePool`: ``levels[d]`` is the frozenset of idents
        #: of *operation* descendants at distance exactly ``d`` (0 =
        #: the node itself).  Gives anti-unification its truncation
        #: frontier — the nodes at depth ``max_depth + 1`` of a trace
        #: rooted here are exactly ``levels[max_depth]`` — in O(1).
        self.levels: Optional[tuple] = None

    def __repr__(self) -> str:
        if self.kind == KIND_OP:
            return f"<{self.op} depth={self.depth} value={self.value!r}>"
        return f"<{self.kind} value={self.value!r}>"


def input_leaf(value: float, index: int, loc: Optional[str] = None) -> TraceNode:
    """A program-input leaf; ``op`` holds the canonical input name."""
    return TraceNode(KIND_INPUT, value, op=f"x{index}", loc=loc)


def const_leaf(value: float, loc: Optional[str] = None) -> TraceNode:
    """A literal constant leaf."""
    return TraceNode(KIND_CONST, value, loc=loc)


def opaque_leaf(value: float, loc: Optional[str] = None) -> TraceNode:
    """A leaf for values of unknown floating-point provenance."""
    return TraceNode(KIND_OPAQUE, value, loc=loc)


def op_node(
    op: str,
    args: Tuple[TraceNode, ...],
    value: float,
    loc: Optional[str] = None,
) -> TraceNode:
    """An operation node over existing children (a DAG link, no copying).

    The expression-depth bound (Figures 5c/5d) is applied when traces
    are *generalized*, not here: each operation site's symbolic
    expression keeps only its top ``max_expression_depth`` levels, with
    deeper sub-trees becoming variables.  Keeping the full DAG here is
    cheap (one node per executed operation) and lets every site see its
    own most-recent levels.
    """
    return TraceNode(KIND_OP, value, op=op, args=args, loc=loc)


def _leaf_key(node: TraceNode) -> tuple:
    """The (depth-independent) structural key of a non-op node."""
    kind = node.kind
    if kind == KIND_INPUT:
        return (KIND_INPUT, node.op)
    if kind == KIND_CONST:
        return (KIND_CONST, node.value)
    # Opaque leaves are only equivalent when they are the *same* shared
    # leaf (same box copied around) — compare by identity.
    return (KIND_OPAQUE, node.ident)


def structural_key(node: TraceNode, depth: int) -> tuple:
    """A hashable key identifying ``node`` up to ``depth`` levels.

    This is the Section 6.1 approximation: equivalence of sub-trees is
    computed exactly only to a bounded depth, so keys of two nodes are
    equal iff the nodes agree structurally (ops, leaf kinds, values) to
    that depth.

    The walk is iterative (an explicit post-order stack), so arbitrarily
    large ``depth`` bounds cannot hit Python's recursion limit, and the
    key of every visited (node, depth) pair is cached — with hash-consed
    traces, a key is computed once per *unique* sub-DAG.
    """
    if node.kind != KIND_OP:
        return _leaf_key(node)
    cache = node._keys
    if cache is not None:
        cached = cache.get(depth)
        if cached is not None:
            return cached
    stack = [(node, depth)]
    while stack:
        current, d = stack[-1]
        cache = current._keys
        if cache is None:
            cache = current._keys = {}
        elif d in cache:
            stack.pop()
            continue
        if d <= 1:
            cache[d] = (KIND_OP, current.op, current.value)
            stack.pop()
            continue
        child_depth = d - 1
        missing = [
            (a, child_depth) for a in current.args
            if a.kind == KIND_OP
            and (a._keys is None or child_depth not in a._keys)
        ]
        if missing:
            stack.extend(missing)
            continue
        cache[d] = (
            KIND_OP,
            current.op,
            tuple(
                a._keys[child_depth] if a.kind == KIND_OP else _leaf_key(a)
                for a in current.args
            ),
        )
        stack.pop()
    return node._keys[depth]


def node_count(node: TraceNode) -> int:
    """Number of distinct operation nodes in the trace DAG.

    Iterative, so deep traces (long loop chains) cannot overflow the
    recursion limit.
    """
    seen = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.kind != KIND_OP or current.ident in seen:
            continue
        seen.add(current.ident)
        stack.extend(current.args)
    return len(seen)


#: Integer kind tags of the pool's flat arrays (dense idents index
#: parallel arrays; string kinds stay on materialized nodes).
P_OP = 0
P_INPUT = 1
P_CONST = 2
P_OPAQUE = 3

_P_KIND_NAMES = {
    P_OP: KIND_OP,
    P_INPUT: KIND_INPUT,
    P_CONST: KIND_CONST,
    P_OPAQUE: KIND_OPAQUE,
}

#: Packing stride for the pool's (ident, depth) structural-key cache.
#: Depths are bounded by the configured equivalence/expression depths;
#: anything larger falls back to tuple keys.
_KEY_STRIDE = 4096


class TracePool:
    """Ident-first hash-consing of traces (the compiled engine's layer).

    The pool *is* the trace store: every trace is an integer ident
    indexing parallel flat arrays (kind, op name, argument idents,
    value, source location, depth, distance index).  The hot path —
    tracer callbacks, the kernel-result cache, the steady-state
    anti-unification walk — operates on idents and these arrays only;
    no :class:`TraceNode` objects are allocated per operation.
    Structured nodes are materialized *lazily* (:meth:`node`,
    :meth:`node_capped`) at the places that genuinely need a tree:
    anti-unification bail-outs (the full merge), escalation
    re-execution fallbacks, and report time.

    Hash-consing semantics are unchanged from the node-based pool:

    * interning keys include the creating instruction (``site``), so
      idents from different program sites never merge; two executions
      share an ident only when the *same site* recomputed over the same
      argument idents — operations are deterministic, so the value is
      implied and the trace is exactly the paper's concrete expression,
      maximally shared across loop iterations,
    * opaque leaves are **never** interned: their structural identity
      is their ident (see :func:`structural_key`),
    * :meth:`begin_execution` resets the whole store (arrays and
      interning tables), so idents never leak across runs and memory is
      bounded by one execution's unique nodes, not the sampled point
      count.  Constant leaves are re-interned on first use each run —
      one dict insert per constant site — and the analysis keeps their
      shadow *values* cached across runs keyed by the :attr:`epoch`
      counter.

    The pool also maintains each op ident's ``levels`` distance index
    (op descendants by exact distance, up to ``levels_depth``), which
    hands the anti-unification walks their truncation frontier in O(1).
    Depth bounds beyond ``levels_depth`` fall back to
    :meth:`deep_marks`.
    """

    __slots__ = ("kinds", "ops", "args", "values", "locs", "depths",
                 "levels", "nodes", "epoch", "lanes",
                 "_keys", "_consts", "_inputs", "_ints", "_ops_table",
                 "_levels_depth", "_empty_tail")

    #: Cap on the per-ident distance index; configurations with a larger
    #: ``max_expression_depth`` degrade to the walk, keeping per-ident
    #: memory bounded.
    MAX_LEVELS_DEPTH = 128

    def __init__(self, levels_depth: int = 20) -> None:
        #: Parallel arrays indexed by ident.
        self.kinds: list = []
        self.ops: list = []          # op name / input name / None
        self.args: list = []         # tuple of argument idents
        self.values: list = []
        self.locs: list = []
        self.depths: list = []
        self.levels: list = []       # distance index (op idents only)
        self.nodes: list = []        # lazily materialized TraceNodes
        #: Bumped by :meth:`begin_execution`; callers caching shadows
        #: of interned leaves key their caches by this.
        self.epoch = 0
        #: Lane count of the current epoch: 1 for a sequential run,
        #: the sub-batch width when :meth:`begin_batch` opened it.
        self.lanes = 1
        #: (ident * stride + depth) -> structural key, for op idents.
        self._keys: dict = {}
        self._consts: dict = {}
        self._inputs: dict = {}
        self._ints: dict = {}
        self._ops_table: dict = {}
        depth = min(levels_depth, self.MAX_LEVELS_DEPTH)
        self._levels_depth = depth
        self._empty_tail = (frozenset(),) * depth

    def __len__(self) -> int:
        """Number of live entries (this execution's unique nodes)."""
        return len(self.kinds)

    def begin_execution(self) -> None:
        """Start a fresh execution: reset every array and table.

        Idents must not leak between runs, and the arrays would
        otherwise grow with the number of sampled points.  ``clear()``
        (not reassignment) keeps the array/table objects identical, so
        closures that pre-bound them stay valid.
        """
        self.kinds.clear()
        self.ops.clear()
        self.args.clear()
        self.values.clear()
        self.locs.clear()
        self.depths.clear()
        self.levels.clear()
        self.nodes.clear()
        self._keys.clear()
        self._consts.clear()
        self._inputs.clear()
        self._ints.clear()
        self._ops_table.clear()
        self.epoch += 1
        self.lanes = 1

    def begin_batch(self, lanes: int) -> None:
        """Start one epoch shared by ``lanes`` lockstep executions.

        The batched engine opens a single epoch per uniform sub-batch
        rather than one per sample point: leaf idents are value-keyed
        (``(site, bits)`` for constants, ``(site, index, bits)`` for
        inputs) and op idents are argument-keyed, so lanes that agree
        structurally share interned columns and the per-site constant
        shadows are built once per batch instead of once per point.
        Identical reset semantics to :meth:`begin_execution` otherwise.
        """
        self.begin_execution()
        self.lanes = lanes

    # ------------------------------------------------------------------
    # Ident allocation
    # ------------------------------------------------------------------

    def _append(
        self, kind: int, op: Optional[str], arg_idents: tuple,
        value: float, loc: Optional[str],
    ) -> int:
        ident = len(self.kinds)
        self.kinds.append(kind)
        self.ops.append(op)
        self.args.append(arg_idents)
        self.values.append(value)
        self.locs.append(loc)
        depths = self.depths
        if not arg_idents:
            depths.append(1)
        elif len(arg_idents) == 2:
            da = depths[arg_idents[0]]
            db = depths[arg_idents[1]]
            depths.append((da if da >= db else db) + 1)
        elif len(arg_idents) == 1:
            depths.append(depths[arg_idents[0]] + 1)
        else:
            depths.append(1 + max(depths[a] for a in arg_idents))
        self.levels.append(None)
        self.nodes.append(None)
        return ident

    def const_ident(
        self, value: float, loc: Optional[str] = None, site: int = 0
    ) -> int:
        # The value participates in the key even though a site's
        # constant is fixed: `site` is an id(), and ids can be recycled
        # if a caller outlives the program it analysed — a collision
        # must never hand back a different constant.
        key = (site, _bits(value))
        ident = self._consts.get(key)
        if ident is None:
            ident = self._consts[key] = self._append(
                P_CONST, None, (), value, loc
            )
        return ident

    def input_ident(
        self, value: float, index: int, loc: Optional[str] = None,
        site: int = 0,
    ) -> int:
        key = (site, index, _bits(value))
        ident = self._inputs.get(key)
        if ident is None:
            ident = self._inputs[key] = self._append(
                P_INPUT, f"x{index}", (), value, loc
            )
        return ident

    def int_ident(
        self, value: float, int_value: int, loc: Optional[str] = None,
        site: int = 0,
    ) -> int:
        """A constant leaf for an int→float conversion, keyed by the
        *exact* integer: two integers rounding to the same double stay
        distinct leaves, because the escalator pins a different exact
        value on each."""
        key = (site, int_value)
        ident = self._ints.get(key)
        if ident is None:
            ident = self._ints[key] = self._append(
                P_CONST, None, (), value, loc
            )
        return ident

    def opaque_ident(self, value: float, loc: Optional[str] = None) -> int:
        """A fresh opaque leaf (never interned: identity = ident)."""
        return self._append(P_OPAQUE, None, (), value, loc)

    def op_ident(
        self,
        op: str,
        arg_idents: tuple,
        value: float,
        loc: Optional[str] = None,
        site: int = 0,
    ) -> int:
        key = (site,) + arg_idents
        ident = self._ops_table.get(key)
        if ident is None:
            ident = self.new_op(key, op, arg_idents, value, loc)
        return ident

    def new_op(
        self,
        key: tuple,
        op: str,
        arg_idents: tuple,
        value: float,
        loc: Optional[str],
    ) -> int:
        """Intern a *new* op entry under ``key`` (the cold half of
        :meth:`op_ident`; fused pipelines inline the warm dict probe
        and call this only on a miss).  ``key`` must be
        ``(site,) + arg_idents``."""
        ident = self._ops_table[key] = self._append(
            P_OP, op, arg_idents, value, loc
        )
        self.levels[ident] = self._build_levels(ident, arg_idents)
        return ident

    def _build_levels(self, ident: int, arg_idents: tuple) -> tuple:
        """The per-distance op-descendant index of a fresh op ident."""
        head = (frozenset((ident,)),)
        kinds = self.kinds
        all_levels = self.levels
        op_levels = [
            all_levels[a] for a in arg_idents if kinds[a] == P_OP
        ]
        if not op_levels:
            return head + self._empty_tail
        depth = self._levels_depth
        if len(op_levels) == 1:
            # Chains (one op argument) shift the argument's index by
            # one distance — a tuple slice, no set is rebuilt.
            return head + op_levels[0][:depth]
        if len(op_levels) == 2:
            # A distance index has no gaps (an op at distance d implies
            # op ancestors at every smaller distance), so each side's
            # nonempty sets form a prefix: union while both prefixes
            # run, then the deeper side passes through by slice.  The
            # dominant shape — a loop accumulator merged with a shallow
            # term — unions one distance and slices the rest.
            left, right = op_levels
            merged = []
            k = 0
            while k < depth:
                ls = left[k]
                rs = right[k]
                if ls and rs:
                    merged.append(ls | rs)
                    k += 1
                    continue
                rest = left[k:depth] if ls else right[k:depth]
                return head + tuple(merged) + rest
            return head + tuple(merged)
        merged = []
        for distance in range(depth):
            sets = [
                levels[distance] for levels in op_levels if levels[distance]
            ]
            if not sets:
                merged.append(_EMPTY_FROZEN)
            elif len(sets) == 1:
                merged.append(sets[0])
            else:
                merged.append(frozenset().union(*sets))
        return head + tuple(merged)

    # ------------------------------------------------------------------
    # Ident-based walks (the hot-path views the fused pipeline uses)
    # ------------------------------------------------------------------

    def _leaf_key(self, ident: int) -> tuple:
        kind = self.kinds[ident]
        if kind == P_INPUT:
            return (KIND_INPUT, self.ops[ident])
        if kind == P_CONST:
            return (KIND_CONST, self.values[ident])
        return (KIND_OPAQUE, ident)

    def structural_key_of(self, ident: int, depth: int) -> tuple:
        """The Section 6.1 bounded-depth key of an ident.

        Produces exactly the tuples :func:`structural_key` computes on
        materialized nodes (idents are shared between the two views),
        so keys from either path have one equality relation.
        """
        if self.kinds[ident] != P_OP:
            return self._leaf_key(ident)
        if depth >= _KEY_STRIDE:  # pathological bound: no packing
            return structural_key(self.node(ident), depth)
        cache = self._keys
        packed = ident * _KEY_STRIDE + depth
        cached = cache.get(packed)
        if cached is not None:
            return cached
        kinds = self.kinds
        ops = self.ops
        argsA = self.args
        values = self.values
        stack = [(ident, depth)]
        while stack:
            cur, d = stack[-1]
            key = cur * _KEY_STRIDE + d
            if key in cache:
                stack.pop()
                continue
            if d <= 1:
                cache[key] = (KIND_OP, ops[cur], values[cur])
                stack.pop()
                continue
            child_depth = d - 1
            missing = [
                (a, child_depth) for a in argsA[cur]
                if kinds[a] == P_OP
                and (a * _KEY_STRIDE + child_depth) not in cache
            ]
            if missing:
                stack.extend(missing)
                continue
            cache[key] = (
                KIND_OP,
                ops[cur],
                tuple(
                    cache[a * _KEY_STRIDE + child_depth]
                    if kinds[a] == P_OP else self._leaf_key(a)
                    for a in argsA[cur]
                ),
            )
            stack.pop()
        return cache[packed]

    def deep_marks(self, ident: int, max_depth: int) -> set:
        """Idents at the truncation frontier (depth ``max_depth + 1``)
        of the trace rooted at ``ident`` — the array mirror of
        :meth:`repro.core.antiunify.Generalization._deep_marks`, used
        when the distance index is capped below the depth bound."""
        marked: set = set()
        kinds = self.kinds
        if kinds[ident] != P_OP:
            return marked
        argsA = self.args
        depths = self.depths
        stride = max_depth + 2
        seen = {ident * stride + 1}
        stack = [(ident, 1)]
        pop = stack.pop
        push = stack.append
        while stack:
            cur, depth = pop()
            child_depth = depth + 1
            for child in argsA[cur]:
                if kinds[child] != P_OP or depth + depths[child] <= max_depth:
                    continue  # leaf, or the whole subtree fits the bound
                if child_depth > max_depth:
                    marked.add(child)
                    continue  # children are invisible anyway
                key = child * stride + child_depth
                if key in seen:
                    continue
                seen.add(key)
                push((child, child_depth))
        return marked

    # ------------------------------------------------------------------
    # Lazy materialization
    # ------------------------------------------------------------------

    def node(self, ident: int) -> TraceNode:
        """Materialize the full structured node of ``ident`` (memoized).

        The node carries the *pool* ident (overriding the global leaf
        counter), its pooled depth, and the distance index, so every
        consumer of materialized nodes — structural keys, escalator
        memos, merge memos — sees one consistent identity space.
        """
        nodes = self.nodes
        cached = nodes[ident]
        if cached is not None:
            return cached
        kinds = self.kinds
        ops = self.ops
        argsA = self.args
        values = self.values
        locs = self.locs
        stack = [ident]
        while stack:
            cur = stack[-1]
            if nodes[cur] is not None:
                stack.pop()
                continue
            pending = [a for a in argsA[cur] if nodes[a] is None]
            if pending:
                stack.extend(pending)
                continue
            node = TraceNode(
                _P_KIND_NAMES[kinds[cur]],
                values[cur],
                op=ops[cur],
                args=tuple(nodes[a] for a in argsA[cur]),
                loc=locs[cur],
            )
            node.ident = cur
            node.levels = self.levels[cur]
            nodes[cur] = node
            stack.pop()
        return nodes[ident]

    def node_capped(self, ident: int, cap: int) -> TraceNode:
        """A *fresh* structured view of ``ident`` down to ``cap``
        levels; deeper positions become opaque placeholder leaves
        carrying the sub-trace's value and location.

        Symbolic expressions are bounded by ``max_expression_depth``,
        so a view capped one level past it yields exactly the same
        per-node source locations as the full trace
        (:func:`repro.core.locations.map_node_locations` never descends
        past a non-matching node) at a cost bounded by the expression,
        not the trace.  Used to persist each record's last trace at the
        end of a run, before the pool resets.
        """
        kinds = self.kinds
        ops = self.ops
        argsA = self.args
        values = self.values
        locs = self.locs
        depths = self.depths
        if depths[ident] <= cap:
            # The whole trace fits under the cap: the full (memoized)
            # materialization is identical and shared across records.
            return self.node(ident)
        memo: dict = {}
        root_key = (ident, cap)
        stack = [root_key]
        while stack:
            top = stack[-1]
            if top in memo:
                stack.pop()
                continue
            cur, remaining = top
            if depths[cur] <= remaining:
                # Sub-trace fits: reuse the shared full materialization
                # instead of walking a private copy.
                memo[top] = self.node(cur)
                stack.pop()
                continue
            if kinds[cur] != P_OP or remaining <= 0:
                if kinds[cur] == P_OP:
                    # Beyond the cap: an opaque stand-in (same value,
                    # same location, fresh identity).
                    memo[top] = TraceNode(
                        KIND_OPAQUE, values[cur], loc=locs[cur]
                    )
                else:
                    node = TraceNode(
                        _P_KIND_NAMES[kinds[cur]], values[cur],
                        op=ops[cur], loc=locs[cur],
                    )
                    node.ident = cur
                    memo[top] = node
                stack.pop()
                continue
            child_keys = [(a, remaining - 1) for a in argsA[cur]]
            pending = [k for k in child_keys if k not in memo]
            if pending:
                stack.extend(pending)
                continue
            node = TraceNode(
                KIND_OP, values[cur], op=ops[cur],
                args=tuple(memo[k] for k in child_keys), loc=locs[cur],
            )
            node.ident = cur
            memo[top] = node
            stack.pop()
        return memo[root_key]


