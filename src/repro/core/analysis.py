"""The Herbgrind analysis as a machine tracer (paper Figures 3 and 4).

For every executed floating-point operation the tracer:

1. computes the shadow-real result (⟦f⟧_R on the shadow arguments),
2. measures the operation's *local error* and marks it a candidate
   root cause when that exceeds Tℓ,
3. extends the concrete-expression trace and anti-unifies it into the
   site's symbolic expression,
4. updates the site's input characteristics (total, and problematic
   when the local error was high),
5. propagates influence taint — the union of the arguments' influences
   plus the site itself when it is a candidate — with compensating
   additions/subtractions (Section 5.3) blocked from propagating their
   compensating term's taint.

At spots (outputs, float branches, float→int conversions) it measures
error against the real execution and records which candidates
influenced the spot.

One note versus the paper's Figure 4: the figure's branch/conversion
case unions influences when the real and float paths *agree*; we take
that for a typo and record influences on *divergence* (as the PID case
study's prose describes).
"""

from __future__ import annotations

import operator
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bigfloat import BigFloat, make_policy
from repro.bigfloat import arith
from repro.bigfloat.backend import KERNEL_CACHE_OPERATIONS, get_backend
from repro.bigfloat.doubledouble import (
    DD_KERNELS,
    DoubleDouble,
    dd_abs,
    dd_fma,
    dd_neg,
    dd_sqrt,
)
from repro.bigfloat.functions import DOUBLE_HANDLERS
from repro.bigfloat.policy import EXACT
from repro.bigfloat.rounding import ROUND_NEAREST_EVEN
from repro.core.config import ENGINE_COMPILED, AnalysisConfig, resolve_hw_tier
from repro.core.localerror import rounded_local_error, rounded_total_error
from repro.ieee.error import bits_of_error_fast
from repro.ieee.float32 import to_single
from repro.ieee.float64 import double_to_bits as _double_bits
from repro.machine import lanes
from repro.core.records import (
    OpRecord,
    SpotRecord,
    SPOT_BRANCH,
    SPOT_CONVERSION,
    SPOT_OUTPUT,
)
from repro.core.shadow import EMPTY_INFLUENCES, ShadowEscalator, ShadowValue
from repro.core import trace as trace_mod
from repro.machine import isa
from repro.machine.interpreter import Interpreter, MachineError, Tracer
from repro.machine.values import FloatBox
from repro.resilience import faults as _faults
from repro.resilience.errors import (
    AnalysisDeadlineExceeded,
    EngineFault,
    OpBudgetExceeded,
)


def _batched_default() -> bool:
    """Default state of the batched layer: on, unless ``REPRO_BATCHED``
    forces it off (the CI fallback leg sets ``REPRO_BATCHED=0`` so the
    per-point path stays green)."""
    return os.environ.get("REPRO_BATCHED", "1").strip().lower() not in (
        "0", "false", "off"
    )


#: Operations between deadline checks: ``time.monotonic()`` per op
#: would dominate the per-op floor, so the guard samples the clock
#: every 256 ticks (a power of two — the check is one AND).
_DEADLINE_CHECK_MASK = 255


#: Double-double kernels by operation (the generic analysis path);
#: the fused/batched closures resolve from the same tables per site.
_DD_UNARY = {"sqrt": dd_sqrt, "neg": dd_neg, "fabs": dd_abs}
_DD_GENERIC = dict(DD_KERNELS)
_DD_GENERIC.update(_DD_UNARY)
_DD_GENERIC["fma"] = dd_fma
_DD_ARITY = {"+": 2, "-": 2, "*": 2, "/": 2,
             "sqrt": 1, "neg": 1, "fabs": 1, "fma": 3}


class ResourceGuard:
    """Per-analysis execution budgets (deadline and op count).

    Created by :class:`HerbgrindAnalysis` when the config sets
    ``deadline_seconds`` and/or ``op_budget``; :meth:`tick` is called
    once per analysed operation and raises a
    :class:`~repro.resilience.errors.ResourceExhausted` subclass when a
    budget is spent.  The degradation ladder classifies those like any
    substrate/engine failure, so a runaway analysis degrades (or fails
    cleanly through every rung) instead of monopolizing a worker until
    the pool's coarse kill-timeout fires.

    The guard deliberately disables the batched layer (see
    ``HerbgrindAnalysis._batched``): budgets need per-op granularity,
    and by the parity invariant the sequential path produces identical
    bytes — only slower, which is what a *bounded* analysis asked for.
    """

    __slots__ = ("budget", "deadline", "_ops", "_expires")

    def __init__(self, deadline_seconds: Optional[float],
                 op_budget: Optional[int]) -> None:
        self.deadline = deadline_seconds
        self.budget = op_budget
        self._ops = 0
        self._expires = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None else None
        )

    @property
    def ops(self) -> int:
        return self._ops

    def tick(self) -> None:
        """Account one analysed operation; raise when a budget is spent."""
        ops = self._ops = self._ops + 1
        if self.budget is not None and ops > self.budget:
            raise OpBudgetExceeded(
                f"op budget of {self.budget} analysed operations "
                f"exhausted"
            )
        if self._expires is not None and not (ops & _DEADLINE_CHECK_MASK):
            self.check_deadline()

    def check_deadline(self) -> None:
        """Raise when the wall-clock deadline has passed (also called
        at each run start, so even a between-runs stall is caught)."""
        if self._expires is not None and time.monotonic() > self._expires:
            raise AnalysisDeadlineExceeded(
                f"analysis exceeded its {self.deadline:.3f}s deadline "
                f"after {self._ops} operations"
            )


@dataclass(frozen=True)
class EngineFeatures:
    """The independent layers of the compiled fast path.

    ``AnalysisConfig.engine`` maps to all-on ("compiled") or all-off
    ("reference"); the benchmark harness toggles layers individually
    for per-layer overhead attribution.  Every combination produces
    identical analysis results.
    """

    #: Execute through :class:`repro.machine.compiled.CompiledProgram`.
    threaded_interpreter: bool = True
    #: Intern traces as integer idents through a
    #: :class:`~repro.core.trace.TracePool` (structured nodes are then
    #: materialized lazily — at anti-unification bail-outs, escalation
    #: re-execution, and report time).
    trace_pool: bool = True
    #: Use the steady-state anti-unification fast path.
    fast_antiunify: bool = True
    #: Memoize transcendental shadow results per (operation, operand
    #: trace idents) within one execution — loop-invariant log/pow/trig
    #: shadows are computed once per run.  Requires the trace pool (the
    #: idents come from its hash-consing); defaults off so explicitly
    #: constructed layer combinations keep their PR-3 meaning.
    kernel_cache: bool = False
    #: Run the per-operation analysis through site-compiled fused
    #: pipeline callbacks: one closure per (site, config), pre-binding
    #: the record, the resolved ⟦f⟧_R kernel and ⟦f⟧_F handler, and the
    #: policy flags, which the compiled engine invokes directly instead
    #: of the generic ``on_op`` path.  Requires the trace pool and the
    #: fast anti-unification walk; the reference interpreter ignores it
    #: (the oracle stays on the unfused path).  Defaults off so
    #: explicitly constructed layer combinations keep their PR-3/PR-4
    #: meaning.
    fused_pipeline: bool = False
    #: Count per-stage pipeline events (shadow resolution, kernel
    #: evaluations, trace interning, error fast path, anti-unify
    #: verdicts, characteristic updates) on
    #: :attr:`HerbgrindAnalysis.stage_counters` for attribution.  Off
    #: by default: the counters cost real time on the hot path.
    profile: bool = False
    #: Execute all sample points in lockstep through the batched engine
    #: (:class:`repro.machine.batched.BatchedProgram`): SoA register
    #: columns, one fused per-site callback invocation covering the
    #: whole batch, and branch-signature grouping that splits divergent
    #: lanes into uniform sub-batches (singletons degrade to one-lane
    #: batches).  Loops, memory traffic, and user calls fall back to
    #: the sequential per-point path.  Requires the fused pipeline (and
    #: with it the pool + fast anti-unify); reports are byte-identical
    #: either way — the parity suite pins batched-on vs batched-off.
    batched: bool = False

    @classmethod
    def for_engine(cls, engine: str) -> "EngineFeatures":
        on = engine == ENGINE_COMPILED
        return cls(
            threaded_interpreter=on, trace_pool=on, fast_antiunify=on,
            kernel_cache=on, fused_pipeline=on,
            batched=on and _batched_default(),
        )


class PipelineStageCounters:
    """Per-stage attribution counters of the per-operation pipeline.

    One instance per analysis (:attr:`HerbgrindAnalysis.stage_counters`),
    reset at construction, populated only when
    :attr:`EngineFeatures.profile` is set.  ``fused_ops`` counts
    operations analysed by site-compiled callbacks, ``generic_ops``
    those that went through the generic ``_analyse_operation`` walk.
    """

    __slots__ = ("fused_ops", "generic_ops", "kernel_evals",
                 "trace_interned", "error_fast", "error_exact",
                 "antiunify_fast", "antiunify_merge",
                 "characteristic_updates", "compensation_checks",
                 "hw_tier_ops", "working_tier_ops")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.fused_ops = 0
        self.generic_ops = 0
        self.kernel_evals = 0
        self.trace_interned = 0
        self.error_fast = 0
        self.error_exact = 0
        self.antiunify_fast = 0
        self.antiunify_merge = 0
        self.characteristic_updates = 0
        self.compensation_checks = 0
        #: Tier residency (hardware tier on only): operations whose
        #: shadow was served by the double-double kernels vs. by the
        #: BigFloat working tier.
        self.hw_tier_ops = 0
        self.working_tier_ops = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class HerbgrindAnalysis(Tracer):
    """The full analysis; attach to an Interpreter as its tracer."""

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        features: Optional[EngineFeatures] = None,
    ) -> None:
        self.config = config if config is not None else AnalysisConfig()
        self.features = (
            features if features is not None
            else EngineFeatures.for_engine(self.config.engine)
        )
        self.policy = make_policy(
            self.config.precision_policy,
            full_precision=self.config.shadow_precision,
            working_precision=self.config.working_precision,
            guard_bits=self.config.escalation_guard_bits,
        )
        #: The context shadow operations run under: the full tier for
        #: the fixed policy, the working tier for adaptive tiers.
        self.context = self.policy.context
        #: The kernel substrate evaluating ⟦f⟧_R (config.substrate).
        self.backend = get_backend(self.config.substrate)
        #: Pre-resolved substrate dispatch for the per-operation hot path.
        self._apply = self.backend.apply
        #: Hoisted policy flag: the fixed policy never escalates, so
        #: the hot path can skip drift/rounding bookkeeping entirely.
        self._escalates = self.policy.escalates
        if self._escalates and _faults.active():
            # Chaos seam: an adaptive-tier failure at analysis setup.
            # The ladder's fixed-policy rung never reaches this.
            _faults.trip("policy.adaptive.raise", EngineFault)
        #: Hardware (double-double) shadow tier enabled: adaptive policy
        #: only, round-to-nearest only (the pair kernels' IEEE tie and
        #: signed-zero behaviour assumes it), and not switched off by
        #: config/``REPRO_HWTIER``.  Reports are byte-identical either
        #: way — the tier only changes which rung certifies a decision.
        self._hw = bool(
            self._escalates
            and resolve_hw_tier(self.config)
            and self.context.rounding == ROUND_NEAREST_EVEN
        )
        self._working_precision = self.context.precision
        if self._hw and _faults.active():
            # Chaos seam: a hardware-tier failure at analysis setup.
            # The ladder's hw-off (working tier) rung never reaches it.
            _faults.trip("policy.hwtier.raise", EngineFault)
        #: Always-on tier-residency counters (serving stats surface
        #: them): operations served by the double-double kernels, and
        #: operations that had to promote their pair arguments to the
        #: BigFloat working tier (kernel bail-out or uncovered op).
        self.hw_kernel_ops = 0
        self.hw_promotions = 0
        #: Per-analysis resource budgets, or None (the common case —
        #: the per-op tick must cost nothing when no budget is set).
        self._guard: Optional[ResourceGuard] = (
            ResourceGuard(self.config.deadline_seconds,
                          self.config.op_budget)
            if self.config.deadline_seconds is not None
            or self.config.op_budget is not None else None
        )
        self.op_records: Dict[int, OpRecord] = {}
        self.spot_records: Dict[int, SpotRecord] = {}
        self._sites: Dict[int, isa.Instr] = {}  # keeps instr ids stable
        self._site_counter = 0
        self.runs = 0
        #: Ident-interning pool (compiled engine); None disables it.
        #: When present, every :attr:`ShadowValue.trace` is an integer
        #: ident into the pool's flat arrays; structured nodes are
        #: materialized lazily.
        self.pool = (
            trace_mod.TracePool(
                levels_depth=self.config.max_expression_depth
            )
            if self.features.trace_pool else None
        )
        self.escalator = ShadowEscalator(
            self.policy, backend=self.backend, pool=self.pool
        )
        #: Site-compiled pipeline enabled (requires the pool and the
        #: fast anti-unification walk, which the fused walk is).
        self._fused = bool(
            self.features.fused_pipeline
            and self.pool is not None
            and self.features.fast_antiunify
        )
        #: Batched lockstep execution enabled (rides on the fused
        #: pipeline: the batch callbacks are its per-lane loops).  A
        #: resource guard forces the sequential path: budgets need
        #: per-op ticks, and the parity invariant makes the downgrade
        #: invisible in the report bytes.
        self._batched = bool(
            self.features.batched and self._fused and self._guard is None
        )
        #: Batch-orchestration introspection (not serialized): uniform
        #: sub-batches executed and lanes covered by them.  Zero when
        #: every point went through the sequential per-point path.
        self.batched_groups = 0
        self.batched_lanes = 0
        #: Per-stage attribution counters (populated under
        #: ``features.profile``), fresh per analysis.
        self.stage_counters = PipelineStageCounters()
        self._profile = self.features.profile
        #: Cached shadow state of interned constant leaves, reusable
        #: across executions because everything in it is
        #: value-determined; entries are (pool epoch, value bits,
        #: shadow) and are refreshed per run with a new ident.
        self._leaf_shadows: Dict[int, tuple] = {}
        #: Kernel-result cache: (op, operand trace idents) -> shadow
        #: real.  Sound because the pool interns entries (same idents
        #: => same shadow reals at the analysis context precision)
        #: *within one execution*; the pool recycles idents every run,
        #: so the per-run clear in :meth:`on_start` is load-bearing — a
        #: stale entry under a recycled ident would alias a different
        #: value.
        self._kernel_cache: Optional[Dict[tuple, BigFloat]] = (
            {} if (self.pool is not None and self.features.kernel_cache)
            else None
        )
        #: Aggregate cache statistics (benchmark attribution).
        self.kernel_cache_hits = 0
        self.kernel_cache_misses = 0

    # ------------------------------------------------------------------
    # Record lookup
    # ------------------------------------------------------------------

    def _op_record(self, instr: isa.Instr, op: str) -> OpRecord:
        key = id(instr)
        record = self.op_records.get(key)
        if record is None:
            self._sites[key] = instr
            self._site_counter += 1
            record = OpRecord(
                site_id=self._site_counter,
                op=op,
                loc=getattr(instr, "loc", None),
                config=self.config,
                fast_antiunify=self.features.fast_antiunify,
            )
            if self._profile:
                # Anti-unify verdicts are counted at the Generalization
                # layer so fused and generic paths report uniformly.
                record.generalization.stats = self.stage_counters
            self.op_records[key] = record
        return record

    def _spot_record(self, instr: isa.Instr, kind: str) -> SpotRecord:
        key = id(instr)
        record = self.spot_records.get(key)
        if record is None:
            self._sites[key] = instr
            self._site_counter += 1
            record = SpotRecord(
                site_id=self._site_counter,
                kind=kind,
                loc=getattr(instr, "loc", None),
            )
            self.spot_records[key] = record
        return record

    # ------------------------------------------------------------------
    # Shadow access (lazy creation, paper Section 6)
    # ------------------------------------------------------------------

    def _leaf_real(self, value: float):
        """The shadow real of a fresh leaf: a hardware pair under the
        hardware tier (finite values only — NaN/inf semantics stay with
        BigFloat), the exact BigFloat otherwise."""
        if self._hw and value - value == 0.0:
            return DoubleDouble(value, 0.0)
        return BigFloat.from_float(value)

    def _promote_shadow(self, shadow: ShadowValue) -> None:
        """Promote a hardware-pair shadow to the BigFloat working tier
        in place (uncovered operation or kernel bail-out).  The pair
        converts exactly; rounding it into the working precision — only
        possible when the pair carries more than ``working_precision``
        bits — charges one ulp of drift."""
        real = shadow.real
        if type(real) is not DoubleDouble:
            return
        exact = real.to_bigfloat()
        rounded = exact.round_to(self._working_precision)
        if not (rounded == exact):
            shadow.drift = shadow.drift + 1.0
        shadow.real = rounded

    def _hw_apply(self, op: str, shadows) -> tuple:
        """Try the double-double kernel for ``op`` over pair shadows.

        Returns ``(result, exact_op)`` on success; on any bail-out —
        uncovered operation, non-pair argument, or a kernel refusing
        its preconditions — promotes every pair argument to the
        working tier and returns ``(None, False)`` so the BigFloat
        kernels take over with consistent argument types.
        """
        kernel = _DD_GENERIC.get(op)
        if kernel is not None and len(shadows) == _DD_ARITY[op]:
            parts = []
            for s in shadows:
                r = s.real
                if type(r) is not DoubleDouble:
                    parts = None
                    break
                parts.append(r.hi)
                parts.append(r.lo)
            if parts is not None:
                dd = kernel(*parts)
                if dd is not None:
                    self.hw_kernel_ops += 1
                    return DoubleDouble(dd[0], dd[1]), dd[2]
        promoted = False
        for s in shadows:
            if type(s.real) is DoubleDouble:
                self._promote_shadow(s)
                promoted = True
        if promoted:
            self.hw_promotions += 1
        return None, False

    def _shadow(self, box: FloatBox) -> ShadowValue:
        shadow = box.shadow
        if shadow is None:
            pool = self.pool
            leaf = (
                pool.opaque_ident(box.value) if pool is not None
                else trace_mod.opaque_leaf(box.value)
            )
            shadow = ShadowValue(
                self._leaf_real(box.value), leaf, EMPTY_INFLUENCES
            )
            box.shadow = shadow
        return shadow

    def _opaque_shadow_value(self, value: float) -> ShadowValue:
        """The unboxed mirror of :meth:`_shadow`'s miss path: an opaque
        leaf for a float that reached the analysis without a shadow
        (batched columns store the shadow next to the value instead of
        on a box, so the lazy fill-in happens in the column)."""
        pool = self.pool
        leaf = (
            pool.opaque_ident(value) if pool is not None
            else trace_mod.opaque_leaf(value)
        )
        return ShadowValue(self._leaf_real(value), leaf, EMPTY_INFLUENCES)

    # ------------------------------------------------------------------
    # Tier-checked views of shadow reals
    # ------------------------------------------------------------------

    def _rounded(self, shadow: ShadowValue) -> float:
        """The correctly rounded double of a shadow real.

        Under an adaptive policy the rounding escalates to the full
        tier when the working value sits within the guarded band of a
        rounding tie; the result is cached on the shadow.
        """
        value = shadow.rounded
        if value is None:
            real = shadow.real
            if self._escalates and \
                    self.policy.rounding_unsafe(real, shadow.drift):
                self.policy.note_escalation("rounding")
                value = self.escalator.certified_rounded(shadow)
                if value is None:
                    value = self.escalator.exact_real(shadow).to_float()
            else:
                value = real.to_float()
            shadow.rounded = value
        return value

    def _comparable(
        self, left: ShadowValue, right: ShadowValue
    ) -> Tuple[BigFloat, BigFloat]:
        """A pair of reals safe to compare (escalated when too close)."""
        if self.policy.comparison_unsafe(
            left.real, left.drift, right.real, right.drift
        ):
            self.policy.note_escalation("comparison")
            return (
                self.escalator.exact_real(left),
                self.escalator.exact_real(right),
            )
        return left.real, right.real

    # ------------------------------------------------------------------
    # Value-producing events
    # ------------------------------------------------------------------

    def on_start(self, interpreter: Interpreter) -> None:
        self.runs += 1
        if self._guard is not None:
            self._guard.check_deadline()
        self.escalator.reset()
        if self.pool is not None:
            # A previous run that aborted (MachineError, user
            # interrupt) never reached on_finish; its pending idents
            # are still valid against the current arrays — materialize
            # them before the reset recycles every ident.
            self._materialize_pending()
            self.pool.begin_execution()
        if self._kernel_cache is not None:
            # Load-bearing: begin_execution() recycled every ident, so
            # an entry surviving this clear could be hit by an
            # unrelated value's recycled ident next run.
            self._kernel_cache.clear()

    def on_batch_start(self, machine, lanes: int) -> None:
        """One uniform sub-batch of ``lanes`` lockstep points begins.

        A sub-batch shares a single pool/escalator epoch: leaf idents
        are value-keyed and memo entries are pure functions of their
        idents, so lanes can only *warm* each other's caches, never
        perturb each other's values.  ``runs`` still counts epochs here;
        the batch driver pins it to the point count afterwards so the
        externally observable run count matches the sequential loop.
        """
        self.runs += 1
        self.escalator.begin_batch(lanes)
        if self.pool is not None:
            # Same pending sweep as on_start: an aborted predecessor's
            # idents are still valid until the reset below.
            self._materialize_pending()
            self.pool.begin_batch(lanes)
        if self._kernel_cache is not None:
            self._kernel_cache.clear()
        self.batched_groups += 1
        self.batched_lanes += lanes

    def on_finish(self, interpreter: Interpreter) -> None:
        """End of one execution: persist the structured view of every
        record's last trace before the pool's idents are recycled.

        The materialization is capped one level past the expression
        depth bound — exactly what :meth:`OpRecord.node_locations`
        can observe — so its cost is bounded by the symbolic
        expressions, not the run's trace DAG.  Aborted runs (an
        exception skips this callback) are swept by the next
        :meth:`on_start` while their idents are still valid; only a
        run aborted and never followed by another leaves its records'
        structured traces at the previous completed run's.
        """
        if self.pool is not None:
            self._materialize_pending()

    def _materialize_pending(self) -> None:
        pool = self.pool
        cap = self.config.max_expression_depth + 1
        for record in self.op_records.values():
            ident = record.pending_trace
            if ident is not None:
                # Always refresh: the steady-state walk verifies
                # operator names, not source locations, and a site fed
                # through different branch arms can carry different
                # locations at the same expression position — the
                # contract is the *most recent* concrete trace, exactly
                # as the reference path keeps it.
                record.last_trace = pool.node_capped(ident, cap)
                record.pending_trace = None

    def on_const(self, instr: isa.Instr, box: FloatBox) -> None:
        pool = self.pool
        if pool is None:
            box.shadow = ShadowValue(
                self._leaf_real(box.value),
                trace_mod.const_leaf(box.value, getattr(instr, "loc", None)),
                EMPTY_INFLUENCES,
            )
            return
        # One dict hit in the warm case: a Const instruction always
        # produces the same value, so its shadow is a pure function of
        # the instruction (loop bodies replay these endlessly).  The
        # entry is epoch-stamped: the pool recycles idents each run, so
        # a stale shadow is re-interned (reusing its value-determined
        # BigFloat state) instead of leaking a dead ident, and the bits
        # in the key keep a recycled instruction id from aliasing a
        # different constant.
        epoch = pool.epoch
        bits = _double_bits(box.value)
        entry = self._leaf_shadows.get(id(instr))
        if entry is not None and entry[0] == epoch and entry[1] == bits:
            box.shadow = entry[2]
            return
        leaf = pool.const_ident(
            box.value, getattr(instr, "loc", None), site=id(instr)
        )
        if entry is not None and entry[1] == bits:
            old = entry[2]
            shadow = ShadowValue(old.real, leaf, EMPTY_INFLUENCES)
            shadow.rounded = old.rounded
            shadow.total_error = old.total_error
        else:
            shadow = ShadowValue(
                self._leaf_real(box.value), leaf, EMPTY_INFLUENCES
            )
        self._leaf_shadows[id(instr)] = (epoch, bits, shadow)
        box.shadow = shadow

    def on_read(self, instr: isa.Read, box: FloatBox, index: int) -> None:
        # Input leaves are per-execution (each Read fires once per run
        # with a fresh value), so unlike constants there is nothing to
        # cache across runs.
        if self.pool is not None:
            leaf = self.pool.input_ident(
                box.value, index, instr.loc, site=id(instr)
            )
        else:
            leaf = trace_mod.input_leaf(box.value, index, instr.loc)
        box.shadow = ShadowValue(
            self._leaf_real(box.value), leaf, EMPTY_INFLUENCES
        )

    def on_int_to_float(self, instr: isa.IntToFloat, value: int, box: FloatBox) -> None:
        # Integers are exact; the trace sees a constant of that value.
        exact = BigFloat.from_int(value)
        if self.pool is not None:
            leaf = self.pool.int_ident(
                box.value, value, instr.loc, site=id(instr)
            )
        else:
            leaf = trace_mod.const_leaf(box.value, instr.loc)
        real = exact
        drift = EXACT
        if self.policy.escalates:
            # Integers wider than the working tier are rounded into it;
            # the escalator keeps the exact integer for the leaf, which
            # the float leaf value cannot always represent.
            real = exact.round_to(self.policy.context.precision)
            if not (real == exact):
                drift = 1.0
            if not (exact == BigFloat.from_float(box.value)):
                self.escalator.register_leaf(leaf, exact)
            elif self._hw and box.value - box.value == 0.0:
                # The double carries the integer exactly, so the
                # hardware pair is the exact value (no leaf override).
                real = DoubleDouble(box.value, 0.0)
                drift = EXACT
        box.shadow = ShadowValue(real, leaf, EMPTY_INFLUENCES, drift)

    def on_op(
        self, instr: isa.Instr, op: str, args: Sequence[FloatBox], result: FloatBox
    ) -> Optional[float]:
        self._analyse_operation(instr, op, args, result)
        return None

    def on_library(
        self, instr: isa.Call, name: str, args: Sequence[FloatBox], result: FloatBox
    ) -> Optional[float]:
        # Wrapped library call: analysed as one atomic operation, so the
        # trace records `tan`, not tan's instruction stream (Section 5.3).
        self._analyse_operation(instr, name, args, result)
        return None

    def on_bitop(self, instr: isa.FloatBitOp, box: FloatBox, result: FloatBox) -> None:
        # Recognize compiler bit tricks (Section 5.3): sign-flip XOR is
        # negation, sign-clear AND is fabs.  Anything else is opaque.
        if instr.op == "xor" and instr.mask == isa.SIGN_BIT_MASK:
            self._analyse_operation(instr, "neg", [box], result)
            return
        if instr.op == "and" and instr.mask == isa.ABS_MASK:
            self._analyse_operation(instr, "fabs", [box], result)
            return
        shadow = self._shadow(box)
        pool = self.pool
        leaf = (
            pool.opaque_ident(result.value, instr.loc) if pool is not None
            else trace_mod.opaque_leaf(result.value, instr.loc)
        )
        result.shadow = ShadowValue(
            self._leaf_real(result.value), leaf, shadow.influences,
        )

    # ------------------------------------------------------------------
    # The core per-operation analysis
    # ------------------------------------------------------------------

    def _analyse_operation(
        self, instr: isa.Instr, op: str, args: Sequence[FloatBox], result: FloatBox
    ) -> None:
        if self._guard is not None:
            self._guard.tick()
        config = self.config
        pool = self.pool
        profile = self._profile
        if profile:
            self.stage_counters.generic_ops += 1
        # `box.shadow or ...` inlines the warm case of _shadow: every
        # argument of every traced operation passes through here.
        shadows = [a.shadow or self._shadow(a) for a in args]
        real_result = None
        exact_op = False
        if self._hw:
            # Hardware-tier fast path; bail-outs promote the pair
            # arguments in place, so the BigFloat code below always
            # sees uniform argument types.
            real_result, exact_op = self._hw_apply(op, shadows)
        real_args = [s.real for s in shadows]
        cache = self._kernel_cache
        if real_result is not None:
            pass
        elif cache is not None and op in KERNEL_CACHE_OPERATIONS:
            # Transcendental kernels are memoized per (op, operand
            # idents): the pool interns traces, so identical idents
            # imply identical shadow reals, and a loop-invariant
            # log/pow/trig shadow is computed once per execution.
            cache_key = (op,) + tuple(s.trace for s in shadows)
            real_result = cache.get(cache_key)
            if real_result is None:
                real_result = self._apply(op, real_args, self.context)
                cache[cache_key] = real_result
                self.kernel_cache_misses += 1
            else:
                self.kernel_cache_hits += 1
        else:
            try:
                real_result = self._apply(op, real_args, self.context)
            except KeyError:
                # Operation outside the real engine: treat the result as
                # an opaque float source.
                leaf = (
                    pool.opaque_ident(
                        result.value, getattr(instr, "loc", None)
                    )
                    if pool is not None
                    else trace_mod.opaque_leaf(
                        result.value, getattr(instr, "loc", None)
                    )
                )
                result.shadow = ShadowValue(
                    self._leaf_real(result.value),
                    leaf,
                    frozenset().union(*[s.influences for s in shadows])
                    if shadows else EMPTY_INFLUENCES,
                )
                return
        if profile:
            self.stage_counters.kernel_evals += 1
            if self._hw:
                if type(real_result) is DoubleDouble:
                    self.stage_counters.hw_tier_ops += 1
                else:
                    self.stage_counters.working_tier_ops += 1
        record = self._op_record(instr, op)
        if pool is not None:
            node = pool.op_ident(
                op,
                tuple(s.trace for s in shadows),
                result.value,
                instr.loc,
                site=id(instr),
            )
        else:
            node = trace_mod.op_node(
                op,
                tuple(s.trace for s in shadows),
                result.value,
                instr.loc,
            )
        if profile:
            self.stage_counters.trace_interned += 1
        if not self._escalates:
            drift = EXACT
        elif (
            op == "-"
            and len(shadows) == 2
            and (
                shadows[0].trace == shadows[1].trace if pool is not None
                else shadows[0].trace is shadows[1].trace
            )
        ):
            # x - x over the *same* shadowed value is exactly zero at
            # every tier; without this the working tier must treat the
            # cancelled zero as untrusted.
            drift = EXACT
        elif type(real_result) is DoubleDouble:
            drift = self.policy.propagate_hw(
                op, real_args, [s.drift for s in shadows], real_result,
                exact_op,
            )
        else:
            drift = self.policy.propagate(
                op, real_args, [s.drift for s in shadows], real_result
            )
        result_shadow = ShadowValue(real_result, node, EMPTY_INFLUENCES, drift)
        # Inline the cache-hit branch of _rounded: this comprehension
        # runs for every argument of every traced operation, and the
        # attribute read saves a method call in the common warm case.
        rounded_args = [
            s.rounded if s.rounded is not None else self._rounded(s)
            for s in shadows
        ]
        error_bits = rounded_local_error(
            op, rounded_args, self._rounded(result_shadow)
        )
        if profile:
            if error_bits == 0.0:
                self.stage_counters.error_fast += 1
            else:
                self.stage_counters.error_exact += 1
        # record.record_execution(error_bits), inlined for the hot path.
        record.executions += 1
        record.sum_local_error += error_bits
        if error_bits > record.max_local_error:
            record.max_local_error = error_bits
        is_candidate = error_bits > config.local_error_threshold

        # --- Influence propagation, with compensation detection -------
        passthrough = None
        if config.detect_compensation and op in ("+", "-") and len(shadows) == 2:
            if profile:
                self.stage_counters.compensation_checks += 1
            passthrough = self._compensation_passthrough(
                op, shadows, result_shadow, [a.value for a in args],
                result.value,
            )
        if passthrough is not None:
            record.compensations_detected += 1
            influences = shadows[passthrough].influences
        else:
            influences = EMPTY_INFLUENCES
            for shadow in shadows:
                if shadow.influences:
                    influences = influences | shadow.influences
            if is_candidate and config.track_influences:
                influences = influences | {record}

        # --- Symbolic expression + input characteristics ---------------
        if pool is not None:
            __, bindings = record.generalization.update_with_bindings_pooled(
                pool, node
            )
            record.pending_trace = node
        else:
            __, bindings = record.generalization.update_with_bindings(node)
            record.last_trace = node
        if profile:
            self.stage_counters.characteristic_updates += len(bindings)
        for variable, value in bindings.items():
            record.total_inputs.record(variable, value)
        if is_candidate and passthrough is None:
            for variable, value in bindings.items():
                record.problematic_inputs.record(variable, value)
            if record.example_problematic is None and bindings:
                record.example_problematic = dict(bindings)
            record.candidate_executions += 1

        result_shadow.influences = influences
        result.shadow = result_shadow

    # ------------------------------------------------------------------
    # The site-compiled fused pipeline (the compiled engine's per-op
    # hot path): one closure per (site, config), built at program
    # compile time, updating flat per-site state in a single pass.
    # ------------------------------------------------------------------

    def fused_site_callback(self, instr: isa.Instr, op: str, arity: int,
                            single: bool = False):
        """A per-site fused analysis callback, or None for the generic path.

        The compiled engine calls this once per instruction at compile
        time; the returned closure replaces the ``on_op``/``on_library``
        dispatch for that site.  The closure mirrors
        :meth:`_analyse_operation` decision-for-decision — the
        engine-parity suite enforces byte-identical reports — with the
        per-op costs paid once per site instead: the ⟦f⟧_R kernel and
        ⟦f⟧_F handler are pre-resolved, the record and its tables are
        bound after their lazy creation, policy flags are constants,
        and traces stay integer idents end to end.
        """
        if not self._fused or arity not in (1, 2):
            return None
        try:
            kernel = self.backend.handler(op)
        except KeyError:
            return None  # unknown to ⟦f⟧_R: the generic opaque path
        fn_double = DOUBLE_HANDLERS.get(op)
        if fn_double is None:
            return None
        # Raw positional kernel (no argument tuple, no wrapper frame)
        # when the substrate serves this op through the stock python
        # dispatch; otherwise the wrapped handler.
        kernel2 = self.backend.positional_handler(op, arity)
        if arity == 2:
            callback = self._build_fused_binary(
                instr, op, kernel, kernel2, fn_double, single
            )
        else:
            callback = self._build_fused_unary(
                instr, op, kernel, kernel2, fn_double, single
            )
        guard = self._guard
        if guard is not None and callback is not None:
            # Budgeted analyses wrap each fused closure with the guard
            # tick at compile time; unguarded analyses (the common
            # case) keep the raw closure — zero added cost per op.
            tick = guard.tick
            inner = callback
            if arity == 2:
                def callback(a, b, result):  # noqa: F811 — guarded shim
                    tick()
                    return inner(a, b, result)
            else:
                def callback(a, result):  # noqa: F811 — guarded shim
                    tick()
                    return inner(a, result)
        return callback

    def _build_fused_binary(self, instr, op, kernel, kernel2,
                            fn_double, single):
        config = self.config
        pool = self.pool
        site = id(instr)
        loc = getattr(instr, "loc", None)
        context = self.context
        escalates = self._escalates
        policy = self.policy
        cache = (
            self._kernel_cache
            if self._kernel_cache is not None
            and op in KERNEL_CACHE_OPERATIONS else None
        )
        compensating = config.detect_compensation and op in ("+", "-")
        is_sub = op == "-"
        threshold = config.local_error_threshold
        track = config.track_influences
        counters = self.stage_counters if self._profile else None
        hw = self._hw
        dd_kernel = DD_KERNELS.get(op) if hw else None
        propagate_hw = policy.propagate_hw if hw else None
        promote = self._promote_shadow
        DD = DoubleDouble
        # ⟦f⟧_F on rounded shadow args equals the machine's own result
        # when the rounded args are bit-identical to the machine args —
        # valid only when the site isn't single-rounded and the machine
        # executed the very same handler.
        shortcut = (
            not single
            and self.backend.double_handlers.get(op) is fn_double
        )
        # Warm-path inlining of the pool's interning probe: the table
        # object survives begin_execution (clear(), not reassignment).
        ops_table = pool._ops_table
        new_op = pool.new_op
        raw = kernel2 is not None
        empty = EMPTY_INFLUENCES
        shadow_of = self._shadow
        rounded_of = self._rounded
        new_shadow = ShadowValue
        err_of = bits_of_error_fast
        record = None
        fast_walk = None
        bail_walk = None
        total_record = None
        prob_record = None

        def run(a, b, result):
            nonlocal record, fast_walk, bail_walk, total_record, prob_record
            sa = a.shadow
            if sa is None:
                sa = shadow_of(a)
            sb = b.shadow
            if sb is None:
                sb = shadow_of(b)
            ta = sa.trace
            tb = sb.trace
            # --- kernel stage -----------------------------------------
            real = None
            exact_op = False
            if hw:
                xa = sa.real
                xb = sb.real
                if type(xa) is DD and type(xb) is DD:
                    if dd_kernel is not None:
                        dd = dd_kernel(xa.hi, xa.lo, xb.hi, xb.lo)
                        if dd is not None:
                            real = DD(dd[0], dd[1])
                            exact_op = dd[2]
                            self.hw_kernel_ops += 1
                    if real is None:
                        promote(sa)
                        promote(sb)
                        self.hw_promotions += 1
                elif type(xa) is DD or type(xb) is DD:
                    promote(sa)
                    promote(sb)
                    self.hw_promotions += 1
            if real is not None:
                pass
            elif cache is not None:
                key = (op, ta, tb)
                real = cache.get(key)
                if real is None:
                    real = (
                        kernel2(sa.real, sb.real, context) if raw
                        else kernel((sa.real, sb.real), context)
                    )
                    cache[key] = real
                    self.kernel_cache_misses += 1
                else:
                    self.kernel_cache_hits += 1
            elif raw:
                real = kernel2(sa.real, sb.real, context)
            else:
                real = kernel((sa.real, sb.real), context)
            if record is None:
                record = self._op_record(instr, op)
                generalization = record.generalization
                fast_walk = generalization._fast_update_pooled
                bail_walk = generalization.bail_update_pooled
                total_record = record.total_inputs.record_many
                prob_record = record.problematic_inputs.record_many
            # --- trace stage ------------------------------------------
            value = result.value
            node_key = (site, ta, tb)
            node = ops_table.get(node_key)
            if node is None:
                node = new_op(node_key, op, (ta, tb), value, loc)
            if not escalates:
                drift = EXACT
            elif is_sub and ta == tb:
                # x - x over the same shadowed value is exactly zero at
                # every tier (see _analyse_operation).
                drift = EXACT
            elif type(real) is DD:
                drift = propagate_hw(
                    op, (sa.real, sb.real), (sa.drift, sb.drift), real,
                    exact_op,
                )
            else:
                drift = policy.propagate(
                    op, [sa.real, sb.real], [sa.drift, sb.drift], real
                )
            shadow = new_shadow(real, node, empty, drift)
            # --- error stage ------------------------------------------
            ra = sa.rounded
            if ra is None:
                ra = rounded_of(sa)
            rb = sb.rounded
            if rb is None:
                rb = rounded_of(sb)
            if escalates:
                exact_rounded = rounded_of(shadow)
            else:
                exact_rounded = real.to_float()
                shadow.rounded = exact_rounded
            if shortcut and ra == a.value and rb == b.value \
                    and ra != 0.0 and rb != 0.0:
                float_result = value
            else:
                float_result = fn_double(ra, rb)
            if float_result == exact_rounded:
                error_bits = 0.0
            else:
                error_bits = err_of(float_result, exact_rounded)
            record.executions += 1
            record.sum_local_error += error_bits
            if error_bits > record.max_local_error:
                record.max_local_error = error_bits
            is_candidate = error_bits > threshold
            # --- influence stage --------------------------------------
            passthrough = None
            if compensating:
                if escalates:
                    passthrough = self._compensation_passthrough(
                        op, (sa, sb), shadow, (a.value, b.value), value
                    )
                elif real.is_finite():
                    # The fixed-policy compensation test, inlined: the
                    # error measurements are cached on the shadows and
                    # condition (b) — the output must have *less* error
                    # than the passed-through argument — almost always
                    # fails with both argument errors at zero, in which
                    # case the output error is never even computed
                    # (out ≥ 0 = arg both ways; pure reordering).
                    ea = sa.total_error
                    if ea is None:
                        ea = sa.total_error = (
                            0.0 if a.value == ra else err_of(a.value, ra)
                        )
                    eb = sb.total_error
                    if eb is None:
                        eb = sb.total_error = (
                            0.0 if b.value == rb else err_of(b.value, rb)
                        )
                    if ea > 0.0 or eb > 0.0:
                        out_error = shadow.total_error
                        if out_error is None:
                            out_error = shadow.total_error = (
                                0.0 if value == exact_rounded
                                else err_of(value, exact_rounded)
                            )
                        if out_error < ea:
                            candidate = sa.real
                            if candidate.is_finite() and candidate == real:
                                passthrough = 0
                        if passthrough is None and out_error < eb:
                            candidate = sb.real
                            if is_sub:
                                candidate = candidate.neg()
                            if candidate.is_finite() and candidate == real:
                                passthrough = 1
            if passthrough is not None:
                record.compensations_detected += 1
                influences = (sa if passthrough == 0 else sb).influences
            else:
                ia = sa.influences
                ib = sb.influences
                if ia:
                    influences = (ia | ib) if ib else ia
                elif ib:
                    influences = ib
                else:
                    influences = empty
                if is_candidate and track:
                    influences = influences | {record}
            # --- expression + characteristics stage -------------------
            generalization = record.generalization
            if generalization.expression is not None:
                bindings = fast_walk(pool, node)
            else:
                bindings = None
            if bindings is None:
                __, bindings = bail_walk(pool, node)
            record.pending_trace = node
            total_record(bindings)
            if is_candidate and passthrough is None:
                prob_record(bindings)
                if record.example_problematic is None and bindings:
                    record.example_problematic = dict(bindings)
                record.candidate_executions += 1
            if counters is not None:
                counters.fused_ops += 1
                counters.kernel_evals += 1
                counters.trace_interned += 1
                if error_bits == 0.0:
                    counters.error_fast += 1
                else:
                    counters.error_exact += 1
                if compensating:
                    counters.compensation_checks += 1
                counters.characteristic_updates += len(bindings)
                if hw:
                    if type(real) is DD:
                        counters.hw_tier_ops += 1
                    else:
                        counters.working_tier_ops += 1
            shadow.influences = influences
            result.shadow = shadow
        return run

    def _build_fused_unary(self, instr, op, kernel, kernel2,
                           fn_double, single):
        config = self.config
        pool = self.pool
        site = id(instr)
        loc = getattr(instr, "loc", None)
        context = self.context
        escalates = self._escalates
        policy = self.policy
        cache = (
            self._kernel_cache
            if self._kernel_cache is not None
            and op in KERNEL_CACHE_OPERATIONS else None
        )
        threshold = config.local_error_threshold
        track = config.track_influences
        counters = self.stage_counters if self._profile else None
        hw = self._hw
        dd_kernel = _DD_UNARY.get(op) if hw else None
        propagate_hw = policy.propagate_hw if hw else None
        promote = self._promote_shadow
        DD = DoubleDouble
        shortcut = (
            not single
            and self.backend.double_handlers.get(op) is fn_double
        )
        ops_table = pool._ops_table
        new_op = pool.new_op
        raw = kernel2 is not None
        empty = EMPTY_INFLUENCES
        shadow_of = self._shadow
        rounded_of = self._rounded
        new_shadow = ShadowValue
        err_of = bits_of_error_fast
        record = None
        fast_walk = None
        bail_walk = None
        total_record = None
        prob_record = None

        def run(a, result):
            nonlocal record, fast_walk, bail_walk, total_record, prob_record
            sa = a.shadow
            if sa is None:
                sa = shadow_of(a)
            ta = sa.trace
            # --- kernel stage -----------------------------------------
            real = None
            exact_op = False
            if hw:
                xa = sa.real
                if type(xa) is DD:
                    if dd_kernel is not None:
                        dd = dd_kernel(xa.hi, xa.lo)
                        if dd is not None:
                            real = DD(dd[0], dd[1])
                            exact_op = dd[2]
                            self.hw_kernel_ops += 1
                    if real is None:
                        promote(sa)
                        self.hw_promotions += 1
            if real is not None:
                pass
            elif cache is not None:
                key = (op, ta)
                real = cache.get(key)
                if real is None:
                    real = (
                        kernel2(sa.real, context) if raw
                        else kernel((sa.real,), context)
                    )
                    cache[key] = real
                    self.kernel_cache_misses += 1
                else:
                    self.kernel_cache_hits += 1
            elif raw:
                real = kernel2(sa.real, context)
            else:
                real = kernel((sa.real,), context)
            if record is None:
                record = self._op_record(instr, op)
                generalization = record.generalization
                fast_walk = generalization._fast_update_pooled
                bail_walk = generalization.bail_update_pooled
                total_record = record.total_inputs.record_many
                prob_record = record.problematic_inputs.record_many
            # --- trace stage ------------------------------------------
            value = result.value
            node_key = (site, ta)
            node = ops_table.get(node_key)
            if node is None:
                node = new_op(node_key, op, (ta,), value, loc)
            if not escalates:
                drift = EXACT
            elif type(real) is DD:
                drift = propagate_hw(
                    op, (sa.real,), (sa.drift,), real, exact_op
                )
            else:
                drift = policy.propagate(
                    op, [sa.real], [sa.drift], real
                )
            shadow = new_shadow(real, node, empty, drift)
            # --- error stage ------------------------------------------
            ra = sa.rounded
            if ra is None:
                ra = rounded_of(sa)
            if escalates:
                exact_rounded = rounded_of(shadow)
            else:
                exact_rounded = real.to_float()
                shadow.rounded = exact_rounded
            if shortcut and ra == a.value and ra != 0.0:
                float_result = value
            else:
                float_result = fn_double(ra)
            if float_result == exact_rounded:
                error_bits = 0.0
            else:
                error_bits = err_of(float_result, exact_rounded)
            record.executions += 1
            record.sum_local_error += error_bits
            if error_bits > record.max_local_error:
                record.max_local_error = error_bits
            is_candidate = error_bits > threshold
            # --- influence stage --------------------------------------
            influences = sa.influences
            if is_candidate and track:
                influences = influences | {record}
            # --- expression + characteristics stage -------------------
            generalization = record.generalization
            if generalization.expression is not None:
                bindings = fast_walk(pool, node)
            else:
                bindings = None
            if bindings is None:
                __, bindings = bail_walk(pool, node)
            record.pending_trace = node
            total_record(bindings)
            if is_candidate:
                prob_record(bindings)
                if record.example_problematic is None and bindings:
                    record.example_problematic = dict(bindings)
                record.candidate_executions += 1
            if counters is not None:
                counters.fused_ops += 1
                counters.kernel_evals += 1
                counters.trace_interned += 1
                if error_bits == 0.0:
                    counters.error_fast += 1
                else:
                    counters.error_exact += 1
                counters.characteristic_updates += len(bindings)
                if hw:
                    if type(real) is DD:
                        counters.hw_tier_ops += 1
                    else:
                        counters.working_tier_ops += 1
            shadow.influences = influences
            result.shadow = shadow
        return run

    def fused_const_callback(self, instr: isa.Instr):
        """A per-site constant-shadow callback (see ``on_const``).

        The closure keeps the interned ident and value-determined
        shadow state in its own cells — refreshed per pool epoch — so
        the warm per-iteration path is two compares and an attribute
        store.
        """
        if not self._fused:
            return None
        pool = self.pool
        site = id(instr)
        loc = getattr(instr, "loc", None)
        const_ident = pool.const_ident
        empty = EMPTY_INFLUENCES
        cached_epoch = -1
        cached_bits = None
        cached_value = None
        cached_shadow = None

        def run(box):
            nonlocal cached_epoch, cached_bits, cached_value, cached_shadow
            value = box.value
            if cached_epoch == pool.epoch and value == cached_value \
                    and value != 0.0:
                # Value equality is bit equality away from ±0.0 and NaN
                # (NaN fails the compare and rebuilds below).
                box.shadow = cached_shadow
                return
            bits = _double_bits(value)
            if cached_epoch == pool.epoch and bits == cached_bits:
                box.shadow = cached_shadow
                return
            leaf = const_ident(value, loc, site)
            if bits == cached_bits:
                old = cached_shadow
                shadow = ShadowValue(old.real, leaf, empty)
                shadow.rounded = old.rounded
                shadow.total_error = old.total_error
            else:
                shadow = ShadowValue(
                    self._leaf_real(value), leaf, empty
                )
            cached_epoch = pool.epoch
            cached_bits = bits
            cached_value = value
            cached_shadow = shadow
            box.shadow = shadow
        return run

    def fused_branch_callback(self, instr: isa.Branch):
        """A per-site branch-spot callback (see ``on_branch``)."""
        if not self._fused:
            return None
        try:
            nan_result = instr.pred == "ne"
            comparer = _BIG_PREDICATES[instr.pred]
        except KeyError:
            return None  # unknown predicate: generic path reports it
        escalates = self._escalates
        track = self.config.track_influences
        shadow_of = self._shadow
        record = None

        def run(lhs, rhs, taken):
            nonlocal record
            left = lhs.shadow
            if left is None:
                left = shadow_of(lhs)
            right = rhs.shadow
            if right is None:
                right = shadow_of(rhs)
            if record is None:
                record = self._spot_record(instr, SPOT_BRANCH)
            if escalates:
                left_real, right_real = self._comparable(left, right)
            else:
                left_real = left.real
                right_real = right.real
            if left_real.is_nan() or right_real.is_nan():
                real_taken = nan_result
            else:
                real_taken = comparer(left_real, right_real)
            # record.record(...), inlined (per-iteration hot path).
            record.executions += 1
            if real_taken != taken:
                record.sum_error += 1.0
                if record.max_error < 1.0:
                    record.max_error = 1.0
                record.erroneous += 1
                if track:
                    record.influences |= left.influences | right.influences
        return run

    # ------------------------------------------------------------------
    # Batched column callbacks (the batched engine's per-site hot path):
    # the fused pipeline's per-lane loops, amortizing the per-site setup
    # — record lookup, kernel resolution, policy flags, table probes —
    # across every lane of a uniform sub-batch.  Lanes are processed in
    # ascending order inside every closure; combined with the engine's
    # revisit-free instruction gate this makes the per-record event
    # order identical to the sequential loop, which is what keeps the
    # batched reports byte-identical.
    # ------------------------------------------------------------------

    def batch_site_callback(self, instr: isa.Instr, op: str, arity: int,
                            single: bool, machine_fn):
        """A per-site batch analysis callback, or None for the per-lane
        path (see :meth:`Tracer.batch_site_callback`).

        Unlike the fused sequential callbacks, the batch closures also
        compute the *machine* result per lane (through ``machine_fn``,
        the engine's ⟦f⟧_F handler for this site) so the engine never
        boxes a float on the batched hot path.
        """
        if not self._batched or arity not in (1, 2) or machine_fn is None:
            return None
        try:
            kernel = self.backend.handler(op)
        except KeyError:
            return None  # unknown to ⟦f⟧_R: the per-lane opaque path
        fn_double = DOUBLE_HANDLERS.get(op)
        if fn_double is None:
            return None
        kernel2 = self.backend.positional_handler(op, arity)
        if arity == 2:
            return self._build_batch_binary(
                instr, op, kernel, kernel2, fn_double, single, machine_fn
            )
        return self._build_batch_unary(
            instr, op, kernel, kernel2, fn_double, single, machine_fn
        )

    def _build_batch_binary(self, instr, op, kernel, kernel2,
                            fn_double, single, machine_fn):
        config = self.config
        pool = self.pool
        site = id(instr)
        loc = getattr(instr, "loc", None)
        context = self.context
        escalates = self._escalates
        policy = self.policy
        cache = (
            self._kernel_cache
            if self._kernel_cache is not None
            and op in KERNEL_CACHE_OPERATIONS else None
        )
        compensating = config.detect_compensation and op in ("+", "-")
        is_sub = op == "-"
        threshold = config.local_error_threshold
        track = config.track_influences
        counters = self.stage_counters if self._profile else None
        hw = self._hw
        dd_kernel = DD_KERNELS.get(op) if hw else None
        propagate_hw = policy.propagate_hw if hw else None
        promote = self._promote_shadow
        DD = DoubleDouble
        shortcut = (
            not single
            and self.backend.double_handlers.get(op) is fn_double
        )
        vec_machine = (
            not single and machine_fn is fn_double
            and lanes.HAVE_NUMPY and op in lanes.MACHINE_BINARY_OPS
        )
        vec_dd = hw and lanes.HAVE_NUMPY and op in lanes.DD_BINARY_OPS
        ops_table = pool._ops_table
        new_op = pool.new_op
        raw = kernel2 is not None
        empty = EMPTY_INFLUENCES
        opaque_of = self._opaque_shadow_value
        rounded_of = self._rounded
        new_shadow = ShadowValue
        err_of = bits_of_error_fast
        narrow = to_single
        record = None
        fast_walk = None
        bail_walk = None
        total_record = None
        prob_record = None

        def run(avals, ashads, bvals, bshads):
            nonlocal record, fast_walk, bail_walk, total_record, prob_record
            if record is None:
                record = self._op_record(instr, op)
                generalization = record.generalization
                fast_walk = generalization._fast_update_pooled
                bail_walk = generalization.bail_update_pooled
                total_record = record.total_inputs.record_many
                prob_record = record.problematic_inputs.record_many
            n = len(avals)
            rvals = [0.0] * n
            rshads = [None] * n
            # Vectorized pre-passes over the whole column (see
            # repro.machine.lanes): per-lane consumption below is
            # bit-identical either way, so these are pure speed.
            mcol = (
                lanes.machine_binary(op, avals, bvals, machine_fn)
                if vec_machine else None
            )
            vec_ok = None
            if vec_dd:
                dd_cols = lanes.dd_binary_columns(
                    op, avals, ashads, bvals, bshads
                )
                if dd_cols is not None:
                    vec_hi, vec_lo, vec_exact, vec_ok = dd_cols
            for i in range(n):
                av = avals[i]
                bv = bvals[i]
                sa = ashads[i]
                if sa is None:
                    # Lazy opaque fill-in, written back into the column
                    # so later consumers share it (the unboxed mirror
                    # of the box-shadow sharing in the sequential path).
                    sa = ashads[i] = opaque_of(av)
                sb = bshads[i]
                if sb is None:
                    sb = bshads[i] = opaque_of(bv)
                if mcol is not None:
                    value = mcol[i]
                else:
                    value = machine_fn(av, bv)
                    if single:
                        value = narrow(value)
                rvals[i] = value
                ta = sa.trace
                tb = sb.trace
                # --- kernel stage -------------------------------------
                real = None
                exact_op = False
                if vec_ok is not None and vec_ok[i]:
                    real = DD(vec_hi[i], vec_lo[i])
                    exact_op = vec_exact[i]
                    self.hw_kernel_ops += 1
                elif hw:
                    xa = sa.real
                    xb = sb.real
                    if type(xa) is DD and type(xb) is DD:
                        if dd_kernel is not None:
                            dd = dd_kernel(xa.hi, xa.lo, xb.hi, xb.lo)
                            if dd is not None:
                                real = DD(dd[0], dd[1])
                                exact_op = dd[2]
                                self.hw_kernel_ops += 1
                        if real is None:
                            promote(sa)
                            promote(sb)
                            self.hw_promotions += 1
                    elif type(xa) is DD or type(xb) is DD:
                        promote(sa)
                        promote(sb)
                        self.hw_promotions += 1
                if real is not None:
                    pass
                elif cache is not None:
                    key = (op, ta, tb)
                    real = cache.get(key)
                    if real is None:
                        real = (
                            kernel2(sa.real, sb.real, context) if raw
                            else kernel((sa.real, sb.real), context)
                        )
                        cache[key] = real
                        self.kernel_cache_misses += 1
                    else:
                        self.kernel_cache_hits += 1
                elif raw:
                    real = kernel2(sa.real, sb.real, context)
                else:
                    real = kernel((sa.real, sb.real), context)
                # --- trace stage --------------------------------------
                node_key = (site, ta, tb)
                node = ops_table.get(node_key)
                if node is None:
                    node = new_op(node_key, op, (ta, tb), value, loc)
                if not escalates:
                    drift = EXACT
                elif is_sub and ta == tb:
                    drift = EXACT
                elif type(real) is DD:
                    drift = propagate_hw(
                        op, (sa.real, sb.real), (sa.drift, sb.drift),
                        real, exact_op,
                    )
                else:
                    drift = policy.propagate(
                        op, [sa.real, sb.real], [sa.drift, sb.drift], real
                    )
                shadow = new_shadow(real, node, empty, drift)
                # --- error stage --------------------------------------
                ra = sa.rounded
                if ra is None:
                    ra = rounded_of(sa)
                rb = sb.rounded
                if rb is None:
                    rb = rounded_of(sb)
                if escalates:
                    exact_rounded = rounded_of(shadow)
                else:
                    exact_rounded = real.to_float()
                    shadow.rounded = exact_rounded
                if shortcut and ra == av and rb == bv \
                        and ra != 0.0 and rb != 0.0:
                    float_result = value
                else:
                    float_result = fn_double(ra, rb)
                if float_result == exact_rounded:
                    error_bits = 0.0
                else:
                    error_bits = err_of(float_result, exact_rounded)
                record.executions += 1
                record.sum_local_error += error_bits
                if error_bits > record.max_local_error:
                    record.max_local_error = error_bits
                is_candidate = error_bits > threshold
                # --- influence stage ----------------------------------
                passthrough = None
                if compensating:
                    if escalates:
                        passthrough = self._compensation_passthrough(
                            op, (sa, sb), shadow, (av, bv), value
                        )
                    elif real.is_finite():
                        ea = sa.total_error
                        if ea is None:
                            ea = sa.total_error = (
                                0.0 if av == ra else err_of(av, ra)
                            )
                        eb = sb.total_error
                        if eb is None:
                            eb = sb.total_error = (
                                0.0 if bv == rb else err_of(bv, rb)
                            )
                        if ea > 0.0 or eb > 0.0:
                            out_error = shadow.total_error
                            if out_error is None:
                                out_error = shadow.total_error = (
                                    0.0 if value == exact_rounded
                                    else err_of(value, exact_rounded)
                                )
                            if out_error < ea:
                                candidate = sa.real
                                if candidate.is_finite() \
                                        and candidate == real:
                                    passthrough = 0
                            if passthrough is None and out_error < eb:
                                candidate = sb.real
                                if is_sub:
                                    candidate = candidate.neg()
                                if candidate.is_finite() \
                                        and candidate == real:
                                    passthrough = 1
                if passthrough is not None:
                    record.compensations_detected += 1
                    influences = (sa if passthrough == 0 else sb).influences
                else:
                    ia = sa.influences
                    ib = sb.influences
                    if ia:
                        influences = (ia | ib) if ib else ia
                    elif ib:
                        influences = ib
                    else:
                        influences = empty
                    if is_candidate and track:
                        influences = influences | {record}
                # --- expression + characteristics stage ---------------
                generalization = record.generalization
                if generalization.expression is not None:
                    bindings = fast_walk(pool, node)
                else:
                    bindings = None
                if bindings is None:
                    __, bindings = bail_walk(pool, node)
                record.pending_trace = node
                total_record(bindings)
                if is_candidate and passthrough is None:
                    prob_record(bindings)
                    if record.example_problematic is None and bindings:
                        record.example_problematic = dict(bindings)
                    record.candidate_executions += 1
                if counters is not None:
                    counters.fused_ops += 1
                    counters.kernel_evals += 1
                    counters.trace_interned += 1
                    if error_bits == 0.0:
                        counters.error_fast += 1
                    else:
                        counters.error_exact += 1
                    if compensating:
                        counters.compensation_checks += 1
                    counters.characteristic_updates += len(bindings)
                    if hw:
                        if type(real) is DD:
                            counters.hw_tier_ops += 1
                        else:
                            counters.working_tier_ops += 1
                shadow.influences = influences
                rshads[i] = shadow
            return rvals, rshads
        return run

    def _build_batch_unary(self, instr, op, kernel, kernel2,
                           fn_double, single, machine_fn):
        config = self.config
        pool = self.pool
        site = id(instr)
        loc = getattr(instr, "loc", None)
        context = self.context
        escalates = self._escalates
        policy = self.policy
        cache = (
            self._kernel_cache
            if self._kernel_cache is not None
            and op in KERNEL_CACHE_OPERATIONS else None
        )
        threshold = config.local_error_threshold
        track = config.track_influences
        counters = self.stage_counters if self._profile else None
        hw = self._hw
        dd_kernel = _DD_UNARY.get(op) if hw else None
        propagate_hw = policy.propagate_hw if hw else None
        promote = self._promote_shadow
        DD = DoubleDouble
        shortcut = (
            not single
            and self.backend.double_handlers.get(op) is fn_double
        )
        ops_table = pool._ops_table
        new_op = pool.new_op
        raw = kernel2 is not None
        empty = EMPTY_INFLUENCES
        opaque_of = self._opaque_shadow_value
        rounded_of = self._rounded
        new_shadow = ShadowValue
        err_of = bits_of_error_fast
        narrow = to_single
        record = None
        fast_walk = None
        bail_walk = None
        total_record = None
        prob_record = None

        vec_machine = (
            not single and machine_fn is fn_double
            and lanes.HAVE_NUMPY and op in lanes.MACHINE_UNARY_OPS
        )
        vec_dd = hw and lanes.HAVE_NUMPY and op in lanes.DD_UNARY_OPS

        def run(avals, ashads):
            nonlocal record, fast_walk, bail_walk, total_record, prob_record
            if record is None:
                record = self._op_record(instr, op)
                generalization = record.generalization
                fast_walk = generalization._fast_update_pooled
                bail_walk = generalization.bail_update_pooled
                total_record = record.total_inputs.record_many
                prob_record = record.problematic_inputs.record_many
            n = len(avals)
            rvals = [0.0] * n
            rshads = [None] * n
            mcol = (
                lanes.machine_unary(op, avals, machine_fn)
                if vec_machine else None
            )
            vec_ok = None
            if vec_dd:
                dd_cols = lanes.dd_unary_columns(op, avals, ashads)
                if dd_cols is not None:
                    vec_hi, vec_lo, vec_exact, vec_ok = dd_cols
            for i in range(n):
                av = avals[i]
                sa = ashads[i]
                if sa is None:
                    sa = ashads[i] = opaque_of(av)
                if mcol is not None:
                    value = mcol[i]
                else:
                    value = machine_fn(av)
                    if single:
                        value = narrow(value)
                rvals[i] = value
                ta = sa.trace
                # --- kernel stage -------------------------------------
                real = None
                exact_op = False
                if vec_ok is not None and vec_ok[i]:
                    real = DD(vec_hi[i], vec_lo[i])
                    exact_op = vec_exact[i]
                    self.hw_kernel_ops += 1
                elif hw:
                    xa = sa.real
                    if type(xa) is DD:
                        if dd_kernel is not None:
                            dd = dd_kernel(xa.hi, xa.lo)
                            if dd is not None:
                                real = DD(dd[0], dd[1])
                                exact_op = dd[2]
                                self.hw_kernel_ops += 1
                        if real is None:
                            promote(sa)
                            self.hw_promotions += 1
                if real is not None:
                    pass
                elif cache is not None:
                    key = (op, ta)
                    real = cache.get(key)
                    if real is None:
                        real = (
                            kernel2(sa.real, context) if raw
                            else kernel((sa.real,), context)
                        )
                        cache[key] = real
                        self.kernel_cache_misses += 1
                    else:
                        self.kernel_cache_hits += 1
                elif raw:
                    real = kernel2(sa.real, context)
                else:
                    real = kernel((sa.real,), context)
                # --- trace stage --------------------------------------
                node_key = (site, ta)
                node = ops_table.get(node_key)
                if node is None:
                    node = new_op(node_key, op, (ta,), value, loc)
                if not escalates:
                    drift = EXACT
                elif type(real) is DD:
                    drift = propagate_hw(
                        op, (sa.real,), (sa.drift,), real, exact_op
                    )
                else:
                    drift = policy.propagate(
                        op, [sa.real], [sa.drift], real
                    )
                shadow = new_shadow(real, node, empty, drift)
                # --- error stage --------------------------------------
                ra = sa.rounded
                if ra is None:
                    ra = rounded_of(sa)
                if escalates:
                    exact_rounded = rounded_of(shadow)
                else:
                    exact_rounded = real.to_float()
                    shadow.rounded = exact_rounded
                if shortcut and ra == av and ra != 0.0:
                    float_result = value
                else:
                    float_result = fn_double(ra)
                if float_result == exact_rounded:
                    error_bits = 0.0
                else:
                    error_bits = err_of(float_result, exact_rounded)
                record.executions += 1
                record.sum_local_error += error_bits
                if error_bits > record.max_local_error:
                    record.max_local_error = error_bits
                is_candidate = error_bits > threshold
                # --- influence stage ----------------------------------
                influences = sa.influences
                if is_candidate and track:
                    influences = influences | {record}
                # --- expression + characteristics stage ---------------
                generalization = record.generalization
                if generalization.expression is not None:
                    bindings = fast_walk(pool, node)
                else:
                    bindings = None
                if bindings is None:
                    __, bindings = bail_walk(pool, node)
                record.pending_trace = node
                total_record(bindings)
                if is_candidate:
                    prob_record(bindings)
                    if record.example_problematic is None and bindings:
                        record.example_problematic = dict(bindings)
                    record.candidate_executions += 1
                if counters is not None:
                    counters.fused_ops += 1
                    counters.kernel_evals += 1
                    counters.trace_interned += 1
                    if error_bits == 0.0:
                        counters.error_fast += 1
                    else:
                        counters.error_exact += 1
                    counters.characteristic_updates += len(bindings)
                    if hw:
                        if type(real) is DD:
                            counters.hw_tier_ops += 1
                        else:
                            counters.working_tier_ops += 1
                shadow.influences = influences
                rshads[i] = shadow
            return rvals, rshads
        return run

    def batch_branch_callback(self, instr: isa.Branch):
        """A per-site batch branch-spot callback: the fused branch
        update looped over the lanes of a uniform sub-batch (every lane
        took the same direction — the engine guarantees it — but each
        lane's *real* direction is decided per lane).  Returns None when
        batching is off; the engine then loops the sequential hook."""
        if not self._batched:
            return None
        try:
            nan_result = instr.pred == "ne"
            comparer = _BIG_PREDICATES[instr.pred]
        except KeyError:
            return None
        escalates = self._escalates
        track = self.config.track_influences
        opaque_of = self._opaque_shadow_value
        record = None

        def run(lvals, lshads, rvals, rshads, taken):
            nonlocal record
            if record is None:
                record = self._spot_record(instr, SPOT_BRANCH)
            n = len(lvals)
            for i in range(n):
                left = lshads[i]
                if left is None:
                    left = lshads[i] = opaque_of(lvals[i])
                right = rshads[i]
                if right is None:
                    right = rshads[i] = opaque_of(rvals[i])
                if escalates:
                    left_real, right_real = self._comparable(left, right)
                else:
                    left_real = left.real
                    right_real = right.real
                if left_real.is_nan() or right_real.is_nan():
                    real_taken = nan_result
                else:
                    real_taken = comparer(left_real, right_real)
                record.executions += 1
                if real_taken != taken:
                    record.sum_error += 1.0
                    if record.max_error < 1.0:
                        record.max_error = 1.0
                    record.erroneous += 1
                    if track:
                        record.influences |= (
                            left.influences | right.influences
                        )
        return run

    def _compensation_passthrough(
        self,
        op: str,
        shadows: List[ShadowValue],
        result_shadow: ShadowValue,
        arg_values: Sequence[float],
        result_value: float,
    ) -> Optional[int]:
        """Index of the passed-through argument of a compensating op.

        Paper Section 5.3: an addition/subtraction is compensating when
        (a) in the reals it returns one of its arguments, and (b) the
        output has *less* error than that passed-through argument —
        i.e. the other term corrected accumulated rounding error.

        The equality in (a) is a real-valued decision: under adaptive
        tiers it escalates when the candidate and the result are closer
        than their guarded drift bands.  Takes the machine values raw
        (not boxed) so the batched engine's column closures share it.
        """
        real_result = result_shadow.real
        if not real_result.is_finite():
            return None
        out_error = result_shadow.total_error
        if out_error is None:
            out_error = result_shadow.total_error = rounded_total_error(
                result_value, self._rounded(result_shadow)
            )
        for index in (0, 1):
            shadow = shadows[index]
            # Condition (b) first: it is two cached error measurements
            # and a float compare, and it usually fails (error-free
            # args cannot be "corrected"), so the real-valued equality
            # of condition (a) is rarely reached.  Pure reordering of a
            # conjunction — the verdict is unchanged.
            arg_error = shadow.total_error
            if arg_error is None:
                arg_error = shadow.total_error = rounded_total_error(
                    arg_values[index], self._rounded(shadow)
                )
            if out_error >= arg_error:
                continue
            other = shadows[1 - index]
            candidate = shadow.real
            if index == 1 and op == "-":
                candidate = candidate.neg()
            if not candidate.is_finite():
                continue
            verdict = None
            if self.policy.escalates and not (
                shadow.drift == EXACT and result_shadow.drift == EXACT
            ):
                verdict = self.policy.addition_passthrough(
                    candidate, shadow.drift, other.real, other.drift
                )
                if verdict is False:
                    continue
            if verdict is None and self.policy.comparison_unsafe(
                candidate, shadow.drift, real_result, result_shadow.drift
            ):
                self.policy.note_escalation("comparison")
                exact_candidate = self.escalator.exact_real(shadow)
                if index == 1 and op == "-":
                    exact_candidate = exact_candidate.neg()
                if not (
                    exact_candidate == self.escalator.exact_real(result_shadow)
                ):
                    continue
            elif not (candidate == real_result):
                continue
            return index
        return None

    # ------------------------------------------------------------------
    # Spots
    # ------------------------------------------------------------------

    def on_branch(
        self, instr: isa.Branch, lhs: FloatBox, rhs: FloatBox, taken: bool
    ) -> None:
        record = self._spot_record(instr, SPOT_BRANCH)
        left = lhs.shadow or self._shadow(lhs)
        right = rhs.shadow or self._shadow(rhs)
        if self._escalates:
            left_real, right_real = self._comparable(left, right)
        else:
            left_real = left.real
            right_real = right.real
        real_taken = _real_predicate(instr.pred, left_real, right_real)
        diverged = real_taken != taken
        record.record(1.0 if diverged else 0.0, diverged)
        if diverged and self.config.track_influences:
            record.influences |= left.influences | right.influences

    def on_float_to_int(
        self, instr: isa.FloatToInt, box: FloatBox, result: int
    ) -> None:
        record = self._spot_record(instr, SPOT_CONVERSION)
        shadow = self._shadow(box)
        real = shadow.real
        if self.policy.integer_unsafe(real, shadow.drift):
            self.policy.note_escalation("integer")
            real = self.escalator.exact_real(shadow)
        if type(real) is DoubleDouble:
            # Certified safe above; truncation runs on the exact
            # BigFloat promotion of the pair.
            real = real.to_bigfloat()
        if real.is_nan():
            diverged = True
        elif real.is_inf():
            diverged = True
        else:
            real_int = int(arith.trunc(real).to_fraction())
            diverged = real_int != result
        record.record(1.0 if diverged else 0.0, diverged)
        if diverged and self.config.track_influences:
            record.influences |= shadow.influences

    def on_out(self, instr: isa.Out, box: FloatBox) -> None:
        record = self._spot_record(instr, SPOT_OUTPUT)
        shadow = self._shadow(box)
        error_bits = shadow.total_error
        if error_bits is None:
            error_bits = shadow.total_error = rounded_total_error(
                box.value, self._rounded(shadow)
            )
        erroneous = error_bits > self.config.output_error_threshold
        record.record(error_bits, erroneous)
        if erroneous and self.config.track_influences:
            record.influences |= shadow.influences

    # ------------------------------------------------------------------
    # Result queries
    # ------------------------------------------------------------------

    def tier_residency(self) -> Dict[str, int]:
        """Always-on tier residency and escalation accounting.

        Unlike the profile-gated stage counters, these aggregate at
        negligible cost, so serving stats and ``--profile`` output can
        show where shadow work actually ran: ops served by the hardware
        pair kernels, pair arguments promoted to the working tier, and
        roundings certified by each escalation rung.
        """
        stats = self.policy.stats
        return {
            "hw_tier": int(self._hw),
            "hw_kernel_ops": self.hw_kernel_ops,
            "hw_promotions": self.hw_promotions,
            "working_certified": self.escalator.working_certified,
            "confirm_certified": self.escalator.confirm_certified,
            "full_recomputed_nodes": self.escalator.recomputed_nodes,
            "escalations": stats.get("escalations", 0),
            "escalation_rounding": stats.get("rounding", 0),
            "escalation_comparison": stats.get("comparison", 0),
            "escalation_integer": stats.get("integer", 0),
        }

    def candidate_records(self) -> List[OpRecord]:
        """Operation sites flagged as candidate root causes, worst first."""
        flagged = [
            record for record in self.op_records.values()
            if record.candidate_executions > 0
        ]
        flagged.sort(key=lambda r: (-r.max_local_error, r.site_id))
        return flagged

    def erroneous_spots(self) -> List[SpotRecord]:
        """Spots that registered error or divergence, worst first."""
        spots = [
            record for record in self.spot_records.values() if record.erroneous > 0
        ]
        spots.sort(key=lambda r: (-r.max_error, -r.erroneous, r.site_id))
        return spots

    def reported_root_causes(self) -> List[OpRecord]:
        """Candidates whose influence reached at least one spot.

        The paper reports only sources of error that flow into spots
        (Section 4.2, footnote 7), avoiding false positives from
        erroneous intermediates that never matter.
        """
        reached = set()
        for spot in self.erroneous_spots():
            reached |= spot.influences
        result = [r for r in self.candidate_records() if r in reached]
        return result

    def max_output_error(self) -> float:
        """Worst bits-of-error observed at any output spot."""
        outputs = [
            r for r in self.spot_records.values() if r.kind == SPOT_OUTPUT
        ]
        return max((r.max_error for r in outputs), default=0.0)


#: Branch predicates over (non-NaN) shadow reals; BigFloat comparisons
#: implement the same ordering the reference helper spells out.
_BIG_PREDICATES = {
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "eq": operator.eq,
    "ne": operator.ne,
}


def _real_predicate(pred: str, lhs: BigFloat, rhs: BigFloat) -> bool:
    """Branch predicate under the real semantics (NaN-aware)."""
    if lhs.is_nan() or rhs.is_nan():
        return pred == "ne"
    if pred == "lt":
        return lhs < rhs
    if pred == "le":
        return lhs <= rhs
    if pred == "gt":
        return lhs > rhs
    if pred == "ge":
        return lhs >= rhs
    if pred == "eq":
        return lhs == rhs
    if pred == "ne":
        return lhs != rhs
    raise ValueError(f"unknown predicate {pred!r}")


def analyze_program(
    program: isa.Program,
    input_sets: Sequence[Sequence[float]],
    config: Optional[AnalysisConfig] = None,
    wrap_libraries: bool = True,
    libm: Optional[Dict[str, isa.Function]] = None,
    max_steps: int = 50_000_000,
    features: Optional[EngineFeatures] = None,
) -> Tuple[HerbgrindAnalysis, List[List[float]]]:
    """Run the analysis over a program on several input sets.

    Returns the analysis (records aggregated across runs, as Herbgrind
    aggregates across a whole execution) plus each run's outputs.

    ``config.engine`` selects the execution engine ("compiled" by
    default); ``features`` overrides the individual fast-path layers
    for overhead attribution (benchmarks only).
    """
    analysis = HerbgrindAnalysis(config, features=features)
    outputs: List[List[float]] = []
    if analysis.features.threaded_interpreter:
        from repro.machine.compiled import CompiledProgram

        if _faults.active():
            # Chaos seam: a compiled-engine failure before execution.
            # Unreachable from the ladder's reference rung.
            _faults.trip("engine.compiled.raise", EngineFault)
        if analysis._batched and len(input_sets) > 1:
            from repro.machine.batched import BatchedProgram

            batched = BatchedProgram.compile(
                program,
                analysis,
                wrap_libraries=wrap_libraries,
                libm=libm,
                max_steps=max_steps,
                double_handlers=analysis.backend.double_handlers,
            )
            if batched is not None:
                if _faults.active():
                    # Chaos seam: a batched-layer failure.  The
                    # ladder's sequential rung (batched=False) never
                    # reaches it.
                    _faults.trip("engine.batched.raise", EngineFault)
                try:
                    batch_outputs = batched.run_points(input_sets)
                except MachineError:
                    # A lane failed after aggregation began; discard
                    # the dirty analysis and reproduce the sequential
                    # behaviour (partial aggregation, then the raise)
                    # from scratch.
                    batch_outputs = None
                    analysis = HerbgrindAnalysis(config, features=features)
                if batch_outputs is not None:
                    # Sequential execution bumps ``runs`` once per
                    # point; batching bumps it once per uniform
                    # sub-batch.  Pin the observable count.
                    analysis.runs = len(input_sets)
                    return analysis, batch_outputs
        compiled = CompiledProgram(
            program,
            tracer=analysis,
            wrap_libraries=wrap_libraries,
            libm=libm,
            max_steps=max_steps,
            double_handlers=analysis.backend.double_handlers,
        )
        for inputs in input_sets:
            outputs.append(compiled.run(inputs))
        return analysis, outputs
    interpreter = Interpreter(
        program,
        tracer=analysis,
        wrap_libraries=wrap_libraries,
        libm=libm,
        max_steps=max_steps,
        double_handlers=analysis.backend.double_handlers,
    )
    for inputs in input_sets:
        outputs.append(interpreter.run(inputs))
    return analysis, outputs
