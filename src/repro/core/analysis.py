"""The Herbgrind analysis as a machine tracer (paper Figures 3 and 4).

For every executed floating-point operation the tracer:

1. computes the shadow-real result (⟦f⟧_R on the shadow arguments),
2. measures the operation's *local error* and marks it a candidate
   root cause when that exceeds Tℓ,
3. extends the concrete-expression trace and anti-unifies it into the
   site's symbolic expression,
4. updates the site's input characteristics (total, and problematic
   when the local error was high),
5. propagates influence taint — the union of the arguments' influences
   plus the site itself when it is a candidate — with compensating
   additions/subtractions (Section 5.3) blocked from propagating their
   compensating term's taint.

At spots (outputs, float branches, float→int conversions) it measures
error against the real execution and records which candidates
influenced the spot.

One note versus the paper's Figure 4: the figure's branch/conversion
case unions influences when the real and float paths *agree*; we take
that for a typo and record influences on *divergence* (as the PID case
study's prose describes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bigfloat import BigFloat, make_policy
from repro.bigfloat import arith
from repro.bigfloat.backend import KERNEL_CACHE_OPERATIONS, get_backend
from repro.bigfloat.policy import EXACT
from repro.core.config import ENGINE_COMPILED, AnalysisConfig
from repro.core.localerror import rounded_local_error, rounded_total_error
from repro.core.records import (
    OpRecord,
    SpotRecord,
    SPOT_BRANCH,
    SPOT_CONVERSION,
    SPOT_OUTPUT,
)
from repro.core.shadow import EMPTY_INFLUENCES, ShadowEscalator, ShadowValue
from repro.core import trace as trace_mod
from repro.machine import isa
from repro.machine.interpreter import Interpreter, Tracer
from repro.machine.values import FloatBox


@dataclass(frozen=True)
class EngineFeatures:
    """The three independent layers of the compiled fast path.

    ``AnalysisConfig.engine`` maps to all-on ("compiled") or all-off
    ("reference"); the benchmark harness toggles layers individually
    for per-layer overhead attribution.  Every combination produces
    identical analysis results.
    """

    #: Execute through :class:`repro.machine.compiled.CompiledProgram`.
    threaded_interpreter: bool = True
    #: Hash-cons trace nodes through a :class:`~repro.core.trace.TracePool`.
    trace_pool: bool = True
    #: Use the steady-state anti-unification fast path.
    fast_antiunify: bool = True
    #: Memoize transcendental shadow results per (operation, operand
    #: trace idents) within one execution — loop-invariant log/pow/trig
    #: shadows are computed once per run.  Requires the trace pool (the
    #: idents come from its hash-consing); defaults off so explicitly
    #: constructed layer combinations keep their PR-3 meaning.
    kernel_cache: bool = False

    @classmethod
    def for_engine(cls, engine: str) -> "EngineFeatures":
        on = engine == ENGINE_COMPILED
        return cls(
            threaded_interpreter=on, trace_pool=on, fast_antiunify=on,
            kernel_cache=on,
        )


class HerbgrindAnalysis(Tracer):
    """The full analysis; attach to an Interpreter as its tracer."""

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        features: Optional[EngineFeatures] = None,
    ) -> None:
        self.config = config if config is not None else AnalysisConfig()
        self.features = (
            features if features is not None
            else EngineFeatures.for_engine(self.config.engine)
        )
        self.policy = make_policy(
            self.config.precision_policy,
            full_precision=self.config.shadow_precision,
            working_precision=self.config.working_precision,
            guard_bits=self.config.escalation_guard_bits,
        )
        #: The context shadow operations run under: the full tier for
        #: the fixed policy, the working tier for adaptive tiers.
        self.context = self.policy.context
        #: The kernel substrate evaluating ⟦f⟧_R (config.substrate).
        self.backend = get_backend(self.config.substrate)
        #: Pre-resolved substrate dispatch for the per-operation hot path.
        self._apply = self.backend.apply
        #: Hoisted policy flag: the fixed policy never escalates, so
        #: the hot path can skip drift/rounding bookkeeping entirely.
        self._escalates = self.policy.escalates
        self.escalator = ShadowEscalator(self.policy, backend=self.backend)
        self.op_records: Dict[int, OpRecord] = {}
        self.spot_records: Dict[int, SpotRecord] = {}
        self._sites: Dict[int, isa.Instr] = {}  # keeps instr ids stable
        self._site_counter = 0
        self.runs = 0
        #: Hash-consing pool (compiled engine); None disables interning.
        self.pool = (
            trace_mod.TracePool(
                levels_depth=self.config.max_expression_depth
            )
            if self.features.trace_pool else None
        )
        #: Shadow objects of interned constant leaves, reusable across
        #: executions because everything in them is value-determined.
        self._leaf_shadows: Dict[int, ShadowValue] = {}
        #: Kernel-result cache: (op, operand trace idents) -> shadow
        #: real, cleared per execution.  Sound because the pool interns
        #: nodes (same idents => same shadow reals at the analysis
        #: context precision) and idents are never reused.
        self._kernel_cache: Optional[Dict[tuple, BigFloat]] = (
            {} if (self.pool is not None and self.features.kernel_cache)
            else None
        )
        #: Aggregate cache statistics (benchmark attribution).
        self.kernel_cache_hits = 0
        self.kernel_cache_misses = 0

    # ------------------------------------------------------------------
    # Record lookup
    # ------------------------------------------------------------------

    def _op_record(self, instr: isa.Instr, op: str) -> OpRecord:
        key = id(instr)
        record = self.op_records.get(key)
        if record is None:
            self._sites[key] = instr
            self._site_counter += 1
            record = OpRecord(
                site_id=self._site_counter,
                op=op,
                loc=getattr(instr, "loc", None),
                config=self.config,
                fast_antiunify=self.features.fast_antiunify,
            )
            self.op_records[key] = record
        return record

    def _spot_record(self, instr: isa.Instr, kind: str) -> SpotRecord:
        key = id(instr)
        record = self.spot_records.get(key)
        if record is None:
            self._sites[key] = instr
            self._site_counter += 1
            record = SpotRecord(
                site_id=self._site_counter,
                kind=kind,
                loc=getattr(instr, "loc", None),
            )
            self.spot_records[key] = record
        return record

    # ------------------------------------------------------------------
    # Shadow access (lazy creation, paper Section 6)
    # ------------------------------------------------------------------

    def _shadow(self, box: FloatBox) -> ShadowValue:
        shadow = box.shadow
        if shadow is None:
            shadow = ShadowValue(
                BigFloat.from_float(box.value),
                trace_mod.opaque_leaf(box.value),
                EMPTY_INFLUENCES,
            )
            box.shadow = shadow
        return shadow

    # ------------------------------------------------------------------
    # Tier-checked views of shadow reals
    # ------------------------------------------------------------------

    def _rounded(self, shadow: ShadowValue) -> float:
        """The correctly rounded double of a shadow real.

        Under an adaptive policy the rounding escalates to the full
        tier when the working value sits within the guarded band of a
        rounding tie; the result is cached on the shadow.
        """
        value = shadow.rounded
        if value is None:
            real = shadow.real
            if self._escalates and \
                    self.policy.rounding_unsafe(real, shadow.drift):
                self.policy.note_escalation("rounding")
                value = self.escalator.certified_rounded(shadow)
                if value is None:
                    value = self.escalator.exact_real(shadow).to_float()
            else:
                value = real.to_float()
            shadow.rounded = value
        return value

    def _comparable(
        self, left: ShadowValue, right: ShadowValue
    ) -> Tuple[BigFloat, BigFloat]:
        """A pair of reals safe to compare (escalated when too close)."""
        if self.policy.comparison_unsafe(
            left.real, left.drift, right.real, right.drift
        ):
            self.policy.note_escalation("comparison")
            return (
                self.escalator.exact_real(left),
                self.escalator.exact_real(right),
            )
        return left.real, right.real

    # ------------------------------------------------------------------
    # Value-producing events
    # ------------------------------------------------------------------

    def on_start(self, interpreter: Interpreter) -> None:
        self.runs += 1
        self.escalator.reset()
        if self.pool is not None:
            self.pool.begin_execution()
        if self._kernel_cache is not None:
            # Input-leaf idents are fresh every run, so stale entries
            # could never be hit — clearing just bounds memory.
            self._kernel_cache.clear()

    def on_const(self, instr: isa.Instr, box: FloatBox) -> None:
        pool = self.pool
        if pool is None:
            box.shadow = ShadowValue(
                BigFloat.from_float(box.value),
                trace_mod.const_leaf(box.value, getattr(instr, "loc", None)),
                EMPTY_INFLUENCES,
            )
            return
        # One dict hit in the warm case: a Const instruction always
        # produces the same value, so its shadow is a pure function of
        # the instruction (loop bodies replay these endlessly).  The
        # pool still interns the leaf underneath, keyed by value bits,
        # so a recycled instruction id cannot alias a different
        # constant.
        shadow = self._leaf_shadows.get(id(instr))
        if shadow is None or shadow.trace.value != box.value:
            leaf = pool.const_leaf(
                box.value, getattr(instr, "loc", None), site=id(instr)
            )
            shadow = ShadowValue(
                BigFloat.from_float(box.value), leaf, EMPTY_INFLUENCES
            )
            self._leaf_shadows[id(instr)] = shadow
        box.shadow = shadow

    def on_read(self, instr: isa.Read, box: FloatBox, index: int) -> None:
        # Input leaves are per-execution (each Read fires once per run
        # with a fresh value), so unlike constants there is nothing to
        # cache across runs.
        if self.pool is not None:
            leaf = self.pool.input_leaf(
                box.value, index, instr.loc, site=id(instr)
            )
        else:
            leaf = trace_mod.input_leaf(box.value, index, instr.loc)
        box.shadow = ShadowValue(
            BigFloat.from_float(box.value), leaf, EMPTY_INFLUENCES
        )

    def on_int_to_float(self, instr: isa.IntToFloat, value: int, box: FloatBox) -> None:
        # Integers are exact; the trace sees a constant of that value.
        exact = BigFloat.from_int(value)
        if self.pool is not None:
            leaf = self.pool.int_leaf(
                box.value, value, instr.loc, site=id(instr)
            )
        else:
            leaf = trace_mod.const_leaf(box.value, instr.loc)
        real = exact
        drift = EXACT
        if self.policy.escalates:
            # Integers wider than the working tier are rounded into it;
            # the escalator keeps the exact integer for the leaf, which
            # the float leaf value cannot always represent.
            real = exact.round_to(self.policy.context.precision)
            if not (real == exact):
                drift = 1.0
            if not (exact == BigFloat.from_float(box.value)):
                self.escalator.register_leaf(leaf, exact)
        box.shadow = ShadowValue(real, leaf, EMPTY_INFLUENCES, drift)

    def on_op(
        self, instr: isa.Instr, op: str, args: Sequence[FloatBox], result: FloatBox
    ) -> Optional[float]:
        self._analyse_operation(instr, op, args, result)
        return None

    def on_library(
        self, instr: isa.Call, name: str, args: Sequence[FloatBox], result: FloatBox
    ) -> Optional[float]:
        # Wrapped library call: analysed as one atomic operation, so the
        # trace records `tan`, not tan's instruction stream (Section 5.3).
        self._analyse_operation(instr, name, args, result)
        return None

    def on_bitop(self, instr: isa.FloatBitOp, box: FloatBox, result: FloatBox) -> None:
        # Recognize compiler bit tricks (Section 5.3): sign-flip XOR is
        # negation, sign-clear AND is fabs.  Anything else is opaque.
        if instr.op == "xor" and instr.mask == isa.SIGN_BIT_MASK:
            self._analyse_operation(instr, "neg", [box], result)
            return
        if instr.op == "and" and instr.mask == isa.ABS_MASK:
            self._analyse_operation(instr, "fabs", [box], result)
            return
        shadow = self._shadow(box)
        result.shadow = ShadowValue(
            BigFloat.from_float(result.value),
            trace_mod.opaque_leaf(result.value, instr.loc),
            shadow.influences,
        )

    # ------------------------------------------------------------------
    # The core per-operation analysis
    # ------------------------------------------------------------------

    def _analyse_operation(
        self, instr: isa.Instr, op: str, args: Sequence[FloatBox], result: FloatBox
    ) -> None:
        config = self.config
        # `box.shadow or ...` inlines the warm case of _shadow: every
        # argument of every traced operation passes through here.
        shadows = [a.shadow or self._shadow(a) for a in args]
        real_args = [s.real for s in shadows]
        cache = self._kernel_cache
        if cache is not None and op in KERNEL_CACHE_OPERATIONS:
            # Transcendental kernels are memoized per (op, operand
            # idents): the pool interns traces, so identical idents
            # imply identical shadow reals, and a loop-invariant
            # log/pow/trig shadow is computed once per execution.
            cache_key = (op,) + tuple(s.trace.ident for s in shadows)
            real_result = cache.get(cache_key)
            if real_result is None:
                real_result = self._apply(op, real_args, self.context)
                cache[cache_key] = real_result
                self.kernel_cache_misses += 1
            else:
                self.kernel_cache_hits += 1
        else:
            try:
                real_result = self._apply(op, real_args, self.context)
            except KeyError:
                # Operation outside the real engine: treat the result as
                # an opaque float source.
                result.shadow = ShadowValue(
                    BigFloat.from_float(result.value),
                    trace_mod.opaque_leaf(
                        result.value, getattr(instr, "loc", None)
                    ),
                    frozenset().union(*[s.influences for s in shadows])
                    if shadows else EMPTY_INFLUENCES,
                )
                return
        record = self._op_record(instr, op)
        if self.pool is not None:
            node = self.pool.op_node(
                op,
                tuple(s.trace for s in shadows),
                result.value,
                instr.loc,
                site=id(instr),
            )
        else:
            node = trace_mod.op_node(
                op,
                tuple(s.trace for s in shadows),
                result.value,
                instr.loc,
            )
        if not self._escalates:
            drift = EXACT
        elif (
            op == "-"
            and len(shadows) == 2
            and shadows[0].trace is shadows[1].trace
        ):
            # x - x over the *same* shadowed value is exactly zero at
            # every tier; without this the working tier must treat the
            # cancelled zero as untrusted.
            drift = EXACT
        else:
            drift = self.policy.propagate(
                op, real_args, [s.drift for s in shadows], real_result
            )
        result_shadow = ShadowValue(real_result, node, EMPTY_INFLUENCES, drift)
        # Inline the cache-hit branch of _rounded: this comprehension
        # runs for every argument of every traced operation, and the
        # attribute read saves a method call in the common warm case.
        rounded_args = [
            s.rounded if s.rounded is not None else self._rounded(s)
            for s in shadows
        ]
        error_bits = rounded_local_error(
            op, rounded_args, self._rounded(result_shadow)
        )
        # record.record_execution(error_bits), inlined for the hot path.
        record.executions += 1
        record.sum_local_error += error_bits
        if error_bits > record.max_local_error:
            record.max_local_error = error_bits
        is_candidate = error_bits > config.local_error_threshold

        # --- Influence propagation, with compensation detection -------
        passthrough = None
        if config.detect_compensation and op in ("+", "-") and len(shadows) == 2:
            passthrough = self._compensation_passthrough(
                op, shadows, result_shadow, args, result
            )
        if passthrough is not None:
            record.compensations_detected += 1
            influences = shadows[passthrough].influences
        else:
            influences = EMPTY_INFLUENCES
            for shadow in shadows:
                if shadow.influences:
                    influences = influences | shadow.influences
            if is_candidate and config.track_influences:
                influences = influences | {record}

        # --- Symbolic expression + input characteristics ---------------
        __, bindings = record.generalization.update_with_bindings(node)
        record.last_trace = node
        for variable, value in bindings.items():
            record.total_inputs.record(variable, value)
        if is_candidate and passthrough is None:
            for variable, value in bindings.items():
                record.problematic_inputs.record(variable, value)
            if record.example_problematic is None and bindings:
                record.example_problematic = dict(bindings)
            record.candidate_executions += 1

        result_shadow.influences = influences
        result.shadow = result_shadow

    def _compensation_passthrough(
        self,
        op: str,
        shadows: List[ShadowValue],
        result_shadow: ShadowValue,
        args: Sequence[FloatBox],
        result: FloatBox,
    ) -> Optional[int]:
        """Index of the passed-through argument of a compensating op.

        Paper Section 5.3: an addition/subtraction is compensating when
        (a) in the reals it returns one of its arguments, and (b) the
        output has *less* error than that passed-through argument —
        i.e. the other term corrected accumulated rounding error.

        The equality in (a) is a real-valued decision: under adaptive
        tiers it escalates when the candidate and the result are closer
        than their guarded drift bands.
        """
        real_result = result_shadow.real
        if not real_result.is_finite():
            return None
        out_error = result_shadow.total_error
        if out_error is None:
            out_error = result_shadow.total_error = rounded_total_error(
                result.value, self._rounded(result_shadow)
            )
        for index in (0, 1):
            shadow = shadows[index]
            # Condition (b) first: it is two cached error measurements
            # and a float compare, and it usually fails (error-free
            # args cannot be "corrected"), so the real-valued equality
            # of condition (a) is rarely reached.  Pure reordering of a
            # conjunction — the verdict is unchanged.
            arg_error = shadow.total_error
            if arg_error is None:
                arg_error = shadow.total_error = rounded_total_error(
                    args[index].value, self._rounded(shadow)
                )
            if out_error >= arg_error:
                continue
            other = shadows[1 - index]
            candidate = shadow.real
            if index == 1 and op == "-":
                candidate = candidate.neg()
            if not candidate.is_finite():
                continue
            verdict = None
            if self.policy.escalates and not (
                shadow.drift == EXACT and result_shadow.drift == EXACT
            ):
                verdict = self.policy.addition_passthrough(
                    candidate, shadow.drift, other.real, other.drift
                )
                if verdict is False:
                    continue
            if verdict is None and self.policy.comparison_unsafe(
                candidate, shadow.drift, real_result, result_shadow.drift
            ):
                self.policy.note_escalation("comparison")
                exact_candidate = self.escalator.exact_real(shadow)
                if index == 1 and op == "-":
                    exact_candidate = exact_candidate.neg()
                if not (
                    exact_candidate == self.escalator.exact_real(result_shadow)
                ):
                    continue
            elif not (candidate == real_result):
                continue
            return index
        return None

    # ------------------------------------------------------------------
    # Spots
    # ------------------------------------------------------------------

    def on_branch(
        self, instr: isa.Branch, lhs: FloatBox, rhs: FloatBox, taken: bool
    ) -> None:
        record = self._spot_record(instr, SPOT_BRANCH)
        left = lhs.shadow or self._shadow(lhs)
        right = rhs.shadow or self._shadow(rhs)
        if self._escalates:
            left_real, right_real = self._comparable(left, right)
        else:
            left_real = left.real
            right_real = right.real
        real_taken = _real_predicate(instr.pred, left_real, right_real)
        diverged = real_taken != taken
        record.record(1.0 if diverged else 0.0, diverged)
        if diverged and self.config.track_influences:
            record.influences |= left.influences | right.influences

    def on_float_to_int(
        self, instr: isa.FloatToInt, box: FloatBox, result: int
    ) -> None:
        record = self._spot_record(instr, SPOT_CONVERSION)
        shadow = self._shadow(box)
        real = shadow.real
        if self.policy.integer_unsafe(real, shadow.drift):
            self.policy.note_escalation("integer")
            real = self.escalator.exact_real(shadow)
        if real.is_nan():
            diverged = True
        elif real.is_inf():
            diverged = True
        else:
            real_int = int(arith.trunc(real).to_fraction())
            diverged = real_int != result
        record.record(1.0 if diverged else 0.0, diverged)
        if diverged and self.config.track_influences:
            record.influences |= shadow.influences

    def on_out(self, instr: isa.Out, box: FloatBox) -> None:
        record = self._spot_record(instr, SPOT_OUTPUT)
        shadow = self._shadow(box)
        error_bits = shadow.total_error
        if error_bits is None:
            error_bits = shadow.total_error = rounded_total_error(
                box.value, self._rounded(shadow)
            )
        erroneous = error_bits > self.config.output_error_threshold
        record.record(error_bits, erroneous)
        if erroneous and self.config.track_influences:
            record.influences |= shadow.influences

    # ------------------------------------------------------------------
    # Result queries
    # ------------------------------------------------------------------

    def candidate_records(self) -> List[OpRecord]:
        """Operation sites flagged as candidate root causes, worst first."""
        flagged = [
            record for record in self.op_records.values()
            if record.candidate_executions > 0
        ]
        flagged.sort(key=lambda r: (-r.max_local_error, r.site_id))
        return flagged

    def erroneous_spots(self) -> List[SpotRecord]:
        """Spots that registered error or divergence, worst first."""
        spots = [
            record for record in self.spot_records.values() if record.erroneous > 0
        ]
        spots.sort(key=lambda r: (-r.max_error, -r.erroneous, r.site_id))
        return spots

    def reported_root_causes(self) -> List[OpRecord]:
        """Candidates whose influence reached at least one spot.

        The paper reports only sources of error that flow into spots
        (Section 4.2, footnote 7), avoiding false positives from
        erroneous intermediates that never matter.
        """
        reached = set()
        for spot in self.erroneous_spots():
            reached |= spot.influences
        result = [r for r in self.candidate_records() if r in reached]
        return result

    def max_output_error(self) -> float:
        """Worst bits-of-error observed at any output spot."""
        outputs = [
            r for r in self.spot_records.values() if r.kind == SPOT_OUTPUT
        ]
        return max((r.max_error for r in outputs), default=0.0)


def _real_predicate(pred: str, lhs: BigFloat, rhs: BigFloat) -> bool:
    """Branch predicate under the real semantics (NaN-aware)."""
    if lhs.is_nan() or rhs.is_nan():
        return pred == "ne"
    if pred == "lt":
        return lhs < rhs
    if pred == "le":
        return lhs <= rhs
    if pred == "gt":
        return lhs > rhs
    if pred == "ge":
        return lhs >= rhs
    if pred == "eq":
        return lhs == rhs
    if pred == "ne":
        return lhs != rhs
    raise ValueError(f"unknown predicate {pred!r}")


def analyze_program(
    program: isa.Program,
    input_sets: Sequence[Sequence[float]],
    config: Optional[AnalysisConfig] = None,
    wrap_libraries: bool = True,
    libm: Optional[Dict[str, isa.Function]] = None,
    max_steps: int = 50_000_000,
    features: Optional[EngineFeatures] = None,
) -> Tuple[HerbgrindAnalysis, List[List[float]]]:
    """Run the analysis over a program on several input sets.

    Returns the analysis (records aggregated across runs, as Herbgrind
    aggregates across a whole execution) plus each run's outputs.

    ``config.engine`` selects the execution engine ("compiled" by
    default); ``features`` overrides the individual fast-path layers
    for overhead attribution (benchmarks only).
    """
    analysis = HerbgrindAnalysis(config, features=features)
    outputs = []
    if analysis.features.threaded_interpreter:
        from repro.machine.compiled import CompiledProgram

        compiled = CompiledProgram(
            program,
            tracer=analysis,
            wrap_libraries=wrap_libraries,
            libm=libm,
            max_steps=max_steps,
            double_handlers=analysis.backend.double_handlers,
        )
        for inputs in input_sets:
            outputs.append(compiled.run(inputs))
        return analysis, outputs
    for inputs in input_sets:
        interpreter = Interpreter(
            program,
            tracer=analysis,
            wrap_libraries=wrap_libraries,
            libm=libm,
            max_steps=max_steps,
            double_handlers=analysis.backend.double_handlers,
        )
        outputs.append(interpreter.run(inputs))
    return analysis, outputs
