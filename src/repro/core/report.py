"""Report generation: the analysis' user-facing output.

Format follows the paper's Section 3 example::

    Compare @ main.cpp:24 in run(int, int)
    231878 incorrect values of 477000
    Influenced by erroneous expressions:

    (FPCore (x y)
      :pre (and (<= -2.061152e-9 x 2.497500e-1)
                (<= -2.619433e-9 y 2.645912e-9))
      (- (sqrt (+ (* x x) (* y y))) x))
    Example problematic input: (2.061152e-9, -2.480955e-12)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.analysis import HerbgrindAnalysis
from repro.core.records import OpRecord, SPOT_BRANCH, SPOT_CONVERSION
from repro.fpcore.ast import Expr, free_variables
from repro.fpcore.printer import format_expr


@dataclass
class RootCauseReport:
    """One candidate root cause, rendered for the user."""

    loc: Optional[str]
    op: str
    expression: Optional[Expr]
    variables: List[str]
    precondition_clauses: List[str]
    problematic_clauses: List[str]
    example_problematic: Optional[Dict[str, float]]
    executions: int
    candidate_executions: int
    max_local_error: float
    average_local_error: float

    def fpcore_text(self) -> str:
        """The report's (FPCore ...) form with observed-input :pre."""
        if self.expression is None:
            return f"({self.op} <no expression>)"
        arguments = " ".join(self.variables)
        clauses = self.precondition_clauses
        if not clauses:
            pre = ""
        elif len(clauses) == 1:
            pre = f"\n  :pre {clauses[0]}"
        else:
            joined = "\n            ".join(clauses)
            pre = f"\n  :pre (and {joined})"
        body = format_expr(self.expression)
        return f"(FPCore ({arguments}){pre}\n  {body})"

    def example_text(self) -> Optional[str]:
        if not self.example_problematic:
            return None
        ordered = [self.example_problematic.get(v) for v in self.variables]
        rendered = ", ".join("?" if v is None else repr(v) for v in ordered)
        return f"({rendered})"


@dataclass
class SpotReport:
    """One erroneous spot and the root causes that influenced it."""

    loc: Optional[str]
    kind: str
    executions: int
    erroneous: int
    max_error: float
    average_error: float
    root_causes: List[RootCauseReport] = field(default_factory=list)

    def heading(self) -> str:
        kind_name = {
            SPOT_BRANCH: "Compare",
            SPOT_CONVERSION: "Convert",
        }.get(self.kind, "Output")
        where = self.loc or "<unknown>"
        return f"{kind_name} @ {where}"

    def summary_line(self) -> str:
        if self.kind == "output":
            return (
                f"{self.erroneous} erroneous values of {self.executions}"
                f" (max {self.max_error:.1f} bits)"
            )
        return f"{self.erroneous} incorrect values of {self.executions}"


@dataclass
class AnalysisReport:
    """The full report for one analysed execution."""

    spots: List[SpotReport]
    flagged_operations: int
    reported_root_causes: int

    def format(self) -> str:
        if not self.spots:
            return "No erroneous spots detected.\n"
        blocks = []
        for spot in self.spots:
            lines = [spot.heading(), spot.summary_line()]
            if spot.root_causes:
                lines.append("Influenced by erroneous expressions:")
                for cause in spot.root_causes:
                    lines.append("")
                    lines.append(cause.fpcore_text())
                    example = cause.example_text()
                    if example:
                        lines.append(f"Example problematic input: {example}")
                    if cause.loc:
                        lines.append(f"Operation at {cause.loc}")
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks) + "\n"


def root_cause_report(record: OpRecord) -> RootCauseReport:
    """Render one operation record."""
    expression = record.symbolic_expression
    if expression is not None:
        variables = list(free_variables(expression))
    else:
        variables = []
    precondition = []
    problematic = []
    for variable in variables:
        summary = record.total_inputs.by_variable.get(variable)
        if summary is not None:
            precondition.extend(summary.clauses(variable))
        bad_summary = record.problematic_inputs.by_variable.get(variable)
        if bad_summary is not None:
            problematic.extend(bad_summary.clauses(variable))
    return RootCauseReport(
        loc=record.loc,
        op=record.op,
        expression=expression,
        variables=variables,
        precondition_clauses=precondition,
        problematic_clauses=problematic,
        example_problematic=record.example_problematic,
        executions=record.executions,
        candidate_executions=record.candidate_executions,
        max_local_error=record.max_local_error,
        average_local_error=record.average_local_error,
    )


def generate_report(analysis: HerbgrindAnalysis) -> AnalysisReport:
    """Build the user-facing report from a finished analysis."""
    spot_reports = []
    for spot in analysis.erroneous_spots():
        causes = sorted(
            spot.influences,
            key=lambda r: (-r.max_local_error, r.site_id),
        )
        spot_reports.append(
            SpotReport(
                loc=spot.loc,
                kind=spot.kind,
                executions=spot.executions,
                erroneous=spot.erroneous,
                max_error=spot.max_error,
                average_error=spot.average_error,
                root_causes=[root_cause_report(r) for r in causes],
            )
        )
    return AnalysisReport(
        spots=spot_reports,
        flagged_operations=len(analysis.candidate_records()),
        reported_root_causes=len(analysis.reported_root_causes()),
    )
