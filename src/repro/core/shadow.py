"""Shadow values: the per-value state of the analysis.

Each program float is shadowed by (paper Figure 3):

* ``real`` — its value under exact real-number execution (M_R),
* ``trace`` — the concrete expression that produced it (M_E),
* ``influences`` — the candidate root causes that taint it (M_I).

A shadow is attached to the interpreter's :class:`FloatBox`, so copies
of the value automatically share it (Section 6's sharing optimization).
Shadows are created *lazily*: a value that existed before the analysis
could observe its creation (or that came from integer/bit-level code)
gets an opaque shadow the first time an instrumented operation touches
it (Section 6's laziness).

Under an adaptive :class:`~repro.bigfloat.policy.PrecisionPolicy` the
``real`` is a *working-tier* value and ``drift`` bounds its error in
working-tier ulps (``policy.EXACT`` for exactly-represented values).
:class:`ShadowEscalator` recovers the full-tier value on demand by
re-executing the concrete trace at the full precision: because the
trace records exactly the operations the fixed-tier analysis would
have run, the escalated value is bit-identical to what a fixed
full-precision run computes.  Re-execution is memoized per trace node,
so shared sub-computations (the trace is a DAG) are escalated once.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.bigfloat import BigFloat, apply
from repro.bigfloat.doubledouble import DoubleDouble
from repro.bigfloat.policy import EXACT, UNTRUSTED, PrecisionPolicy
from repro.core.records import OpRecord
from repro.core.trace import KIND_OP, P_OP, TraceNode

EMPTY_INFLUENCES: FrozenSet[OpRecord] = frozenset()


class ShadowValue:
    """The analysis state shadowing one float value."""

    __slots__ = ("real", "trace", "influences", "drift", "rounded",
                 "total_error")

    def __init__(
        self,
        real: BigFloat,
        trace,  # TraceNode, or an int pool ident under the compiled engine
        influences: FrozenSet[OpRecord] = EMPTY_INFLUENCES,
        drift: float = EXACT,
    ) -> None:
        self.real = real
        self.trace = trace
        self.influences = influences
        #: Accumulated error bound in working-tier ulps (policy.EXACT
        #: when ``real`` is exact; always EXACT under the fixed policy).
        self.drift = drift
        #: Cached escalation-checked correctly rounded double of
        #: ``real`` (None until first requested).
        self.rounded: Optional[float] = None
        #: Cached bits-of-error of the shadowed float against
        #: ``rounded`` (None until first requested); a pure function of
        #: the shadow, so compensation checks pay for it once.
        self.total_error: Optional[float] = None

    def __repr__(self) -> str:
        return (
            f"<ShadowValue real={self.real!s}"
            f" influences={len(self.influences)}>"
        )


class ShadowEscalator:
    """Recovers full-tier shadow reals by re-executing concrete traces.

    The escalation mechanism of the adaptive precision tiers: when the
    policy reports a decision as precision-sensitive, the analysis asks
    the escalator for the exact full-tier value of the shadows
    involved.  Leaves evaluate to their recorded doubles exactly
    (``BigFloat.from_float``) unless an override was registered —
    int→float conversions register the exact integer, which the float
    leaf value cannot always represent.

    Escalation itself is tiered, Ziv style: a *rounding* escalation
    first re-executes at the cheap **confirm tier** (roughly twice the
    working precision) with its own drift bookkeeping; when the
    decision is decisive there — almost always, since the band shrank
    by a couple hundred bits — the full tier is never touched.  Only a
    still-ambiguous decision pays for the exact full-precision
    re-execution.
    """

    def __init__(self, policy: PrecisionPolicy, backend=None,
                 pool=None) -> None:
        self.policy = policy
        #: Kernel substrate for trace re-execution; defaults to the
        #: python reference.  The analysis passes its own backend so
        #: escalated values are computed by the same substrate as the
        #: working-tier values they replace.
        self._apply = backend.apply if backend is not None else apply
        #: Ident-first trace pool: when set, shadows carry integer
        #: idents instead of structured nodes and re-execution walks
        #: the pool's flat arrays directly — no node is materialized to
        #: escalate.  Memo keys are idents in both representations
        #: (materialized nodes carry their pool ident).
        self._pool = pool
        self._memo: Dict[int, BigFloat] = {}
        self._leaves: Dict[int, BigFloat] = {}
        #: Operation nodes recomputed at the full tier (for reporting).
        self.recomputed_nodes = 0
        #: Confirm-tier state: a second adaptive policy whose "working"
        #: precision is the confirm tier, reusing all drift machinery.
        self._confirm_policy: Optional[PrecisionPolicy] = None
        self._confirm_memo: Dict[int, "Tuple[BigFloat, float]"] = {}
        self.confirm_certified = 0
        #: Hardware-tier rung: when the shadow real is a double-double
        #: pair, an uncertifiable rounding first re-executes at the
        #: plain working tier (the rung the hardware tier replaced)
        #: before touching the confirm tier.
        self._working_memo: Dict[int, "Tuple[BigFloat, float]"] = {}
        self.working_certified = 0
        if policy.escalates:
            full = policy.full_context.precision
            working = policy.context.precision
            confirm = min(full, working * 2 + 64)
            if confirm > working + 32 and confirm < full:
                self._confirm_policy = type(policy)(
                    full,
                    working_precision=confirm,
                    guard_bits=getattr(policy, "guard_bits", 16),
                    rounding=policy.full_context.rounding,
                )

    def register_leaf(self, node, real: BigFloat) -> None:
        """Pin the exact full-tier value of a trace leaf (a
        :class:`TraceNode` or a pool ident)."""
        self._leaves[node if type(node) is int else node.ident] = real

    def reset(self) -> None:
        """Drop the per-run memos.  Load-bearing under an ident pool:
        the pool recycles idents every execution, so a stale memo or
        leaf override could be hit by a recycled ident shadowing a
        different value.  (It also bounds memory on escalation-heavy
        workloads.)  Counters survive, they aggregate across runs."""
        self._memo.clear()
        self._confirm_memo.clear()
        self._working_memo.clear()
        self._leaves.clear()

    def begin_batch(self, lanes: int) -> None:
        """Open one memo epoch shared by ``lanes`` lockstep executions.

        Safe — and deliberate — to share across lanes: memo and leaf
        keys are trace idents, idents are value-keyed per epoch, and
        re-execution of an ident is a pure function of the trace, so a
        lane hitting another lane's memo entry reads exactly the value
        it would have computed itself.  Escalating one lane therefore
        cannot perturb any other lane's results, only warm the memo.
        """
        self.reset()

    def exact_real(self, shadow: ShadowValue) -> BigFloat:
        """The full-tier value of ``shadow`` (its real, if already exact)."""
        if not self.policy.escalates or shadow.drift == EXACT:
            real = shadow.real
            if type(real) is DoubleDouble:
                # An EXACT hardware pair is the true value and fits the
                # full tier (propagate_hw requires it), so the exact
                # promotion is bit-identical to full re-execution.
                return real.to_bigfloat()
            return real
        if self._pool is not None:
            return self.exact_ident(shadow.trace)
        return self.exact_node(shadow.trace)

    def certified_rounded(self, shadow: ShadowValue,
                          mant_bits: int = 53,
                          emin: int = -1022) -> Optional[float]:
        """The hardware rounding of the full-tier value, via the
        cheapest tier that can certify the decision (None when none
        can; the caller then pays for :meth:`exact_real`).

        Hardware-tier shadows climb one extra rung: first a working-tier
        re-execution (whose band is a few dozen bits tighter than the
        double-double bound), then the confirm tier, then the full tier.
        """
        if type(shadow.real) is DoubleDouble:
            if self._pool is not None:
                value, drift = self._working_ident(shadow.trace)
            else:
                value, drift = self._working_node(shadow.trace)
            if not self.policy.rounding_unsafe(value, drift, mant_bits,
                                               emin):
                self.working_certified += 1
                return (
                    value.to_float() if mant_bits == 53
                    else value.to_single()
                )
            if drift == UNTRUSTED:
                return None
        elif shadow.drift == UNTRUSTED:
            # Cancellation burned through the whole working tier: the
            # value is rounding noise at every intermediate tier too
            # (sin^2+cos^2-1 style), so attempting the confirm tier
            # would just triple-pay.  Go straight to the full tier.
            return None
        confirm = self._confirm_policy
        if confirm is None:
            return None
        if self._pool is not None:
            value, drift = self._confirm_ident(shadow.trace)
        else:
            value, drift = self._confirm_node(shadow.trace)
        if confirm.rounding_unsafe(value, drift, mant_bits, emin):
            return None
        self.confirm_certified += 1
        return (
            value.to_float() if mant_bits == 53 else value.to_single()
        )

    def _working_node(self, node: TraceNode) -> "Tuple[BigFloat, float]":
        return self._tier_node(node, self.policy, self._working_memo)

    def _working_ident(self, ident: int) -> "Tuple[BigFloat, float]":
        return self._tier_ident(ident, self.policy, self._working_memo)

    def _confirm_node(self, node: TraceNode) -> "Tuple[BigFloat, float]":
        return self._tier_node(node, self._confirm_policy,
                               self._confirm_memo)

    def _confirm_ident(self, ident: int) -> "Tuple[BigFloat, float]":
        return self._tier_ident(ident, self._confirm_policy,
                                self._confirm_memo)

    def _tier_node(self, node: TraceNode, confirm: PrecisionPolicy,
                   memo: Dict[int, "Tuple[BigFloat, float]"],
                   ) -> "Tuple[BigFloat, float]":
        """(value, drift) of ``node`` re-executed at ``confirm``'s base
        tier with BigFloat values and that policy's drift bookkeeping."""
        cached = memo.get(node.ident)
        if cached is not None:
            return cached
        context = confirm.context
        precision = context.precision
        stack = [node]
        while stack:
            current = stack[-1]
            if current.ident in memo:
                stack.pop()
                continue
            if current.kind != KIND_OP:
                override = self._leaves.get(current.ident)
                if override is None:
                    memo[current.ident] = (
                        BigFloat.from_float(current.value), EXACT
                    )
                else:
                    rounded = override.round_to(precision)
                    memo[current.ident] = (
                        rounded,
                        EXACT if rounded == override else 1.0,
                    )
                stack.pop()
                continue
            pending = [a for a in current.args if a.ident not in memo]
            if pending:
                stack.extend(pending)
                continue
            pairs = [memo[a.ident] for a in current.args]
            arguments = [p[0] for p in pairs]
            try:
                value = self._apply(current.op, arguments, context)
                drift = confirm.propagate(
                    current.op, arguments, [p[1] for p in pairs], value
                )
            except KeyError:
                value = BigFloat.from_float(current.value)
                drift = EXACT
            memo[current.ident] = (value, drift)
            stack.pop()
        return memo[node.ident]

    def _tier_ident(self, ident: int, confirm: PrecisionPolicy,
                    memo: Dict[int, "Tuple[BigFloat, float]"],
                    ) -> "Tuple[BigFloat, float]":
        """(value, drift) of a pool ident re-executed at ``confirm``'s
        base tier — the flat-array mirror of :meth:`_tier_node`."""
        cached = memo.get(ident)
        if cached is not None:
            return cached
        pool = self._pool
        kinds = pool.kinds
        opsA = pool.ops
        argsA = pool.args
        valsA = pool.values
        leaves = self._leaves
        context = confirm.context
        precision = context.precision
        stack = [ident]
        while stack:
            cur = stack[-1]
            if cur in memo:
                stack.pop()
                continue
            if kinds[cur] != P_OP:
                override = leaves.get(cur)
                if override is None:
                    memo[cur] = (BigFloat.from_float(valsA[cur]), EXACT)
                else:
                    rounded = override.round_to(precision)
                    memo[cur] = (
                        rounded, EXACT if rounded == override else 1.0
                    )
                stack.pop()
                continue
            pending = [a for a in argsA[cur] if a not in memo]
            if pending:
                stack.extend(pending)
                continue
            pairs = [memo[a] for a in argsA[cur]]
            arguments = [p[0] for p in pairs]
            try:
                value = self._apply(opsA[cur], arguments, context)
                drift = confirm.propagate(
                    opsA[cur], arguments, [p[1] for p in pairs], value
                )
            except KeyError:
                value = BigFloat.from_float(valsA[cur])
                drift = EXACT
            memo[cur] = (value, drift)
            stack.pop()
        return memo[ident]

    def exact_ident(self, ident: int) -> BigFloat:
        """Evaluate a pool ident at the full tier (memoized, iterative)
        straight off the pool's flat arrays — escalation re-executes
        from idents without materializing a single node."""
        memo = self._memo
        cached = memo.get(ident)
        if cached is not None:
            return cached
        pool = self._pool
        kinds = pool.kinds
        opsA = pool.ops
        argsA = pool.args
        valsA = pool.values
        leaves = self._leaves
        with self.policy.escalated() as context:
            stack = [ident]
            while stack:
                cur = stack[-1]
                if cur in memo:
                    stack.pop()
                    continue
                if kinds[cur] != P_OP:
                    override = leaves.get(cur)
                    memo[cur] = (
                        override if override is not None
                        else BigFloat.from_float(valsA[cur])
                    )
                    stack.pop()
                    continue
                pending = [a for a in argsA[cur] if a not in memo]
                if pending:
                    stack.extend(pending)
                    continue
                arguments = [memo[a] for a in argsA[cur]]
                try:
                    value = self._apply(opsA[cur], arguments, context)
                except KeyError:
                    # Outside the real engine: the fixed tier would have
                    # shadowed this as an opaque float source too.
                    value = BigFloat.from_float(valsA[cur])
                memo[cur] = value
                self.recomputed_nodes += 1
                stack.pop()
        return memo[ident]

    def exact_node(self, node: TraceNode) -> BigFloat:
        """Evaluate a trace node at the full tier (memoized, iterative)."""
        memo = self._memo
        cached = memo.get(node.ident)
        if cached is not None:
            return cached
        with self.policy.escalated() as context:
            stack = [node]
            while stack:
                current = stack[-1]
                if current.ident in memo:
                    stack.pop()
                    continue
                if current.kind != KIND_OP:
                    override = self._leaves.get(current.ident)
                    memo[current.ident] = (
                        override if override is not None
                        else BigFloat.from_float(current.value)
                    )
                    stack.pop()
                    continue
                pending = [a for a in current.args if a.ident not in memo]
                if pending:
                    stack.extend(pending)
                    continue
                arguments = [memo[a.ident] for a in current.args]
                try:
                    value = self._apply(current.op, arguments, context)
                except KeyError:
                    # Outside the real engine: the fixed tier would have
                    # shadowed this as an opaque float source too.
                    value = BigFloat.from_float(current.value)
                memo[current.ident] = value
                self.recomputed_nodes += 1
                stack.pop()
        return memo[node.ident]
