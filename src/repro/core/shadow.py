"""Shadow values: the per-value state of the analysis.

Each program float is shadowed by (paper Figure 3):

* ``real`` — its value under exact real-number execution (M_R),
* ``trace`` — the concrete expression that produced it (M_E),
* ``influences`` — the candidate root causes that taint it (M_I).

A shadow is attached to the interpreter's :class:`FloatBox`, so copies
of the value automatically share it (Section 6's sharing optimization).
Shadows are created *lazily*: a value that existed before the analysis
could observe its creation (or that came from integer/bit-level code)
gets an opaque shadow the first time an instrumented operation touches
it (Section 6's laziness).
"""

from __future__ import annotations

from typing import FrozenSet

from repro.bigfloat import BigFloat
from repro.core.records import OpRecord
from repro.core.trace import TraceNode

EMPTY_INFLUENCES: FrozenSet[OpRecord] = frozenset()


class ShadowValue:
    """The analysis state shadowing one float value."""

    __slots__ = ("real", "trace", "influences")

    def __init__(
        self,
        real: BigFloat,
        trace: TraceNode,
        influences: FrozenSet[OpRecord] = EMPTY_INFLUENCES,
    ) -> None:
        self.real = real
        self.trace = trace
        self.influences = influences

    def __repr__(self) -> str:
        return (
            f"<ShadowValue real={self.real!s}"
            f" influences={len(self.influences)}>"
        )
