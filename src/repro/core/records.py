"""Per-site analysis state: operation entries and spot entries.

The paper's Figure 3 keeps two tables: ``ops[pc]`` for every
floating-point computation site (symbolic expression + input
summaries) and ``spots[pc]`` for every output / branch / conversion
site (error statistics + influencing operations).  These classes are
those table rows, aggregated incrementally (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.antiunify import Generalization
from repro.core.config import AnalysisConfig
from repro.core.inputs import CharacteristicsTable
from repro.fpcore.ast import Expr

SPOT_OUTPUT = "output"
SPOT_BRANCH = "branch"
SPOT_CONVERSION = "conversion"


@dataclass(slots=True)
class OpRecord:
    """State for one floating-point operation site.

    This is the fused pipeline's flat per-site state record: slotted,
    with the aggregate fields updated by direct attribute writes from
    the site-compiled callbacks (several per executed operation).
    """

    site_id: int
    op: str
    loc: Optional[str]
    config: AnalysisConfig
    executions: int = 0
    candidate_executions: int = 0  # executions with local error > Tℓ
    max_local_error: float = 0.0
    sum_local_error: float = 0.0
    compensations_detected: int = 0
    generalization: Generalization = None
    total_inputs: CharacteristicsTable = None
    problematic_inputs: CharacteristicsTable = None
    example_problematic: Optional[Dict[str, float]] = None
    #: The most recent concrete trace (for per-node source locations).
    #: Under the ident-first pool this is materialized at the end of
    #: each run (capped at the expression depth bound) from
    #: :attr:`pending_trace`; the reference path assigns it per op.
    last_trace: object = None
    #: The pool ident of the most recent trace, awaiting end-of-run
    #: materialization (compiled engine only; None otherwise).
    pending_trace: Optional[int] = None
    #: Route generalization through the steady-state fast path (the
    #: compiled engine; results are identical to the reference walk).
    fast_antiunify: bool = False

    def __post_init__(self) -> None:
        self.generalization = Generalization(
            equivalence_depth=self.config.equivalence_depth,
            max_depth=self.config.max_expression_depth,
            fast=self.fast_antiunify,
        )
        self.total_inputs = CharacteristicsTable(self.config)
        self.problematic_inputs = CharacteristicsTable(self.config)

    # ------------------------------------------------------------------

    @property
    def symbolic_expression(self) -> Optional[Expr]:
        return self.generalization.expression

    @property
    def average_local_error(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.sum_local_error / self.executions

    def record_execution(self, local_error_bits: float) -> None:
        self.executions += 1
        self.sum_local_error += local_error_bits
        if local_error_bits > self.max_local_error:
            self.max_local_error = local_error_bits

    def node_locations(self):
        """Source location per operator node of the symbolic expression
        (the paper's footnote 5 capability)."""
        from repro.core.locations import map_node_locations

        if self.symbolic_expression is None or self.last_trace is None:
            return {}
        return map_node_locations(self.symbolic_expression, self.last_trace)

    def located_expression(self) -> str:
        """The symbolic expression rendered one operator per line with
        its source location."""
        from repro.core.locations import format_located_expression

        if self.symbolic_expression is None:
            return "<no expression>"
        return format_located_expression(
            self.symbolic_expression, self.node_locations()
        )

    def __hash__(self) -> int:
        return self.site_id

    def __eq__(self, other) -> bool:
        return self is other


@dataclass
class SpotRecord:
    """State for one spot: an output, branch, or conversion site."""

    site_id: int
    kind: str
    loc: Optional[str]
    executions: int = 0
    erroneous: int = 0  # executions whose error/divergence registered
    max_error: float = 0.0
    sum_error: float = 0.0
    influences: Set[OpRecord] = field(default_factory=set)

    @property
    def average_error(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.sum_error / self.executions

    def record(self, error_bits: float, erroneous: bool) -> None:
        self.executions += 1
        self.sum_error += error_bits
        if error_bits > self.max_error:
            self.max_error = error_bits
        if erroneous:
            self.erroneous += 1

    def __hash__(self) -> int:
        return self.site_id

    def __eq__(self, other) -> bool:
        return self is other
