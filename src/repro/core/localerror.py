"""Local error (paper Section 4.2, following Herbie [29]).

Local error measures the error an operation's output would have *even
if its inputs were accurately computed and then rounded to native
floats*:

    local-error(f, v⃗) = E( F(⟦f⟧_R(v⃗)),  ⟦f⟧_F(F(v⃗)) )

Judging an operation this way avoids blaming innocent operations for
already-erroneous operands — the heart of Herbgrind's candidate
selection (operations whose local error exceeds Tℓ).

Special-value semantics (audited, pinned by
``tests/core/test_localerror_special.py``):

* NaN on either side — computed or rounded-real — is **maximal** error
  (:data:`repro.ieee.error.MAX_ERROR_BITS`).  This includes the
  both-NaN case: an operation invoked outside its real domain (the
  Gram-Schmidt ``0/0``, paper Section 7) is a root cause even though
  the float path "agrees", because invalid is invalid.
* Infinities live on the ulp lattice: agreement in sign is zero error,
  any disagreement saturates the cap.
* The metric never returns NaN or a negative value, so candidate
  ranking and the max/average aggregates in
  :class:`~repro.core.records.OpRecord` stay well defined.

The float-level entry points (:func:`rounded_local_error`,
:func:`rounded_total_error`) take already-rounded doubles so the
adaptive precision tiers can route the rounding of each shadow through
their escalation checks; :func:`local_error`/:func:`total_error` keep
the historical BigFloat signatures for fixed-tier callers.
"""

from __future__ import annotations

from typing import Sequence

from repro.bigfloat import BigFloat, Context, apply_double
from repro.ieee import bits_of_error


def rounded_local_error(
    op: str, rounded_args: Sequence[float], exact_rounded: float
) -> float:
    """Bits of local error given pre-rounded argument/result doubles."""
    float_result = apply_double(op, rounded_args)
    return bits_of_error(float_result, exact_rounded)


def rounded_total_error(float_value: float, exact_rounded: float) -> float:
    """Bits of error of a program value against its rounded shadow real."""
    return bits_of_error(float_value, exact_rounded)


def local_error(
    op: str,
    shadow_args: Sequence[BigFloat],
    real_result: BigFloat,
    context: Context,
) -> float:
    """Bits of local error of one operation execution.

    ``real_result`` must be ⟦op⟧_R applied to ``shadow_args`` (the
    caller computes it anyway for shadow propagation, so it is passed
    in rather than recomputed).
    """
    rounded_args = [argument.to_float() for argument in shadow_args]
    return rounded_local_error(op, rounded_args, real_result.to_float())


def total_error(float_value: float, shadow_real: BigFloat) -> float:
    """Bits of error of a program value against its shadow real."""
    return rounded_total_error(float_value, shadow_real.to_float())
