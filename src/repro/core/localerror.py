"""Local error (paper Section 4.2, following Herbie [29]).

Local error measures the error an operation's output would have *even
if its inputs were accurately computed and then rounded to native
floats*:

    local-error(f, v⃗) = E( F(⟦f⟧_R(v⃗)),  ⟦f⟧_F(F(v⃗)) )

Judging an operation this way avoids blaming innocent operations for
already-erroneous operands — the heart of Herbgrind's candidate
selection (operations whose local error exceeds Tℓ).
"""

from __future__ import annotations

from typing import Sequence

from repro.bigfloat import BigFloat, Context, apply_double
from repro.ieee import bits_of_error


def local_error(
    op: str,
    shadow_args: Sequence[BigFloat],
    real_result: BigFloat,
    context: Context,
) -> float:
    """Bits of local error of one operation execution.

    ``real_result`` must be ⟦op⟧_R applied to ``shadow_args`` (the
    caller computes it anyway for shadow propagation, so it is passed
    in rather than recomputed).
    """
    rounded_args = [argument.to_float() for argument in shadow_args]
    float_result = apply_double(op, rounded_args)
    exact_rounded = real_result.to_float()
    return bits_of_error(float_result, exact_rounded)


def total_error(float_value: float, shadow_real: BigFloat) -> float:
    """Bits of error of a program value against its shadow real."""
    return bits_of_error(float_value, shadow_real.to_float())
