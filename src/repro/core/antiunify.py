"""Anti-unification of concrete traces into symbolic expressions.

Herbgrind generalizes the concrete expression recorded at each
operation site into a *symbolic expression*: the most-specific
generalization (Plotkin [30]) of every concrete expression seen there.
Sub-trees that differ between executions become variables; sub-trees
that are equivalent get the *same* variable, which is what lets input
characteristics speak about "the x in sqrt(x+1) - sqrt(x)".

Three refinements the implementation needs (paper Sections 4.3/6/6.1):

* **Incrementality** — the site keeps one symbolic expression and
  anti-unifies each new concrete trace into it (associative, so this
  equals batch generalization).
* **Depth bounding** — only ``max_depth`` operator levels survive;
  anything deeper becomes a variable.  Truncation is decided per trace
  *node* (maximum depth over all of its DAG occurrences), so a shared
  sub-computation that appears both shallow and deep — like the pixel
  coordinate in the plotter's ``sqrt(x^2+y^2) - x`` — collapses to the
  *same* variable at every occurrence.  That is how the paper's compact
  Section 3 fragment arises.
* **Bounded equivalence** — sub-tree equivalence is compared only to
  ``equivalence_depth`` levels (Section 6.1), a sound approximation.

Variable names persist across updates: a position that was variable
``v3`` keeps the name as long as each update brings one consistent
sub-tree to it, so input characteristics accumulate per variable; when
one old variable faces two different new sub-trees, it splits.

Symbolic expressions reuse the FPCore AST (Num/Var/Op), which is also
how they are reported and fed to the improver.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.trace import (
    KIND_CONST,
    KIND_INPUT,
    KIND_OP,
    TraceNode,
    structural_key,
)
from repro.fpcore.ast import Expr, Num, Op, Var, num


class _UpdateState:
    """Book-keeping for one update() call."""

    __slots__ = ("truncated", "var_bindings", "node_vars", "memo")

    def __init__(self) -> None:
        #: idents of op nodes beyond the depth bound (by max occurrence).
        self.truncated: Set[int] = set()
        #: old variable name -> the trace key it stands for this update.
        self.var_bindings: Dict[str, tuple] = {}
        #: trace key -> variable name chosen this update (consistency of
        #: fresh variables across positions).
        self.node_vars: Dict[tuple, str] = {}
        #: merge memo keyed by (id(sym), trace ident).
        self.memo: Dict[tuple, Expr] = {}


@dataclass
class Generalization:
    """The evolving symbolic expression of one operation site."""

    equivalence_depth: int = 5
    #: Operator levels kept in the symbolic expression (Figures 5c/5d's
    #: axis; at 1 only the operation itself survives — the FpDebug-like
    #: configuration of Section 8.2).
    max_depth: int = 20
    expression: Expr = None  # None until the first trace arrives
    _fresh: itertools.count = field(default_factory=itertools.count)

    # ------------------------------------------------------------------

    def update(self, trace: TraceNode) -> Expr:
        """Anti-unify ``trace`` into the current symbolic expression."""
        state = _UpdateState()
        if trace.depth > self.max_depth:
            # A node's depth-from-root never exceeds the root's height,
            # so a shallow trace cannot contain truncated occurrences —
            # the (node, depth) walk below is pure overhead for it.
            self._mark_deep_nodes(trace, state)
        if self.expression is None:
            self.expression = self._initial(trace, state)
        else:
            self.expression = self._merge(self.expression, trace, state)
        return self.expression

    # ------------------------------------------------------------------
    # Depth marking: a node is truncated when ANY occurrence lies beyond
    # the depth bound; being a DAG walk over (node, depth) pairs, the
    # cost is bounded by (visible nodes) x (max_depth).
    # ------------------------------------------------------------------

    def _mark_deep_nodes(self, trace: TraceNode, state: _UpdateState) -> None:
        max_depth = self.max_depth
        seen: Set[Tuple[int, int]] = set()
        stack = [(trace, 1)]
        while stack:
            node, depth = stack.pop()
            if node.kind != KIND_OP:
                continue
            key = (node.ident, depth)
            if key in seen:
                continue
            seen.add(key)
            if depth > max_depth:
                state.truncated.add(node.ident)
                continue  # children are invisible anyway
            if depth + node.depth <= max_depth:
                # The whole subtree fits under the bound via this path;
                # deeper occurrences re-enter through their own paths.
                continue
            for child in node.args:
                stack.append((child, depth + 1))

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------

    def _trace_key(self, node: TraceNode) -> tuple:
        return structural_key(node, self.equivalence_depth)

    def _fresh_name(self) -> str:
        return f"v{next(self._fresh)}"

    def _variable_at(
        self, symbolic: Optional[Expr], trace: TraceNode, state: _UpdateState
    ) -> Var:
        """The variable generalizing (symbolic, trace) at this position.

        Keeps old variable names stable when each update binds them to
        one consistent sub-tree; assigns the same fresh name to
        equivalent new sub-trees within an update.
        """
        trace_key = self._trace_key(trace)
        if isinstance(symbolic, Var):
            bound = state.var_bindings.get(symbolic.name)
            if bound is None:
                state.var_bindings[symbolic.name] = trace_key
                state.node_vars.setdefault(trace_key, symbolic.name)
                return symbolic
            if bound == trace_key:
                return symbolic
            # The old variable faces a second, different sub-tree: split.
        name = state.node_vars.get(trace_key)
        if name is None:
            name = self._fresh_name()
            state.node_vars[trace_key] = name
        return Var(name)

    # ------------------------------------------------------------------
    # First trace: concrete -> symbolic, sharing-aware, depth-bounded
    # ------------------------------------------------------------------

    def _initial(self, trace: TraceNode, state: _UpdateState) -> Expr:
        memo: Dict[int, Expr] = {}

        def convert(node: TraceNode) -> Expr:
            cached = memo.get(node.ident)
            if cached is not None:
                return cached
            if node.kind == KIND_OP:
                if node.ident in state.truncated:
                    result = self._variable_at(None, node, state)
                else:
                    result = Op(node.op, tuple(convert(a) for a in node.args))
            elif node.kind == KIND_INPUT:
                result = Var(node.op)
            elif node.kind == KIND_CONST and math.isfinite(node.value):
                result = num(node.value)
            else:
                result = self._variable_at(None, node, state)
            memo[node.ident] = result
            return result

        return convert(trace)

    # ------------------------------------------------------------------
    # Subsequent traces: pairwise lgg
    # ------------------------------------------------------------------

    def _merge(self, symbolic: Expr, trace: TraceNode, state: _UpdateState) -> Expr:
        key = (id(symbolic), trace.ident)
        cached = state.memo.get(key)
        if cached is not None:
            return cached
        result = self._merge_uncached(symbolic, trace, state)
        state.memo[key] = result
        return result

    def _merge_uncached(
        self, symbolic: Expr, trace: TraceNode, state: _UpdateState
    ) -> Expr:
        if trace.kind == KIND_OP and trace.ident in state.truncated:
            return self._variable_at(symbolic, trace, state)
        if isinstance(symbolic, Op) and trace.kind == KIND_OP \
                and symbolic.op == trace.op \
                and len(symbolic.args) == len(trace.args):
            merged = tuple(
                self._merge(s, t, state)
                for s, t in zip(symbolic.args, trace.args)
            )
            if all(m is s for m, s in zip(merged, symbolic.args)):
                return symbolic  # unchanged: keep the existing object
            return Op(symbolic.op, merged)
        if isinstance(symbolic, Num) and trace.kind == KIND_CONST \
                and float(symbolic.value) == trace.value:
            return symbolic
        if isinstance(symbolic, Var) and trace.kind == KIND_INPUT \
                and symbolic.name == trace.op:
            return symbolic
        return self._variable_at(symbolic, trace, state)


def collect_variable_values(
    symbolic: Expr, trace: TraceNode, out: Dict[str, float]
) -> None:
    """Record, for each variable of ``symbolic``, the value the matching
    sub-tree of ``trace`` took in this execution.

    Called right after :meth:`Generalization.update`, so ``symbolic``
    generalizes ``trace`` position-wise.  When the same variable appears
    at several positions the values agree by construction (up to the
    bounded-depth approximation); the last one wins.  The walk is
    memoized on node identity because traces are DAGs.
    """
    seen = set()

    def walk(sym: Expr, node: TraceNode) -> None:
        key = (id(sym), node.ident)
        if key in seen:
            return
        seen.add(key)
        if isinstance(sym, Var):
            out[sym.name] = node.value
            return
        if isinstance(sym, Op) and node.kind == KIND_OP \
                and sym.op == node.op and len(sym.args) == len(node.args):
            for sym_arg, trace_arg in zip(sym.args, node.args):
                walk(sym_arg, trace_arg)

    walk(symbolic, trace)
