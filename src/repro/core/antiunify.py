"""Anti-unification of concrete traces into symbolic expressions.

Herbgrind generalizes the concrete expression recorded at each
operation site into a *symbolic expression*: the most-specific
generalization (Plotkin [30]) of every concrete expression seen there.
Sub-trees that differ between executions become variables; sub-trees
that are equivalent get the *same* variable, which is what lets input
characteristics speak about "the x in sqrt(x+1) - sqrt(x)".

Three refinements the implementation needs (paper Sections 4.3/6/6.1):

* **Incrementality** — the site keeps one symbolic expression and
  anti-unifies each new concrete trace into it (associative, so this
  equals batch generalization).
* **Depth bounding** — only ``max_depth`` operator levels survive;
  anything deeper becomes a variable.  Truncation is decided per trace
  *node* (maximum depth over all of its DAG occurrences), so a shared
  sub-computation that appears both shallow and deep — like the pixel
  coordinate in the plotter's ``sqrt(x^2+y^2) - x`` — collapses to the
  *same* variable at every occurrence.  That is how the paper's compact
  Section 3 fragment arises.
* **Bounded equivalence** — sub-tree equivalence is compared only to
  ``equivalence_depth`` levels (Section 6.1), a sound approximation.

Variable names persist across updates: a position that was variable
``v3`` keeps the name as long as each update brings one consistent
sub-tree to it, so input characteristics accumulate per variable; when
one old variable faces two different new sub-trees, it splits.

Symbolic expressions reuse the FPCore AST (Num/Var/Op), which is also
how they are reported and fed to the improver.

**The steady-state fast path** (``fast=True``, the compiled engine):
in loops, almost every update leaves the symbolic expression unchanged
— the site saw this shape before and only the leaf values moved.  The
fast path runs one allocation-free walk of the *existing* expression
against the incoming trace that simultaneously (a) verifies the
expression already generalizes the trace — operator by operator,
constant by constant, with variable-consistency checked through the
same bounded-depth structural keys the full walk uses — and (b)
collects the per-variable values in exactly the order
:func:`collect_variable_values` would.  Any discrepancy bails out to
the unmodified full walk, so results are *identical* to the reference
path by construction; the fast path only skips work whose outcome it
has proved.  Deep-trace truncation marks are served by a per-node
memo (:meth:`Generalization._deep_marks`) that computes the same
marked set as the direct walk at a fraction of the cost.

All traversals are iterative (explicit stacks), so traces and depth
bounds far beyond Python's recursion limit are safe.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.core.trace import (
    KIND_CONST,
    KIND_INPUT,
    KIND_OP,
    P_CONST,
    P_INPUT,
    P_OP,
    TraceNode,
    structural_key,
)
from repro.fpcore.ast import Expr, Num, Op, Var, num


class _UpdateState:
    """Book-keeping for one update() call."""

    __slots__ = ("truncated", "var_bindings", "node_vars", "memo")

    def __init__(self) -> None:
        #: idents of op nodes beyond the depth bound (by max occurrence).
        self.truncated: Set[int] = set()
        #: old variable name -> the trace key it stands for this update.
        self.var_bindings: Dict[str, tuple] = {}
        #: trace key -> variable name chosen this update (consistency of
        #: fresh variables across positions).
        self.node_vars: Dict[tuple, str] = {}
        #: merge memo keyed by (id(sym), trace ident).
        self.memo: Dict[tuple, Expr] = {}


@dataclass
class Generalization:
    """The evolving symbolic expression of one operation site."""

    equivalence_depth: int = 5
    #: Operator levels kept in the symbolic expression (Figures 5c/5d's
    #: axis; at 1 only the operation itself survives — the FpDebug-like
    #: configuration of Section 8.2).
    max_depth: int = 20
    expression: Expr = None  # None until the first trace arrives
    #: Enable the steady-state fast path and the memoized deep-mark
    #: computation (the compiled engine; results are identical).
    fast: bool = False
    #: Optional per-stage counter sink (a
    #: :class:`repro.core.analysis.PipelineStageCounters`); when set,
    #: every update records its verdict (``antiunify_fast`` /
    #: ``antiunify_merge``) here — counted at this layer so fused and
    #: generic callers report uniformly.
    stats: object = None
    _fresh: itertools.count = field(default_factory=itertools.count)
    #: Cache of which variable names occur more than once in
    #: ``expression`` (fast-path consistency checking), keyed by the
    #: expression object it was computed for.
    _multi_expr: object = field(default=None, init=False, repr=False)
    _multi_names: Optional[FrozenSet[str]] = field(
        default=None, init=False, repr=False
    )
    #: Flat pre-order verification program compiled from ``expression``
    #: (fast path); False = not compiled yet / expression changed,
    #: None = expression too large or unusual, use the generic walk.
    _flat: object = field(default=False, init=False, repr=False)
    _flat_expr: object = field(default=None, init=False, repr=False)
    #: Site-compiled verifier: the flat program unrolled into one
    #: straight-line generated function (False = not built yet, None =
    #: not compilable, use the interpreted walk).
    _verifier: object = field(default=False, init=False, repr=False)
    _verifier_expr: object = field(default=None, init=False, repr=False)
    #: Steady-state detection: consecutive interpreted fast-path
    #: successes for the current expression object.  The generated
    #: verifier is only built past :data:`VERIFIER_THRESHOLD` — code
    #: generation costs tens of microseconds, which loop sites amortize
    #: over thousands of iterations and straight-line sites never
    #: would.
    _steady_expr: object = field(default=None, init=False, repr=False)
    _steady_hits: int = field(default=0, init=False, repr=False)

    #: Positions cap for the flattened (tree-unfolded) expression; a
    #: heavily shared expression DAG falls back to the generic
    #: pair-memoized walk instead of unrolling.
    FLAT_LIMIT = 4096

    #: Entry cap for the generated straight-line verifier; larger
    #: expressions keep the interpreted flat-program walk.
    VERIFIER_LIMIT = 160

    #: Interpreted successes (for one expression object) before the
    #: verifier is generated.
    VERIFIER_THRESHOLD = 32

    # ------------------------------------------------------------------

    def update(self, trace: TraceNode) -> Expr:
        """Anti-unify ``trace`` into the current symbolic expression."""
        state = _UpdateState()
        if trace.depth > self.max_depth:
            # A node's depth-from-root never exceeds the root's height,
            # so a shallow trace cannot contain truncated occurrences —
            # the deep-mark walk is pure overhead for it.
            if self.fast:
                state.truncated = self._truncation_frontier(trace)
            else:
                self._mark_deep_nodes(trace, state)
        if self.expression is None:
            self.expression = self._initial(trace, state)
        else:
            self.expression = self._merge(self.expression, trace, state)
        return self.expression

    def update_with_bindings(
        self, trace: TraceNode
    ) -> Tuple[Expr, Dict[str, float]]:
        """Anti-unify ``trace`` and collect its per-variable values.

        Equivalent to :meth:`update` followed by
        :func:`collect_variable_values`, but in fast mode the two walks
        fuse into one — and skip the merge entirely — whenever the
        expression provably already generalizes the trace.
        """
        if self.fast and self.expression is not None:
            bindings = self._fast_update(trace)
            if bindings is not None:
                if self.stats is not None:
                    self.stats.antiunify_fast += 1
                return self.expression, bindings
            state = _UpdateState()
            if trace.depth > self.max_depth:
                state.truncated = self._truncation_frontier(trace)
            self.expression = self._merge(self.expression, trace, state)
        else:
            self.update(trace)
        if self.stats is not None:
            self.stats.antiunify_merge += 1
        bindings = {}
        collect_variable_values(self.expression, trace, bindings)
        return self.expression, bindings

    # ------------------------------------------------------------------
    # Depth marking: a node is truncated when ANY occurrence lies beyond
    # the depth bound; being a DAG walk over (node, depth) pairs, the
    # cost is bounded by (visible nodes) x (max_depth).
    # ------------------------------------------------------------------

    def _mark_deep_nodes(self, trace: TraceNode, state: _UpdateState) -> None:
        max_depth = self.max_depth
        seen: Set[Tuple[int, int]] = set()
        stack = [(trace, 1)]
        while stack:
            node, depth = stack.pop()
            if node.kind != KIND_OP:
                continue
            key = (node.ident, depth)
            if key in seen:
                continue
            seen.add(key)
            if depth > max_depth:
                state.truncated.add(node.ident)
                continue  # children are invisible anyway
            if depth + node.depth <= max_depth:
                # The whole subtree fits under the bound via this path;
                # deeper occurrences re-enter through their own paths.
                continue
            for child in node.args:
                stack.append((child, depth + 1))

    def _truncation_frontier(self, trace: TraceNode):
        """The truncated set of a deep trace, served in O(1) when the
        trace carries the pool's distance index."""
        levels = trace.levels
        if levels is not None and len(levels) > self.max_depth:
            return levels[self.max_depth]
        return self._deep_marks(trace)

    def _deep_marks(self, trace: TraceNode) -> Set[int]:
        """The same marked set as :meth:`_mark_deep_nodes`, leaner.

        A node is marked exactly when it occurs at depth
        ``max_depth + 1`` through some path of expandable ancestors —
        anything deeper is unreachable (the walk stops at marked
        nodes), so this *is* the full truncation frontier.  The walk
        prunes every subtree too shallow to reach the frontier and
        dedupes (node, depth) pairs through packed integer keys, so its
        cost is proportional to the nodes straddling the depth bound,
        not the trace.
        """
        max_depth = self.max_depth
        marked: Set[int] = set()
        if trace.kind != KIND_OP:
            return marked
        stride = max_depth + 2
        seen: Set[int] = {trace.ident * stride + 1}
        stack = [(trace, 1)]
        pop = stack.pop
        push = stack.append
        while stack:
            node, depth = pop()
            child_depth = depth + 1
            for child in node.args:
                if child.kind != KIND_OP or depth + child.depth <= max_depth:
                    continue  # leaf, or the whole subtree fits the bound
                if child_depth > max_depth:
                    marked.add(child.ident)
                    continue  # children are invisible anyway
                key = child.ident * stride + child_depth
                if key in seen:
                    continue
                seen.add(key)
                push((child, child_depth))
        return marked

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------

    def _trace_key(self, node: TraceNode) -> tuple:
        return structural_key(node, self.equivalence_depth)

    def _fresh_name(self) -> str:
        return f"v{next(self._fresh)}"

    def _variable_at(
        self, symbolic: Optional[Expr], trace: TraceNode, state: _UpdateState
    ) -> Var:
        """The variable generalizing (symbolic, trace) at this position.

        Keeps old variable names stable when each update binds them to
        one consistent sub-tree; assigns the same fresh name to
        equivalent new sub-trees within an update.
        """
        trace_key = self._trace_key(trace)
        if isinstance(symbolic, Var):
            bound = state.var_bindings.get(symbolic.name)
            if bound is None:
                state.var_bindings[symbolic.name] = trace_key
                state.node_vars.setdefault(trace_key, symbolic.name)
                return symbolic
            if bound == trace_key:
                return symbolic
            # The old variable faces a second, different sub-tree: split.
        name = state.node_vars.get(trace_key)
        if name is None:
            name = self._fresh_name()
            state.node_vars[trace_key] = name
        return Var(name)

    # ------------------------------------------------------------------
    # The steady-state fast path: one fused verify-and-collect walk
    # ------------------------------------------------------------------

    def _multi_occurrence_names(self) -> FrozenSet[str]:
        """Variable names appearing at more than one position of the
        current expression.  Only these need structural-key consistency
        checks in the fast path: a single-occurrence variable cannot
        face two conflicting sub-trees within one update."""
        expression = self.expression
        if self._multi_expr is expression and self._multi_names is not None:
            return self._multi_names
        counts: Dict[str, int] = {}
        stack = [expression]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                counts[node.name] = counts.get(node.name, 0) + 1
            elif isinstance(node, Op):
                stack.extend(node.args)
        names = frozenset(n for n, c in counts.items() if c > 1)
        self._multi_expr = expression
        self._multi_names = names
        return names

    def _flat_program(self):
        """The expression compiled to a flat pre-order check list.

        Entries: ``(0, op, argcount)`` for operators, ``(1, name,
        is_multi)`` for variables, ``(2, float_value)`` for literals.
        Interpreting this list against a trace (one node stack, no
        pair memo, no ``id()`` calls) is the cheapest sound
        verification: result-equivalent to the memoized walk because a
        repeated (position, node) pair can only re-record the same
        binding value.  Expressions whose tree unfolding exceeds
        :data:`FLAT_LIMIT` positions keep the memoized walk instead.
        """
        expression = self.expression
        if self._flat_expr is expression and self._flat is not False:
            return self._flat
        counts: Dict[str, int] = {}
        entries = []
        stack = [expression]
        flat: object = None
        while stack:
            node = stack.pop()
            cls = node.__class__
            if cls is Var:
                name = node.name
                counts[name] = counts.get(name, 0) + 1
                entries.append((1, name, False))
            elif cls is Op:
                entries.append((0, node.op, len(node.args)))
                stack.extend(reversed(node.args))
            elif cls is Num:
                entries.append((2, node.as_float()))
            else:
                entries = None  # give the generic walk the oddity
                break
            if entries is not None and len(entries) > self.FLAT_LIMIT:
                entries = None
                break
        if entries is not None:
            multi = frozenset(n for n, c in counts.items() if c > 1)
            flat = [
                (1, entry[1], entry[1] in multi) if entry[0] == 1 else entry
                for entry in entries
            ]
            self._multi_expr = expression
            self._multi_names = multi
        self._flat = flat
        self._flat_expr = expression
        return flat

    def _fast_update(self, trace: TraceNode) -> Optional[Dict[str, float]]:
        """Verify the expression already generalizes ``trace``; on
        success return the variable bindings, else None (caller falls
        back to the full merge).

        The check mirrors the full merge decision-for-decision — same
        variable-consistency rule, same truncation handling — except
        that instead of *building* the merged expression it *bails*
        the moment the merge would return anything but the existing
        node.  Truncation is served in O(1) from the trace pool's
        distance index when present; unpooled traces verify first and
        then run one frontier walk over the recorded operator
        positions.  Positions that are already variables are
        indifferent to truncation — the merge computes the same
        bounded-depth key either way.
        """
        max_depth = self.max_depth
        truncated: Optional[FrozenSet[int]] = None
        collect_ops = False
        if trace.depth > max_depth:
            levels = trace.levels
            if levels is not None and len(levels) > max_depth:
                truncated = levels[max_depth]
            else:
                collect_ops = True
        program = self._flat_program()
        if program is None:
            return self._fast_update_generic(trace, truncated, collect_ops)
        eq_depth = self.equivalence_depth
        op_idents: Set[int] = set()
        bindings: Dict[str, float] = {}
        var_keys: Dict[str, tuple] = {}
        nodes = [trace]
        pop = nodes.pop
        for entry in program:
            node = pop()
            tag = entry[0]
            if tag == 0:
                if node.kind != KIND_OP or node.op != entry[1]:
                    return None
                if truncated is not None and node.ident in truncated:
                    return None  # this expanded position is truncated
                args = node.args
                count = entry[2]
                if len(args) != count:
                    return None
                if collect_ops:
                    op_idents.add(node.ident)
                if count == 2:
                    nodes.append(args[1])
                    nodes.append(args[0])
                elif count == 1:
                    nodes.append(args[0])
                else:
                    nodes.extend(args[::-1])
            elif tag == 1:
                name = entry[1]
                if node.kind == KIND_INPUT and node.op == name:
                    bindings[name] = node.value
                    continue
                if entry[2]:  # multi-occurrence: keys must agree
                    trace_key = structural_key(node, eq_depth)
                    bound = var_keys.get(name)
                    if bound is None:
                        var_keys[name] = trace_key
                    elif bound != trace_key:
                        return None  # the variable would split
                bindings[name] = node.value
            else:
                if node.kind != KIND_CONST or node.value != entry[1]:
                    return None
        if collect_ops and self._frontier_hits(trace, op_idents):
            return None  # an expanded position is truncated: full merge
        return bindings

    # ------------------------------------------------------------------
    # The ident-based fast path (pooled traces, no materialized nodes)
    # ------------------------------------------------------------------

    def update_with_bindings_pooled(
        self, pool, ident: int
    ) -> Tuple[Expr, Dict[str, float]]:
        """The ident-first mirror of :meth:`update_with_bindings`.

        ``ident`` names a trace in ``pool``'s flat arrays.  In the
        steady state the fused walk verifies and collects directly off
        the arrays — no :class:`TraceNode` is materialized.  Any
        discrepancy materializes the node once and falls back to the
        unmodified full merge, so results are identical to the
        node-based path by construction.
        """
        if self.fast and self.expression is not None:
            bindings = self._fast_update_pooled(pool, ident)
            if bindings is not None:
                return self.expression, bindings
        return self.bail_update_pooled(pool, ident)

    def bail_update_pooled(
        self, pool, ident: int
    ) -> Tuple[Expr, Dict[str, float]]:
        """The non-steady half of the pooled update: materialize the
        node once and run the unmodified first-trace / full-merge walk
        plus value collection.  Callers that already ran (and failed)
        :meth:`_fast_update_pooled` jump straight here."""
        node = pool.node(ident)
        if self.fast and self.expression is not None:
            state = _UpdateState()
            if node.depth > self.max_depth:
                state.truncated = self._truncation_frontier(node)
            self.expression = self._merge(self.expression, node, state)
        else:
            self.update(node)
        if self.stats is not None:
            self.stats.antiunify_merge += 1
        bindings = {}
        collect_variable_values(self.expression, node, bindings)
        return self.expression, bindings

    def _compiled_verifier(self):
        """The flat program unrolled into one generated function.

        This is the *site-compiled* steady-state path: the expression's
        shape is static between merges, so the verify-and-collect walk
        can be straight-line code — no dispatch loop, no entry tuples,
        no traversal stack.  The generated function takes the pool's
        flat arrays and returns the bindings dict or None, with exactly
        the interpreted walk's decisions (the parity suites enforce
        it).  Rebuilt whenever the expression object changes; None when
        the expression is too large or contains non-finite literals.
        """
        if self._verifier_expr is self.expression \
                and self._verifier is not False:
            return self._verifier
        program = self._flat_program()
        verifier = None
        if program is not None and len(program) <= self.VERIFIER_LIMIT:
            verifier = _generate_verifier(program)
        self._verifier = verifier
        self._verifier_expr = self.expression
        return verifier

    def _fast_update_pooled(
        self, pool, ident: int
    ) -> Optional[Dict[str, float]]:
        """Verify-and-collect over the pool's flat arrays.

        Decision-for-decision identical to :meth:`_fast_update`; the
        truncation frontier comes from the pool's distance index (or
        :meth:`~repro.core.trace.TracePool.deep_marks` when the index
        is capped below the depth bound).  Expressions too large for
        the flat program materialize the node and reuse the node-based
        generic walk.
        """
        max_depth = self.max_depth
        truncated: Optional[FrozenSet[int]] = None
        collect_ops = False
        if pool.depths[ident] > max_depth:
            levels = pool.levels[ident]
            if levels is not None and len(levels) > max_depth:
                truncated = levels[max_depth]
            else:
                collect_ops = True
        # Inline the warm case of _flat_program (one call per op).
        if self._flat_expr is self.expression and self._flat is not False:
            program = self._flat
        else:
            program = self._flat_program()
        if program is None:
            node = pool.node(ident)
            return self._fast_update_generic(node, truncated, collect_ops)
        if not collect_ops:
            expression = self.expression
            verifier = None
            if self._verifier_expr is expression:
                verifier = self._verifier
            elif self._steady_expr is not expression:
                self._steady_expr = expression
                self._steady_hits = 0
            elif self._steady_hits >= self.VERIFIER_THRESHOLD:
                verifier = self._compiled_verifier()
            if verifier is not None:
                bindings = verifier(
                    pool.kinds, pool.ops, pool.args, pool.values,
                    pool.structural_key_of, self.equivalence_depth,
                    ident, truncated,
                )
                if bindings is not None and self.stats is not None:
                    self.stats.antiunify_fast += 1
                return bindings
        eq_depth = self.equivalence_depth
        kinds = pool.kinds
        opsA = pool.ops
        argsA = pool.args
        valsA = pool.values
        skey = pool.structural_key_of
        op_idents: Set[int] = set()
        bindings: Dict[str, float] = {}
        var_keys: Dict[str, tuple] = {}
        stack = [ident]
        pop = stack.pop
        for entry in program:
            cur = pop()
            tag = entry[0]
            if tag == 0:
                if kinds[cur] != P_OP or opsA[cur] != entry[1]:
                    return None
                if truncated is not None and cur in truncated:
                    return None  # this expanded position is truncated
                cargs = argsA[cur]
                count = entry[2]
                if len(cargs) != count:
                    return None
                if collect_ops:
                    op_idents.add(cur)
                if count == 2:
                    stack.append(cargs[1])
                    stack.append(cargs[0])
                elif count == 1:
                    stack.append(cargs[0])
                else:
                    stack.extend(cargs[::-1])
            elif tag == 1:
                name = entry[1]
                if kinds[cur] == P_INPUT and opsA[cur] == name:
                    bindings[name] = valsA[cur]
                    continue
                if entry[2]:  # multi-occurrence: keys must agree
                    trace_key = skey(cur, eq_depth)
                    bound = var_keys.get(name)
                    if bound is None:
                        var_keys[name] = trace_key
                    elif bound != trace_key:
                        return None  # the variable would split
                bindings[name] = valsA[cur]
            else:
                if kinds[cur] != P_CONST or valsA[cur] != entry[1]:
                    return None
        if collect_ops and \
                not pool.deep_marks(ident, max_depth).isdisjoint(op_idents):
            return None  # an expanded position is truncated: full merge
        self._steady_hits += 1
        if self.stats is not None:
            self.stats.antiunify_fast += 1
        return bindings

    def _fast_update_generic(
        self,
        trace: TraceNode,
        truncated: Optional[FrozenSet[int]],
        collect_ops: bool,
    ) -> Optional[Dict[str, float]]:
        """The pair-memoized fallback for expressions the flat program
        cannot represent (oversized tree unfoldings)."""
        multi = self._multi_occurrence_names()
        eq_depth = self.equivalence_depth
        op_idents: Set[int] = set()
        bindings: Dict[str, float] = {}
        var_keys: Dict[str, tuple] = {}
        seen: Set[Tuple[int, int]] = set()
        # Pre-order, left-to-right (reversed pushes), matching both the
        # merge's variable-binding order and collect's last-one-wins.
        stack = [(self.expression, trace)]
        while stack:
            sym, node = stack.pop()
            key = (id(sym), node.ident)
            if key in seen:
                continue
            seen.add(key)
            cls = sym.__class__
            if cls is Var:
                name = sym.name
                kind = node.kind
                if kind == KIND_INPUT and node.op == name:
                    bindings[name] = node.value
                    continue
                if name in multi:
                    trace_key = structural_key(node, eq_depth)
                    bound = var_keys.get(name)
                    if bound is None:
                        var_keys[name] = trace_key
                    elif bound != trace_key:
                        return None  # the variable would split
                bindings[name] = node.value
                continue
            if cls is Op:
                if node.kind != KIND_OP or node.op != sym.op:
                    return None
                if truncated is not None and node.ident in truncated:
                    return None  # this expanded position is truncated
                sym_args = sym.args
                node_args = node.args
                if len(sym_args) != len(node_args):
                    return None
                if collect_ops:
                    op_idents.add(node.ident)
                for index in range(len(sym_args) - 1, -1, -1):
                    stack.append((sym_args[index], node_args[index]))
                continue
            if cls is Num:
                if node.kind != KIND_CONST or sym.as_float() != node.value:
                    return None
                continue
            return None  # unexpected expression node: let the full walk decide
        if collect_ops and self._frontier_hits(trace, op_idents):
            return None  # an expanded position is truncated: full merge
        return bindings

    def _frontier_hits(self, trace: TraceNode, op_idents: Set[int]) -> bool:
        """Whether any of ``op_idents`` occurs at the truncation
        frontier (depth ``max_depth + 1``) of ``trace`` — the only way
        deep-trace truncation can invalidate a successful fast walk.
        Only reached for unpooled traces (no distance index), so the
        full frontier walk is acceptable here."""
        return not self._deep_marks(trace).isdisjoint(op_idents)

    # ------------------------------------------------------------------
    # First trace: concrete -> symbolic, sharing-aware, depth-bounded
    # ------------------------------------------------------------------

    def _initial(self, trace: TraceNode, state: _UpdateState) -> Expr:
        memo: Dict[int, Expr] = {}
        truncated = state.truncated
        stack = [trace]
        while stack:
            node = stack[-1]
            ident = node.ident
            if ident in memo:
                stack.pop()
                continue
            if node.kind == KIND_OP and ident not in truncated:
                pending = [a for a in node.args if a.ident not in memo]
                if pending:
                    stack.extend(reversed(pending))
                    continue
                memo[ident] = Op(
                    node.op, tuple(memo[a.ident] for a in node.args)
                )
            elif node.kind == KIND_INPUT:
                memo[ident] = Var(node.op)
            elif node.kind == KIND_CONST and math.isfinite(node.value):
                memo[ident] = num(node.value)
            else:
                memo[ident] = self._variable_at(None, node, state)
            stack.pop()
        return memo[trace.ident]

    # ------------------------------------------------------------------
    # Subsequent traces: pairwise lgg
    # ------------------------------------------------------------------

    def _merge(self, symbolic: Expr, trace: TraceNode, state: _UpdateState) -> Expr:
        memo = state.memo
        root_key = (id(symbolic), trace.ident)
        cached = memo.get(root_key)
        if cached is not None:
            return cached
        truncated = state.truncated
        stack = [(symbolic, trace)]
        while stack:
            sym, node = stack[-1]
            key = (id(sym), node.ident)
            if key in memo:
                stack.pop()
                continue
            if (
                node.kind == KIND_OP
                and node.ident not in truncated
                and isinstance(sym, Op)
                and sym.op == node.op
                and len(sym.args) == len(node.args)
            ):
                pairs = [
                    (s, t) for s, t in zip(sym.args, node.args)
                    if (id(s), t.ident) not in memo
                ]
                if pairs:
                    stack.extend(reversed(pairs))
                    continue
                merged = tuple(
                    memo[(id(s), t.ident)]
                    for s, t in zip(sym.args, node.args)
                )
                if all(m is s for m, s in zip(merged, sym.args)):
                    result = sym  # unchanged: keep the existing object
                else:
                    result = Op(sym.op, merged)
            elif node.kind == KIND_OP and node.ident in truncated:
                result = self._variable_at(sym, node, state)
            elif isinstance(sym, Num) and node.kind == KIND_CONST \
                    and sym.as_float() == node.value:
                result = sym
            elif isinstance(sym, Var) and node.kind == KIND_INPUT \
                    and sym.name == node.op:
                result = sym
            else:
                result = self._variable_at(sym, node, state)
            memo[key] = result
            stack.pop()
        return memo[root_key]


def _generate_verifier(program):
    """Generate the straight-line verify-and-collect function of one
    flat program (see :meth:`Generalization._compiled_verifier`).

    The traversal stack is simulated at *generation* time, so the
    emitted code is pure straight-line: one kind/op check and an
    argument unpack per operator position, one dict store per variable
    position, one constant compare per literal.  Multi-occurrence
    variables keep the structural-key consistency check; non-finite
    literals are not generatable (their interpreted compare is
    always-False, which straight-line code happily mirrors, but the
    interpreted walk is rare enough there).
    """
    lines = [
        "def _verify(kinds, ops, argsA, vals, skey, eqd, root, truncated):",
        "    b = {}",
    ]
    emit = lines.append
    has_multi = any(e[0] == 1 and e[2] for e in program)
    if has_multi:
        emit("    vk = {}")
    counter = 0
    stack = ["root"]
    for entry in program:
        var = stack.pop()
        tag = entry[0]
        if tag == 0:
            emit(f"    if kinds[{var}] != 0 or ops[{var}] != {entry[1]!r}:")
            emit("        return None")
            emit(f"    if truncated is not None and {var} in truncated:")
            emit("        return None")
            count = entry[2]
            args_var = f"a{counter}"
            emit(f"    {args_var} = argsA[{var}]")
            emit(f"    if len({args_var}) != {count}:")
            emit("        return None")
            children = [f"n{counter}_{i}" for i in range(count)]
            counter += 1
            if count == 1:
                emit(f"    {children[0]}, = {args_var}")
            elif count > 1:
                emit(f"    {', '.join(children)} = {args_var}")
            stack.extend(reversed(children))
        elif tag == 1:
            name = entry[1]
            if entry[2]:  # multi-occurrence: keys must agree
                emit(f"    if kinds[{var}] != 1 or ops[{var}] != {name!r}:")
                emit(f"        k = skey({var}, eqd)")
                emit(f"        prev = vk.get({name!r})")
                emit("        if prev is None:")
                emit(f"            vk[{name!r}] = k")
                emit("        elif prev != k:")
                emit("            return None")
            emit(f"    b[{name!r}] = vals[{var}]")
        else:
            value = entry[1]
            if value != value or value in (math.inf, -math.inf):
                return None  # non-finite literal: keep the interpreter
            emit(f"    if kinds[{var}] != 2 or vals[{var}] != {value!r}:")
            emit("        return None")
    emit("    return b")
    namespace: Dict[str, object] = {}
    exec("\n".join(lines), namespace)  # noqa: S102 — generated from our own AST
    return namespace["_verify"]


def collect_variable_values(
    symbolic: Expr, trace: TraceNode, out: Dict[str, float]
) -> None:
    """Record, for each variable of ``symbolic``, the value the matching
    sub-tree of ``trace`` took in this execution.

    Called right after :meth:`Generalization.update`, so ``symbolic``
    generalizes ``trace`` position-wise.  When the same variable appears
    at several positions the values agree by construction (up to the
    bounded-depth approximation); the last one wins.  The walk is
    memoized on node identity because traces are DAGs, and iterative so
    deep traces cannot overflow the recursion limit.
    """
    seen = set()
    stack = [(symbolic, trace)]
    while stack:
        sym, node = stack.pop()
        key = (id(sym), node.ident)
        if key in seen:
            continue
        seen.add(key)
        if isinstance(sym, Var):
            out[sym.name] = node.value
            continue
        if isinstance(sym, Op) and node.kind == KIND_OP \
                and sym.op == node.op and len(sym.args) == len(node.args):
            for index in range(len(sym.args) - 1, -1, -1):
                stack.append((sym.args[index], node.args[index]))
