"""Input characteristics (paper Section 4.4).

For every symbolic-expression variable, the analysis summarizes the
values that variable took — once over *all* executions and once over
the executions with high local error.  The summary function is modular
(the paper ships three); all implementations here are incremental, as
Section 6's incrementalization requires.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.config import (
    AnalysisConfig,
    CHARACTERISTICS_NONE,
    CHARACTERISTICS_RANGE,
    CHARACTERISTICS_REPRESENTATIVE,
    CHARACTERISTICS_SIGN_SPLIT,
)


class InputSummary:
    """Incremental summary of the set of values one variable has taken."""

    def add(self, value: float) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable rendering for reports."""
        raise NotImplementedError

    def clauses(self, variable: str) -> List[str]:
        """FPCore :pre clauses constraining ``variable``."""
        raise NotImplementedError

    def is_empty(self) -> bool:
        raise NotImplementedError


class NoSummary(InputSummary):
    """The 'ranges off' configuration of Figure 5b."""

    def add(self, value: float) -> None:
        pass

    def describe(self) -> str:
        return "(not tracked)"

    def clauses(self, variable: str) -> List[str]:
        return []

    def is_empty(self) -> bool:
        return True


class RepresentativeInput(InputSummary):
    """Keeps one representative value (the first seen)."""

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def add(self, value: float) -> None:
        if self.value is None and not math.isnan(value):
            self.value = value

    def describe(self) -> str:
        return "(no values)" if self.value is None else f"example {self.value!r}"

    def clauses(self, variable: str) -> List[str]:
        if self.value is None:
            return []
        return [f"(== {variable} {self.value!r})"]

    def is_empty(self) -> bool:
        return self.value is None


class RangeSummary(InputSummary):
    """A single [min, max] interval over all values (NaNs counted apart)."""

    def __init__(self) -> None:
        self.low = math.inf
        self.high = -math.inf
        self.nan_count = 0
        self.count = 0

    def add(self, value: float) -> None:
        if math.isnan(value):
            self.nan_count += 1
            return
        self.count += 1
        if value < self.low:
            self.low = value
        if value > self.high:
            self.high = value

    def describe(self) -> str:
        if self.count == 0:
            return "(no values)" if not self.nan_count else "(only NaN)"
        text = f"[{self.low!r}, {self.high!r}]"
        if self.nan_count:
            text += f" plus {self.nan_count} NaN"
        return text

    def clauses(self, variable: str) -> List[str]:
        if self.count == 0:
            return []
        return [f"(<= {self.low!r} {variable} {self.high!r})"]

    def is_empty(self) -> bool:
        return self.count == 0 and self.nan_count == 0


class SignSplitRangeSummary(InputSummary):
    """Separate ranges for negative and non-negative values.

    The third implementation of Section 4.4: magnitude ranges are far
    more informative when a variable straddles zero (a single range
    [-1e9, 1e9] says nothing about how close to zero values get).
    """

    def __init__(self) -> None:
        self.negative = RangeSummary()
        self.nonnegative = RangeSummary()

    def add(self, value: float) -> None:
        # One frame, not two: this runs once per variable binding of
        # every executed operation under the default configuration.
        if math.isnan(value):
            self.nonnegative.nan_count += 1
            return
        target = self.negative if value < 0 else self.nonnegative
        target.count += 1
        if value < target.low:
            target.low = value
        if value > target.high:
            target.high = value

    def describe(self) -> str:
        parts = []
        if not self.negative.is_empty():
            parts.append(f"neg {self.negative.describe()}")
        if not self.nonnegative.is_empty():
            parts.append(f"pos {self.nonnegative.describe()}")
        return "; ".join(parts) if parts else "(no values)"

    def clauses(self, variable: str) -> List[str]:
        have_negative = self.negative.count > 0
        have_nonnegative = self.nonnegative.count > 0
        if have_negative and have_nonnegative:
            return [f"(<= {self.negative.low!r} {variable} {self.nonnegative.high!r})"]
        if have_negative:
            return self.negative.clauses(variable)
        if have_nonnegative:
            return self.nonnegative.clauses(variable)
        return []

    def is_empty(self) -> bool:
        return self.negative.is_empty() and self.nonnegative.is_empty()


_FACTORIES = {
    CHARACTERISTICS_NONE: NoSummary,
    CHARACTERISTICS_REPRESENTATIVE: RepresentativeInput,
    CHARACTERISTICS_RANGE: RangeSummary,
    CHARACTERISTICS_SIGN_SPLIT: SignSplitRangeSummary,
}


def make_summary(config: AnalysisConfig) -> InputSummary:
    """A fresh summary of the configured kind."""
    return _FACTORIES[config.input_characteristics]()


class CharacteristicsTable:
    """Per-variable summaries for one operation site."""

    def __init__(self, config: AnalysisConfig) -> None:
        self._config = config
        #: The summary constructor, resolved once — the recording hot
        #: path must not re-consult the config per fresh variable.
        self._factory = _FACTORIES[config.input_characteristics]
        self.by_variable: Dict[str, InputSummary] = {}

    def record(self, variable: str, value: float) -> None:
        summary = self.by_variable.get(variable)
        if summary is None:
            summary = self.by_variable[variable] = self._factory()
        summary.add(value)

    def record_many(self, bindings: Dict[str, float]) -> None:
        """Record one value per variable (the fused pipeline's bulk
        entry point; identical to calling :meth:`record` per item in
        iteration order)."""
        table = self.by_variable
        factory = self._factory
        for variable, value in bindings.items():
            summary = table.get(variable)
            if summary is None:
                summary = table[variable] = factory()
            summary.add(value)

    def clauses(self) -> List[str]:
        result = []
        for variable in sorted(self.by_variable):
            result.extend(self.by_variable[variable].clauses(variable))
        return result

    def describe(self) -> Dict[str, str]:
        return {
            variable: summary.describe()
            for variable, summary in sorted(self.by_variable.items())
        }
