"""Per-node source locations for extracted expressions.

The paper's footnote 5: automating repair insertion is future work,
"but Herbgrind can provide source locations for each node in the
extracted expression".  This module computes that mapping: for a
symbolic expression and the concrete trace it generalizes, every
operator position is annotated with the source location of the
instruction that produced it — letting a developer navigate from the
abstract fragment back into the (possibly multi-file, multi-language)
program.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.trace import KIND_OP, TraceNode
from repro.fpcore.ast import Expr, Op

Path = Tuple[int, ...]


def map_node_locations(
    symbolic: Expr, trace: TraceNode
) -> Dict[Path, Optional[str]]:
    """Source location for every operator position of ``symbolic``.

    ``trace`` must be a concrete trace the expression generalizes (the
    most recent one); the walk mirrors anti-unification's alignment and
    is memoized because traces are DAGs.  Positions are child-index
    paths from the root, as in :mod:`repro.improve.patterns`.
    """
    locations: Dict[Path, Optional[str]] = {}
    seen = set()

    def walk(sym: Expr, node: TraceNode, path: Path) -> None:
        key = (id(sym), node.ident, path)
        if key in seen:
            return
        seen.add(key)
        if isinstance(sym, Op) and node.kind == KIND_OP \
                and sym.op == node.op and len(sym.args) == len(node.args):
            locations[path] = node.loc
            for index, (sym_arg, trace_arg) in enumerate(
                zip(sym.args, node.args)
            ):
                walk(sym_arg, trace_arg, path + (index,))

    walk(symbolic, trace, ())
    return locations


def format_located_expression(
    symbolic: Expr, locations: Dict[Path, Optional[str]]
) -> str:
    """Render the expression with one line per operator node.

    Example output::

        (- ...)          csqrt.cpp:10
          (sqrt ...)     csqrt.cpp:7
            (+ ...)      csqrt.cpp:7
    """
    from repro.fpcore.printer import format_expr

    lines = []

    def walk(sym: Expr, path: Path, depth: int) -> None:
        if not isinstance(sym, Op):
            return
        location = locations.get(path) or "<unknown>"
        compact = f"({sym.op} ...)" if sym.args else f"({sym.op})"
        lines.append(f"{'  ' * depth}{compact:<{max(4, 28 - 2 * depth)}} {location}")
        for index, argument in enumerate(sym.args):
            walk(argument, path + (index,), depth + 1)

    walk(symbolic, (), 0)
    if not lines:
        return format_expr(symbolic)
    return "\n".join(lines)
