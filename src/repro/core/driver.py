"""Convenience drivers: analyse an FPCore benchmark end to end.

This is the pipeline of the paper's Section 8.1 methodology: compile a
benchmark to native form, run it under the analysis on sampled inputs,
and collect the report — minus Herbie, which lives in
:mod:`repro.improve`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import HerbgrindAnalysis, analyze_program
from repro.core.config import AnalysisConfig
from repro.fpcore.ast import FPCore, Num, Op, Var
from repro.fpcore.evaluator import eval_double
from repro.machine.compiler import compile_fpcore


def precondition_box(core: FPCore) -> Dict[str, Tuple[float, float]]:
    """Extract per-argument sampling ranges from the :pre conjunction.

    Non-range clauses are ignored here (they are rejection-tested by
    the sampler); arguments without a range default to [-1e9, 1e9].
    """
    box: Dict[str, Tuple[float, float]] = {}

    def visit(expr) -> None:
        if isinstance(expr, Op) and expr.op == "and":
            for arg in expr.args:
                visit(arg)
        elif (
            isinstance(expr, Op)
            and expr.op == "<="
            and len(expr.args) == 3
            and isinstance(expr.args[0], Num)
            and isinstance(expr.args[1], Var)
            and isinstance(expr.args[2], Num)
        ):
            low, variable, high = expr.args
            box[variable.name] = (float(low.value), float(high.value))

    if core.pre is not None:
        visit(core.pre)
    for argument in core.arguments:
        box.setdefault(argument, (-1e9, 1e9))
    return box


def _sample_range(rng: random.Random, low: float, high: float) -> float:
    """Sample a range, log-uniformly when it spans many binades.

    Linear sampling of [1e-12, 1] would essentially never produce a
    value below 1e-3; benchmarks whose interesting inputs are tiny
    (most cancellation problems) need log-scale sampling, which is also
    what Herbie does.
    """
    if low > 0 and high / low > 1e3:
        import math

        return math.exp(rng.uniform(math.log(low), math.log(high)))
    if high < 0 and low / high > 1e3:
        import math

        return -math.exp(rng.uniform(math.log(-high), math.log(-low)))
    return rng.uniform(low, high)


def sample_inputs(
    core: FPCore,
    count: int,
    seed: int = 0,
    max_rejections: int = 1000,
) -> List[List[float]]:
    """Sample ``count`` input tuples satisfying the :pre."""
    rng = random.Random(seed)
    box = precondition_box(core)
    points: List[List[float]] = []
    rejections = 0
    while len(points) < count:
        point = [
            _sample_range(rng, *box[argument]) for argument in core.arguments
        ]
        if core.pre is not None:
            env = dict(zip(core.arguments, point))
            try:
                acceptable = bool(eval_double(core.pre, env))
            except Exception:
                acceptable = False
            if not acceptable:
                rejections += 1
                if rejections > max_rejections:
                    raise ValueError(
                        f"{core.name}: cannot satisfy precondition"
                    )
                continue
        points.append(point)
    return points


def analyze_fpcore(
    core: FPCore,
    points: Optional[Sequence[Sequence[float]]] = None,
    config: Optional[AnalysisConfig] = None,
    num_points: int = 16,
    seed: int = 0,
    wrap_libraries: bool = True,
    libm=None,
) -> HerbgrindAnalysis:
    """Compile and analyse one benchmark on sampled (or given) inputs."""
    program = compile_fpcore(core)
    if points is None:
        points = sample_inputs(core, num_points, seed=seed)
    analysis, __ = analyze_program(
        program,
        points,
        config=config,
        wrap_libraries=wrap_libraries,
        libm=libm,
    )
    return analysis
