"""Legacy convenience drivers — thin shims over :mod:`repro.api`.

The sampling and end-to-end analysis entry points that used to live
here moved into the :mod:`repro.api` façade (``AnalysisSession``,
``repro.api.sampling``).  These signatures are kept so existing
callers and tests continue to work; new code should use the session::

    from repro.api import AnalysisSession
    session = AnalysisSession(config=config)
    result = session.analyze(core)          # AnalysisResult
    analysis = result.raw                   # HerbgrindAnalysis
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

# Re-exported so ``from repro.core.driver import sample_inputs`` (and
# the package-level ``repro.core`` exports) keep working.
from repro.api.sampling import precondition_box, sample_inputs  # noqa: F401
from repro.core.analysis import HerbgrindAnalysis
from repro.core.config import AnalysisConfig
from repro.fpcore.ast import FPCore

__all__ = ["analyze_fpcore", "precondition_box", "sample_inputs"]


def analyze_fpcore(
    core: FPCore,
    points: Optional[Sequence[Sequence[float]]] = None,
    config: Optional[AnalysisConfig] = None,
    num_points: int = 16,
    seed: int = 0,
    wrap_libraries: bool = True,
    libm=None,
) -> HerbgrindAnalysis:
    """Compile and analyse one benchmark (deprecated shim).

    Delegates to a one-shot :class:`repro.api.AnalysisSession` and
    returns the underlying :class:`HerbgrindAnalysis` for backward
    compatibility; prefer ``session.analyze(...)`` which returns the
    serializable :class:`repro.api.AnalysisResult`.
    """
    warnings.warn(
        "repro.core.analyze_fpcore is deprecated; use "
        "repro.api.AnalysisSession().analyze(core) (the shim's result "
        "is session.analyze(...).raw)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import AnalysisSession

    session = AnalysisSession(
        config=config,
        num_points=num_points,
        seed=seed,
        wrap_libraries=wrap_libraries,
    )
    result = session.analyze(
        core,
        points=[list(p) for p in points] if points is not None else None,
        libm=libm,
    )
    return result.raw
