"""The PID-controller case study (paper Section 7).

A proportional-integral-derivative controller adapted from Damouche,
Martel and Chapoutot [9] runs for a fixed number of simulated seconds:

    while (t < N) { ...controller step... ; t += 0.2; }

Because 0.2 is not representable in binary, the accumulated ``t`` drifts
below its real value; for some bounds the loop runs one extra iteration
(N = 10.0 runs 51 times, not 50 — the drift after 50 steps is about
3.5e-15, the paper's number).  Herbgrind's branch spot catches the
divergence between the float and real paths of ``t < N`` and traces the
influence back to the ``t + 0.2`` increment.

The repaired controller counts iterations in an integer and tests
``i * 0.2 < N`` — the fix the original authors deployed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import (
    AnalysisConfig,
    HerbgrindAnalysis,
    SPOT_BRANCH,
    analyze_program,
)
from repro.machine import FunctionBuilder, Interpreter, Program

#: PID gains and plant model from the adapted benchmark.
KP = 9.4514
KI = 0.69006
KD = 2.8454
DT = 0.2
INVDT = 5.0
SETPOINT = 0.0
INITIAL_MEASURE = 8.0


def build_pid_program(fixed: bool = False) -> Program:
    """The controller loop; reads the time bound N as its input."""
    fn = FunctionBuilder("main")
    fn.at("pid.c:10")
    bound = fn.read()
    setpoint = fn.const(SETPOINT)
    kp = fn.const(KP)
    ki = fn.const(KI)
    kd = fn.const(KD)
    dt = fn.const(DT)
    invdt = fn.const(INVDT)

    measure = fn.mov(fn.const(INITIAL_MEASURE))
    integral = fn.mov(fn.const(0.0))
    previous_error = fn.mov(fn.const(0.0))
    t = fn.mov(fn.const(0.0))
    iterations = fn.mov(fn.const_int(0))
    loop_i = fn.mov(fn.const_int(0))
    one_i = fn.const_int(1)

    head = fn.label("head")
    done = fn.fresh_label("done")
    if fixed:
        # Repaired test: (i * 0.2 < N) with an integer counter.
        fn.at("pid.c:16-fixed")
        scaled = fn.op("*", fn.int_to_float(loop_i), dt)
        fn.branch("ge", scaled, bound, done, loc="pid.c:16")
    else:
        fn.at("pid.c:16")
        fn.branch("ge", t, bound, done, loc="pid.c:16")

    # Controller body.
    fn.at("pid.c:18")
    error = fn.op("-", setpoint, measure)
    proportional = fn.op("*", kp, error)
    fn.mov_to(integral, fn.op("+", integral, fn.op("*", fn.op("*", ki, error), dt)))
    derivative = fn.op("*", fn.op("*", kd, fn.op("-", error, previous_error)), invdt)
    command = fn.op("+", fn.op("+", proportional, integral), derivative)
    fn.mov_to(previous_error, error)
    # Simple plant response: the measure moves toward the command.
    fn.at("pid.c:24")
    fn.mov_to(measure, fn.op("+", measure, fn.op("*", fn.const(0.01), command)))

    fn.at("pid.c:26")
    fn.mov_to(t, fn.op("+", t, dt, loc="pid.c:26"))
    fn.mov_to(loop_i, fn.int_op("iadd", loop_i, one_i))
    fn.mov_to(iterations, fn.int_op("iadd", iterations, one_i))
    fn.jump(head)

    fn.label(done)
    fn.out(fn.int_to_float(iterations), loc="pid.c:30")
    fn.out(measure, loc="pid.c:31")
    fn.halt()

    program = Program()
    program.add(fn.build())
    return program


@dataclass
class PidResult:
    bound: float
    iterations: int
    final_measure: float
    analysis: Optional[HerbgrindAnalysis]

    @property
    def expected_iterations(self) -> int:
        """Iterations the loop would run with exact arithmetic."""
        import math

        # t < N with t = k*0.2 exactly: k ranges over 0..ceil(N/0.2)-1.
        exact = self.bound / 0.2
        return math.ceil(exact) if exact != int(exact) else int(exact)

    @property
    def extra_iterations(self) -> int:
        return self.iterations - self.expected_iterations

    @property
    def branch_divergences(self) -> int:
        if self.analysis is None:
            return 0
        return sum(
            spot.erroneous
            for spot in self.analysis.spot_records.values()
            if spot.kind == SPOT_BRANCH
        )


def run_pid(
    bound: float = 10.0,
    fixed: bool = False,
    analyse: bool = True,
    config: Optional[AnalysisConfig] = None,
) -> PidResult:
    """Run the controller to time ``bound`` (seconds)."""
    program = build_pid_program(fixed=fixed)
    if analyse:
        if config is None:
            # The increment's local error is well under a bit per step,
            # so the default candidate threshold must come down for the
            # increment to be tracked as a root cause (see DESIGN.md).
            config = AnalysisConfig(
                shadow_precision=256, local_error_threshold=0.1
            )
        analysis, outputs = analyze_program(program, [[bound]], config=config)
        return PidResult(bound, int(outputs[0][0]), outputs[0][1], analysis)
    outputs = Interpreter(program).run([bound])
    return PidResult(bound, int(outputs[0]), outputs[1], None)


def sweep_bounds(
    bounds: List[float],
    fixed: bool = False,
    config: Optional[AnalysisConfig] = None,
) -> List[PidResult]:
    """The paper's experiment: try several loop bounds, count overruns."""
    return [
        run_pid(bound, fixed=fixed, config=config) for bound in bounds
    ]
