"""The Triangle compensation study (paper Section 8.3).

Jonathan Shewchuk's Triangle computes geometric predicates with *exact*
compensated arithmetic: ``two_diff``/``split``/``two_product`` produce
(result, error-term) pairs whose error terms are exactly zero in the
reals.  Every operation computing such a term has huge local error, so
a naive analysis would flag all of them; Herbgrind's compensation
detection (Section 5.3) recognizes the terms being *added back* and
does not propagate their influence.

The paper reports 225 compensating terms handled and 14 missed — the
misses being terms that feed *control flow* (the adaptive predicate's
error-bound test), where the real-number execution takes the branch
"the wrong way".  This module reproduces the mechanism with Shewchuk's
``orient2d`` adaptive predicate: a fast determinant, an error-bound
branch, and an exact second stage built from two_diff/two_product.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core import AnalysisConfig, HerbgrindAnalysis, SPOT_BRANCH, analyze_program
from repro.machine import FunctionBuilder, Program

#: Shewchuk's splitter for 53-bit doubles: 2^27 + 1.
SPLITTER = 134217729.0

#: Shewchuk's error bound coefficient for the orient2d A-stage test.
CCW_ERRBOUND_A = 3.3306690738754716e-16

#: Heap slots for (result, error) pairs returned by the helpers.
RESULT_SLOT = 400
ERROR_SLOT = 401


def _emit_two_diff(fn: FunctionBuilder, a, b, loc: str):
    """Knuth's two_diff: returns (x, y) with a - b = x + y exactly.

    y's computation chain consists of compensating operations whose
    real-number value is exactly zero.
    """
    fn.at(loc)
    x = fn.op("-", a, b)
    b_virtual = fn.op("-", a, x)
    a_virtual = fn.op("+", x, b_virtual)
    b_round = fn.op("-", b_virtual, b)
    a_round = fn.op("-", a, a_virtual)
    y = fn.op("+", a_round, b_round)
    return x, y


def _emit_split(fn: FunctionBuilder, a, loc: str):
    """Dekker's split via the 2^27+1 multiplier."""
    fn.at(loc)
    c = fn.op("*", fn.const(SPLITTER), a)
    a_big = fn.op("-", c, a)
    a_high = fn.op("-", c, a_big)
    a_low = fn.op("-", a, a_high)
    return a_high, a_low


def _emit_two_product(fn: FunctionBuilder, a, b, loc: str):
    """Dekker/Veltkamp exact product: a*b = x + y."""
    fn.at(loc)
    x = fn.op("*", a, b)
    a_high, a_low = _emit_split(fn, a, loc)
    b_high, b_low = _emit_split(fn, b, loc)
    error1 = fn.op("-", x, fn.op("*", a_high, b_high))
    error2 = fn.op("-", error1, fn.op("*", a_low, b_high))
    error3 = fn.op("-", error2, fn.op("*", a_high, b_low))
    y = fn.op("-", fn.op("*", a_low, b_low), error3)
    return x, y


def build_orient2d_program() -> Program:
    """orient2d with Shewchuk's A/B adaptive structure.

    Reads 6 coordinates; outputs the signed area sign value.  The fast
    path returns the naive determinant when the error-bound test says
    it is safe; otherwise the exact stage combines two_product
    expansions with two_diff compensation.
    """
    fn = FunctionBuilder("main")
    fn.at("predicates.c:orient2d")
    ax, ay = fn.read(), fn.read()
    bx, by = fn.read(), fn.read()
    cx, cy = fn.read(), fn.read()

    acx = fn.op("-", ax, cx, loc="predicates.c:833")
    bcx = fn.op("-", bx, cx, loc="predicates.c:834")
    acy = fn.op("-", ay, cy, loc="predicates.c:835")
    bcy = fn.op("-", by, cy, loc="predicates.c:836")
    det_left = fn.op("*", acx, bcy, loc="predicates.c:838")
    det_right = fn.op("*", acy, bcx, loc="predicates.c:839")
    det = fn.op("-", det_left, det_right, loc="predicates.c:840")

    # Error-bound test: |det| >= errbound * (|detleft| + |detright|).
    fn.at("predicates.c:845")
    det_sum = fn.op("+", fn.op("fabs", det_left), fn.op("fabs", det_right))
    errbound = fn.op("*", fn.const(CCW_ERRBOUND_A), det_sum)
    adapt = fn.fresh_label("adapt")
    magnitude = fn.op("fabs", det)
    fn.branch("lt", magnitude, errbound, adapt, loc="predicates.c:847")
    fn.out(det, loc="predicates.c:848")
    fn.halt()

    # ------------------------------------------------------------------
    # Exact stage (B): expansion arithmetic with compensated terms.
    # ------------------------------------------------------------------
    fn.label(adapt)
    left_hi, left_lo = _emit_two_product(fn, acx, bcy, "predicates.c:860")
    right_hi, right_lo = _emit_two_product(fn, acy, bcx, "predicates.c:861")
    # B = (left_hi + left_lo) - (right_hi + right_lo), combined from
    # most-significant down with compensated corrections added back.
    fn.at("predicates.c:863")
    main_diff, main_err = _emit_two_diff(fn, left_hi, right_hi, "predicates.c:863")
    low_diff, low_err = _emit_two_diff(fn, left_lo, right_lo, "predicates.c:864")
    fn.at("predicates.c:866")
    correction = fn.op("+", fn.op("+", main_err, low_diff), low_err)
    estimate = fn.op("+", main_diff, correction, loc="predicates.c:867")

    # ------------------------------------------------------------------
    # Stage C: Shewchuk refines with the *tails* of the coordinate
    # differences.  The tails are compensating terms (exactly zero in
    # the reals), and the `tail == 0` early exits branch on them — the
    # control-flow dependence Herbgrind's detector cannot neutralize
    # (the paper's 14 missed compensations).
    # ------------------------------------------------------------------
    __, acx_tail = _emit_two_diff(fn, ax, cx, "predicates.c:875")
    __, bcx_tail = _emit_two_diff(fn, bx, cx, "predicates.c:876")
    __, acy_tail = _emit_two_diff(fn, ay, cy, "predicates.c:877")
    __, bcy_tail = _emit_two_diff(fn, by, cy, "predicates.c:878")
    zero = fn.const(0.0)
    refine = fn.fresh_label("refine")
    fn.branch("ne", acx_tail, zero, refine, loc="predicates.c:880")
    fn.branch("ne", bcx_tail, zero, refine, loc="predicates.c:881")
    fn.branch("ne", acy_tail, zero, refine, loc="predicates.c:882")
    fn.branch("ne", bcy_tail, zero, refine, loc="predicates.c:883")
    fn.out(estimate, loc="predicates.c:884")
    fn.halt()
    fn.label(refine)
    fn.at("predicates.c:887")
    positive = fn.op(
        "+", fn.op("*", acx, bcy_tail), fn.op("*", bcy, acx_tail)
    )
    negative = fn.op(
        "+", fn.op("*", acy, bcx_tail), fn.op("*", bcx, acy_tail)
    )
    refined = fn.op(
        "+", estimate, fn.op("-", positive, negative), loc="predicates.c:889"
    )
    fn.out(refined, loc="predicates.c:890")
    fn.halt()

    program = Program()
    program.add(fn.build())
    return program


def random_triangle(rng: random.Random) -> List[float]:
    """A generic (well-conditioned) input triangle."""
    return [rng.uniform(-10.0, 10.0) for __ in range(6)]


def near_degenerate_triangle(rng: random.Random) -> List[float]:
    """Three nearly colinear points: the fast determinant cancels and
    the adaptive stage (with its compensating terms) runs."""
    ax, ay = rng.uniform(-1, 1), rng.uniform(-1, 1)
    dx, dy = rng.uniform(-1, 1), rng.uniform(-1, 1)
    t1, t2 = rng.uniform(0.1, 0.9), rng.uniform(1.1, 1.9)
    wobble = rng.uniform(-1e-18, 1e-18)
    return [
        ax, ay,
        ax + t1 * dx, ay + t1 * dy + wobble,
        ax + t2 * dx, ay + t2 * dy,
    ]


@dataclass
class TriangleStudy:
    """Compensation statistics over a batch of orient2d calls."""

    analysis: HerbgrindAnalysis
    outputs: List[float]

    @property
    def compensating_sites(self) -> int:
        """Operation sites where compensation was detected at least once."""
        return sum(
            1 for r in self.analysis.op_records.values()
            if r.compensations_detected > 0
        )

    @property
    def compensations_detected(self) -> int:
        """Total compensating-term additions handled."""
        return sum(
            r.compensations_detected for r in self.analysis.op_records.values()
        )

    @property
    def control_flow_misses(self) -> int:
        """Branch divergences: compensating terms that reached control
        flow, where the real execution goes the 'wrong way' (the
        paper's 14 undetectable cases)."""
        return sum(
            spot.erroneous
            for spot in self.analysis.spot_records.values()
            if spot.kind == SPOT_BRANCH
        )

    @property
    def false_positive_reports(self) -> int:
        """Spots blaming compensating code despite accurate outputs."""
        report_worthy = [
            s for s in self.analysis.erroneous_spots() if s.kind == "output"
        ]
        return len(report_worthy)


def run_triangle_study(
    num_generic: int = 12,
    num_degenerate: int = 12,
    seed: int = 0,
    config: Optional[AnalysisConfig] = None,
    detect_compensation: bool = True,
) -> TriangleStudy:
    """Run orient2d over generic + near-degenerate triangles."""
    rng = random.Random(seed)
    inputs: List[List[float]] = [random_triangle(rng) for __ in range(num_generic)]
    inputs += [near_degenerate_triangle(rng) for __ in range(num_degenerate)]
    if config is None:
        config = AnalysisConfig(shadow_precision=256)
    config = config.with_(detect_compensation=detect_compensation)
    program = build_orient2d_program()
    analysis, outputs = analyze_program(program, inputs, config=config)
    return TriangleStudy(analysis, [o[0] for o in outputs])
