"""The Gromacs dihedral-angle case study (paper Section 7).

Gromacs computes the dihedral angle between the planes spanned by four
bonded atoms.  The SPEC CPU 2006 version derives the angle through
``acos`` of a normalized dot product — and for near-flat configurations
(four nearly colinear atoms, common in triple-bonded organic compounds)
the normal vectors are tiny and the normalization cancels
catastrophically; ``acos`` near ±1 then amplifies the damage.

The repaired routine uses the numerically stable two-argument form
``atan2(|b2| * b1.n, m.n)`` from the meshing literature (the paper
cites TetGen [33]); its conditioning is uniform in the angle.

Both versions are built in machine IR, with the atom coordinates
threaded through the heap and the vector helpers as real IR functions,
so the extracted expressions span function and data-structure
boundaries like the original's C/Fortran mix.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core import AnalysisConfig, HerbgrindAnalysis, analyze_program
from repro.machine import FunctionBuilder, Program

Vec3 = Tuple[float, float, float]

#: Heap layout: 4 atoms x 3 coordinates starting here.
ATOMS_BASE = 100
#: Cross products m = b1 x b2 and n = b2 x b3 are exchanged here.
M_BASE = 200
N_BASE = 210


def _load_vector(fn: FunctionBuilder, base: int):
    return tuple(fn.load(fn.const_int(base + axis)) for axis in range(3))


def _store_vector(fn: FunctionBuilder, base: int, regs) -> None:
    for axis, reg in enumerate(regs):
        fn.store(fn.const_int(base + axis), reg)


def _emit_cross(fn: FunctionBuilder, a, b, loc: str):
    fn.at(loc)
    return (
        fn.op("-", fn.op("*", a[1], b[2]), fn.op("*", a[2], b[1])),
        fn.op("-", fn.op("*", a[2], b[0]), fn.op("*", a[0], b[2])),
        fn.op("-", fn.op("*", a[0], b[1]), fn.op("*", a[1], b[0])),
    )


def _emit_dot(fn: FunctionBuilder, a, b, loc: str):
    fn.at(loc)
    return fn.op(
        "+",
        fn.op("+", fn.op("*", a[0], b[0]), fn.op("*", a[1], b[1])),
        fn.op("*", a[2], b[2]),
    )


def _emit_sub(fn: FunctionBuilder, a, b, loc: str):
    fn.at(loc)
    return tuple(fn.op("-", a[i], b[i]) for i in range(3))


def build_dihedral_program(fixed: bool = False) -> Program:
    """Reads 12 coordinates (4 atoms), outputs the dihedral angle."""
    fn = FunctionBuilder("main")
    fn.at("dihedral.f:5")
    for index in range(12):
        fn.store(fn.const_int(ATOMS_BASE + index), fn.read())
    atoms = [
        _load_vector(fn, ATOMS_BASE + 3 * atom) for atom in range(4)
    ]
    b1 = _emit_sub(fn, atoms[1], atoms[0], "dihedral.f:9")
    b2 = _emit_sub(fn, atoms[2], atoms[1], "dihedral.f:10")
    b3 = _emit_sub(fn, atoms[3], atoms[2], "dihedral.f:11")
    m = _emit_cross(fn, b1, b2, "dihedral.f:13")
    n = _emit_cross(fn, b2, b3, "dihedral.f:14")
    _store_vector(fn, M_BASE, m)
    _store_vector(fn, N_BASE, n)
    m = _load_vector(fn, M_BASE)
    n = _load_vector(fn, N_BASE)
    if not fixed:
        # SPEC-style: phi = acos(m.n / (|m| |n|)).
        dot_mn = _emit_dot(fn, m, n, "dihedral.f:17")
        norm_m = fn.op("sqrt", _emit_dot(fn, m, m, "dihedral.f:18"))
        norm_n = fn.op("sqrt", _emit_dot(fn, n, n, "dihedral.f:19"))
        fn.at("dihedral.f:20")
        cos_phi = fn.op("/", dot_mn, fn.op("*", norm_m, norm_n))
        angle = fn.call("acos", cos_phi, loc="dihedral.f:21")
    else:
        # Stable form: phi = atan2(|b2| * (b1 . n), m . n).
        dot_mn = _emit_dot(fn, m, n, "dihedral.f:27")
        norm_b2 = fn.op("sqrt", _emit_dot(fn, b2, b2, "dihedral.f:28"))
        b1_dot_n = _emit_dot(fn, b1, n, "dihedral.f:29")
        fn.at("dihedral.f:30")
        y = fn.op("*", norm_b2, b1_dot_n)
        angle = fn.call("atan2", y, dot_mn, loc="dihedral.f:31")
        angle = fn.op("fabs", angle)  # match acos's [0, pi] range
    fn.out(angle, loc="dihedral.f:33")
    fn.halt()
    program = Program()
    program.add(fn.build())
    return program


def near_flat_configuration(
    rng: random.Random, bend: float = 1e-7, out_of_plane: float = 1e-6
) -> List[float]:
    """Four nearly colinear atoms whose dihedral angle is nearly flat.

    The chain runs along x with in-plane (y) wiggles of ~``bend`` and
    out-of-plane (z) wiggles another factor ``out_of_plane`` smaller, so
    the torsion angle is within ~1e-6 of 0 or π — the degenerate
    geometry of triple-bonded compounds (alkynes) the paper highlights,
    where ``acos`` of the normalized determinant is catastrophically
    ill-conditioned.
    """
    atoms: List[Vec3] = [(0.0, 0.0, 0.0)]
    position = (0.0, 0.0, 0.0)
    for __ in range(3):
        position = (
            position[0] + rng.uniform(0.9, 1.1),
            position[1] + rng.uniform(-bend, bend),
            position[2] + rng.uniform(-bend, bend) * out_of_plane,
        )
        atoms.append(position)
    return [coordinate for atom in atoms for coordinate in atom]


def generic_configuration(rng: random.Random) -> List[float]:
    """A well-bent configuration (benign for both formulas)."""
    return [rng.uniform(-2.0, 2.0) for __ in range(12)]


def reference_angle(coordinates: Sequence[float]) -> float:
    """The dihedral angle computed in numpy-free double precision with
    the stable formula (used as a sanity oracle in tests)."""
    atoms = [tuple(coordinates[3 * i : 3 * i + 3]) for i in range(4)]

    def sub(a, b):
        return tuple(x - y for x, y in zip(a, b))

    def cross(a, b):
        return (
            a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0],
        )

    def dot(a, b):
        return sum(x * y for x, y in zip(a, b))

    b1 = sub(atoms[1], atoms[0])
    b2 = sub(atoms[2], atoms[1])
    b3 = sub(atoms[3], atoms[2])
    m = cross(b1, b2)
    n = cross(b2, b3)
    return abs(math.atan2(math.sqrt(dot(b2, b2)) * dot(b1, n), dot(m, n)))


@dataclass
class DihedralResult:
    angles: List[float]
    analysis: Optional[HerbgrindAnalysis]

    @property
    def erroneous_angles(self) -> int:
        if self.analysis is None:
            return 0
        return sum(
            spot.erroneous
            for spot in self.analysis.spot_records.values()
            if spot.kind == "output"
        )


def run_dihedral(
    configurations: Sequence[Sequence[float]],
    fixed: bool = False,
    config: Optional[AnalysisConfig] = None,
) -> DihedralResult:
    """Analyse the routine over the given atom configurations."""
    program = build_dihedral_program(fixed=fixed)
    if config is None:
        config = AnalysisConfig(shadow_precision=256)
    analysis, outputs = analyze_program(
        program, [list(c) for c in configurations], config=config
    )
    return DihedralResult([o[0] for o in outputs], analysis)
