"""The paper's case studies (Section 3 and Section 7), as IR programs.

* :mod:`repro.apps.plotter` — the complex function plotter (Figure 1),
* :mod:`repro.apps.gramschmidt` — Polybench Gram-Schmidt (zero column),
* :mod:`repro.apps.pid` — the PID controller (t += 0.2 loop overrun),
* :mod:`repro.apps.dihedral` — the Gromacs dihedral-angle kernel,
* :mod:`repro.apps.triangle` — Shewchuk's compensated predicates (8.3).
"""

from repro.apps import dihedral, gramschmidt, pid, plotter, triangle

__all__ = ["dihedral", "gramschmidt", "pid", "plotter", "triangle"]
