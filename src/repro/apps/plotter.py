"""The complex function plotter of paper Section 3 / Figure 1.

Plots arg(f(x + iy)) over a region, where

    f(z) = 1 / (sqrt(Re z) - csqrt(Re z + i * exp(-20 z)))

using the textbook complex square root

    csqrt(x + iy) = sqrt((m + x)/2) + i * sign(y) * sqrt((m - x)/2),
    m = sqrt(x^2 + y^2).

The imaginary component's ``m - x`` cancels catastrophically when y is
tiny and x > 0 — the root cause Herbgrind extracts as
``(- (sqrt (+ (* x x) (* y y))) x)``.  The *fixed* plotter uses the
Herbie-improved branch form from the paper's Section 3:

    x <= 0:  (|y| / s  + i * sign(y) * s) / sqrt(2),  s = sqrt(m - x)
    x >  0:  (t + i * sign(y) * |y| / t) / sqrt(2),   t = sqrt(m + x)

The program is built in machine IR: csqrt is a real IR function that
returns its two components through the heap, so the analysis must track
error across a call boundary and through memory to find the fragment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import AnalysisConfig, HerbgrindAnalysis, analyze_program
from repro.machine import FunctionBuilder, Interpreter, Program

#: Heap addresses csqrt uses to return its two components.
CSQRT_RE_ADDR = 900
CSQRT_IM_ADDR = 901

#: The paper's plotting region R = [0, 1/4] x [-3, 3].
PAPER_REGION = (0.0, 0.25, -3.0, 3.0)


def _emit_csqrt_naive() -> FunctionBuilder:
    fn = FunctionBuilder("csqrt", params=("x", "y"))
    fn.at("csqrt.cpp:7")
    xx = fn.op("*", "x", "x")
    yy = fn.op("*", "y", "y")
    m = fn.op("sqrt", fn.op("+", xx, yy))
    half = fn.const(0.5)
    fn.at("csqrt.cpp:9")
    re = fn.op("sqrt", fn.op("*", fn.op("+", m, "x"), half))
    fn.at("csqrt.cpp:10")
    im_magnitude = fn.op("sqrt", fn.op("*", fn.op("-", m, "x"), half))
    im = fn.op("copysign", im_magnitude, "y")
    fn.store(fn.const_int(CSQRT_RE_ADDR), re)
    fn.store(fn.const_int(CSQRT_IM_ADDR), im)
    fn.ret(fn.const(0.0))
    return fn


def _emit_csqrt_fixed() -> FunctionBuilder:
    fn = FunctionBuilder("csqrt", params=("x", "y"))
    fn.at("csqrt_fixed.cpp:7")
    xx = fn.op("*", "x", "x")
    yy = fn.op("*", "y", "y")
    m = fn.op("sqrt", fn.op("+", xx, yy))
    inv_sqrt2 = fn.const(1.0 / math.sqrt(2.0))
    abs_y = fn.op("fabs", "y")
    positive = fn.fresh_label("xpos")
    fn.branch("gt", "x", fn.const(0.0), positive)
    # x <= 0: sqrt(m - x) is safe (no cancellation).
    s = fn.op("sqrt", fn.op("-", m, "x"), loc="csqrt_fixed.cpp:11")
    re = fn.op("*", fn.op("/", abs_y, s), inv_sqrt2)
    im = fn.op("copysign", fn.op("*", s, inv_sqrt2), "y")
    fn.store(fn.const_int(CSQRT_RE_ADDR), re)
    fn.store(fn.const_int(CSQRT_IM_ADDR), im)
    fn.ret(fn.const(0.0))
    fn.label(positive)
    # x > 0: sqrt(m + x) is safe.
    t = fn.op("sqrt", fn.op("+", m, "x"), loc="csqrt_fixed.cpp:16")
    re = fn.op("*", t, inv_sqrt2)
    im = fn.op("copysign", fn.op("*", fn.op("/", abs_y, t), inv_sqrt2), "y")
    fn.store(fn.const_int(CSQRT_RE_ADDR), re)
    fn.store(fn.const_int(CSQRT_IM_ADDR), im)
    fn.ret(fn.const(0.0))
    return fn


def build_plotter_program(
    width: int, height: int, fixed: bool = False
) -> Program:
    """The plotter: reads x0 x1 y0 y1, outputs arg(f) per pixel.

    The pixel loops are integer loops; pixel centers are produced by
    int→float conversions, so the per-pixel coordinates reach the
    analysis as opaque-ish values that anti-unification generalizes.
    """
    program = Program()
    program.add((_emit_csqrt_fixed() if fixed else _emit_csqrt_naive()).build())

    fn = FunctionBuilder("main")
    fn.at("main.cpp:14")
    x0 = fn.read()
    x1 = fn.read()
    y0 = fn.read()
    y1 = fn.read()
    width_f = fn.const(float(width))
    height_f = fn.const(float(height))
    dx = fn.op("/", fn.op("-", x1, x0), width_f)
    dy = fn.op("/", fn.op("-", y1, y0), height_f)
    half = fn.const(0.5)
    twenty = fn.const(20.0)

    i = fn.mov(fn.const_int(0))
    width_i = fn.const_int(width)
    height_i = fn.const_int(height)
    one_i = fn.const_int(1)

    outer = fn.label("outer")
    outer_done = fn.fresh_label("outer_done")
    fn.int_branch("ge", i, width_i, outer_done)
    j = fn.mov(fn.const_int(0))
    inner = fn.label("inner")
    inner_done = fn.fresh_label("inner_done")
    fn.int_branch("ge", j, height_i, inner_done)

    fn.at("main.cpp:20")
    # Pixel center: x = x0 + (i + 0.5) dx, y = y0 + (j + 0.5) dy.
    x = fn.op("+", x0, fn.op("*", fn.op("+", fn.int_to_float(i), half), dx))
    y = fn.op("+", y0, fn.op("*", fn.op("+", fn.int_to_float(j), half), dy))

    fn.at("main.cpp:22")
    # w = x + i*exp(-20 z): exp(-20z) = e^{-20x} (cos 20y - i sin 20y),
    # so w_re = x + e^{-20x} sin 20y, w_im = e^{-20x} cos 20y.
    scale = fn.call("exp", fn.op("neg", fn.op("*", twenty, x)))
    angle = fn.op("*", twenty, y)
    w_re = fn.op("+", x, fn.op("*", scale, fn.call("sin", angle)))
    w_im = fn.op("*", scale, fn.call("cos", angle))

    fn.at("main.cpp:23")
    fn.call("csqrt", w_re, w_im)
    c_re = fn.load(fn.const_int(CSQRT_RE_ADDR))
    c_im = fn.load(fn.const_int(CSQRT_IM_ADDR))

    # d = sqrt(x) - csqrt(w); f = 1/d; colour = arg(f).
    sqrt_x = fn.op("sqrt", x)
    d_re = fn.op("-", sqrt_x, c_re)
    d_im = fn.op("neg", c_im)
    denominator = fn.op("+", fn.op("*", d_re, d_re), fn.op("*", d_im, d_im))
    f_re = fn.op("/", d_re, denominator)
    f_im = fn.op("neg", fn.op("/", d_im, denominator))
    fn.at("main.cpp:24")
    colour = fn.call("atan2", f_im, f_re)
    fn.out(colour, loc="main.cpp:24")

    fn.mov_to(j, fn.int_op("iadd", j, one_i))
    fn.jump(inner)
    fn.label(inner_done)
    fn.mov_to(i, fn.int_op("iadd", i, one_i))
    fn.jump(outer)
    fn.label(outer_done)
    fn.halt()
    program.add(fn.build())
    return program


@dataclass
class PlotterResult:
    """One plotter run: pixel values + (optionally) the analysis."""

    width: int
    height: int
    values: List[float]
    analysis: Optional[HerbgrindAnalysis] = None

    @property
    def total_pixels(self) -> int:
        return self.width * self.height

    @property
    def incorrect_pixels(self) -> int:
        """Pixels whose arg() was erroneous, per the output spot."""
        if self.analysis is None:
            raise ValueError("run with analyse=True to count errors")
        outputs = [
            s for s in self.analysis.spot_records.values() if s.kind == "output"
        ]
        return sum(s.erroneous for s in outputs)


def run_plotter(
    width: int = 64,
    height: int = 48,
    region: Tuple[float, float, float, float] = PAPER_REGION,
    fixed: bool = False,
    analyse: bool = True,
    config: Optional[AnalysisConfig] = None,
) -> PlotterResult:
    """Plot the region; with ``analyse`` the Herbgrind tracer rides along."""
    program = build_plotter_program(width, height, fixed=fixed)
    inputs = list(region)
    if analyse:
        if config is None:
            config = AnalysisConfig(shadow_precision=256)
        analysis, outputs = analyze_program(
            program, [inputs], config=config, max_steps=500_000_000
        )
        return PlotterResult(width, height, outputs[0], analysis)
    outputs = Interpreter(program, max_steps=500_000_000).run(inputs)
    return PlotterResult(width, height, outputs)


def render_pgm(result: PlotterResult, path: str) -> None:
    """Write the plot as a portable graymap (Figure 1 rendering)."""
    span = 2.0 * math.pi
    pixels = []
    for value in result.values:
        if math.isnan(value):
            level = 0
        else:
            level = int((value + math.pi) / span * 255.0)
            level = min(255, max(0, level))
        pixels.append(level)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"P2\n{result.width} {result.height}\n255\n")
        # Values were produced column-major (x outer, y inner).
        for row in range(result.height):
            line = [
                str(pixels[column * result.height + row])
                for column in range(result.width)
            ]
            handle.write(" ".join(line) + "\n")
