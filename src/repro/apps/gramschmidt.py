"""The Gram-Schmidt case study (paper Section 7).

The Polybench 3.2.1 ``gramschmidt`` kernel initializes its input matrix
as ``A[i][j] = (i*j) / ni`` — making column 0 all zeros, so the first
column norm is 0, the normalization divides by zero, and NaNs flood the
output.  Herbgrind reports the NaN as 64 bits of error and its input
characteristics hand the developer the zero-vector problematic input.
Polybench 4.2.0 fixed the *initializer* (``((i*j) % ni)/ni * 100 + 10``),
not the kernel — the bug was the interaction, exactly the non-local
story the paper tells.

The kernel is built in machine IR with the matrices living in the heap
(base + i*cols + j addressing), so the analysis tracks error through
memory traffic just as the binary tool does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import AnalysisConfig, HerbgrindAnalysis, analyze_program
from repro.machine import FunctionBuilder, Interpreter, Program

#: Heap bases for the matrices (row-major, stride = columns).
A_BASE = 10_000
R_BASE = 20_000
Q_BASE = 30_000

#: Initializer styles.
INIT_POLYBENCH_3_2_1 = "polybench-3.2.1"
INIT_POLYBENCH_4_2_0 = "polybench-4.2.0"


def _address(fn: FunctionBuilder, base: int, row, col, cols: int):
    """base + row*cols + col with integer ops (heap addressing)."""
    stride = fn.const_int(cols)
    offset = fn.int_op("iadd", fn.int_op("imul", row, stride), col)
    return fn.int_op("iadd", fn.const_int(base), offset)


def build_gramschmidt_program(
    rows: int, cols: int, initializer: str = INIT_POLYBENCH_3_2_1
) -> Program:
    """The full init + kernel + output program."""
    fn = FunctionBuilder("main")
    one_i = fn.const_int(1)
    rows_i = fn.const_int(rows)
    cols_i = fn.const_int(cols)

    # ------------------------------------------------------------------
    # init_array (the culprit in 3.2.1)
    # ------------------------------------------------------------------
    fn.at("gramschmidt.c:init")
    i = fn.mov(fn.const_int(0))
    init_outer = fn.label("init_outer")
    init_outer_done = fn.fresh_label("init_outer_done")
    fn.int_branch("ge", i, rows_i, init_outer_done)
    j = fn.mov(fn.const_int(0))
    init_inner = fn.label("init_inner")
    init_inner_done = fn.fresh_label("init_inner_done")
    fn.int_branch("ge", j, cols_i, init_inner_done)
    product = fn.int_op("imul", i, j)
    if initializer == INIT_POLYBENCH_3_2_1:
        # A[i][j] = ((double)i*j) / ni  -> column j=0 is all zeros.
        value = fn.op(
            "/", fn.int_to_float(product), fn.int_to_float(rows_i)
        )
    elif initializer == INIT_POLYBENCH_4_2_0:
        # A[i][j] = ((i*j) % ni) / ni * 100 + 10.
        reduced = fn.int_op("imod", product, rows_i)
        ratio = fn.op("/", fn.int_to_float(reduced), fn.int_to_float(rows_i))
        value = fn.op("+", fn.op("*", ratio, fn.const(100.0)), fn.const(10.0))
    else:
        raise ValueError(f"unknown initializer {initializer!r}")
    fn.store(_address(fn, A_BASE, i, j, cols), value)
    fn.mov_to(j, fn.int_op("iadd", j, one_i))
    fn.jump(init_inner)
    fn.label(init_inner_done)
    fn.mov_to(i, fn.int_op("iadd", i, one_i))
    fn.jump(init_outer)
    fn.label(init_outer_done)

    # ------------------------------------------------------------------
    # The gramschmidt kernel (Polybench's loop structure)
    # ------------------------------------------------------------------
    k = fn.mov(fn.const_int(0))
    k_loop = fn.label("k_loop")
    k_done = fn.fresh_label("k_done")
    fn.int_branch("ge", k, cols_i, k_done)

    # nrm = sum_i A[i][k]^2
    fn.at("gramschmidt.c:12")
    nrm = fn.mov(fn.const(0.0))
    i2 = fn.mov(fn.const_int(0))
    nrm_loop = fn.label(fn.fresh_label("nrm"))
    nrm_done = fn.fresh_label("nrm_done")
    fn.int_branch("ge", i2, rows_i, nrm_done)
    a_ik = fn.load(_address(fn, A_BASE, i2, k, cols))
    fn.mov_to(nrm, fn.op("+", nrm, fn.op("*", a_ik, a_ik), loc="gramschmidt.c:13"))
    fn.mov_to(i2, fn.int_op("iadd", i2, one_i))
    fn.jump(nrm_loop)
    fn.label(nrm_done)

    # R[k][k] = sqrt(nrm)
    fn.at("gramschmidt.c:15")
    r_kk = fn.op("sqrt", nrm, loc="gramschmidt.c:15")
    fn.store(_address(fn, R_BASE, k, k, cols), r_kk)

    # Q[i][k] = A[i][k] / R[k][k]   <- division by zero on a zero column
    i3 = fn.mov(fn.const_int(0))
    q_loop = fn.label(fn.fresh_label("q"))
    q_done = fn.fresh_label("q_done")
    fn.int_branch("ge", i3, rows_i, q_done)
    a_ik3 = fn.load(_address(fn, A_BASE, i3, k, cols))
    q_ik = fn.op("/", a_ik3, r_kk, loc="gramschmidt.c:17")
    fn.store(_address(fn, Q_BASE, i3, k, cols), q_ik)
    fn.mov_to(i3, fn.int_op("iadd", i3, one_i))
    fn.jump(q_loop)
    fn.label(q_done)

    # for j in k+1..cols: R[k][j] = Q[:,k] . A[:,j]; A[:,j] -= Q[:,k]*R[k][j]
    j2 = fn.mov(fn.int_op("iadd", k, one_i))
    j_loop = fn.label(fn.fresh_label("j"))
    j_done = fn.fresh_label("j_done")
    fn.int_branch("ge", j2, cols_i, j_done)
    r_kj = fn.mov(fn.const(0.0))
    i4 = fn.mov(fn.const_int(0))
    dot_loop = fn.label(fn.fresh_label("dot"))
    dot_done = fn.fresh_label("dot_done")
    fn.int_branch("ge", i4, rows_i, dot_done)
    q_ik4 = fn.load(_address(fn, Q_BASE, i4, k, cols))
    a_ij4 = fn.load(_address(fn, A_BASE, i4, j2, cols))
    fn.mov_to(r_kj, fn.op("+", r_kj, fn.op("*", q_ik4, a_ij4), loc="gramschmidt.c:22"))
    fn.mov_to(i4, fn.int_op("iadd", i4, one_i))
    fn.jump(dot_loop)
    fn.label(dot_done)
    fn.store(_address(fn, R_BASE, k, j2, cols), r_kj)
    i5 = fn.mov(fn.const_int(0))
    update_loop = fn.label(fn.fresh_label("upd"))
    update_done = fn.fresh_label("upd_done")
    fn.int_branch("ge", i5, rows_i, update_done)
    address = _address(fn, A_BASE, i5, j2, cols)
    a_ij5 = fn.load(address)
    q_ik5 = fn.load(_address(fn, Q_BASE, i5, k, cols))
    updated = fn.op("-", a_ij5, fn.op("*", q_ik5, r_kj), loc="gramschmidt.c:25")
    fn.store(address, updated)
    fn.mov_to(i5, fn.int_op("iadd", i5, one_i))
    fn.jump(update_loop)
    fn.label(update_done)
    fn.mov_to(j2, fn.int_op("iadd", j2, one_i))
    fn.jump(j_loop)
    fn.label(j_done)

    fn.mov_to(k, fn.int_op("iadd", k, one_i))
    fn.jump(k_loop)
    fn.label(k_done)

    # ------------------------------------------------------------------
    # Output the observable state: all of Q, and the written (upper-
    # triangular) part of R.  Unrolled at build time — the dimensions
    # are compile-time constants, as in the Polybench benchmark.
    # ------------------------------------------------------------------
    fn.at("gramschmidt.c:out")
    for row in range(rows):
        for col in range(cols):
            address = fn.const_int(Q_BASE + row * cols + col)
            fn.out(fn.load(address))
    for row in range(cols):
        for col in range(row, cols):
            address = fn.const_int(R_BASE + row * cols + col)
            fn.out(fn.load(address))
    fn.halt()

    program = Program()
    program.add(fn.build())
    return program


@dataclass
class GramSchmidtResult:
    rows: int
    cols: int
    outputs: List[float]
    analysis: Optional[HerbgrindAnalysis]

    @property
    def nan_outputs(self) -> int:
        import math

        return sum(1 for v in self.outputs if math.isnan(v))


def run_gramschmidt(
    rows: int = 6,
    cols: int = 4,
    initializer: str = INIT_POLYBENCH_3_2_1,
    analyse: bool = True,
    config: Optional[AnalysisConfig] = None,
) -> GramSchmidtResult:
    """Run the kernel; with the 3.2.1 initializer NaNs appear."""
    program = build_gramschmidt_program(rows, cols, initializer)
    if analyse:
        if config is None:
            config = AnalysisConfig(shadow_precision=256)
        analysis, outputs = analyze_program(program, [[]], config=config)
        return GramSchmidtResult(rows, cols, outputs[0], analysis)
    outputs = Interpreter(program).run([])
    return GramSchmidtResult(rows, cols, outputs, None)
