"""The ``StaticReport`` consumers attach to analysis results.

The herbgrind backend computes one static pass per analysis (interval
dataflow + lint over the *same* compiled program and precondition box
the dynamic run uses) and attaches the report to
``AnalysisResult.extra["static"]``.  Like ``extra["degradation"]``, the
report is process-local metadata: it is stripped by
``AnalysisResult.to_dict()`` so serialized corpus JSON stays
byte-identical with the static layer on (default) or off
(``REPRO_STATIC=0``).

:func:`cross_check` is the agreement contract between the two layers:
every dynamically flagged root-cause site (a candidate record) should
appear among the statically *ranked* sites (score above the dynamic
local-error threshold) at the same source location.  Interval analysis
only over-approximates ranges — condition-number suprema only grow —
so disagreements are the static pass missing structure (a bug) or a
correlation the interval domain cannot express (allowlisted in the
agreement test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.fpcore.ast import FPCore
from repro.machine import isa
from repro.machine.compiler import compile_fpcore
from repro.staticanalysis.dataflow import (
    StaticAnalysis,
    analyze_program_static,
)
from repro.staticanalysis.lint import Diagnostic, _json_number, lint_program

#: Static score (bits) above which a site counts as "ranked" for the
#: static-vs-dynamic agreement — the dynamic default Tℓ.
RANK_THRESHOLD_BITS = 5.0


@dataclass
class StaticReport:
    """The static layer's findings for one analyzed program."""

    program: str
    sites: List[Dict[str, Any]] = field(default_factory=list)
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)
    agreement: Optional[Dict[str, Any]] = None
    converged: bool = True
    visits: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "sites": self.sites,
            "diagnostics": self.diagnostics,
            "agreement": self.agreement,
            "converged": self.converged,
            "visits": self.visits,
        }

    def ranked_locs(
        self, threshold: float = RANK_THRESHOLD_BITS
    ) -> List[str]:
        """Source locations with static score above ``threshold``."""
        return [
            site["loc"]
            for site in self.sites
            if site["loc"] is not None
            and site["score_bits"] is not None
            and site["score_bits"] > threshold
        ]


def _site_dict(site) -> Dict[str, Any]:
    return {
        "site_id": site.site_id,
        "loc": site.loc,
        "op": site.op,
        "kind": site.kind,
        "score_bits": _json_number(site.score_bits),
        "total_err_bits": _json_number(site.total_err_bits),
        "condition_sup": _json_number(max(site.conds, default=0.0)),
        "witness_binade": site.witness_binade,
        "flags": sorted(site.flags),
    }


def build_report(
    name: str,
    analysis: StaticAnalysis,
    diagnostics: Sequence[Diagnostic],
) -> StaticReport:
    """Assemble a report from a finished static analysis + lint."""
    ranked = analysis.ranked()
    return StaticReport(
        program=name,
        sites=[_site_dict(site) for site in ranked],
        diagnostics=[d.to_dict() for d in diagnostics],
        converged=analysis.converged,
        visits=analysis.visits,
    )


def static_report(
    core: Optional[FPCore] = None,
    program: Optional[isa.Program] = None,
    input_box: Optional[Sequence[Tuple[float, float]]] = None,
    name: Optional[str] = None,
) -> StaticReport:
    """One-call convenience: compile (if needed), analyze, lint.

    Give either an FPCore benchmark (``core``; its :pre supplies the
    input box) or a machine program plus an explicit ``input_box``.
    """
    if program is None:
        if core is None:
            raise ValueError("static_report needs a core or a program")
        program = compile_fpcore(core)
    if input_box is None and core is not None:
        from repro.api.sampling import precondition_box

        box = precondition_box(core)
        input_box = [box[argument] for argument in core.arguments]
    analysis = analyze_program_static(program, input_box or ())
    diagnostics = lint_program(program, input_box or (), analysis=analysis)
    report_name = name or (core.name if core is not None else None) or "<program>"
    return build_report(report_name, analysis, diagnostics)


def _dynamic_loc_errors(records: Iterable[Any]) -> List[Tuple[str, float]]:
    """Normalize dynamic flagged sites to (loc, max_local_error_bits).

    Accepts ``OpRecord`` objects (``max_local_error``) or serialized
    ``RootCauseResult`` objects (``local_error.max_bits``).
    """
    normalized = []
    for record in records:
        loc = getattr(record, "loc", None)
        if loc is None:
            continue
        error = getattr(record, "max_local_error", None)
        if error is None:
            stats = getattr(record, "local_error", None)
            error = getattr(stats, "max_bits", 0.0) if stats else 0.0
        normalized.append((loc, float(error)))
    return normalized


def cross_check(
    report: StaticReport,
    dynamic_records: Iterable[Any],
    rank_threshold: float = RANK_THRESHOLD_BITS,
) -> Dict[str, Any]:
    """Compare static ranking against dynamically flagged sites.

    A dynamic site *matches* when a static site at the same source
    location scores above ``rank_threshold``.  The result records the
    agreement fraction and the mismatched locations; it is stored into
    ``report.agreement`` as a side effect.
    """
    ranked = set(report.ranked_locs(rank_threshold))
    matched: List[str] = []
    missed: List[Dict[str, Any]] = []
    for loc, error_bits in sorted(set(_dynamic_loc_errors(dynamic_records))):
        if loc in ranked:
            matched.append(loc)
        else:
            missed.append(
                {"loc": loc, "dynamic_bits": _json_number(error_bits)}
            )
    total = len(matched) + len(missed)
    agreement = {
        "dynamic_sites": total,
        "matched": matched,
        "missed": missed,
        "fraction": 1.0 if total == 0 else len(matched) / total,
        "rank_threshold_bits": rank_threshold,
    }
    report.agreement = agreement
    return agreement
