"""The interval domain of the static analysis.

An :class:`Interval` is a closed range ``[lo, hi]`` of extended reals
(endpoints may be ``±inf``) plus a ``may_nan`` flag recording that the
abstracted value could be NaN (a domain error somewhere upstream, or
an ``inf - inf``-style indeterminate).  ``TOP`` is the full real line
with ``may_nan`` set.

Transfer functions (:func:`transfer`) over-approximate every operation
of the machine ISA's float universe — the same operation names as
:data:`repro.bigfloat.functions.ALL_OPERATIONS` — plus the integer ALU.
They are *approximate outward*: endpoints are computed in double
arithmetic without directed rounding, which is far finer than the
binade granularity any lint decision is made at.  What the transfer
functions are careful about is the structure that decisions DO hinge
on: zero crossings, domain edges (``log`` at 1 and 0, ``asin``/
``acos``/``atanh`` at ±1, ``tan`` poles), monotonicity direction, the
periodic extrema of the trigonometric family, and overflow to ±inf.

The domain deliberately tracks no relational information — ``x - x``
is the width-doubling hull, not 0.  Static cancellation candidates are
therefore a *superset* of the dynamically excitable ones, which is the
useful direction for a linter (and for the static-vs-dynamic agreement
contract: dynamically flagged sites must be statically ranked, never
the converse).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Largest finite double; beyond it an interval endpoint is overflow.
DBL_MAX = 1.7976931348623157e308

#: Smallest positive *normal* double; magnitudes below it (other than
#: exact zero) are the subnormal range.
DBL_MIN_NORMAL = 2.2250738585072014e-308

_INF = math.inf


def _finite(value: float, sign: float) -> float:
    """Clamp an indeterminate endpoint computation to a signed inf."""
    if math.isnan(value):
        return _INF if sign > 0 else -_INF
    return value


@dataclass(frozen=True)
class Interval:
    """A closed interval of extended reals, plus NaN possibility."""

    lo: float
    hi: float
    may_nan: bool = False

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            # A NaN endpoint means the computation was indeterminate:
            # degrade to the full line rather than carry NaN bounds.
            object.__setattr__(self, "lo", -_INF)
            object.__setattr__(self, "hi", _INF)
            object.__setattr__(self, "may_nan", True)
        elif self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def point(value: float) -> "Interval":
        if math.isnan(value):
            return Interval(-_INF, _INF, may_nan=True)
        return Interval(value, value)

    @staticmethod
    def from_points(values: Sequence[float], may_nan: bool = False) -> "Interval":
        finite = [v for v in values if not math.isnan(v)]
        if not finite:
            return TOP
        return Interval(min(finite), max(finite),
                        may_nan=may_nan or len(finite) != len(values))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi and not self.may_nan

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def contains_zero(self) -> bool:
        return self.lo <= 0.0 <= self.hi

    def strictly_positive(self) -> bool:
        return self.lo > 0.0

    def strictly_negative(self) -> bool:
        return self.hi < 0.0

    def abs_lo(self) -> float:
        """Smallest magnitude in the interval."""
        if self.contains_zero():
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    def abs_hi(self) -> float:
        """Largest magnitude in the interval."""
        return max(abs(self.lo), abs(self.hi))

    def may_overflow(self) -> bool:
        """Could the value exceed the finite double range?"""
        return self.hi > DBL_MAX or self.lo < -DBL_MAX

    def may_underflow(self) -> bool:
        """Could the value land in the subnormal range (excluding an
        exact zero endpointed interval)?"""
        if self.lo == 0.0 and self.hi == 0.0:
            return False
        # Some sub-range of (0, tiny) or (-tiny, 0) is reachable.
        return (
            (self.hi > 0.0 and self.lo < DBL_MIN_NORMAL)
            or (self.lo < 0.0 and self.hi > -DBL_MIN_NORMAL)
        )

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------

    def hull(self, other: "Interval") -> "Interval":
        return Interval(
            min(self.lo, other.lo),
            max(self.hi, other.hi),
            self.may_nan or other.may_nan,
        )

    def widen(self, newer: "Interval") -> "Interval":
        """Standard endpoint widening: a moving bound jumps to ±inf."""
        return Interval(
            self.lo if newer.lo >= self.lo else -_INF,
            self.hi if newer.hi <= self.hi else _INF,
            self.may_nan or newer.may_nan,
        )

    def meet(self, lo: float = -_INF, hi: float = _INF) -> Optional["Interval"]:
        """Intersect with [lo, hi]; None when the meet is empty."""
        new_lo = max(self.lo, lo)
        new_hi = min(self.hi, hi)
        if new_lo > new_hi:
            return None
        return Interval(new_lo, new_hi, self.may_nan)

    def __str__(self) -> str:
        nan = " (maybe NaN)" if self.may_nan else ""
        return f"[{self.lo!r}, {self.hi!r}]{nan}"


#: The top element: any double, possibly NaN.
TOP = Interval(-_INF, _INF, may_nan=True)

#: Any finite-or-infinite real (no NaN).
REALS = Interval(-_INF, _INF)


# ----------------------------------------------------------------------
# Guarded double evaluation
# ----------------------------------------------------------------------


def _guard(fn: Callable[..., float], *args: float) -> Tuple[float, bool]:
    """Evaluate a math function; (value, domain_error).

    Overflow maps to a signed infinity (the IEEE behaviour), domain
    errors to ``(nan, True)``.
    """
    try:
        return fn(*args), False
    except OverflowError:
        # Recover the sign via a crude magnitude-free retry: the
        # callers below only hit this for exp-family / pow growth,
        # which overflow toward +inf (endpoints are handled per-op).
        return _INF, False
    except (ValueError, ZeroDivisionError):
        return math.nan, True


def _endpointwise(
    fn: Callable[[float], float], interval: Interval
) -> Interval:
    """Transfer for a function monotone over the interval's domain."""
    a, a_bad = _guard(fn, interval.lo)
    b, b_bad = _guard(fn, interval.hi)
    return Interval.from_points(
        [a, b], may_nan=interval.may_nan or a_bad or b_bad
    )


# ----------------------------------------------------------------------
# Arithmetic transfers
# ----------------------------------------------------------------------


def _add(x: Interval, y: Interval) -> Interval:
    lo = _finite(x.lo + y.lo, -1.0)
    hi = _finite(x.hi + y.hi, 1.0)
    # inf + (-inf) at an endpoint pair means an indeterminate is
    # reachable: the result may be NaN.
    indeterminate = (
        math.isinf(x.lo) and math.isinf(y.lo) and (x.lo > 0) != (y.lo > 0)
        or math.isinf(x.hi) and math.isinf(y.hi) and (x.hi > 0) != (y.hi > 0)
        or (math.isinf(x.lo) or math.isinf(x.hi))
        and (math.isinf(y.lo) or math.isinf(y.hi))
    )
    return Interval(min(lo, hi), max(lo, hi),
                    x.may_nan or y.may_nan or indeterminate)


def _sub(x: Interval, y: Interval) -> Interval:
    return _add(x, _neg(y))


def _neg(x: Interval) -> Interval:
    return Interval(-x.hi, -x.lo, x.may_nan)


def _fabs(x: Interval) -> Interval:
    if x.lo >= 0:
        return x
    if x.hi <= 0:
        return _neg(x)
    return Interval(0.0, max(-x.lo, x.hi), x.may_nan)


def _mul(x: Interval, y: Interval) -> Interval:
    products = []
    indeterminate = False
    for a in (x.lo, x.hi):
        for b in (y.lo, y.hi):
            if (math.isinf(a) and b == 0.0) or (a == 0.0 and math.isinf(b)):
                indeterminate = True
                products.append(0.0)
                continue
            products.append(a * b)
    # 0 * inf is reachable whenever one operand spans 0 and the other
    # reaches an infinity anywhere (not only at corner points).
    if (x.contains_zero() and (math.isinf(y.lo) or math.isinf(y.hi))) or (
        y.contains_zero() and (math.isinf(x.lo) or math.isinf(x.hi))
    ):
        indeterminate = True
    return Interval.from_points(
        products, may_nan=x.may_nan or y.may_nan or indeterminate
    )


def _div(x: Interval, y: Interval) -> Interval:
    if y.contains_zero():
        # Division by (a value near) zero: magnitudes are unbounded.
        # 0/0 would additionally be NaN.
        may_nan = x.may_nan or y.may_nan or x.contains_zero()
        return Interval(-_INF, _INF, may_nan)
    quotients = []
    for a in (x.lo, x.hi):
        for b in (y.lo, y.hi):
            if math.isinf(a) and math.isinf(b):
                quotients.append(0.0)  # indeterminate corner
                continue
            quotients.append(a / b if not math.isinf(a) else
                             math.copysign(_INF, a) * math.copysign(1.0, b))
    indeterminate = (
        (math.isinf(x.lo) or math.isinf(x.hi))
        and (math.isinf(y.lo) or math.isinf(y.hi))
    )
    return Interval.from_points(
        quotients, may_nan=x.may_nan or y.may_nan or indeterminate
    )


def _sqrt(x: Interval) -> Interval:
    domain_error = x.lo < 0.0
    clipped = x.meet(lo=0.0)
    if clipped is None:
        return Interval(-_INF, _INF, may_nan=True)
    return Interval(
        math.sqrt(clipped.lo),
        math.sqrt(clipped.hi) if not math.isinf(clipped.hi) else _INF,
        x.may_nan or domain_error,
    )


def _cbrt_point(v: float) -> float:
    return math.copysign(abs(v) ** (1.0 / 3.0), v) if not math.isinf(v) \
        else math.copysign(_INF, v)


def _fma(a: Interval, b: Interval, c: Interval) -> Interval:
    return _add(_mul(a, b), c)


def _hypot(x: Interval, y: Interval) -> Interval:
    ax, ay = _fabs(x), _fabs(y)
    lo = math.hypot(ax.lo, ay.lo)
    hi = math.hypot(ax.hi, ay.hi) if not (
        math.isinf(ax.hi) or math.isinf(ay.hi)
    ) else _INF
    return Interval(lo, hi, x.may_nan or y.may_nan)


def _fmin(x: Interval, y: Interval) -> Interval:
    return Interval(min(x.lo, y.lo), min(x.hi, y.hi), x.may_nan or y.may_nan)


def _fmax(x: Interval, y: Interval) -> Interval:
    return Interval(max(x.lo, y.lo), max(x.hi, y.hi), x.may_nan or y.may_nan)


def _copysign(x: Interval, y: Interval) -> Interval:
    magnitude = _fabs(x)
    if y.lo >= 0.0:
        return magnitude
    if y.hi < 0.0:
        return _neg(magnitude)
    return Interval(-magnitude.hi, magnitude.hi, x.may_nan or y.may_nan)


def _fdim(x: Interval, y: Interval) -> Interval:
    diff = _sub(x, y)
    return Interval(max(0.0, diff.lo), max(0.0, diff.hi), diff.may_nan)


def _fmod(x: Interval, y: Interval) -> Interval:
    # |fmod(x, y)| < |y| and the sign follows x; 0 divisor is NaN.
    bound = min(x.abs_hi(), y.abs_hi())
    may_nan = x.may_nan or y.may_nan or y.contains_zero()
    lo = -bound if x.lo < 0 else 0.0
    hi = bound if x.hi > 0 else 0.0
    return Interval(lo, hi, may_nan)


def _remainder(x: Interval, y: Interval) -> Interval:
    bound = min(x.abs_hi(), y.abs_hi() / 2.0)
    may_nan = x.may_nan or y.may_nan or y.contains_zero()
    return Interval(-bound, bound, may_nan)


def _pow(x: Interval, y: Interval) -> Interval:
    if y.is_point and y.lo == 2.0:
        squared = _mul(x, x)  # the ubiquitous x^2: keep the sign info
        return Interval(squared.lo, squared.hi, x.may_nan or y.may_nan)
    if x.lo > 0.0:
        candidates: List[float] = []
        bad = False
        xs = [x.lo, x.hi]
        if x.contains(1.0):
            xs.append(1.0)
        for a in xs:
            for b in (y.lo, y.hi):
                if math.isinf(b):
                    # a^±inf: 0, 1, or inf depending on a vs 1.
                    if a == 1.0:
                        candidates.append(1.0)
                    elif (a > 1.0) == (b > 0):
                        candidates.append(_INF)
                    else:
                        candidates.append(0.0)
                    continue
                value, err = _guard(math.pow, a, b)
                bad = bad or err
                candidates.append(value)
        return Interval.from_points(
            candidates, may_nan=x.may_nan or y.may_nan or bad
        )
    # Negative or zero-spanning bases: defined only at integer
    # exponents / special cases; stay conservative.
    return Interval(-_INF, _INF, may_nan=True)


# ----------------------------------------------------------------------
# Transcendental transfers
# ----------------------------------------------------------------------

_TWO_PI = 2.0 * math.pi
_HALF_PI = 0.5 * math.pi


def _periodic_extrema(x: Interval, offset: float) -> List[float]:
    """Critical points ``k*pi + offset`` inside the interval (bounded)."""
    if x.hi - x.lo >= _TWO_PI or math.isinf(x.lo) or math.isinf(x.hi):
        return []
    points = []
    k = math.floor((x.lo - offset) / math.pi)
    for step in range(4):
        candidate = (k + step) * math.pi + offset
        if x.lo <= candidate <= x.hi:
            points.append(candidate)
    return points


def _sin(x: Interval) -> Interval:
    if x.hi - x.lo >= _TWO_PI or math.isinf(x.lo) or math.isinf(x.hi):
        return Interval(-1.0, 1.0, x.may_nan)
    values = [math.sin(x.lo), math.sin(x.hi)]
    values += [math.sin(p) for p in _periodic_extrema(x, _HALF_PI)]
    return Interval.from_points(values, may_nan=x.may_nan)


def _cos(x: Interval) -> Interval:
    if x.hi - x.lo >= _TWO_PI or math.isinf(x.lo) or math.isinf(x.hi):
        return Interval(-1.0, 1.0, x.may_nan)
    values = [math.cos(x.lo), math.cos(x.hi)]
    values += [math.cos(p) for p in _periodic_extrema(x, 0.0)]
    return Interval.from_points(values, may_nan=x.may_nan)


def _tan(x: Interval) -> Interval:
    if math.isinf(x.lo) or math.isinf(x.hi) or x.hi - x.lo >= math.pi:
        return Interval(-_INF, _INF, x.may_nan)
    if _periodic_extrema(x, _HALF_PI):
        # A pole lies inside: both signs of huge magnitude reachable.
        return Interval(-_INF, _INF, x.may_nan)
    return Interval(math.tan(x.lo), math.tan(x.hi), x.may_nan)


def _asin(x: Interval) -> Interval:
    domain_error = x.lo < -1.0 or x.hi > 1.0
    clipped = x.meet(lo=-1.0, hi=1.0)
    if clipped is None:
        return Interval(-_INF, _INF, may_nan=True)
    return Interval(math.asin(clipped.lo), math.asin(clipped.hi),
                    x.may_nan or domain_error)


def _acos(x: Interval) -> Interval:
    domain_error = x.lo < -1.0 or x.hi > 1.0
    clipped = x.meet(lo=-1.0, hi=1.0)
    if clipped is None:
        return Interval(-_INF, _INF, may_nan=True)
    return Interval(math.acos(clipped.hi), math.acos(clipped.lo),
                    x.may_nan or domain_error)


def _atanh(x: Interval) -> Interval:
    domain_error = x.lo <= -1.0 or x.hi >= 1.0
    lo = math.atanh(x.lo) if -1.0 < x.lo < 1.0 else -_INF
    hi = math.atanh(x.hi) if -1.0 < x.hi < 1.0 else _INF
    return Interval(lo, hi, x.may_nan or domain_error)


def _acosh(x: Interval) -> Interval:
    domain_error = x.lo < 1.0
    clipped = x.meet(lo=1.0)
    if clipped is None:
        return Interval(-_INF, _INF, may_nan=True)
    hi = math.acosh(clipped.hi) if not math.isinf(clipped.hi) else _INF
    return Interval(math.acosh(clipped.lo), hi, x.may_nan or domain_error)


def _log_family(log_fn: Callable[[float], float]) -> Callable[[Interval], Interval]:
    def run(x: Interval) -> Interval:
        domain_error = x.lo <= 0.0
        lo = log_fn(x.lo) if x.lo > 0.0 else -_INF
        hi = (log_fn(x.hi) if not math.isinf(x.hi) else _INF) \
            if x.hi > 0.0 else -_INF
        if x.hi <= 0.0:
            return Interval(-_INF, _INF, may_nan=True)
        return Interval(lo, hi, x.may_nan or domain_error)

    return run


def _log1p(x: Interval) -> Interval:
    domain_error = x.lo <= -1.0
    lo = math.log1p(x.lo) if x.lo > -1.0 else -_INF
    hi = (math.log1p(x.hi) if not math.isinf(x.hi) else _INF) \
        if x.hi > -1.0 else -_INF
    if x.hi <= -1.0:
        return Interval(-_INF, _INF, may_nan=True)
    return Interval(lo, hi, x.may_nan or domain_error)


def _atan2(y: Interval, x: Interval) -> Interval:
    return Interval(-math.pi, math.pi, x.may_nan or y.may_nan)


def _exp_family(exp_fn: Callable[[float], float],
                floor: float) -> Callable[[Interval], Interval]:
    def run(x: Interval) -> Interval:
        lo, __ = _guard(exp_fn, x.lo) if not math.isinf(x.lo) else (
            (floor, False) if x.lo < 0 else (_INF, False))
        hi, __ = _guard(exp_fn, x.hi) if not math.isinf(x.hi) else (
            (floor, False) if x.hi < 0 else (_INF, False))
        return Interval(min(lo, hi), max(lo, hi), x.may_nan)

    return run


_UNARY_TRANSFERS: Dict[str, Callable[[Interval], Interval]] = {
    "neg": _neg,
    "fabs": _fabs,
    "sqrt": _sqrt,
    "cbrt": lambda x: _endpointwise(_cbrt_point, x),
    "exp": _exp_family(math.exp, 0.0),
    "exp2": _exp_family(lambda v: 2.0 ** v, 0.0),
    "expm1": _exp_family(math.expm1, -1.0),
    "log": _log_family(math.log),
    "log2": _log_family(math.log2),
    "log10": _log_family(math.log10),
    "log1p": _log1p,
    "sin": _sin,
    "cos": _cos,
    "tan": _tan,
    "asin": _asin,
    "acos": _acos,
    "atan": lambda x: _endpointwise(math.atan, x),
    "sinh": lambda x: _endpointwise(
        lambda v: math.copysign(_INF, v) if abs(v) > 710 else math.sinh(v), x
    ),
    "cosh": lambda x: _cosh(x),
    "tanh": lambda x: _endpointwise(math.tanh, x),
    "asinh": lambda x: _endpointwise(math.asinh, x),
    "acosh": _acosh,
    "atanh": _atanh,
    "trunc": lambda x: _endpointwise(
        lambda v: v if math.isinf(v) else float(math.trunc(v)), x
    ),
    "floor": lambda x: _endpointwise(
        lambda v: v if math.isinf(v) else float(math.floor(v)), x
    ),
    "ceil": lambda x: _endpointwise(
        lambda v: v if math.isinf(v) else float(math.ceil(v)), x
    ),
    "round": lambda x: _endpointwise(
        lambda v: v if math.isinf(v) else float(round(v + math.copysign(0.5, v) * 0)), x
    ),
    "nearbyint": lambda x: _endpointwise(
        lambda v: v if math.isinf(v) else float(round(v)), x
    ),
}


def _cosh(x: Interval) -> Interval:
    magnitude = _fabs(x)
    hi = _INF if magnitude.hi > 710 or math.isinf(magnitude.hi) \
        else math.cosh(magnitude.hi)
    return Interval(math.cosh(magnitude.lo), hi, x.may_nan)


_BINARY_TRANSFERS: Dict[str, Callable[[Interval, Interval], Interval]] = {
    "+": _add,
    "-": _sub,
    "*": _mul,
    "/": _div,
    "pow": _pow,
    "hypot": _hypot,
    "atan2": _atan2,
    "fmin": _fmin,
    "fmax": _fmax,
    "fmod": _fmod,
    "remainder": _remainder,
    "fdim": _fdim,
    "copysign": _copysign,
}


def transfer(op: str, args: Sequence[Interval]) -> Interval:
    """The interval image of ``op`` over the argument intervals.

    Unknown operations degrade to :data:`TOP` (sound, useless) rather
    than raising — the static pass must survive any program the
    dynamic engine accepts.
    """
    try:
        if len(args) == 1:
            fn = _UNARY_TRANSFERS.get(op)
            if fn is not None:
                return fn(args[0])
        elif len(args) == 2:
            fn2 = _BINARY_TRANSFERS.get(op)
            if fn2 is not None:
                return fn2(args[0], args[1])
        elif len(args) == 3 and op == "fma":
            return _fma(*args)
    except (OverflowError, ValueError, ZeroDivisionError):
        return TOP
    return TOP


# ----------------------------------------------------------------------
# Integer ALU (used for addressing and loop-counter refinement)
# ----------------------------------------------------------------------


def int_transfer(op: str, x: Interval, y: Interval) -> Interval:
    """Transfer for the machine's integer operations.

    Integer registers are abstracted by the same interval class with
    float endpoints — exact for the |values| < 2^53 the programs use.
    """
    try:
        if op == "iadd":
            return _add(x, y)
        if op == "isub":
            return _sub(x, y)
        if op == "imul":
            return _mul(x, y)
        if op == "idiv":
            if y.contains_zero():
                return REALS
            result = _div(x, y)
            return Interval(
                result.lo
                if math.isinf(result.lo)
                else float(math.floor(result.lo)),
                result.hi
                if math.isinf(result.hi)
                else float(math.ceil(result.hi)),
                result.may_nan,
            )
        if op == "imod":
            bound = y.abs_hi()
            if math.isinf(bound):
                return REALS
            return Interval(-bound, bound)
    except (OverflowError, ValueError):
        return REALS
    # Shifts and bit operations: no useful interval structure.
    return REALS


def binade(value: float) -> Optional[int]:
    """``floor(log2 |value|)``, or None at 0/inf/NaN — the witness
    granularity of every lint diagnostic."""
    if value == 0.0 or math.isnan(value) or math.isinf(value):
        return None
    return math.floor(math.log2(abs(value)))
