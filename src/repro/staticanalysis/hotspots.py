"""Static sampling guidance: per-input high-condition-number binades.

ROADMAP's "error-maximizing input search" item starts here: the
log-uniform sampler demonstrably misses narrow cancellation regimes
(``log1p``-style benchmarks only misbehave when ``x`` sits many
binades below the range midpoint).  :func:`input_hotspots` finds those
regimes *without executing anything*: it slices each input's
precondition range into log-spaced magnitude bands, re-runs the cheap
interval/condition dataflow with that one input restricted to each
band (the other inputs keep their full ranges), and weights each band
by the worst site score it induces.

:func:`guided_sample_inputs` (and ``sample_inputs(...,
hotspots=...)``) then mix hotspot-directed draws with the baseline
sampler — :data:`repro.api.sampling.HOTSPOT_MIX` of the points chase
the statically dangerous binades, the rest preserve baseline coverage.
With ``hotspots=None`` the sampler's code path (and RNG draw sequence)
is bit-identical to the unguided one.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.fpcore.ast import FPCore
from repro.machine import isa
from repro.machine.compiler import compile_fpcore
from repro.staticanalysis.dataflow import analyze_program_static

#: Maximum magnitude bands scored per input variable.
DEFAULT_SLICES = 16

#: How many binades below a side's extreme magnitude the bands reach
#: (deep enough to cover the cancellation regimes of every corpus
#: benchmark while keeping the band count small).
SPAN_BINADES = 60.0

#: Minimum spread (bits) between the best and worst band score before
#: the variable gets any guidance at all — below this the static pass
#: has nothing useful to say and baseline sampling is kept untouched.
MIN_SPREAD_BITS = 1.0

#: Hotspot weights below this fraction of the total are dropped.
MIN_WEIGHT = 1e-3

#: A hotspot band: (lo, hi, weight); weights sum to 1 per variable.
Hotspot = Tuple[float, float, float]


def _magnitude_bands(
    lo: float, hi: float, slices: int
) -> List[Tuple[float, float]]:
    """Log-spaced sub-ranges of [lo, hi] (possibly zero-spanning)."""
    bands: List[Tuple[float, float]] = []

    def one_sided(low: float, high: float, sign: float) -> None:
        # low/high are positive magnitudes, low < high.
        if high <= 0.0 or math.isinf(high):
            high = 1e308 if math.isinf(high) else high
            if high <= 0.0:
                return
        floor = max(low, high * 2.0 ** -SPAN_BINADES, 5e-324)
        if floor >= high:
            bands.append(
                (min(sign * floor, sign * high), max(sign * floor, sign * high))
            )
            return
        count = max(1, min(slices, int(math.log2(high / floor)) or 1))
        ratio = (high / floor) ** (1.0 / count)
        edges = [floor * ratio ** k for k in range(count)] + [high]
        for band_lo, band_hi in zip(edges, edges[1:]):
            a, b = sign * band_lo, sign * band_hi
            bands.append((min(a, b), max(a, b)))

    if lo >= 0.0:
        one_sided(max(lo, 0.0), hi, 1.0)
    elif hi <= 0.0:
        one_sided(max(-hi, 0.0), -lo, -1.0)
    else:
        one_sided(0.0, -lo, -1.0)
        one_sided(0.0, hi, 1.0)
    return bands


def _band_score(
    program: isa.Program,
    box: List[Tuple[float, float]],
    var_index: int,
    band: Tuple[float, float],
) -> float:
    restricted = list(box)
    restricted[var_index] = band
    analysis = analyze_program_static(program, restricted)
    return max((site.score_bits for site in analysis.sites), default=0.0)


def input_hotspots(
    core: FPCore,
    slices: int = DEFAULT_SLICES,
    program: Optional[isa.Program] = None,
) -> Dict[str, List[Hotspot]]:
    """Per-variable hotspot bands weighted by induced static score.

    Variables whose bands all score alike (spread below
    :data:`MIN_SPREAD_BITS`) are omitted — guidance that cannot
    discriminate is worse than baseline coverage.
    """
    from repro.api.sampling import precondition_box

    if program is None:
        program = compile_fpcore(core)
    ranges = precondition_box(core)
    box = [ranges[argument] for argument in core.arguments]
    hotspots: Dict[str, List[Hotspot]] = {}
    for var_index, argument in enumerate(core.arguments):
        lo, hi = box[var_index]
        if not (lo < hi):
            continue
        bands = _magnitude_bands(lo, hi, slices)
        if len(bands) < 2:
            continue
        scored = [
            (band, _band_score(program, box, var_index, band))
            for band in bands
        ]
        scores = [score for __, score in scored]
        spread = max(scores) - min(scores)
        if spread < MIN_SPREAD_BITS:
            continue
        floor_score = min(scores)
        raw = [
            (band, score - floor_score) for band, score in scored
        ]
        total = sum(weight for __, weight in raw)
        if total <= 0.0:
            continue
        weighted = [
            (band[0], band[1], weight / total)
            for band, weight in raw
            if weight / total >= MIN_WEIGHT
        ]
        if not weighted:
            continue
        renorm = sum(w for __, __, w in weighted)
        hotspots[argument] = [
            (band_lo, band_hi, weight / renorm)
            for band_lo, band_hi, weight in weighted
        ]
    return hotspots


def guided_sample_inputs(
    core: FPCore,
    count: int,
    seed: int = 0,
    max_rejections: int = 1000,
    slices: int = DEFAULT_SLICES,
) -> List[List[float]]:
    """Sample inputs with static hotspot bias (one-call convenience)."""
    from repro.api.sampling import sample_inputs

    return sample_inputs(
        core,
        count,
        seed=seed,
        max_rejections=max_rejections,
        hotspots=input_hotspots(core, slices=slices),
    )
