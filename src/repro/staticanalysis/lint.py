"""Ranked lint diagnostics from the static dataflow.

``repro lint`` (and the ``StaticReport`` attached to analysis results)
turn :class:`~repro.staticanalysis.dataflow.SiteSummary` facts into a
flat, deterministic list of :class:`Diagnostic` records.  Codes:

========  ========================================== ==================
code      hazard                                     default severity
========  ========================================== ==================
``S001``  catastrophic-cancellation candidate        by score
``S002``  domain-edge operation (log near 1, …)      by score
``S003``  possible domain violation (NaN source)     warning
``S004``  overflow-prone intermediate                warning
``S005``  underflow/subnormal-prone intermediate     info
``S006``  ill-conditioned comparison / branch        by score
``S007``  rounding-sensitive conversion              by score
========  ========================================== ==================

Score-derived severity: ``error`` at ≥ :data:`SEVERITY_ERROR_BITS`
(the cancellation is catastrophic — half the mantissa or worse can be
garbage), ``warning`` at ≥ :data:`SEVERITY_WARNING_BITS` (the dynamic
analysis' default Tℓ: a site the shadow execution would plausibly
flag), ``info`` below.  Sorting is ``(-score, loc, code)`` — fully
deterministic, which the CI ``lint-smoke`` snapshot diff relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fpcore.ast import FPCore
from repro.machine import isa
from repro.machine.compiler import compile_fpcore
from repro.staticanalysis.dataflow import (
    SCORE_CAP,
    SiteSummary,
    StaticAnalysis,
    analyze_program_static,
)

#: Score (bits) at and above which a diagnostic is an ``error``.
SEVERITY_ERROR_BITS = 40.0

#: Score (bits) at and above which a diagnostic is a ``warning`` —
#: aligned with the dynamic analysis' default local-error threshold.
SEVERITY_WARNING_BITS = 5.0

#: Severity order for sorting/filtering.
SEVERITIES = ("error", "warning", "info")

#: The diagnostic catalog: code -> (title, description).
DIAGNOSTIC_CATALOG: Dict[str, Tuple[str, str]] = {
    "S001": (
        "catastrophic cancellation",
        "an additive operation whose operands can nearly cancel: the "
        "condition number |x|/|x±y| is unbounded (or very large) over "
        "the inferred ranges, so rounding error in the operands is "
        "amplified into the leading digits of the result",
    ),
    "S002": (
        "domain-edge operation",
        "a library operation evaluated near a singularity of its "
        "condition number (log near 1, asin/acos/atanh near ±1, "
        "acosh near 1, trig near its poles/zeros): tiny relative "
        "perturbations of the argument move the result by many ulps",
    ),
    "S003": (
        "possible domain violation",
        "the inferred argument range extends outside the operation's "
        "mathematical domain, so the operation can produce NaN at "
        "runtime (e.g. sqrt of a possibly-negative value)",
    ),
    "S004": (
        "overflow-prone intermediate",
        "the inferred result range exceeds the largest finite double "
        "(~1.8e308) even though the operands are finite: the "
        "operation can overflow to ±inf",
    ),
    "S005": (
        "underflow-prone intermediate",
        "the inferred result range enters the subnormal regime "
        "(below ~2.2e-308) from strictly nonzero operands: gradual "
        "underflow silently discards mantissa bits",
    ),
    "S006": (
        "ill-conditioned comparison",
        "a floating-point branch whose operands can be almost equal "
        "while carrying rounding error: the comparison's outcome (and "
        "the control flow) can differ from the real-valued execution",
    ),
    "S007": (
        "rounding-sensitive conversion",
        "a float-to-integer conversion fed by a value carrying "
        "accumulated rounding error: truncation can land on the wrong "
        "integer",
    ),
    "S008": (
        "overflow propagation",
        "an operand of this operation can already be ±inf from an "
        "upstream overflow while the exact real value is finite: the "
        "~61-bit inf-vs-finite discrepancy flows through this site "
        "(this is where range-compressing consumers like sqrt or log "
        "turn a saturated intermediate into a finitely wrong result)",
    ),
}


@dataclass
class Diagnostic:
    """One ranked finding of the static pass."""

    code: str
    severity: str
    loc: Optional[str]
    op: str
    kind: str
    score_bits: float
    message: str
    witness: Optional[float] = None
    witness_binade: Optional[int] = None
    condition_sup: Optional[float] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "loc": self.loc,
            "op": self.op,
            "kind": self.kind,
            "score_bits": _json_number(self.score_bits),
            "message": self.message,
            "witness": _json_number(self.witness),
            "witness_binade": self.witness_binade,
            "condition_sup": _json_number(self.condition_sup),
            "details": self.details,
        }

    def format(self) -> str:
        place = self.loc or "<unknown>"
        parts = [
            f"{place}: {self.severity}: [{self.code}] "
            f"{DIAGNOSTIC_CATALOG[self.code][0]} at `{self.op}` "
            f"(score {self.score_bits:.1f} bits)"
        ]
        if self.witness_binade is not None:
            parts.append(f"  witness binade 2^{self.witness_binade}")
        return "\n".join(parts)


def _json_number(value: Optional[float]) -> Optional[float]:
    """JSON has no inf/nan: cap to the score scale, drop nan."""
    if value is None:
        return None
    if math.isnan(value):
        return None
    if math.isinf(value) or abs(value) > 1e308:
        return math.copysign(1e308, value)
    return float(value)


def severity_for(score_bits: float) -> str:
    if score_bits >= SEVERITY_ERROR_BITS:
        return "error"
    if score_bits >= SEVERITY_WARNING_BITS:
        return "warning"
    return "info"


def _site_diagnostics(site: SiteSummary) -> List[Diagnostic]:
    """Diagnostics contributed by one site (possibly several codes)."""
    found: List[Diagnostic] = []
    sup = max(site.conds, default=0.0) if site.conds else None

    def emit(code: str, severity: str, message: str) -> None:
        found.append(
            Diagnostic(
                code=code,
                severity=severity,
                loc=site.loc,
                op=site.op,
                kind=site.kind,
                score_bits=round(min(site.score_bits, SCORE_CAP), 3),
                message=message,
                witness=site.witness
                if not math.isnan(site.witness)
                else None,
                witness_binade=site.witness_binade,
                condition_sup=sup,
                details={
                    "function": site.function,
                    "site_id": site.site_id,
                },
            )
        )

    score_severity = severity_for(site.score_bits)
    if "cancellation" in site.flags and site.score_bits > 0.0:
        emit(
            "S001",
            score_severity,
            f"operands of `{site.op}` can cancel: up to "
            f"{site.score_bits:.1f} bits of the result may be rounding "
            "noise",
        )
    if "domain-edge" in site.flags and site.score_bits > 0.0:
        emit(
            "S002",
            score_severity,
            f"`{site.op}` is evaluated near a condition-number "
            f"singularity (amplification ~2^{site.score_bits:.0f})",
        )
    if "domain-violation" in site.flags:
        emit(
            "S003",
            "warning",
            f"argument range of `{site.op}` extends outside its "
            "mathematical domain: NaN is reachable",
        )
    if "overflow" in site.flags:
        emit(
            "S004",
            "warning",
            f"`{site.op}` can overflow the double range",
        )
    if "inf-propagation" in site.flags:
        emit(
            "S008",
            "warning",
            f"`{site.op}` consumes a value that may have overflowed "
            "to ±inf upstream",
        )
    if "underflow" in site.flags:
        emit(
            "S005",
            "info",
            f"`{site.op}` can produce subnormal intermediates",
        )
    if "unstable-branch" in site.flags and site.score_bits > 0.0:
        emit(
            "S006",
            score_severity,
            f"branch `{site.op}` compares values that can be almost "
            "equal while carrying rounding error: the decision can "
            "flip",
        )
    if site.kind == "conversion" and site.score_bits > 0.0:
        emit(
            "S007",
            severity_for(site.score_bits),
            "float→int conversion of a rounding-carrying value",
        )
    return found


def lint_program(
    program: isa.Program,
    input_box: Sequence[Tuple[float, float]] = (),
    min_severity: str = "info",
    analysis: Optional[StaticAnalysis] = None,
) -> List[Diagnostic]:
    """Run the static pass over a machine program; ranked diagnostics.

    ``analysis`` reuses an existing fixpoint (the backend attach path
    computes the analysis once and feeds both the report and the lint).
    """
    if analysis is None:
        analysis = analyze_program_static(program, input_box)
    allowed = set(SEVERITIES[: SEVERITIES.index(min_severity) + 1])
    diagnostics: List[Diagnostic] = []
    for site in analysis.sites:
        diagnostics.extend(
            d for d in _site_diagnostics(site) if d.severity in allowed
        )
    diagnostics.sort(key=lambda d: (-d.score_bits, d.loc or "", d.code))
    return diagnostics


def lint_core(
    core: FPCore,
    min_severity: str = "info",
) -> List[Diagnostic]:
    """Compile an FPCore benchmark and lint it.

    The input box comes from the benchmark's :pre ranges via the same
    extraction the dynamic sampler uses, so static and dynamic runs
    reason about the same input regimes.
    """
    from repro.api.sampling import precondition_box

    program = compile_fpcore(core)
    box = precondition_box(core)
    input_box = [box[argument] for argument in core.arguments]
    return lint_program(program, input_box, min_severity=min_severity)
