"""Static numerical-stability analysis (no execution required).

Herbgrind — the dynamic analysis this repo reproduces — only flags
instability that the sampled inputs happen to excite.  This package is
the complementary *static* layer: an abstract interpretation over
compiled machine programs (and FPCore sources, via the same compiler
the dynamic engine uses) that computes, per program point,

* **value intervals** — with widening for loops, precondition-seeded
  input boxes, and overflow / subnormal / domain-edge tracking
  (:mod:`repro.staticanalysis.intervals`,
  :mod:`repro.staticanalysis.dataflow`), and
* **condition numbers** — per-site relative condition-number suprema
  and first-order error-amplification bounds propagated through the
  dataflow (:mod:`repro.staticanalysis.condition`).

Three consumers sit on top:

* ``repro lint`` — ranked JSON/text diagnostics (catastrophic
  cancellation, domain-edge operations, overflow/underflow-prone
  intermediates, ill-conditioned branches) with witness binades
  (:mod:`repro.staticanalysis.lint`);
* :class:`StaticReport` attached to ``AnalysisResult.extra["static"]``
  by the herbgrind backend and cross-checked against the dynamically
  flagged sites (:mod:`repro.staticanalysis.report`; the report is
  stripped from serialized JSON, like ``extra["degradation"]``, so the
  byte-identity invariant holds with the layer on or off);
* static sampling guidance — per-input high-condition-number binades
  that bias ``repro.api.sampling`` toward the narrow regimes the
  log-uniform sampler misses (:mod:`repro.staticanalysis.hotspots`).

See ``docs/static-analysis.md`` for the lattice, the widening rules,
the condition-number propagation rules, and the lint catalog.
"""

from repro.staticanalysis.dataflow import (
    AbstractValue,
    SiteSummary,
    StaticAnalysis,
    analyze_program_static,
)
from repro.staticanalysis.hotspots import guided_sample_inputs, input_hotspots
from repro.staticanalysis.intervals import Interval
from repro.staticanalysis.lint import (
    DIAGNOSTIC_CATALOG,
    Diagnostic,
    lint_core,
    lint_program,
)
from repro.staticanalysis.report import StaticReport, cross_check, static_report

__all__ = [
    "AbstractValue",
    "DIAGNOSTIC_CATALOG",
    "Diagnostic",
    "Interval",
    "SiteSummary",
    "StaticAnalysis",
    "StaticReport",
    "analyze_program_static",
    "cross_check",
    "guided_sample_inputs",
    "input_hotspots",
    "lint_core",
    "lint_program",
    "static_report",
]
