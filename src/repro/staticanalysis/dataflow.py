"""Abstract interpretation over machine programs.

A worklist fixpoint over each function's instruction list computes, at
every program point, an abstract state mapping

* float registers to :class:`AbstractValue` — a value :class:`Interval`
  plus ``err``, a bound (in ulps) on the accumulated relative rounding
  error of the concrete double versus the shadow-real execution,
* integer registers to plain intervals (exact below 2^53),
* the untyped heap to abstract cells (strong updates at singleton
  addresses, weak smearing otherwise).

Loops terminate through widening: after :data:`WIDEN_AFTER` joins at a
merge point, moving interval endpoints jump to ±inf and a still-growing
``err`` jumps to :data:`ERR_CAP`.  Branch edges refine operand
intervals (the taken edge of ``x < y`` meets ``x`` with ``(-inf, hi y]``
and proves both operands non-NaN).

**The error model** mirrors Herbgrind's *local* error, which is what
dynamic flagging thresholds on.  Local error at an operation compares
``F(round(s₁), …)`` against ``round(f(s₁, …))`` where ``sᵢ`` are exact
shadow reals — so the only error sources visible at a site are (a) the
half-ulp from rounding each *non-representable* shadow argument,
amplified by the argument's condition number, and (b) the operation's
own rounding.  Statically:

* ``round_i = 1`` ulp if the argument's accumulated ``err > 0`` (its
  real value may be non-representable), else ``0`` — inputs, compile-
  time constants, and chains of exact operations stay at ``0``,
* ``amp = Σ condᵢ_sup · round_i  (+ 1 own-rounding ulp when any
  round_i > 0 and the op rounds)``,
* ``score_bits = log₂(1 + amp)`` — the static mirror of a site's
  maximum local error in bits.

This is exactly why ``(x+y)*(x-y)`` is *not* flagged while
``x*x - y*y`` is: the stable form subtracts representable inputs
(``round_i = 0`` → amp 0), the naive form subtracts two rounded
products through an unbounded cancellation condition number.

Accumulated ``err`` additionally flows forward (``err_out =
Σ condᵢ·errᵢ + ρ``) so output/conversion/branch *spots* can report
total-error magnitudes, mirroring the dynamic output-error spots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bigfloat.functions import LIBRARY_OPERATIONS
from repro.machine import isa
from repro.staticanalysis.condition import (
    EXACT_OPS,
    Conditioning,
    condition,
)
from repro.staticanalysis.intervals import (
    REALS,
    Interval,
    binade,
    int_transfer,
    transfer,
)

#: Joins at one merge point before widening kicks in.
WIDEN_AFTER = 8

#: Ceiling for accumulated error (ulps); also the widening target.
ERR_CAP = 2.0 ** 200

#: Ceiling for a site score in bits (an infinite condition number
#: means "total cancellation reachable", not "infinitely wrong").
SCORE_CAP = 200.0

#: Instruction-visit budget per analysis — a backstop, not the normal
#: termination mechanism (widening is).
DEFAULT_MAX_VISITS = 200_000

#: Recursion depth for interprocedural calls.
CALL_DEPTH_LIMIT = 8

#: Default range for Read instructions beyond the provided input box
#: (matches repro.api.sampling.DEFAULT_RANGE).
DEFAULT_READ_RANGE = (-1e9, 1e9)

#: Condition-number supremum above which an additive op counts as a
#: cancellation candidate (2^5: at least 5 bits can cancel).
CANCEL_COND = 32.0

#: Condition-number supremum above which a unary library op counts as
#: operating at a domain edge.
DOMAIN_EDGE_COND = 32.0

#: Local-error amplification charged to an op that can overflow to
#: ±inf while the shadow real stays finite.  ``bits_of_error`` between
#: inf and a finite double is ~61 bits, which is what the dynamic
#: analysis reports at such sites — condition numbers alone are blind
#: to it (the relative derivative of ``x*x`` is a tame 1).
OVERFLOW_AMP = 2.0 ** 61

#: Ops with a singular domain edge worth a dedicated diagnostic.
DOMAIN_EDGE_OPS = frozenset(
    {
        "log", "log2", "log10", "log1p", "expm1",
        "asin", "acos", "acosh", "atanh",
        "sin", "cos", "tan", "pow", "sqrt",
    }
)

_ADDITIVE_OPS = frozenset({"+", "-", "fma", "fdim", "fmod", "remainder"})

#: Selection ops propagate one argument unchanged: err is max, not sum.
_SELECTION_OPS = frozenset({"fmin", "fmax", "copysign"})

_NEGATED_PREDICATE = {
    "lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq",
}


@dataclass(frozen=True)
class AbstractValue:
    """One float register: value interval + accumulated error (ulps)."""

    interval: Interval
    err: float = 0.0

    def join(self, other: "AbstractValue") -> "AbstractValue":
        return AbstractValue(
            self.interval.hull(other.interval), max(self.err, other.err)
        )

    def widen(self, newer: "AbstractValue") -> "AbstractValue":
        err = self.err if newer.err <= self.err else ERR_CAP
        return AbstractValue(self.interval.widen(newer.interval), err)


TOP_VALUE = AbstractValue(REALS, 0.0)


@dataclass
class SiteSummary:
    """Fixpoint facts about one instruction site.

    ``score_bits`` mirrors the dynamic analysis' *maximum local error*
    at the site; ``total_err_bits`` mirrors the accumulated error a
    spot would report.  ``flags`` collects the structural hazards the
    lint pass turns into diagnostics.
    """

    site_id: int
    loc: Optional[str]
    op: str
    kind: str  # "op" | "branch" | "output" | "conversion"
    function: str
    index: int
    score_bits: float = 0.0
    amp: float = 0.0
    total_err_bits: float = 0.0
    conds: Tuple[float, ...] = ()
    arg_errs: Tuple[float, ...] = ()
    result_lo: float = -math.inf
    result_hi: float = math.inf
    witness: float = math.nan
    witness_binade: Optional[int] = None
    flags: set = field(default_factory=set)
    visits: int = 0

    def observe(
        self,
        amp: float,
        total_err: float,
        conds: Sequence[float],
        arg_errs: Sequence[float],
        result: Interval,
        witness: float,
        flags: Sequence[str],
    ) -> None:
        self.visits += 1
        score = _score_bits(amp)
        if score >= self.score_bits:
            self.score_bits = score
            self.amp = min(amp, ERR_CAP)
            self.conds = tuple(min(c, ERR_CAP) for c in conds)
            self.arg_errs = tuple(min(e, ERR_CAP) for e in arg_errs)
            if not math.isnan(witness):
                self.witness = witness
                self.witness_binade = binade(witness)
        self.total_err_bits = max(self.total_err_bits, _score_bits(total_err))
        self.result_lo = result.lo
        self.result_hi = result.hi
        self.flags.update(flags)


def _score_bits(amp: float) -> float:
    if amp <= 0.0:
        return 0.0
    if math.isinf(amp) or amp >= ERR_CAP:
        return SCORE_CAP
    return min(math.log2(1.0 + amp), SCORE_CAP)


class _State:
    """Mutable abstract machine state at one program point."""

    __slots__ = ("fregs", "iregs", "heap", "heap_summary", "reads")

    def __init__(
        self,
        fregs: Optional[Dict[str, AbstractValue]] = None,
        iregs: Optional[Dict[str, Interval]] = None,
        heap: Optional[Dict[float, AbstractValue]] = None,
        heap_summary: Optional[AbstractValue] = None,
        reads: int = 0,
    ) -> None:
        self.fregs = fregs if fregs is not None else {}
        self.iregs = iregs if iregs is not None else {}
        self.heap = heap if heap is not None else {}
        self.heap_summary = heap_summary
        self.reads = reads

    def copy(self) -> "_State":
        return _State(
            dict(self.fregs),
            dict(self.iregs),
            dict(self.heap),
            self.heap_summary,
            self.reads,
        )

    def join_from(self, other: "_State", widen: bool) -> bool:
        """Merge ``other`` into self; True when anything changed."""
        changed = False
        for name, value in other.fregs.items():
            mine = self.fregs.get(name)
            if mine is None:
                self.fregs[name] = value
                changed = True
                continue
            merged = mine.widen(value) if widen else mine.join(value)
            if merged != mine:
                self.fregs[name] = merged
                changed = True
        for name, interval in other.iregs.items():
            mine_i = self.iregs.get(name)
            if mine_i is None:
                self.iregs[name] = interval
                changed = True
                continue
            merged_i = mine_i.widen(interval) if widen else mine_i.hull(interval)
            if merged_i != mine_i:
                self.iregs[name] = merged_i
                changed = True
        for addr, value in other.heap.items():
            mine = self.heap.get(addr)
            if mine is None:
                self.heap[addr] = value
                changed = True
                continue
            merged = mine.widen(value) if widen else mine.join(value)
            if merged != mine:
                self.heap[addr] = merged
                changed = True
        if other.heap_summary is not None:
            if self.heap_summary is None:
                self.heap_summary = other.heap_summary
                changed = True
            else:
                merged = (
                    self.heap_summary.widen(other.heap_summary)
                    if widen
                    else self.heap_summary.join(other.heap_summary)
                )
                if merged != self.heap_summary:
                    self.heap_summary = merged
                    changed = True
        if other.reads > self.reads:
            self.reads = other.reads
            changed = True
        return changed

    def digest(self) -> Tuple:
        """A hashable snapshot, for call memoization."""
        return (
            tuple(sorted(
                (n, v.interval.lo, v.interval.hi, v.interval.may_nan, v.err)
                for n, v in self.fregs.items()
            )),
            tuple(sorted(
                (n, i.lo, i.hi) for n, i in self.iregs.items()
            )),
            tuple(sorted(
                (a, v.interval.lo, v.interval.hi, v.interval.may_nan, v.err)
                for a, v in self.heap.items()
            )),
            None
            if self.heap_summary is None
            else (
                self.heap_summary.interval.lo,
                self.heap_summary.interval.hi,
                self.heap_summary.interval.may_nan,
                self.heap_summary.err,
            ),
            self.reads,
        )


#: Tagged return value of an abstract call: ("f", AbstractValue) or
#: ("i", Interval) or None (no value returned on any path).
_TaggedValue = Optional[Tuple[str, Any]]


class StaticAnalysis:
    """One static analysis run over a machine program.

    ``sites`` lists every float-op / branch / conversion / output site
    in discovery order; :meth:`ranked` orders them by descending score
    (the static analogue of ``HerbgrindAnalysis.candidate_records``).
    """

    def __init__(
        self,
        program: isa.Program,
        input_box: Sequence[Tuple[float, float]] = (),
        max_visits: int = DEFAULT_MAX_VISITS,
    ) -> None:
        self.program = program
        self.input_box = [
            (float(lo), float(hi)) for lo, hi in input_box
        ]
        self.max_visits = max_visits
        self.visits = 0
        self.converged = True
        self.sites: List[SiteSummary] = []
        self._site_index: Dict[int, SiteSummary] = {}
        self._call_memo: Dict[Tuple, Tuple[_TaggedValue, _State]] = {}
        self._budget_exhausted = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> "StaticAnalysis":
        entry = self.program.function(self.program.entry)
        self._run_function(entry, _State(), depth=0)
        return self

    def ranked(
        self, threshold: Optional[float] = None, kinds: Optional[set] = None
    ) -> List[SiteSummary]:
        """Sites ordered by (-score, site_id), optionally thresholded."""
        selected = [
            site
            for site in self.sites
            if (threshold is None or site.score_bits > threshold)
            and (kinds is None or site.kind in kinds)
        ]
        return sorted(selected, key=lambda s: (-s.score_bits, s.site_id))

    def by_loc(self) -> Dict[str, SiteSummary]:
        """Best-scored site per source location."""
        best: Dict[str, SiteSummary] = {}
        for site in self.sites:
            if site.loc is None:
                continue
            current = best.get(site.loc)
            if current is None or site.score_bits > current.score_bits:
                best[site.loc] = site
        return best

    # ------------------------------------------------------------------
    # Fixpoint driver
    # ------------------------------------------------------------------

    def _run_function(
        self, fn: isa.Function, entry: _State, depth: int
    ) -> Tuple[_TaggedValue, _State]:
        in_states: Dict[int, _State] = {0: entry}
        join_counts: Dict[int, int] = {}
        worklist: List[int] = [0]
        ret_value: _TaggedValue = None
        exit_state = _State()
        saw_exit = False

        while worklist:
            if self.visits >= self.max_visits:
                self.converged = False
                self._budget_exhausted = True
                break
            index = worklist.pop()
            if index >= len(fn.instrs):
                continue
            state = in_states[index].copy()
            self.visits += 1
            outcome = self._execute(fn, index, state, depth)
            if outcome.returned is not None or outcome.halted:
                saw_exit = True
                if outcome.returned is not None:
                    ret_value = _join_tagged(ret_value, outcome.returned)
                exit_state.join_from(outcome.state, widen=False)
                continue
            for successor, succ_state in outcome.successors:
                if successor >= len(fn.instrs):
                    saw_exit = True
                    exit_state.join_from(succ_state, widen=False)
                    continue
                existing = in_states.get(successor)
                if existing is None:
                    in_states[successor] = succ_state.copy()
                    worklist.append(successor)
                    continue
                count = join_counts.get(successor, 0) + 1
                join_counts[successor] = count
                if existing.join_from(succ_state, widen=count > WIDEN_AFTER):
                    worklist.append(successor)
        if not saw_exit:
            # Budget exhaustion or an (abstractly) non-terminating
            # function: expose a conservative exit state.
            exit_state = entry
        return ret_value, exit_state

    # ------------------------------------------------------------------
    # Instruction transfer
    # ------------------------------------------------------------------

    def _execute(
        self, fn: isa.Function, index: int, state: _State, depth: int
    ) -> "_Outcome":
        instr = fn.instrs[index]
        next_index = index + 1

        if isinstance(instr, isa.Const):
            state.fregs[instr.dst] = AbstractValue(
                Interval.point(float(instr.value)), 0.0
            )
        elif isinstance(instr, isa.ConstInt):
            state.iregs[instr.dst] = Interval.point(float(instr.value))
        elif isinstance(instr, isa.Read):
            if state.reads < len(self.input_box):
                lo, hi = self.input_box[state.reads]
            else:
                lo, hi = DEFAULT_READ_RANGE
            state.fregs[instr.dst] = AbstractValue(Interval(lo, hi), 0.0)
            state.reads += 1
        elif isinstance(instr, isa.FloatOp):
            self._float_op(fn, index, instr, instr.op, instr.dst,
                           instr.srcs, state)
        elif isinstance(instr, isa.PackedOp):
            for dst, lane in zip(instr.dsts, instr.lanes):
                self._float_op(fn, index, instr, instr.op, dst, lane, state)
        elif isinstance(instr, isa.FloatBitOp):
            source = state.fregs.get(instr.src, TOP_VALUE)
            if instr.op == "xor" and instr.mask == isa.SIGN_BIT_MASK:
                state.fregs[instr.dst] = AbstractValue(
                    transfer("neg", [source.interval]), source.err
                )
            elif instr.op == "and" and instr.mask == isa.ABS_MASK:
                state.fregs[instr.dst] = AbstractValue(
                    transfer("fabs", [source.interval]), source.err
                )
            else:
                state.fregs[instr.dst] = AbstractValue(REALS, source.err)
        elif isinstance(instr, isa.IntOp):
            lhs = state.iregs.get(instr.lhs, REALS)
            rhs = state.iregs.get(instr.rhs, REALS)
            state.iregs[instr.dst] = int_transfer(instr.op, lhs, rhs)
        elif isinstance(instr, isa.Mov):
            if instr.src in state.fregs:
                state.fregs[instr.dst] = state.fregs[instr.src]
            elif instr.src in state.iregs:
                state.iregs[instr.dst] = state.iregs[instr.src]
            else:
                state.fregs[instr.dst] = TOP_VALUE
        elif isinstance(instr, isa.Load):
            state.fregs[instr.dst] = self._load(state, instr.addr)
        elif isinstance(instr, isa.Store):
            self._store(state, instr.addr, instr.src)
        elif isinstance(instr, isa.BitcastToInt):
            state.iregs[instr.dst] = REALS
        elif isinstance(instr, isa.BitcastToFloat):
            state.fregs[instr.dst] = AbstractValue(
                Interval(-math.inf, math.inf, may_nan=True), 0.0
            )
        elif isinstance(instr, isa.FloatToInt):
            source = state.fregs.get(instr.src, TOP_VALUE)
            result = transfer("trunc", [source.interval])
            self._site(fn, index, instr, "trunc", "conversion").observe(
                amp=source.err if source.err > 0 else 0.0,
                total_err=source.err,
                conds=(1.0,),
                arg_errs=(source.err,),
                result=result,
                witness=math.nan,
                flags=_value_flags(result, ()),
            )
            state.iregs[instr.dst] = result
        elif isinstance(instr, isa.IntToFloat):
            source_i = state.iregs.get(instr.src, REALS)
            state.fregs[instr.dst] = AbstractValue(source_i, 0.0)
        elif isinstance(instr, isa.Branch):
            return self._branch(fn, index, instr, state, floats=True)
        elif isinstance(instr, isa.IntBranch):
            return self._branch(fn, index, instr, state, floats=False)
        elif isinstance(instr, isa.Jump):
            return _Outcome(
                successors=[(fn.label_index(instr.target), state)],
                state=state,
            )
        elif isinstance(instr, isa.Call):
            self._call(fn, index, instr, state, depth)
        elif isinstance(instr, isa.Ret):
            returned: _TaggedValue = ("f", AbstractValue(REALS, 0.0))
            if instr.src is None:
                returned = ("none", None)
            elif instr.src in state.fregs:
                returned = ("f", state.fregs[instr.src])
            elif instr.src in state.iregs:
                returned = ("i", state.iregs[instr.src])
            return _Outcome(returned=returned, state=state)
        elif isinstance(instr, isa.Out):
            value = state.fregs.get(instr.src, TOP_VALUE)
            self._site(fn, index, instr, "out", "output").observe(
                amp=value.err,
                total_err=value.err,
                conds=(1.0,),
                arg_errs=(value.err,),
                result=value.interval,
                witness=math.nan,
                flags=_value_flags(value.interval, ()),
            )
        elif isinstance(instr, isa.Halt):
            return _Outcome(halted=True, state=state)
        return _Outcome(successors=[(next_index, state)], state=state)

    # ------------------------------------------------------------------
    # Float operations (the site-scoring core)
    # ------------------------------------------------------------------

    def _float_op(
        self,
        fn: isa.Function,
        index: int,
        instr: isa.Instr,
        op: str,
        dst: str,
        srcs: Sequence[str],
        state: _State,
    ) -> None:
        args = [state.fregs.get(src, TOP_VALUE) for src in srcs]
        intervals = [a.interval for a in args]
        result = transfer(op, intervals)
        conds = condition(op, intervals, result)
        amp, total = _amplification(conds, args)
        if op in _SELECTION_OPS:
            total = max((a.err for a in args), default=0.0)
        witness = _pick_witness(conds, args)
        flags = _op_flags(op, conds, args, result, amp)
        arg_overflow = any(a.interval.may_overflow() for a in args)
        if "overflow" in flags or (arg_overflow and op not in EXACT_OPS):
            # Overflow shows up as local error where a rounded shadow
            # argument is ±inf (or the double result saturates) while
            # the real value is finite: a fixed ~61-bit error,
            # independent of conditioning.  Dynamically this lands on
            # the *consumer* of the overflowed value (sqrt/log/… pull
            # the real result back into range), so the taint is charged
            # to every rounded op downstream of a may-overflow range.
            amp = max(amp, OVERFLOW_AMP)
            total = max(total, OVERFLOW_AMP)
            if arg_overflow and op not in EXACT_OPS:
                flags = list(flags) + ["inf-propagation"]
        state.fregs[dst] = AbstractValue(result, min(total, ERR_CAP))
        self._site(fn, index, instr, op, "op").observe(
            amp=amp,
            total_err=total,
            conds=conds.sups,
            arg_errs=tuple(a.err for a in args),
            result=result,
            witness=witness,
            flags=flags,
        )

    def _call(
        self,
        fn: isa.Function,
        index: int,
        instr: isa.Call,
        state: _State,
        depth: int,
    ) -> None:
        name = instr.function
        if name in self.program.functions and name not in LIBRARY_OPERATIONS:
            self._user_call(fn, index, instr, state, depth)
            return
        # Math-library (or unknown external) call: one atomic operation
        # site, exactly how the dynamic analysis treats a wrapped call.
        self._float_op(fn, index, instr, name, instr.dst, instr.args, state)

    def _user_call(
        self,
        fn: isa.Function,
        index: int,
        instr: isa.Call,
        state: _State,
        depth: int,
    ) -> None:
        callee = self.program.function(instr.function)
        if depth >= CALL_DEPTH_LIMIT:
            state.fregs[instr.dst] = TOP_VALUE
            return
        entry = _State(heap=dict(state.heap),
                       heap_summary=state.heap_summary,
                       reads=state.reads)
        for param, arg in zip(callee.params, instr.args):
            if arg in state.fregs:
                entry.fregs[param] = state.fregs[arg]
            elif arg in state.iregs:
                entry.iregs[param] = state.iregs[arg]
            else:
                entry.fregs[param] = TOP_VALUE
        memo_key = (instr.function, entry.digest())
        memoized = self._call_memo.get(memo_key)
        if memoized is not None:
            returned, exit_state = memoized
        else:
            returned, exit_state = self._run_function(
                callee, entry, depth + 1
            )
            self._call_memo[memo_key] = (returned, exit_state)
        state.heap = dict(exit_state.heap)
        state.heap_summary = exit_state.heap_summary
        state.reads = max(state.reads, exit_state.reads)
        if returned is None or returned[0] == "none":
            state.fregs[instr.dst] = TOP_VALUE
        elif returned[0] == "f":
            state.fregs[instr.dst] = returned[1]
        else:
            state.iregs[instr.dst] = returned[1]

    # ------------------------------------------------------------------
    # Branches (control spots) with edge refinement
    # ------------------------------------------------------------------

    def _branch(
        self,
        fn: isa.Function,
        index: int,
        instr,
        state: _State,
        floats: bool,
    ) -> "_Outcome":
        if floats:
            lhs = state.fregs.get(instr.lhs, TOP_VALUE)
            rhs = state.fregs.get(instr.rhs, TOP_VALUE)
            lv, rv = lhs.interval, rhs.interval
            diff = transfer("-", [lv, rv])
            conds = condition("-", [lv, rv], diff)
            amp, total = _amplification(conds, [lhs, rhs])
            flags = []
            if diff.contains_zero() and (lhs.err > 0 or rhs.err > 0):
                flags.append("unstable-branch")
            self._site(fn, index, instr, instr.pred, "branch").observe(
                amp=amp,
                total_err=total,
                conds=conds.sups,
                arg_errs=(lhs.err, rhs.err),
                result=diff,
                witness=_pick_witness(conds, [lhs, rhs]),
                flags=flags,
            )
        else:
            lv = state.iregs.get(instr.lhs, REALS)
            rv = state.iregs.get(instr.rhs, REALS)

        target = fn.label_index(instr.target)
        successors = []

        taken = self._refine(instr.pred, lv, rv)
        if taken is not None:
            taken_state = state.copy()
            _apply_refinement(taken_state, instr, taken, floats)
            successors.append((target, taken_state))

        may_nan = lv.may_nan or rv.may_nan
        negated = _NEGATED_PREDICATE[instr.pred]
        fallthrough = self._refine(negated, lv, rv)
        if fallthrough is not None or may_nan:
            fall_state = state.copy()
            if fallthrough is not None and not may_nan:
                _apply_refinement(fall_state, instr, fallthrough, floats)
            successors.append((index + 1, fall_state))
        return _Outcome(successors=successors, state=state)

    @staticmethod
    def _refine(
        pred: str, lv: Interval, rv: Interval
    ) -> Optional[Tuple[Interval, Interval]]:
        """Operand intervals assuming ``pred`` holds; None = infeasible.

        Strict predicates are treated as their non-strict closures
        (sound for a closed-interval domain).
        """
        if pred in ("lt", "le"):
            new_l = lv.meet(hi=rv.hi)
            new_r = rv.meet(lo=lv.lo)
        elif pred in ("gt", "ge"):
            new_l = lv.meet(lo=rv.lo)
            new_r = rv.meet(hi=lv.hi)
        elif pred == "eq":
            new_l = lv.meet(lo=rv.lo, hi=rv.hi)
            new_r = rv.meet(lo=lv.lo, hi=lv.hi)
        else:  # ne: no refinement expressible in intervals
            return lv, rv
        if new_l is None or new_r is None:
            return None
        # A comparison that held proves both operands are not NaN.
        return (
            Interval(new_l.lo, new_l.hi, False),
            Interval(new_r.lo, new_r.hi, False),
        )

    # ------------------------------------------------------------------
    # Heap
    # ------------------------------------------------------------------

    def _load(self, state: _State, addr_reg: str) -> AbstractValue:
        addr = state.iregs.get(addr_reg, REALS)
        if addr.is_point:
            cell = state.heap.get(addr.lo)
            if cell is not None:
                if state.heap_summary is not None:
                    return cell.join(state.heap_summary)
                return cell
        else:
            cells = [
                cell for a, cell in state.heap.items() if addr.contains(a)
            ]
            if state.heap_summary is not None:
                cells.append(state.heap_summary)
            if cells:
                merged = cells[0]
                for cell in cells[1:]:
                    merged = merged.join(cell)
                return merged
        if state.heap_summary is not None:
            return state.heap_summary
        return TOP_VALUE

    @staticmethod
    def _store(state: _State, addr_reg: str, src: str) -> None:
        addr = state.iregs.get(addr_reg, REALS)
        value = state.fregs.get(src, TOP_VALUE)
        if addr.is_point:
            state.heap[addr.lo] = value  # strong update
            return
        # Weak update: smear into every possibly-aliased cell and the
        # summary (future strong loads must still see this value).
        for cell_addr in list(state.heap):
            if addr.contains(cell_addr):
                state.heap[cell_addr] = state.heap[cell_addr].join(value)
        state.heap_summary = (
            value
            if state.heap_summary is None
            else state.heap_summary.join(value)
        )

    # ------------------------------------------------------------------
    # Site bookkeeping
    # ------------------------------------------------------------------

    def _site(
        self, fn: isa.Function, index: int, instr, op: str, kind: str
    ) -> SiteSummary:
        summary = self._site_index.get(id(instr))
        if summary is None:
            summary = SiteSummary(
                site_id=len(self.sites) + 1,
                loc=getattr(instr, "loc", None),
                op=op,
                kind=kind,
                function=fn.name,
                index=index,
            )
            self.sites.append(summary)
            self._site_index[id(instr)] = summary
        return summary


@dataclass
class _Outcome:
    """Result of abstractly executing one instruction."""

    successors: List[Tuple[int, _State]] = field(default_factory=list)
    state: _State = field(default_factory=_State)
    returned: _TaggedValue = None
    halted: bool = False


def _join_tagged(current: _TaggedValue, new: _TaggedValue) -> _TaggedValue:
    if current is None:
        return new
    if new is None or current[0] != new[0]:
        return current
    if current[0] == "f":
        return ("f", current[1].join(new[1]))
    if current[0] == "i":
        return ("i", current[1].hull(new[1]))
    return current


def _apply_refinement(
    state: _State, instr, refined: Tuple[Interval, Interval], floats: bool
) -> None:
    new_l, new_r = refined
    if floats:
        for reg, interval in ((instr.lhs, new_l), (instr.rhs, new_r)):
            old = state.fregs.get(reg)
            if old is not None:
                state.fregs[reg] = AbstractValue(interval, old.err)
    else:
        state.iregs[instr.lhs] = new_l
        state.iregs[instr.rhs] = new_r


def _amplification(
    conds: Conditioning, args: Sequence[AbstractValue]
) -> Tuple[float, float]:
    """(local amp in ulps, accumulated err out in ulps)."""
    amp = 0.0
    total = 0.0
    rounded_arg = False
    for sup, value in zip(conds.sups, args):
        if value.err > 0.0:
            # Zero-err args contribute nothing — and must be skipped
            # explicitly, since an infinite condition number times a
            # zero error would otherwise poison the sums with NaN.
            rounded_arg = True
            amp += sup  # one ulp of argument rounding, amplified
            total += sup * value.err
        if math.isinf(amp) or amp > ERR_CAP:
            amp = ERR_CAP
        if math.isinf(total) or total > ERR_CAP:
            total = ERR_CAP
    if rounded_arg and conds.rho > 0.0:
        amp += conds.rho
    total += conds.rho
    return min(amp, ERR_CAP), min(total, ERR_CAP)


def _pick_witness(
    conds: Conditioning, args: Sequence[AbstractValue]
) -> float:
    """Witness of the dominant *error-carrying* argument."""
    best = math.nan
    best_sup = -1.0
    for sup, witness, value in zip(conds.sups, conds.witnesses, args):
        if value.err <= 0.0:
            continue
        if sup > best_sup and not math.isnan(witness):
            best_sup = sup
            best = witness
    if math.isnan(best):
        for sup, witness in zip(conds.sups, conds.witnesses):
            if sup > best_sup and not math.isnan(witness):
                best_sup = sup
                best = witness
    return best


def _value_flags(result: Interval, base: Sequence[str]) -> List[str]:
    flags = list(base)
    if result.may_overflow():
        flags.append("overflow")
    if result.may_nan:
        flags.append("maybe-nan")
    return flags


def _op_flags(
    op: str,
    conds: Conditioning,
    args: Sequence[AbstractValue],
    result: Interval,
    amp: float,
) -> List[str]:
    flags: List[str] = []
    max_sup = conds.max_sup
    if op in _ADDITIVE_OPS and max_sup >= CANCEL_COND:
        flags.append("cancellation")
    if op in DOMAIN_EDGE_OPS:
        if max_sup >= DOMAIN_EDGE_COND:
            flags.append("domain-edge")
        if result.may_nan and not any(
            a.interval.may_nan for a in args
        ):
            # This op itself can step outside its domain.
            flags.append("domain-violation")
    if result.may_overflow() and not any(
        a.interval.may_overflow() for a in args
    ):
        flags.append("overflow")
    if (
        op in ("*", "/", "exp", "exp2", "expm1", "pow")
        and result.may_underflow()
        and not any(a.interval.contains_zero() for a in args)
    ):
        flags.append("underflow")
    return flags


def analyze_program_static(
    program: isa.Program,
    input_box: Sequence[Tuple[float, float]] = (),
    max_visits: int = DEFAULT_MAX_VISITS,
) -> StaticAnalysis:
    """Run the abstract interpretation; returns the finished analysis.

    ``input_box`` gives one ``(lo, hi)`` range per ``Read`` in entry
    order (an FPCore program reads one input per argument, in argument
    order); missing entries default to the sampler's default box.
    """
    return StaticAnalysis(program, input_box, max_visits=max_visits).run()
