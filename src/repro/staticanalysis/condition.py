"""Per-operation relative condition numbers over intervals.

For an operation ``f`` the relative condition number with respect to
argument ``i`` is ``|x_i * ∂f/∂x_i / f|`` — the factor by which a
relative error in the argument is amplified into the result.  The
static analysis needs the *supremum* of that factor over the abstract
argument intervals, plus a **witness**: a concrete argument value at
(or near) which the supremum is attained, whose binade names the
dangerous input regime in lint diagnostics.

The interesting structure is where a condition number diverges:

========== ======================================== ==================
op         condition number                         singular at
========== ======================================== ==================
``+``/``-`` ``|x| / |x ± y|``                       result = 0
``*``,``/`` 1                                       (never)
``sqrt``    1/2; ``cbrt`` 1/3                       (never)
``exp``     ``|x|``                                 x -> ±inf
``log``     ``1 / |ln u|`` (any base)               u = 1
``log1p``   ``|x / ((1+x) ln(1+x))|``               x = -1
``expm1``   ``|x e^x / (e^x - 1)|``                 x -> +inf
``sin``     ``|x cot x|``                           x = kπ, k ≠ 0
``cos``     ``|x tan x|``                           x = π/2 + kπ
``tan``     ``|x / (sin x cos x)|``                 x = kπ/2, k ≠ 0
``asin``    ``|x / (√(1-x²) asin x)|``              x = ±1
``acos``    ``|x / (√(1-x²) acos x)|``              x = ±1
``acosh``   ``|x / (√(x²-1) acosh x)|``             x = 1
``atanh``   ``|x / ((1-x²) atanh x)|``              x = ±1
``pow``     ``|y|`` in x; ``|y ln x|`` in y         x = 0 / x -> inf
``fmod``    like subtraction                        result = 0
========== ======================================== ==================

Exact operations (``neg``, ``fabs``, ``copysign``, ``fmin``/``fmax``,
``trunc``-family, ``Mov``) introduce no rounding of their own
(``rho = 0``); every other operation contributes one half-ulp rounding,
which the dataflow accounts as ``rho = 1`` ulp of fresh relative error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.staticanalysis.intervals import Interval

_INF = math.inf

#: Operations whose double result is exact (no fresh rounding).
EXACT_OPS = frozenset(
    {
        "neg",
        "fabs",
        "copysign",
        "fmin",
        "fmax",
        "trunc",
        "floor",
        "ceil",
        "round",
        "nearbyint",
    }
)

#: Structurally benign operations: condition number exactly 1 per
#: argument regardless of ranges.
_UNIT_OPS = frozenset(
    {"*", "/", "neg", "fabs", "copysign", "fmin", "fmax", "atan2", "hypot"}
)


@dataclass(frozen=True)
class Conditioning:
    """Condition-number suprema of one operation instance.

    ``sups[i]`` bounds the relative-error amplification from argument
    ``i`` into the result; ``witnesses[i]`` is a concrete argument
    value near which the bound is attained (``nan`` when no meaningful
    witness exists).  ``rho`` is the operation's own rounding
    contribution in ulps.
    """

    sups: Tuple[float, ...]
    witnesses: Tuple[float, ...]
    rho: float

    @property
    def max_sup(self) -> float:
        return max(self.sups, default=0.0)


def _unit(n: int, rho: float) -> Conditioning:
    return Conditioning((1.0,) * n, (math.nan,) * n, rho)


def _nearest_in(interval: Interval, target: float) -> float:
    """The point of ``interval`` closest to ``target``."""
    return min(max(target, interval.lo), interval.hi)


def _largest_magnitude(interval: Interval) -> float:
    return interval.lo if abs(interval.lo) >= abs(interval.hi) else interval.hi


def _cancellation(
    args: Sequence[Interval], result: Interval
) -> Tuple[List[float], List[float]]:
    """Condition sups/witnesses for additive ops: |x_i| / |result|.

    When the result interval spans zero the supremum is infinite —
    total cancellation is (abstractly) reachable.
    """
    result_floor = result.abs_lo()
    sups, witnesses = [], []
    for arg in args:
        numerator = arg.abs_hi()
        if numerator == 0.0:
            sups.append(0.0)
            witnesses.append(0.0)
            continue
        if result_floor == 0.0:
            sups.append(_INF)
        elif math.isinf(numerator):
            # inf/inf would be NaN; a saturated argument interval means
            # the true ratio is unbounded from this abstraction's view.
            sups.append(_INF)
        else:
            sups.append(numerator / result_floor)
        witnesses.append(_largest_magnitude(arg))
    return sups, witnesses


def _log_cond(u: Interval) -> Tuple[float, float]:
    """sup of 1/|ln u| over the (positive part of) ``u``."""
    domain = u.meet(lo=5e-324)
    if domain is None:
        return 0.0, math.nan
    if domain.contains(1.0):
        return _INF, 1.0
    # Monotone toward u = 1 on each side: the endpoint nearer 1 wins.
    witness = _nearest_in(domain, 1.0)
    if witness <= 0.0 or math.isinf(witness):
        return 0.0, math.nan
    log_witness = math.log(witness)
    if log_witness == 0.0:
        return _INF, 1.0
    return 1.0 / abs(log_witness), witness


def _log1p_cond(x: Interval) -> Tuple[float, float]:
    """sup of |x / ((1+x) ln(1+x))| — singular only at x = -1."""
    domain = x.meet(lo=-1.0 + 1e-300)
    if domain is None:
        return 0.0, math.nan

    def at(v: float) -> float:
        if v == 0.0:
            return 1.0  # removable singularity: the limit is 1
        if v <= -1.0 or math.isinf(v):
            return _INF
        denominator = (1.0 + v) * math.log1p(v)
        if denominator == 0.0:
            return _INF
        return abs(v / denominator)

    candidates = [(at(domain.lo), domain.lo), (at(domain.hi), domain.hi)]
    if domain.contains(0.0):
        candidates.append((1.0, 0.0))
    return max(candidates, key=lambda pair: pair[0])


def _expm1_cond(x: Interval) -> Tuple[float, float]:
    """sup of |x e^x / (e^x - 1)|: ~1 near 0, ~|x| for large |x|>0."""

    def at(v: float) -> float:
        if v == 0.0:
            return 1.0
        if v > 700.0 or math.isinf(v):
            return abs(v) if v > 0 else 0.0
        em1 = math.expm1(v)
        if em1 == 0.0:
            return 1.0
        return abs(v * math.exp(min(v, 700.0)) / em1)

    candidates = [(at(x.lo), x.lo), (at(x.hi), x.hi)]
    return max(candidates, key=lambda pair: pair[0])


def _trig_cond(
    x: Interval, numerator_zero_offset: float, kind: str
) -> Tuple[float, float]:
    """sup of the sin/cos/tan condition numbers.

    ``numerator_zero_offset`` positions the singular lattice:
    ``sin`` -> kπ (k ≠ 0), ``cos`` -> π/2 + kπ, ``tan`` -> kπ/2 (k ≠ 0).
    """
    step = math.pi / 2.0 if kind == "tan" else math.pi

    def singular_points() -> List[float]:
        """A bounded list of in-range singularities (k-index math —
        never proportional to the interval's width)."""
        if math.isinf(x.lo) or math.isinf(x.hi):
            return [math.nan]  # unbounded: some singularity is inside
        k_lo = math.ceil((x.lo - numerator_zero_offset) / step)
        k_hi = math.floor((x.hi - numerator_zero_offset) / step)
        if k_hi < k_lo:
            return []
        # Candidate lattice indices: the extremes plus the ones nearest
        # the origin (where a k = 0 point may be removable).
        candidate_ks = {k_lo, k_hi, min(max(0, k_lo), k_hi)}
        if k_lo <= -1 <= k_hi:
            candidate_ks.add(-1)
        if k_lo <= 1 <= k_hi:
            candidate_ks.add(1)
        points = []
        for k in sorted(candidate_ks):
            candidate = k * step + numerator_zero_offset
            if kind in ("sin", "tan") and candidate == 0.0:
                continue  # removable at the origin
            if x.lo <= candidate <= x.hi:
                points.append(candidate)
        return points

    singular = singular_points()
    if singular:
        witness = singular[0]
        if math.isnan(witness):
            witness = _largest_magnitude(x)
        return _INF, witness

    def at(v: float) -> float:
        if math.isinf(v):
            return _INF
        try:
            if kind == "sin":
                s = math.sin(v)
                return abs(v * math.cos(v) / s) if s != 0.0 else (
                    1.0 if v == 0.0 else _INF
                )
            if kind == "cos":
                c = math.cos(v)
                return abs(v * math.sin(v) / c) if c != 0.0 else _INF
            s, c = math.sin(v), math.cos(v)
            if s == 0.0:
                return 1.0 if v == 0.0 else _INF
            if c == 0.0:
                return _INF
            return abs(v / (s * c))
        except (OverflowError, ValueError):
            return _INF

    candidates = [(at(x.lo), x.lo), (at(x.hi), x.hi)]
    if x.contains(0.0):
        candidates.append((1.0, 0.0))
    return max(candidates, key=lambda pair: pair[0])


def _inverse_trig_cond(x: Interval, op: str) -> Tuple[float, float]:
    """asin/acos/atanh/acosh: singular where the derivative blows up."""
    if op == "acosh":
        edges = [1.0]
        domain = x.meet(lo=1.0)
    elif op == "acos":
        edges = [-1.0, 1.0]
        domain = x.meet(lo=-1.0, hi=1.0)
    elif op == "asin":
        edges = [-1.0, 1.0]
        domain = x.meet(lo=-1.0, hi=1.0)
    else:  # atanh
        edges = [-1.0, 1.0]
        domain = x.meet(lo=-1.0, hi=1.0)
    if domain is None:
        return 0.0, math.nan
    edge_hits = [e for e in edges if domain.contains(e)]
    if edge_hits:
        # asin is actually finite at -1 (asin(-1) = -π/2, and the
        # |x/asin| numerator tames nothing: cond -> inf there too since
        # sqrt(1-x²) -> 0).  All listed edges are genuine singularities.
        return _INF, edge_hits[0]

    def at(v: float) -> float:
        try:
            if op == "asin":
                a = math.asin(v)
                if a == 0.0:
                    return 1.0
                return abs(v / (math.sqrt(1.0 - v * v) * a))
            if op == "acos":
                a = math.acos(v)
                if a == 0.0:
                    return _INF
                return abs(v / (math.sqrt(1.0 - v * v) * a))
            if op == "acosh":
                if math.isinf(v):
                    return 1.0
                a = math.acosh(v)
                if a == 0.0:
                    return _INF
                return abs(v / (math.sqrt(v * v - 1.0) * a))
            a = math.atanh(v)
            if a == 0.0:
                return 1.0
            return abs(v / ((1.0 - v * v) * a))
        except (ValueError, ZeroDivisionError, OverflowError):
            return _INF

    candidates = [(at(domain.lo), domain.lo), (at(domain.hi), domain.hi)]
    if op in ("asin", "atanh") and domain.contains(0.0):
        candidates.append((1.0, 0.0))
    return max(candidates, key=lambda pair: pair[0])


def _pow_cond(x: Interval, y: Interval) -> Conditioning:
    cond_x = y.abs_hi()
    # |y ln x|: sup over the corner products of |y| and |ln x|.
    if x.lo <= 0.0:
        ln_sup = _INF
        ln_witness = x.lo
    else:
        ln_lo = math.log(x.lo)
        ln_hi = math.log(x.hi) if not math.isinf(x.hi) else _INF
        ln_sup = max(abs(ln_lo), abs(ln_hi))
        ln_witness = x.lo if abs(ln_lo) >= abs(ln_hi) else x.hi
    cond_y = y.abs_hi() * ln_sup if y.abs_hi() > 0.0 else 0.0
    return Conditioning(
        (cond_x, cond_y),
        (ln_witness, _largest_magnitude(y)),
        1.0,
    )


def condition(
    op: str, args: Sequence[Interval], result: Interval
) -> Conditioning:
    """Condition-number suprema of ``op`` over abstract arguments.

    Unknown operations get a unit conditioning (plus rounding): the
    analysis stays sound for ranking purposes because the unknown op's
    *arguments* still carry their accumulated error forward.
    """
    n = len(args)
    rho = 0.0 if op in EXACT_OPS else 1.0
    if op in ("+", "-", "fdim"):
        sups, witnesses = _cancellation(args, result)
        return Conditioning(tuple(sups), tuple(witnesses), rho)
    if op == "fma":
        # a*b + c: the additive cancellation structure dominates; the
        # product's unit conds fold into the a/b entries.
        from repro.staticanalysis.intervals import transfer

        product = transfer("*", [args[0], args[1]])
        sums, witnesses = _cancellation([product, args[2]], result)
        return Conditioning(
            (sums[0], sums[0], sums[1]),
            (
                _largest_magnitude(args[0]),
                _largest_magnitude(args[1]),
                witnesses[1],
            ),
            rho,
        )
    if op in ("fmod", "remainder"):
        sups, witnesses = _cancellation(args, result)
        return Conditioning(tuple(sups), tuple(witnesses), rho)
    if op in _UNIT_OPS:
        return _unit(n, rho)
    if op == "sqrt":
        return Conditioning((0.5,), (math.nan,), rho)
    if op == "cbrt":
        return Conditioning((1.0 / 3.0,), (math.nan,), rho)
    if op in ("exp", "exp2"):
        scale = 1.0 if op == "exp" else math.log(2.0)
        witness = _largest_magnitude(args[0])
        return Conditioning((args[0].abs_hi() * scale,), (witness,), rho)
    if op == "expm1":
        sup, witness = _expm1_cond(args[0])
        return Conditioning((sup,), (witness,), rho)
    if op in ("log", "log2", "log10"):
        sup, witness = _log_cond(args[0])
        return Conditioning((sup,), (witness,), rho)
    if op == "log1p":
        sup, witness = _log1p_cond(args[0])
        return Conditioning((sup,), (witness,), rho)
    if op == "sin":
        sup, witness = _trig_cond(args[0], 0.0, "sin")
        return Conditioning((sup,), (witness,), rho)
    if op == "cos":
        sup, witness = _trig_cond(args[0], math.pi / 2.0, "cos")
        return Conditioning((sup,), (witness,), rho)
    if op == "tan":
        sup, witness = _trig_cond(args[0], 0.0, "tan")
        return Conditioning((sup,), (witness,), rho)
    if op in ("asin", "acos", "acosh", "atanh"):
        sup, witness = _inverse_trig_cond(args[0], op)
        return Conditioning((sup,), (witness,), rho)
    if op == "atan":
        return _unit(n, rho)
    if op == "sinh":
        # |x coth x| <= max(1, |x| + 1) — tight enough for ranking.
        return Conditioning(
            (max(1.0, args[0].abs_hi()),),
            (_largest_magnitude(args[0]),),
            rho,
        )
    if op == "cosh":
        return Conditioning(
            (args[0].abs_hi(),), (_largest_magnitude(args[0]),), rho
        )
    if op in ("tanh", "asinh"):
        return _unit(n, rho)
    if op == "pow":
        return _pow_cond(args[0], args[1])
    if op in ("trunc", "floor", "ceil", "round", "nearbyint"):
        # Discontinuous, but exact in double; local conditioning is
        # meaningless and the branch/conversion spots carry the risk.
        return _unit(n, 0.0)
    return _unit(n, rho)
