"""A lightweight blocking client for the :mod:`repro.serve` API.

Built on :mod:`http.client` (stdlib only) with keep-alive connection
reuse, so the traffic-replay benchmark measures server latency rather
than TCP handshakes.  One :class:`ServeClient` wraps one connection and
is **not** thread-safe — concurrent load generators open one client per
thread (see ``benchmarks/bench_serving.py``).

With ``retries > 0`` the client absorbs transient failures: transport
errors (connection reset, server restart), backpressure (429) and
draining (503) responses, and worker-crash 500s are retried with
exponential backoff plus deterministic jitter (``jitter_seed``),
honoring the server's ``Retry-After`` header as a floor on the delay.
The default ``retries=0`` keeps every failure visible to the caller.

>>> client = ServeClient("127.0.0.1", 8318)
>>> reply = client.analyze(session.request(core))   # doctest: +SKIP
>>> reply.source                                     # doctest: +SKIP
'computed'
>>> client.analyze(session.request(core)).source     # doctest: +SKIP
'store'
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.api.requests import AnalysisRequest
from repro.api.results import AnalysisResult

RequestLike = Union[AnalysisRequest, Dict[str, Any]]


class ServeError(Exception):
    """A structured error response from the server.

    Carries the HTTP ``status`` and the decoded ``{"error": ...}``
    payload: ``error_type``, ``message``, and ``digest`` when the
    server knew it, plus the parsed ``Retry-After`` header (seconds)
    on backpressure responses.
    """

    def __init__(self, status: int, payload: Dict[str, Any],
                 retry_after: Optional[float] = None) -> None:
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        self.status = status
        self.error_type = error.get("type", "unknown")
        self.message = error.get("message", "")
        self.digest = error.get("digest")
        self.retry_after = retry_after
        super().__init__(
            f"HTTP {status} {self.error_type}: {self.message}"
        )

    @property
    def transient(self) -> bool:
        """Whether a retry may plausibly succeed (429/503, dead worker)."""
        if self.status in (429, 503):
            return True
        return self.status == 500 and self.error_type == "worker_crashed"


@dataclass
class ServeReply:
    """One successful exchange: exact body text plus routing metadata."""

    status: int
    text: str
    digest: Optional[str]
    source: str

    def json(self) -> Any:
        return json.loads(self.text)

    def result(self) -> AnalysisResult:
        return AnalysisResult.from_json(self.text)


def _payload(request: RequestLike) -> Dict[str, Any]:
    if isinstance(request, AnalysisRequest):
        return request.to_dict()
    return request


def _retry_after(headers) -> Optional[float]:
    value = headers.get("Retry-After")
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class ServeClient:
    """A keep-alive HTTP client for one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8318,
                 timeout: float = 120.0, retries: int = 0,
                 backoff_base: float = 0.1, backoff_cap: float = 5.0,
                 jitter_seed: Optional[int] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(jitter_seed)
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _exchange_once(self, method: str, path: str,
                       body: Optional[Dict[str, Any]] = None) -> ServeReply:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                text = response.read().decode("utf-8")
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # A stale keep-alive connection (server restarted or
                # idle-closed): reconnect once, then let it raise.
                self.close()
                if attempt:
                    raise
        reply = ServeReply(
            status=response.status,
            text=text,
            digest=response.headers.get("X-Repro-Digest"),
            source=response.headers.get("X-Repro-Source", ""),
        )
        if reply.status >= 400:
            try:
                payload = json.loads(text)
            except json.JSONDecodeError:
                payload = {"error": {"type": "unknown", "message": text}}
            raise ServeError(reply.status, payload,
                             _retry_after(response.headers))
        return reply

    def _retry_delay(self, attempt: int,
                     retry_after: Optional[float]) -> float:
        """Exponential backoff with full-range jitter, floored by the
        server's ``Retry-After`` hint when it gave one."""
        delay = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        delay *= 0.5 + self._rng.random()
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay

    def _exchange(self, method: str, path: str,
                  body: Optional[Dict[str, Any]] = None) -> ServeReply:
        attempt = 0
        while True:
            try:
                return self._exchange_once(method, path, body)
            except ServeError as exc:
                if attempt >= self.retries or not exc.transient:
                    raise
                retry_after = exc.retry_after
            except (http.client.HTTPException, ConnectionError, OSError):
                # Transport-level failure after the one reconnect
                # _exchange_once already attempted (server restarting,
                # connection aborted mid-response).
                if attempt >= self.retries:
                    raise
                retry_after = None
            time.sleep(self._retry_delay(attempt, retry_after))
            attempt += 1

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._exchange("GET", "/v1/health").json()

    def stats(self) -> Dict[str, Any]:
        return self._exchange("GET", "/v1/stats").json()

    def result_text(self, digest: str) -> ServeReply:
        """``GET /v1/result/<digest>`` — raises ServeError(404) on a miss."""
        return self._exchange("GET", f"/v1/result/{digest}")

    def analyze(self, request: RequestLike) -> ServeReply:
        """``POST /v1/analyze`` — returns the reply with the exact body.

        ``reply.text`` is byte-identical to
        ``AnalysisSession().analyze(request).to_json()`` for the same
        request; ``reply.result()`` parses it.
        """
        return self._exchange("POST", "/v1/analyze", _payload(request))

    def analyze_result(self, request: RequestLike) -> AnalysisResult:
        return self.analyze(request).result()

    def batch(self, requests: List[RequestLike],
              shard_size: Optional[int] = None) -> Dict[str, Any]:
        """``POST /v1/batch`` — returns the decoded batch envelope."""
        body: Dict[str, Any] = {
            "requests": [_payload(r) for r in requests]
        }
        if shard_size is not None:
            body["shard_size"] = shard_size
        return self._exchange("POST", "/v1/batch", body).json()

    def batch_results(self, requests: List[RequestLike],
                      shard_size: Optional[int] = None,
                      ) -> List[AnalysisResult]:
        """Batch analyze, raising on any per-request error entry."""
        envelope = self.batch(requests, shard_size)
        results = []
        for entry in envelope["results"]:
            if "error" in entry:
                raise ServeError(500, entry)
            results.append(AnalysisResult.from_dict(entry))
        return results
