"""A supervised process pool for cold analyses.

``concurrent.futures.ProcessPoolExecutor`` cannot kill a task that is
already running, which makes per-request timeouts and crash recovery
impossible — and an analysis request is arbitrary user input that can
run for minutes or exhaust a worker.  This pool therefore supervises
its own ``multiprocessing`` processes:

* each worker process is paired with a dispatcher *thread* in the
  server process; dispatchers pull tasks from one shared bounded queue
  (an idle worker steals the next task — this shared queue is also
  what makes ``/v1/batch`` shard scheduling work-stealing),
* a task that exceeds its deadline gets its worker **killed** and
  respawned; the task fails with :class:`AnalysisTimeout` while every
  other task is unaffected,
* a worker that dies mid-task (segfault, ``os._exit``, OOM kill)
  is detected through the closed pipe and respawned; the task fails
  with :class:`WorkerCrashed`,
* the queue is bounded: :meth:`WorkerPool.submit` raises
  :class:`QueueFull` instead of buffering unboundedly — the serving
  layer turns that into HTTP 429 backpressure,
* :meth:`WorkerPool.close` drains: queued and in-flight tasks finish,
  late submits raise :class:`PoolClosed` (HTTP 503), workers exit
  cleanly.

The task payload is a **list of request dicts** (a shard); the future
resolves to a list of reply tuples, one per request, in order:
``("ok", result_json_text)`` or ``("error", error_type, message)``.
Analysis failures are therefore *data*, not pool exceptions — only
infrastructure failures (timeout, crash, rejection) surface as
exceptions on the future.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import stat
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Reply tuples the default worker sends back, one per request dict.
Reply = Tuple[str, ...]


class PoolError(Exception):
    """Base class of pool infrastructure failures."""


class QueueFull(PoolError):
    """The bounded task queue is full — shed load (HTTP 429)."""


class PoolClosed(PoolError):
    """The pool is shutting down — stop sending work (HTTP 503)."""


class AnalysisTimeout(PoolError):
    """The task exceeded its deadline; its worker was killed."""


class WorkerCrashed(PoolError):
    """The worker process died mid-task."""


def _analysis_worker_main(conn) -> None:
    """Worker-process loop: shard of request dicts in, replies out.

    Runs :func:`repro.api.session._execute` — the same no-cache path
    ``analyze_batch`` workers use — and serializes each result with
    ``to_json()`` so the serving layer ships bytes identical to an
    in-process ``AnalysisSession``.  Any exception an analysis raises
    becomes an ``("error", type, message)`` reply; only process death
    is a crash.

    A result with process-local metadata — a degradation record the
    ladder produced, or precision-tier residency counters — gains a
    third reply element with a JSON sidecar object holding them.  The
    body bytes stay identical to the clean run (``to_json()`` strips
    both), and the service feeds the sidecar into ``/v1/stats``.

    The ``worker.exit`` fault seam (:mod:`repro.resilience.faults`,
    inherited through the fork via ``REPRO_FAULTS``) kills the process
    mid-task with ``os._exit`` — indistinguishable from a segfault or
    an OOM kill, which is the point.
    """
    import json as _json

    from repro.api.requests import AnalysisRequest
    from repro.api.session import _execute
    from repro.resilience import faults as _faults

    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break
        if payload is None:
            break
        replies: List[Reply] = []
        for data in payload:
            if _faults.active() and _faults.fire("worker.exit"):
                os._exit(3)  # noqa: SLF001 — simulate a hard crash
            try:
                request = AnalysisRequest.from_dict(data)
                result = _execute(request)
                sidecar = {}
                degradation = result.extra.get("degradation")
                if degradation is not None:
                    sidecar["degradation"] = degradation
                residency = result.extra.get("tier_residency")
                if residency is not None:
                    sidecar["tier_residency"] = residency
                if sidecar:
                    replies.append((
                        "ok", result.to_json(),
                        _json.dumps(sidecar, sort_keys=True),
                    ))
                else:
                    replies.append(("ok", result.to_json()))
            except Exception as exc:  # noqa: BLE001 — reply, don't die
                replies.append(("error", type(exc).__name__, str(exc)))
        try:
            conn.send(replies)
        except (BrokenPipeError, OSError):
            break


def _scrub_inherited_sockets(keep_fd: int) -> None:
    """Close socket fds the fork copied from the server process.

    A forked worker inherits every open fd: the listening socket,
    accepted client connections, sibling workers' pipes.  Left open,
    those dups pin TCP connections for the worker's lifetime — the
    peer's close never reaches EOF, so keep-alive connections (and
    graceful shutdown waiting on them) hang.  Only the worker's own
    command pipe (a socketpair) is kept; non-socket fds (stdio, log
    files, the resource tracker pipe) are left alone.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # no procfs: skip the hygiene pass
        return
    for fd in fds:
        if fd <= 2 or fd == keep_fd:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _worker_entry(worker_main: Callable, conn) -> None:
    """Child-process entry: fd hygiene first, then the worker loop."""
    _scrub_inherited_sockets(conn.fileno())
    worker_main(conn)


_SENTINEL = object()


def _pool_context():
    """Prefer fork (cheap respawns, no pickling constraints)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class _Worker:
    """One supervised worker process and its parent-side pipe."""

    def __init__(self, ctx, worker_main) -> None:
        self._ctx = ctx
        self._main = worker_main
        self.process = None
        self.conn = None
        self.restarts = -1  # first ensure() is a start, not a restart
        #: Consecutive timeout-kills/crashes; reset by any success.
        self.failures = 0
        self.ensure()

    def ensure(self) -> None:
        if self.process is not None and self.process.is_alive():
            return
        self.discard()
        parent, child = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=_worker_entry, args=(self._main, child), daemon=True
        )
        self.process.start()
        child.close()  # parent's recv sees EOF if the worker dies
        self.conn = parent
        self.restarts += 1

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.discard()

    def discard(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        self.conn = None
        self.process = None

    def shutdown(self, timeout: float = 2.0) -> None:
        if self.process is None:
            return
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.discard()


class WorkerPool:
    """A fixed-size supervised analysis pool with a bounded queue."""

    def __init__(
        self,
        workers: int = 2,
        queue_limit: int = 64,
        timeout: Optional[float] = 300.0,
        worker_main: Callable = _analysis_worker_main,
        max_respawn_burst: int = 5,
        respawn_cooldown: float = 0.5,
    ) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        self.workers = workers
        self.queue_limit = queue_limit
        self.timeout = timeout
        #: Consecutive failures a worker slot may accumulate before
        #: respawns start backing off (crash-loop guard): a slot whose
        #: process dies on every task would otherwise fork in a tight
        #: loop, starving the healthy slots of CPU.
        self.max_respawn_burst = max_respawn_burst
        #: Base of the exponential respawn back-off, in seconds.
        self.respawn_cooldown = respawn_cooldown
        self._tasks: "queue.Queue" = queue.Queue(
            maxsize=queue_limit if queue_limit > 0 else 0
        )
        self._closed = False
        self._lock = threading.Lock()
        self.completed = 0
        self.timeouts = 0
        self.crashes = 0
        #: Times a crash-looping slot was made to cool down.
        self.cooldowns = 0
        self._active = 0
        # Spawn the processes before the dispatcher threads so the
        # initial forks happen from a quiet (single-threaded) parent.
        self._workers = [_Worker(_pool_context(), worker_main)
                         for _ in range(workers)]
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop, args=(w,),
                name=f"repro-serve-worker-{i}", daemon=True,
            )
            for i, w in enumerate(self._workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        shard: List[Dict[str, Any]],
        timeout: Optional[float] = None,
    ) -> "Future[List[Reply]]":
        """Queue one shard (list of request dicts) for a worker.

        Returns a thread-safe future resolving to the reply list.  The
        per-shard deadline defaults to the pool's ``timeout`` scaled by
        the shard size.
        """
        if self._closed:
            raise PoolClosed("worker pool is shutting down")
        if timeout is None and self.timeout is not None:
            timeout = self.timeout * max(1, len(shard))
        future: "Future[List[Reply]]" = Future()
        try:
            self._tasks.put_nowait((future, shard, timeout))
        except queue.Full:
            raise QueueFull(
                f"task queue at capacity ({self.queue_limit})"
            ) from None
        return future

    # ------------------------------------------------------------------
    # Dispatching (one thread per worker)
    # ------------------------------------------------------------------

    def _dispatch_loop(self, worker: _Worker) -> None:
        while True:
            item = self._tasks.get()
            if item is _SENTINEL:
                break
            future, shard, timeout = item
            if not future.set_running_or_notify_cancel():
                continue
            with self._lock:
                self._active += 1
            try:
                self._dispatch(worker, future, shard, timeout)
            finally:
                with self._lock:
                    self._active -= 1
        worker.shutdown()

    def _cool_down(self, worker: _Worker) -> None:
        """Back off before respawning a crash-looping worker slot.

        Only this slot's dispatcher thread sleeps — queued work keeps
        draining through the healthy slots.  The delay doubles per
        failure beyond the burst allowance, capped at 30s.
        """
        excess = worker.failures - self.max_respawn_burst
        if excess < 0 or self.respawn_cooldown <= 0:
            return
        self.cooldowns += 1
        time.sleep(min(self.respawn_cooldown * (2.0 ** excess), 30.0))

    def _dispatch(self, worker, future, shard, timeout) -> None:
        self._cool_down(worker)
        try:
            worker.ensure()
            worker.conn.send(shard)
        except (BrokenPipeError, OSError):
            # The worker died while idle; one fresh process, one retry.
            try:
                worker.kill()
                worker.ensure()
                worker.conn.send(shard)
            except (BrokenPipeError, OSError) as exc:
                self.crashes += 1
                worker.failures += 1
                future.set_exception(
                    WorkerCrashed(f"could not reach worker: {exc}")
                )
                return
        try:
            if timeout is not None and not worker.conn.poll(timeout):
                worker.kill()  # the only way to stop a running task
                self.timeouts += 1
                worker.failures += 1
                future.set_exception(AnalysisTimeout(
                    f"no result within {timeout:.1f}s; worker killed"
                ))
                return
            replies = worker.conn.recv()
        except (EOFError, OSError):
            worker.kill()
            self.crashes += 1
            worker.failures += 1
            future.set_exception(
                WorkerCrashed("worker process died mid-task")
            )
            return
        self.completed += 1
        worker.failures = 0
        future.set_result(replies)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            active = self._active
        return {
            "workers": self.workers,
            "queue_depth": self._tasks.qsize(),
            "queue_limit": self.queue_limit,
            "active": active,
            "completed": self.completed,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "cooldowns": self.cooldowns,
            "restarts": sum(w.restarts for w in self._workers),
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` (default) queued tasks finish first.

        Without ``drain``, queued-but-unstarted tasks are cancelled;
        tasks already on a worker still run to completion (a kill here
        would lose computed results for no latency win).
        """
        if self._closed:
            return
        self._closed = True
        if not drain:
            while True:
                try:
                    item = self._tasks.get_nowait()
                except queue.Empty:
                    break
                if item is not _SENTINEL:
                    item[0].cancel()
        for _ in self._threads:
            # FIFO: sentinels land behind any remaining work, so each
            # dispatcher finishes the queue before exiting.
            self._tasks.put(_SENTINEL)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
