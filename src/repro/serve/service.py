"""The serving core: digest-addressed analysis with dedupe and caching.

:class:`AnalysisService` is the transport-free heart of the subsystem —
the HTTP layer (:mod:`repro.serve.server`) is a thin shell over it, and
tests drive it directly.  One request flows::

    payload dict ─ validate ─ digest ─ memory LRU ─ sharded store ─
      in-flight map ─ worker pool ─ store write ─ response

* **Warm path**: a digest found in the in-process LRU or the shared
  :class:`~repro.api.store.ShardedResultStore` is answered from the
  stored canonical JSON text — byte-identical to the cold response by
  construction, at microseconds instead of the engine's per-op floor.
* **In-flight dedupe**: concurrent identical requests coalesce on a
  digest-keyed ``asyncio.Future`` — exactly one computation runs, and
  every waiter (including failures) receives that one outcome.
* **Cold path**: misses go to the supervised
  :class:`~repro.serve.pool.WorkerPool`; queue saturation surfaces as
  HTTP 429, shutdown as 503, per-request timeouts as 504, worker death
  as 500 — always as structured JSON ``{"error": {type, message,
  digest}}``, never a hung or silently closed connection.

Every request emits one structured log line (digest, outcome, queue
depth, wall-clock) on the ``repro.serve`` logger.
"""

from __future__ import annotations

import asyncio
import collections
import json
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.requests import AnalysisRequest
from repro.api.results import RESULT_SCHEMA_VERSION
from repro.api.session import request_digest
from repro.api.store import ShardedResultStore, is_digest
from repro.serve.pool import (
    AnalysisTimeout,
    PoolClosed,
    QueueFull,
    WorkerCrashed,
    WorkerPool,
)

logger = logging.getLogger("repro.serve")

#: Outcome sources, in the order a request probes them.
SOURCE_MEMORY = "memory"
SOURCE_STORE = "store"
SOURCE_DEDUPE = "dedupe"
SOURCE_COMPUTED = "computed"
SOURCE_ERROR = "error"


def error_body(error_type: str, message: str,
               digest: Optional[str] = None) -> str:
    """The canonical structured-error JSON text."""
    payload: Dict[str, Any] = {
        "error": {"type": error_type, "message": message}
    }
    if digest is not None:
        payload["error"]["digest"] = digest
    return json.dumps(payload, indent=2, sort_keys=True)


@dataclass
class ServeOutcome:
    """One routed request: HTTP status, exact body text, and metadata."""

    status: int
    body: str
    digest: Optional[str] = None
    source: str = SOURCE_ERROR
    #: Backpressure hint (seconds) rendered as a ``Retry-After`` header
    #: on 429/503 responses; clients honor it before retrying.
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def as_dedupe(self) -> "ServeOutcome":
        """The same outcome as seen by a coalesced waiter."""
        if not self.ok:
            return self
        return ServeOutcome(self.status, self.body, self.digest,
                            SOURCE_DEDUPE)


#: Retry-After hints for shed (429) and draining (503) responses.
RETRY_AFTER_BUSY = 1.0
RETRY_AFTER_DRAINING = 5.0


@dataclass
class ServiceCounters:
    """Advisory request counters surfaced by ``/v1/stats``."""

    requests: int = 0
    batches: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    dedupe_hits: int = 0
    computed: int = 0
    analysis_errors: int = 0
    timeouts: int = 0
    crashes: int = 0
    rejected: int = 0
    invalid: int = 0
    #: Successes the degradation ladder rescued on a lower rung.
    degraded: int = 0
    #: Requests refused because their digest is poison-quarantined.
    quarantined: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _Inflight:
    future: "asyncio.Future[ServeOutcome]"
    waiters: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


class AnalysisService:
    """Digest-addressed analysis serving over a store and worker pool.

    All coroutine methods must run on one event loop (the server's);
    the pool does its blocking work on its own threads and processes.
    """

    def __init__(
        self,
        store: Optional[ShardedResultStore] = None,
        pool: Optional[WorkerPool] = None,
        workers: int = 2,
        queue_limit: int = 64,
        timeout: Optional[float] = 300.0,
        memory_cache_size: int = 512,
        batch_shard_size: int = 4,
        poison_threshold: int = 3,
    ) -> None:
        self.store = store
        self.pool = pool if pool is not None else WorkerPool(
            workers=workers, queue_limit=queue_limit, timeout=timeout
        )
        self.memory_cache_size = memory_cache_size
        self.batch_shard_size = max(1, batch_shard_size)
        #: Poison-request circuit breaker: a digest whose computation
        #: kills or times out a worker this many times in a row is
        #: quarantined — answered with a structured 500 instead of
        #: respawn-looping the pool.  ``0`` disables the breaker.
        self.poison_threshold = poison_threshold
        self.counters = ServiceCounters()
        self._memory: "collections.OrderedDict[str, str]" = \
            collections.OrderedDict()
        self._inflight: Dict[str, _Inflight] = {}
        #: Consecutive infra failures (timeout / crash) per digest.
        self._infra_failures: Dict[str, int] = {}
        #: Quarantined digest → the failure kind that tripped it.
        self._quarantined: Dict[str, str] = {}
        self._degraded_rungs: "collections.Counter[str]" = \
            collections.Counter()
        #: Aggregated precision-tier residency across computed results
        #: (hardware / working / full tier ops, escalation causes).
        self._tier_residency: "collections.Counter[str]" = \
            collections.Counter()
        self._draining = False
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # Lookup layers
    # ------------------------------------------------------------------

    def _memory_get(self, digest: str) -> Optional[str]:
        text = self._memory.get(digest)
        if text is not None:
            self._memory.move_to_end(digest)
        return text

    def _memory_put(self, digest: str, text: str) -> None:
        if self.memory_cache_size <= 0:
            return
        self._memory[digest] = text
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_cache_size:
            self._memory.popitem(last=False)

    def _lookup(self, digest: str) -> Optional[ServeOutcome]:
        """Probe the warm layers (memory, then the shared store)."""
        text = self._memory_get(digest)
        if text is not None:
            self.counters.memory_hits += 1
            return ServeOutcome(200, text, digest, SOURCE_MEMORY)
        if self.store is not None:
            text = self.store.get_text(digest)
            if text is not None:
                self.counters.store_hits += 1
                self._memory_put(digest, text)
                return ServeOutcome(200, text, digest, SOURCE_STORE)
        return None

    def lookup_digest(self, digest: str) -> ServeOutcome:
        """``GET /v1/result/<digest>`` — warm layers only, no compute."""
        if not is_digest(digest):
            return ServeOutcome(
                400, error_body("invalid_digest",
                                "expected 64 lowercase hex characters"),
            )
        outcome = self._lookup(digest)
        if outcome is not None:
            return outcome
        return ServeOutcome(
            404, error_body("not_found", "no stored result", digest),
            digest,
        )

    # ------------------------------------------------------------------
    # Single analysis
    # ------------------------------------------------------------------

    @staticmethod
    def parse_request(data: Any) -> Tuple[Optional[AnalysisRequest], str]:
        """Validate a payload dict; returns (request, error_message)."""
        if not isinstance(data, dict):
            return None, "request body must be a JSON object"
        try:
            return AnalysisRequest.from_dict(data), ""
        except Exception as exc:  # noqa: BLE001 — any parse failure is a 400
            return None, f"{type(exc).__name__}: {exc}"

    async def analyze_payload(self, data: Any) -> ServeOutcome:
        """``POST /v1/analyze`` — one request dict in, one outcome out."""
        started = time.monotonic()
        self.counters.requests += 1
        request, message = self.parse_request(data)
        if request is None:
            self.counters.invalid += 1
            outcome = ServeOutcome(
                400, error_body("invalid_request", message)
            )
            self._log(outcome, started)
            return outcome
        digest = request_digest(request)
        outcome = await self._analyze_digest(digest, request.to_dict())
        self._log(outcome, started)
        return outcome

    async def _analyze_digest(self, digest: str,
                              data: Dict[str, Any]) -> ServeOutcome:
        outcome = self._lookup(digest)
        if outcome is not None:
            return outcome
        entry = self._inflight.get(digest)
        if entry is not None:
            # Identical request already computing: coalesce onto it.
            self.counters.dedupe_hits += 1
            entry.waiters += 1
            return (await asyncio.shield(entry.future)).as_dedupe()
        if self._draining:
            return ServeOutcome(
                503, error_body("shutting_down",
                                "server is draining", digest),
                digest, retry_after=RETRY_AFTER_DRAINING,
            )
        entry = _Inflight(asyncio.get_running_loop().create_future())
        self._inflight[digest] = entry
        try:
            outcome = await self._compute(digest, data)
        except BaseException:
            # _compute raised (cancellation, loop teardown): the
            # waiters must still get an answer, not hang forever.
            self._inflight.pop(digest, None)
            entry.future.set_result(ServeOutcome(
                500, error_body("internal_error",
                                "computation failed", digest),
                digest,
            ))
            raise
        self._inflight.pop(digest, None)
        entry.future.set_result(outcome)
        return outcome

    # ------------------------------------------------------------------
    # Poison-request circuit breaker
    # ------------------------------------------------------------------

    def _quarantine_outcome(self, digest: str) -> Optional[ServeOutcome]:
        """The structured refusal for a quarantined digest, if any."""
        kind = self._quarantined.get(digest)
        if kind is None:
            return None
        self.counters.quarantined += 1
        return ServeOutcome(
            500, error_body(
                "quarantined",
                f"request repeatedly killed workers ({kind}); "
                f"quarantined after {self.poison_threshold} failures",
                digest,
            ),
            digest,
        )

    def _note_infra_failure(self, digest: str, kind: str) -> None:
        """Count one timeout/crash against ``digest``; trip at threshold.

        A crash-looping *request* (not a flaky worker) shows up as the
        same digest killing worker after worker; once it crosses
        ``poison_threshold`` consecutive failures, the digest is
        quarantined and answered without touching the pool.
        """
        if self.poison_threshold <= 0:
            return
        count = self._infra_failures.get(digest, 0) + 1
        self._infra_failures[digest] = count
        if count >= self.poison_threshold and \
                digest not in self._quarantined:
            self._quarantined[digest] = kind
            logger.warning(
                "quarantined poison digest %s after %d consecutive "
                "%s failures", digest, count, kind,
            )

    async def _compute(self, digest: str,
                       data: Dict[str, Any]) -> ServeOutcome:
        poisoned = self._quarantine_outcome(digest)
        if poisoned is not None:
            return poisoned
        try:
            pool_future = self.pool.submit([data])
        except QueueFull as exc:
            self.counters.rejected += 1
            return ServeOutcome(
                429, error_body("queue_full", str(exc), digest), digest,
                retry_after=RETRY_AFTER_BUSY,
            )
        except PoolClosed as exc:
            return ServeOutcome(
                503, error_body("shutting_down", str(exc), digest), digest,
                retry_after=RETRY_AFTER_DRAINING,
            )
        try:
            [reply] = await asyncio.wrap_future(pool_future)
        except AnalysisTimeout as exc:
            self.counters.timeouts += 1
            self._note_infra_failure(digest, "analysis_timeout")
            return ServeOutcome(
                504, error_body("analysis_timeout", str(exc), digest),
                digest,
            )
        except WorkerCrashed as exc:
            self.counters.crashes += 1
            self._note_infra_failure(digest, "worker_crashed")
            return ServeOutcome(
                500, error_body("worker_crashed", str(exc), digest),
                digest,
            )
        return self._absorb(digest, reply)

    def _absorb(self, digest: str, reply: Tuple[str, ...]) -> ServeOutcome:
        """Turn one worker reply into an outcome, persisting successes."""
        if reply[0] == "ok":
            text = reply[1]
            self.counters.computed += 1
            self._infra_failures.pop(digest, None)
            if len(reply) > 2:
                # Metadata sidecar from the worker (degradation trail,
                # tier residency): the body is byte-identical to a
                # clean run; only the stats move.
                self._note_sidecar(digest, reply[2])
            self._memory_put(digest, text)
            if self.store is not None:
                self.store.put_text(digest, text)
            return ServeOutcome(200, text, digest, SOURCE_COMPUTED)
        _, error_type, message = reply
        self.counters.analysis_errors += 1
        return ServeOutcome(
            500, error_body("analysis_error",
                            f"{error_type}: {message}", digest),
            digest,
        )

    def _note_sidecar(self, digest: str, meta_text: str) -> None:
        try:
            sidecar = json.loads(meta_text)
        except ValueError:
            sidecar = None
        if not isinstance(sidecar, dict):
            return
        degradation = sidecar.get("degradation")
        if isinstance(degradation, dict):
            self._note_degraded(digest, degradation)
        residency = sidecar.get("tier_residency")
        if isinstance(residency, dict):
            for key, value in residency.items():
                if isinstance(value, int):
                    self._tier_residency[str(key)] += value

    def _note_degraded(self, digest: str, meta: Dict[str, Any]) -> None:
        try:
            rung = str(meta.get("rung", "unknown"))
            attempts = len(meta.get("attempts", []))
        except (AttributeError, TypeError):
            rung, attempts = "unknown", 0
        self.counters.degraded += 1
        self._degraded_rungs[rung] += 1
        logger.warning(
            "degraded digest=%s rung=%s attempts=%d",
            digest, rung, attempts,
        )

    # ------------------------------------------------------------------
    # Batch analysis
    # ------------------------------------------------------------------

    async def analyze_batch_payload(self, data: Any) -> ServeOutcome:
        """``POST /v1/batch`` — sharded fan-out with work-stealing.

        Body: ``{"requests": [request-dict, ...]}`` (optionally
        ``"shard_size"``).  The response carries one entry per request,
        in order: the result dict of a success, or an ``{"error": ...}``
        object.  Duplicate digests within the batch are computed once;
        warm digests are answered from the store; the misses are cut
        into shards pushed onto the pool's shared queue, so idle
        workers steal remaining shards instead of waiting on a static
        partition.
        """
        started = time.monotonic()
        self.counters.batches += 1
        if not isinstance(data, dict) or \
                not isinstance(data.get("requests"), list):
            self.counters.invalid += 1
            return ServeOutcome(400, error_body(
                "invalid_request",
                'batch body must be {"requests": [...]}',
            ))
        raw_requests = data["requests"]
        shard_size = data.get("shard_size", self.batch_shard_size)
        if not isinstance(shard_size, int) or isinstance(shard_size, bool) \
                or shard_size < 1:
            self.counters.invalid += 1
            return ServeOutcome(400, error_body(
                "invalid_request", "shard_size must be a positive integer"
            ))
        if self._draining:
            return ServeOutcome(
                503, error_body("shutting_down", "server is draining"),
                retry_after=RETRY_AFTER_DRAINING,
            )

        self.counters.requests += len(raw_requests)
        outcomes: List[Optional[ServeOutcome]] = [None] * len(raw_requests)
        slots: Dict[str, List[int]] = {}
        pending: List[Tuple[str, Dict[str, Any]]] = []
        for index, raw in enumerate(raw_requests):
            request, message = self.parse_request(raw)
            if request is None:
                self.counters.invalid += 1
                outcomes[index] = ServeOutcome(
                    400, error_body("invalid_request", message)
                )
                continue
            digest = request_digest(request)
            owners = slots.setdefault(digest, [])
            if owners:  # duplicate within the batch: computed once
                self.counters.dedupe_hits += 1
            else:
                warm = self._lookup(digest)
                if warm is not None:
                    outcomes[index] = warm
                    owners.append(index)
                    continue
                pending.append((digest, request.to_dict()))
            owners.append(index)

        if pending:
            shards = [pending[i:i + shard_size]
                      for i in range(0, len(pending), shard_size)]
            results = await asyncio.gather(
                *(self._run_shard(shard) for shard in shards)
            )
            for shard, shard_outcomes in zip(shards, results):
                for (digest, _), outcome in zip(shard, shard_outcomes):
                    for index in slots[digest]:
                        if outcomes[index] is None:
                            outcomes[index] = outcome
        # Fill duplicate slots whose owner was warm.
        for digest, owners in slots.items():
            first = outcomes[owners[0]]
            for index in owners[1:]:
                if outcomes[index] is None:
                    outcomes[index] = first.as_dedupe()

        entries = [json.loads(outcome.body) for outcome in outcomes]
        errors = sum(1 for outcome in outcomes if not outcome.ok)
        body = json.dumps(
            {"count": len(entries), "errors": errors, "results": entries},
            indent=2, sort_keys=True,
        )
        result = ServeOutcome(
            200 if errors == 0 else 207, body, None,
            SOURCE_COMPUTED if pending else SOURCE_STORE,
        )
        logger.info(
            "batch requests=%d unique=%d warm=%d computed=%d errors=%d "
            "queue=%d wall_ms=%.2f",
            len(raw_requests), len(slots), len(slots) - len(pending),
            len(pending), errors, self.pool.stats()["queue_depth"],
            (time.monotonic() - started) * 1000.0,
        )
        return result

    async def _run_shard(
        self, shard: List[Tuple[str, Dict[str, Any]]]
    ) -> List[ServeOutcome]:
        # Quarantined digests never reach the pool — answer them here
        # and submit only the live remainder of the shard.
        shard_outcomes: Dict[str, ServeOutcome] = {}
        live: List[Tuple[str, Dict[str, Any]]] = []
        for digest, data in shard:
            poisoned = self._quarantine_outcome(digest)
            if poisoned is not None:
                shard_outcomes[digest] = poisoned
            else:
                live.append((digest, data))

        def _fill(outcomes: Dict[str, ServeOutcome]) -> List[ServeOutcome]:
            return [outcomes[digest] for digest, _ in shard]

        if not live:
            return _fill(shard_outcomes)
        digests = [digest for digest, _ in live]
        payload = [data for _, data in live]
        try:
            pool_future = self.pool.submit(payload)
        except QueueFull as exc:
            self.counters.rejected += len(live)
            shard_outcomes.update({
                d: ServeOutcome(
                    429, error_body("queue_full", str(exc), d), d,
                    retry_after=RETRY_AFTER_BUSY,
                )
                for d in digests
            })
            return _fill(shard_outcomes)
        except PoolClosed as exc:
            shard_outcomes.update({
                d: ServeOutcome(
                    503, error_body("shutting_down", str(exc), d), d,
                    retry_after=RETRY_AFTER_DRAINING,
                )
                for d in digests
            })
            return _fill(shard_outcomes)
        try:
            replies = await asyncio.wrap_future(pool_future)
        except AnalysisTimeout as exc:
            self.counters.timeouts += 1
            for d in digests:
                self._note_infra_failure(d, "analysis_timeout")
            shard_outcomes.update({
                d: ServeOutcome(
                    504, error_body("analysis_timeout", str(exc), d), d
                )
                for d in digests
            })
            return _fill(shard_outcomes)
        except WorkerCrashed as exc:
            self.counters.crashes += 1
            for d in digests:
                self._note_infra_failure(d, "worker_crashed")
            shard_outcomes.update({
                d: ServeOutcome(
                    500, error_body("worker_crashed", str(exc), d), d
                )
                for d in digests
            })
            return _fill(shard_outcomes)
        shard_outcomes.update({
            digest: self._absorb(digest, reply)
            for digest, reply in zip(digests, replies)
        })
        return _fill(shard_outcomes)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "inflight": len(self._inflight),
            "memory_entries": len(self._memory),
            "service": self.counters.to_dict(),
            "quarantined_digests": len(self._quarantined),
            "degraded_rungs": dict(self._degraded_rungs),
            "tier_residency": dict(self._tier_residency),
            "pool": self.pool.stats(),
            "store": self.store.stats() if self.store is not None else None,
        }

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "schema_version": RESULT_SCHEMA_VERSION,
        }

    async def close(self, drain: bool = True) -> None:
        """Stop accepting work; with ``drain``, finish what's in flight."""
        self._draining = True
        if drain and self._inflight:
            await asyncio.gather(
                *(entry.future for entry in list(self._inflight.values())),
                return_exceptions=True,
            )
        # The pool join blocks (thread joins); keep the loop breathing.
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.pool.close(drain)
        )

    def _log(self, outcome: ServeOutcome, started: float) -> None:
        logger.info(
            "analyze digest=%s outcome=%s status=%d queue=%d wall_ms=%.2f",
            outcome.digest or "-", outcome.source, outcome.status,
            self.pool.stats()["queue_depth"],
            (time.monotonic() - started) * 1000.0,
        )
