"""Analysis-as-a-service: the ``repro.serve`` subsystem.

The ROADMAP's serving layer over the digest-addressed cache: a
long-running asyncio HTTP/JSON front-end on the same
:class:`repro.api.AnalysisSession` machinery every offline caller
uses, with the hit/miss economics the benchmarks measured — warm
reruns at a fraction of a percent of cold — turned into a product
shape::

    herbgrind-py serve --port 8318 --workers 4 --store-dir /var/repro

    from repro.serve import ServeClient
    reply = ServeClient(port=8318).analyze(request)

Pieces:

* :mod:`repro.serve.pool`    — supervised worker processes (timeouts,
  crash recovery, bounded queue, drain),
* :mod:`repro.serve.service` — digest-addressed serving core: memory
  LRU → sharded store → in-flight dedupe → pool,
* :mod:`repro.serve.server`  — the asyncio streams HTTP shell and the
  ``run_server`` blocking entry point,
* :mod:`repro.serve.client`  — the stdlib keep-alive client used by
  tests, the smoke script, and the traffic-replay benchmark.

The on-disk format is :class:`repro.api.store.ShardedResultStore` —
the same store ``AnalysisSession(cache_dir=...)`` reads and writes, so
an offline corpus run pre-warms a server and vice versa.
"""

from repro.api.store import ShardedResultStore
from repro.serve.client import ServeClient, ServeError, ServeReply
from repro.serve.pool import (
    AnalysisTimeout,
    PoolClosed,
    PoolError,
    QueueFull,
    WorkerCrashed,
    WorkerPool,
)
from repro.serve.server import ReproServer, run_server
from repro.serve.service import AnalysisService, ServeOutcome

__all__ = [
    "AnalysisService",
    "AnalysisTimeout",
    "PoolClosed",
    "PoolError",
    "QueueFull",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServeOutcome",
    "ServeReply",
    "ShardedResultStore",
    "WorkerCrashed",
    "WorkerPool",
    "run_server",
]
