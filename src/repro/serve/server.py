"""The asyncio HTTP/JSON front-end of :mod:`repro.serve`.

A deliberately small HTTP/1.1 implementation over ``asyncio`` streams —
no third-party web framework, matching the repo's no-new-hard-deps
rule.  It supports exactly what the serving API needs: request line +
headers, ``Content-Length`` bodies, keep-alive connections, and JSON
responses with the ``X-Repro-Digest`` / ``X-Repro-Source`` headers the
client and the benchmark read.

Routes (see ``docs/serving.md`` for the full API reference):

====== ===================== ==========================================
POST   ``/v1/analyze``       one AnalysisRequest dict → AnalysisResult
                             JSON (byte-identical to an in-process
                             session; warm answers come from the store)
POST   ``/v1/batch``         ``{"requests": [...]}`` → per-request
                             results, sharded over the pool with
                             work-stealing
GET    ``/v1/result/<d>``    stored result for a digest, 404 on a miss
GET    ``/v1/health``        liveness (``ok`` / ``draining``)
GET    ``/v1/stats``         service + pool + store counters
====== ===================== ==========================================

Multiple server processes may share one ``--store-dir``; the store's
atomic sharded writes make that safe, and each process keeps its own
memory LRU, in-flight map, and worker pool.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import signal
from typing import Any, Dict, Optional, Set, Tuple

from repro.api.store import ShardedResultStore
from repro.resilience import faults as _faults
from repro.serve.service import AnalysisService, ServeOutcome, error_body

logger = logging.getLogger("repro.serve")

#: Reject request bodies larger than this (HTTP 413).
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Stream limit for header lines.
_LINE_LIMIT = 64 * 1024

_STATUS_TEXT = {
    200: "OK", 207: "Multi-Status", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class _HttpRequest:
    __slots__ = ("method", "path", "version", "headers", "body")

    def __init__(self, method: str, path: str, version: str,
                 headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.version = version
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


class _BadRequest(Exception):
    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[_HttpRequest]:
    """Parse one HTTP request; None on a clean EOF between requests."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise _BadRequest(400, "bad_request", "request line too long")
    if not line:
        return None
    try:
        method, path, version = line.decode("ascii").split()
    except ValueError:
        raise _BadRequest(400, "bad_request", "malformed request line")
    headers: Dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise _BadRequest(400, "bad_request", "header line too long")
        if raw in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise _BadRequest(400, "bad_request", "undecodable header")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _BadRequest(400, "bad_request",
                          f"bad Content-Length: {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest(413, "payload_too_large",
                          f"body of {length} bytes refused")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise _BadRequest(400, "bad_request", "truncated body")
    return _HttpRequest(method, path, version, headers, body)


def _render(outcome: ServeOutcome, keep_alive: bool) -> bytes:
    body = outcome.body.encode("utf-8")
    reason = _STATUS_TEXT.get(outcome.status, "Unknown")
    lines = [
        f"HTTP/1.1 {outcome.status} {reason}",
        "Content-Type: application/json; charset=utf-8",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
        f"X-Repro-Source: {outcome.source}",
    ]
    if outcome.digest is not None:
        lines.append(f"X-Repro-Digest: {outcome.digest}")
    if outcome.retry_after is not None:
        lines.append(f"Retry-After: {int(math.ceil(outcome.retry_after))}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


class ReproServer:
    """The asyncio server shell around one :class:`AnalysisService`."""

    def __init__(self, service: AnalysisService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.Task] = set()
        self._draining = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns (host, actual port) — port 0 works."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=_LINE_LIMIT
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop listening, drain, release the pool.

        With ``drain`` (default), connections mid-request get their
        responses; connections idle between keep-alive requests close
        immediately (each handler races its read against the draining
        event, so nobody waits on a silent client).  Without ``drain``,
        connection tasks are cancelled and queued pool work is dropped.
        """
        self._draining.set()
        if self._server is not None:
            self._server.close()
        connections = list(self._connections)
        if not drain:
            for task in connections:
                task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        await self.service.close(drain)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to tell it
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                request = await self._next_request(reader)
            except _BadRequest as exc:
                writer.write(_render(ServeOutcome(
                    exc.status, error_body(exc.error_type, str(exc))
                ), keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return
            outcome = await self._route(request)
            if _faults.active() and _faults.fire("socket.reset"):
                # Chaos seam: the kernel drops the connection after the
                # response was computed but before any byte is written —
                # the worst spot for a client (work done, answer lost).
                writer.transport.abort()
                return
            keep_alive = request.keep_alive and not self._draining.is_set()
            writer.write(_render(outcome, keep_alive))
            await writer.drain()
            if not keep_alive:
                return

    async def _next_request(self, reader) -> Optional[_HttpRequest]:
        """One parsed request, or None once idle *and* draining.

        The read races the draining event so graceful shutdown never
        blocks on a keep-alive connection parked between requests; a
        request already in flight when draining starts still wins the
        race and gets served.
        """
        if self._draining.is_set():
            return None
        read = asyncio.ensure_future(_read_request(reader))
        drained = asyncio.ensure_future(self._draining.wait())
        await asyncio.wait(
            {read, drained}, return_when=asyncio.FIRST_COMPLETED
        )
        drained.cancel()
        if not read.done():
            read.cancel()
            try:
                await read
            except (asyncio.CancelledError, _BadRequest):
                return None
        return await read

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(self, request: _HttpRequest) -> ServeOutcome:
        method, path = request.method, request.path
        if path == "/v1/health":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return ServeOutcome(
                200, _dumps(self.service.health()), source="health"
            )
        if path == "/v1/stats":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return ServeOutcome(
                200, _dumps(self.service.stats()), source="stats"
            )
        if path.startswith("/v1/result/"):
            if method != "GET":
                return self._method_not_allowed(method, path)
            return self.service.lookup_digest(path[len("/v1/result/"):])
        if path == "/v1/analyze":
            if method != "POST":
                return self._method_not_allowed(method, path)
            data, error = _parse_json(request.body)
            if error is not None:
                return error
            return await self.service.analyze_payload(data)
        if path == "/v1/batch":
            if method != "POST":
                return self._method_not_allowed(method, path)
            data, error = _parse_json(request.body)
            if error is not None:
                return error
            return await self.service.analyze_batch_payload(data)
        return ServeOutcome(
            404, error_body("not_found", f"no route for {path}")
        )

    @staticmethod
    def _method_not_allowed(method: str, path: str) -> ServeOutcome:
        return ServeOutcome(
            405, error_body("method_not_allowed",
                            f"{method} not supported on {path}")
        )


def _dumps(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True)


def _parse_json(body: bytes):
    try:
        return json.loads(body.decode("utf-8")), None
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return None, ServeOutcome(
            400, error_body("invalid_json", str(exc))
        )


# ----------------------------------------------------------------------
# Blocking entry point (the `herbgrind-py serve` subcommand)
# ----------------------------------------------------------------------

def run_server(
    host: str = "127.0.0.1",
    port: int = 8318,
    workers: int = 2,
    store_dir: Optional[str] = None,
    queue_limit: int = 64,
    timeout: Optional[float] = 300.0,
    batch_shard_size: int = 4,
    log_level: str = "info",
) -> int:
    """Run a server until SIGINT/SIGTERM, then drain and exit 0."""
    logging.basicConfig(
        level=getattr(logging, log_level.upper(), logging.INFO),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    return asyncio.run(_amain(
        host=host, port=port, workers=workers, store_dir=store_dir,
        queue_limit=queue_limit, timeout=timeout,
        batch_shard_size=batch_shard_size,
    ))


async def _amain(host, port, workers, store_dir, queue_limit, timeout,
                 batch_shard_size) -> int:
    store = ShardedResultStore(store_dir) if store_dir else None
    service = AnalysisService(
        store=store, workers=workers, queue_limit=queue_limit,
        timeout=timeout, batch_shard_size=batch_shard_size,
    )
    server = ReproServer(service, host, port)
    bound_host, bound_port = await server.start()
    # The smoke harness and humans both read this line; keep it stable.
    print(f"repro-serve listening on http://{bound_host}:{bound_port} "
          f"(workers={workers}, store={store_dir or '<memory-only>'})",
          flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loops
    await stop.wait()
    logger.info("shutdown requested; draining")
    await server.stop(drain=True)
    logger.info("shutdown complete")
    return 0
