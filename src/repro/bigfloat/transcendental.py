"""Transcendental functions on :class:`BigFloat` values.

These are *faithful* implementations: results carry ~32 guard bits over
the context precision before the final rounding, so the error at the
context precision is well under one ulp.  (The paper's MPFR shadow runs
at 1000 bits to measure 53-bit doubles — dozens of guard bits of slack
is far more than the metric can observe.)

Each function handles IEEE special values the way the C math library
does, so shadow-real execution of `log(-1.0)`, `atan2(0, -0)` etc.
mirrors what the client program's libm would produce in the reals.

Argument-reduction precision is chosen per call: reducing x modulo π/2
or ln 2 needs roughly ``precision + |binary exponent of x|`` working
bits, and a Ziv-style retry widens the reduction when x lands
pathologically close to a reduction point.

Substrate structure: every function is split into a ``_*_special``
helper (IEEE special values, domain errors, and the cheap shortcut
paths, returning ``None`` when the general path must run) and the
general-path body below it.  The special helpers are *shared* with the
native substrate (:mod:`repro.bigfloat.backend`), so every backend
agrees bit-for-bit on special-value semantics and shortcut results;
only the general-path kernels differ between substrates (both are
faithful at the context precision).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bigfloat import arith
from repro.bigfloat.bigfloat import BigFloat, HALF, K_FINITE, K_INF, K_NAN, ONE, TWO
from repro.bigfloat.constants import ln2_fixed, pi_fixed
from repro.bigfloat.context import Context, getcontext
from repro.bigfloat.fixedpoint import (
    atan_factor_series,
    atan_series,
    exp_series,
    expm1_factor_series,
    fdiv,
    fmul,
    from_fixed,
    fsqrt,
    log1p_over_x_series,
    log_series,
    sin_cos_series,
    sinh_factor_series,
    to_fixed,
    tshift,
)

_GUARD = 32

#: |x| above 2**EXP_OVERFLOW_BITS overflows exp() to inf / underflows to 0.
#: (The exact result would need a 2**40-bit exponent — far beyond anything
#: a double-precision client program can observe.)
_EXP_OVERFLOW_BITS = 40


def _ctx(context: Optional[Context]) -> Context:
    return context if context is not None else getcontext()


def _round_result(value: BigFloat, context: Context) -> BigFloat:
    return value.round_to(context.precision, context.rounding)


def _msb(x: BigFloat) -> int:
    return x.msb_exponent


# ----------------------------------------------------------------------
# Exponentials
# ----------------------------------------------------------------------

def _exp_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    if x.kind == K_INF:
        return BigFloat.zero(0) if x.sign else BigFloat.inf(0)
    if x.is_zero():
        return ONE
    msb = _msb(x)
    if msb > _EXP_OVERFLOW_BITS:
        return BigFloat.zero(0) if x.sign else BigFloat.inf(0)
    if msb < -(context.precision + 8):
        # exp(x) = 1 + x + O(x^2); the quadratic term is below the target.
        return arith.add(ONE, x, context)
    return None


def exp(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """e**x, faithfully rounded."""
    context = _ctx(context)
    special = _exp_special(x, context)
    if special is not None:
        return special
    msb = _msb(x)
    wp = context.precision + _GUARD
    reduction_precision = wp + max(0, msb) + 8
    fixed = to_fixed(x, reduction_precision)
    ln2_value = ln2_fixed(reduction_precision)
    count = (2 * fixed + ln2_value) // (2 * ln2_value)
    remainder = fixed - count * ln2_value
    remainder = tshift(remainder, reduction_precision - wp)
    grown = exp_series(remainder, wp)
    result = BigFloat(0, grown, count - wp)
    return _round_result(result, context)


def _exp2_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    if x.kind == K_INF:
        return BigFloat.zero(0) if x.sign else BigFloat.inf(0)
    if x.is_zero():
        return ONE
    if _msb(x) > _EXP_OVERFLOW_BITS:
        return BigFloat.zero(0) if x.sign else BigFloat.inf(0)
    if x.is_integer():
        count = int(x.to_fraction())
        return BigFloat(0, 1, count)
    return None


def exp2(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """2**x, faithfully rounded."""
    context = _ctx(context)
    special = _exp2_special(x, context)
    if special is not None:
        return special
    # 2**x = e**(x ln 2); reuse exp's reduction via multiplication.
    wide = context.widened(16)
    ln2_value = from_fixed(ln2_fixed(wide.precision + 16), wide.precision + 16)
    return exp(arith.mul(x, ln2_value, wide), context)


def _expm1_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    if x.kind == K_INF:
        return ONE.neg() if x.sign else BigFloat.inf(0)
    if x.is_zero():
        return x
    if _msb(x) < -(context.precision + 8):
        return _round_result(x, context)
    return None


def expm1(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """e**x - 1 with full relative accuracy near zero."""
    context = _ctx(context)
    special = _expm1_special(x, context)
    if special is not None:
        return special
    msb = _msb(x)
    if msb >= -2:
        wide = context.widened(16)
        return arith.sub(exp(x, wide), ONE, context)
    # Small path: expm1(x) = x * ((e^x - 1)/x); the factor is near 1 so
    # its absolute fixed-point accuracy is also its relative accuracy.
    wp = context.precision + _GUARD
    factor = expm1_factor_series(to_fixed(x, wp), wp)
    return arith.mul(x, from_fixed(factor, wp), context)


# ----------------------------------------------------------------------
# Logarithms
# ----------------------------------------------------------------------

def _log_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    if x.is_zero():
        return BigFloat.inf(1)
    if x.sign == 1:
        return BigFloat.nan()
    if x.kind == K_INF:
        return BigFloat.inf(0)
    if x.man == 1 and x.exp == 0:
        return BigFloat.zero(0)
    return None


def log(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Natural logarithm; log(±0) = -inf, log(x<0) = NaN."""
    context = _ctx(context)
    special = _log_special(x, context)
    if special is not None:
        return special
    # Near 1, switch to log1p on the exact difference to keep relative
    # accuracy through the cancellation.
    three_quarters = BigFloat(0, 3, -2)
    three_halves = BigFloat(0, 3, -1)
    if three_quarters < x < three_halves:
        delta = arith.sub_exact(x, ONE)
        if delta.is_zero():
            return BigFloat.zero(0)
        if _msb(delta) < -2:
            return _log1p_core(delta, context)
    return _log_general(x, context)


def _log_general(x: BigFloat, context: Context) -> BigFloat:
    """ln(x) via exponent split: ln(m·2^e) = e·ln2 + ln(m), m in [1,2).

    Safe whenever |ln x| is not tiny (callers divert the near-1 region to
    the log1p path first)."""
    wp = context.precision + _GUARD
    exponent = x.msb_exponent
    reduction_precision = wp + max(8, abs(exponent).bit_length() + 4)
    mantissa_fixed = tshift(x.man, x.man.bit_length() - 1 - reduction_precision)
    ln_mantissa = log_series(mantissa_fixed, reduction_precision)
    total = exponent * ln2_fixed(reduction_precision) + ln_mantissa
    return _round_result(from_fixed(total, reduction_precision), context)


def _log1p_core(delta: BigFloat, context: Context) -> BigFloat:
    """ln(1 + delta) for |delta| < 1/4, via delta * (ln(1+d)/d)."""
    if delta.is_zero():
        return BigFloat.zero(delta.sign)
    if _msb(delta) < -(context.precision + 8):
        return _round_result(delta, context)
    if _msb(delta) >= -2:
        raise ValueError("_log1p_core requires |delta| < 1/4")
    wp = context.precision + _GUARD
    factor = log1p_over_x_series(to_fixed(delta, wp), wp)
    return arith.mul(delta, from_fixed(factor, wp), context)


def _log1p_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    if x.kind == K_INF:
        return BigFloat.inf(0) if x.sign == 0 else BigFloat.nan()
    if x.is_zero():
        return x
    minus_one = ONE.neg()
    if x == minus_one:
        return BigFloat.inf(1)
    if x < minus_one:
        return BigFloat.nan()
    if _msb(x) < -(context.precision + 8):
        # ln(1+x) = x - x^2/2 + ...; the quadratic term is below target.
        return _round_result(x, context)
    return None


def log1p(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """ln(1 + x) with full relative accuracy near zero."""
    context = _ctx(context)
    special = _log1p_special(x, context)
    if special is not None:
        return special
    if _msb(x) < -2:
        return _log1p_core(x, context)
    return log(arith.add_exact(ONE, x), context)


def _log2_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_FINITE and x.man == 1 and x.sign == 0:
        return BigFloat.from_int(x.exp)
    # All remaining specials coincide with log's table (including the
    # non-finite cases the quotient below would just pass through).
    return _log_special(x, context)


def log2(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Base-2 logarithm (exact on powers of two)."""
    context = _ctx(context)
    special = _log2_special(x, context)
    if special is not None:
        return special
    wide = context.widened(16)
    numerator = log(x, wide)
    ln2_value = from_fixed(ln2_fixed(wide.precision + 16), wide.precision + 16)
    return arith.div(numerator, ln2_value, context)


def _log10_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    return _log_special(x, context)


def log10(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Base-10 logarithm."""
    context = _ctx(context)
    special = _log10_special(x, context)
    if special is not None:
        return special
    wide = context.widened(16)
    numerator = log(x, wide)
    return arith.div(numerator, log(BigFloat.from_int(10), wide), context)


# ----------------------------------------------------------------------
# Trigonometry
# ----------------------------------------------------------------------

#: Give up on trig argument reduction past this many exponent bits; a
#: client double can never get here, only pathological shadow values.
_TRIG_EXPONENT_LIMIT = 1 << 20


def _reduce_pi_over_2(x: BigFloat, context: Context) -> Tuple[int, int, int]:
    """Reduce x to (quadrant, remainder_fixed, wp) with |r| <= ~pi/4.

    Uses a Ziv loop: when x is so close to a multiple of pi/2 that the
    remainder loses relative precision, redo the reduction wider.
    """
    msb = _msb(x)
    if msb > _TRIG_EXPONENT_LIMIT:
        raise OverflowError("trig argument exponent too large to reduce")
    wp = context.precision + _GUARD
    extra = 0
    while True:
        reduction_precision = wp + max(0, msb) + 8 + extra
        fixed = to_fixed(x, reduction_precision)
        half_pi = pi_fixed(reduction_precision) >> 1
        quadrant = (2 * fixed + half_pi) // (2 * half_pi)
        remainder = fixed - quadrant * half_pi
        if quadrant == 0:
            return 0, remainder, reduction_precision
        # Relative-accuracy check: the remainder's error is about
        # 2**(msb - reduction_precision), so it must keep enough bits.
        needed = max(0, msb) + context.precision + 9
        if remainder == 0 or abs(remainder).bit_length() >= needed:
            return int(quadrant), remainder, reduction_precision
        if extra >= 4 * (context.precision + max(0, msb)):
            # x is indistinguishable from a multiple of pi/2 at any
            # reasonable precision; accept the tiny remainder.
            return int(quadrant), remainder, reduction_precision
        extra += context.precision + 16


def _sin_cos(x: BigFloat, context: Context) -> Tuple[BigFloat, BigFloat]:
    quadrant, remainder, wp = _reduce_pi_over_2(x, context)
    sin_fixed, cos_fixed = sin_cos_series(remainder, wp)
    table = {
        0: (sin_fixed, cos_fixed),
        1: (cos_fixed, -sin_fixed),
        2: (-sin_fixed, -cos_fixed),
        3: (-cos_fixed, sin_fixed),
    }
    sin_value, cos_value = table[quadrant % 4]
    return from_fixed(sin_value, wp), from_fixed(cos_value, wp)


def _trig_guard(x: BigFloat) -> None:
    """Shared reduction bail-out: both substrates refuse the same inputs."""
    if _msb(x) > _TRIG_EXPONENT_LIMIT:
        raise OverflowError("trig argument exponent too large to reduce")


def _sin_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind != K_FINITE:
        return BigFloat.nan()
    if x.is_zero():
        return x
    if _msb(x) < -(context.precision // 2 + 8):
        return _round_result(x, context)  # sin x = x - x^3/6 + ...
    _trig_guard(x)
    return None


def sin(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Sine; sin(±0) = ±0, sin(±inf) = NaN."""
    context = _ctx(context)
    special = _sin_special(x, context)
    if special is not None:
        return special
    sin_value, __ = _sin_cos(x, context)
    return _round_result(sin_value, context)


def _cos_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind != K_FINITE:
        return BigFloat.nan()
    if x.is_zero():
        return ONE
    if _msb(x) < -(context.precision // 2 + 8):
        return ONE  # cos x = 1 - x^2/2; the x^2 term is below target.
    _trig_guard(x)
    return None


def cos(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Cosine; cos(±inf) = NaN."""
    context = _ctx(context)
    special = _cos_special(x, context)
    if special is not None:
        return special
    __, cos_value = _sin_cos(x, context)
    return _round_result(cos_value, context)


def _tan_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind != K_FINITE:
        return BigFloat.nan()
    if x.is_zero():
        return x
    if _msb(x) < -(context.precision // 2 + 8):
        return _round_result(x, context)
    _trig_guard(x)
    return None


def tan(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Tangent; tan(±inf) = NaN."""
    context = _ctx(context)
    special = _tan_special(x, context)
    if special is not None:
        return special
    sin_value, cos_value = _sin_cos(x, context)
    return arith.div(sin_value, cos_value, context)


# ----------------------------------------------------------------------
# Inverse trigonometry
# ----------------------------------------------------------------------

def _half_pi(context: Context) -> BigFloat:
    wp = context.precision + _GUARD
    return from_fixed(pi_fixed(wp) >> 1, wp)


def _pi(context: Context) -> BigFloat:
    wp = context.precision + _GUARD
    return from_fixed(pi_fixed(wp), wp)


def _atan_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    if x.kind == K_INF:
        return _round_result(_half_pi(context).copysign(x), context)
    if x.is_zero():
        return x
    if _msb(x) < -(context.precision // 2 + 8):
        return _round_result(x, context)
    return None


def atan(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Arctangent; atan(±inf) = ±pi/2."""
    context = _ctx(context)
    special = _atan_special(x, context)
    if special is not None:
        return special
    msb = _msb(x)
    wp = context.precision + _GUARD
    if msb < -8:
        # Small path: atan(x) = x * (1 - x^2/3 + ...); the factor is near
        # 1 so fixed-point absolute accuracy is relative accuracy.
        wide = context.widened(16)
        squared = arith.mul(x, x, wide)
        factor = atan_factor_series(to_fixed(squared, wp), wp)
        return arith.mul(x, from_fixed(factor, wp), context)
    magnitude = x.abs()
    if magnitude > ONE:
        # atan(x) = sign * (pi/2 - atan(1/|x|)).
        wide = context.widened(16)
        reciprocal = arith.div(ONE, magnitude, wide)
        inner = atan(reciprocal, wide)
        result = arith.sub(_half_pi(wide), inner, context)
        return result.copysign(x)
    # |x| in [2^-8, 1]: halve the argument until the Taylor series is fast.
    one = 1 << wp
    t = to_fixed(magnitude, wp)
    halvings = 0
    threshold = one >> 8
    while abs(t) > threshold:
        root = fsqrt(one + fmul(t, t, wp), wp)
        t = fdiv(t, one + root, wp)
        halvings += 1
    total = atan_series(t, wp) << halvings
    result = from_fixed(total, wp)
    return _round_result(result.copysign(x), context)


def _asin_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    magnitude = x.abs()
    if magnitude > ONE or x.kind == K_INF:
        return BigFloat.nan()
    if magnitude == ONE:
        return _round_result(_half_pi(context).copysign(x), context)
    if x.is_zero():
        return x
    return None


def asin(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Arcsine; NaN outside [-1, 1]."""
    context = _ctx(context)
    special = _asin_special(x, context)
    if special is not None:
        return special
    magnitude = x.abs()
    wide = context.widened(16)
    # 1 - x^2 as (1-x)(1+x): both factors are exact, so no cancellation.
    one_minus = arith.sub_exact(ONE, magnitude)
    one_plus = arith.add_exact(ONE, magnitude)
    denominator = arith.sqrt(arith.mul(one_minus, one_plus, wide), wide)
    return atan(arith.div(x, denominator, wide), context)


def _acos_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    if x.abs() > ONE or x.kind == K_INF:
        return BigFloat.nan()
    if x == ONE:
        return BigFloat.zero(0)
    if x == ONE.neg():
        return _round_result(_pi(context), context)
    return None


def acos(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Arccosine; NaN outside [-1, 1]."""
    context = _ctx(context)
    special = _acos_special(x, context)
    if special is not None:
        return special
    magnitude = x.abs()
    wide = context.widened(16)
    one_minus = arith.sub_exact(ONE, magnitude)
    one_plus = arith.add_exact(ONE, magnitude)
    numerator = arith.sqrt(arith.mul(one_minus, one_plus, wide), wide)
    return atan2(numerator, x, context)


def _atan2_special(y: BigFloat, x: BigFloat,
                   context: Context) -> Optional[BigFloat]:
    if y.kind == K_NAN or x.kind == K_NAN:
        return BigFloat.nan()
    if y.is_zero():
        if x.sign == 0:  # +0 or positive x
            return BigFloat.zero(y.sign)
        return _round_result(_pi(context), context).copysign(y)
    if x.is_zero():
        return _round_result(_half_pi(context).copysign(y), context)
    if x.kind == K_INF:
        if y.kind == K_INF:
            quarter_pi = arith.mul(_half_pi(context), HALF, context.widened(8))
            if x.sign == 0:
                return _round_result(quarter_pi.copysign(y), context)
            three_quarter = arith.mul(
                quarter_pi, BigFloat.from_int(3), context.widened(8)
            )
            return _round_result(three_quarter.copysign(y), context)
        if x.sign == 0:
            return BigFloat.zero(y.sign)
        return _round_result(_pi(context), context).copysign(y)
    if y.kind == K_INF:
        return _round_result(_half_pi(context).copysign(y), context)
    return None


def atan2(y: BigFloat, x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Two-argument arctangent with full C99 special-case semantics.

    This is the `arg` function of the complex-plotter case study; the
    signed-zero and infinity cases matter there because pixels sit on
    the branch cut.
    """
    context = _ctx(context)
    special = _atan2_special(y, x, context)
    if special is not None:
        return special
    wide = context.widened(16)
    base = atan(arith.div(y.abs(), x.abs(), wide), wide)
    if x.sign == 0:
        return _round_result(base, context).copysign(y)
    result = arith.sub(_pi(wide), base, context)
    return result.copysign(y)


# ----------------------------------------------------------------------
# Hyperbolics
# ----------------------------------------------------------------------

def _sinh_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind != K_FINITE:
        return x  # NaN stays NaN; ±inf stays ±inf
    if x.is_zero():
        return x
    if _msb(x) < -(context.precision // 2 + 8):
        return _round_result(x, context)
    return None


def sinh(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Hyperbolic sine."""
    context = _ctx(context)
    special = _sinh_special(x, context)
    if special is not None:
        return special
    msb = _msb(x)
    if msb >= -2:
        wide = context.widened(16)
        grown = exp(x, wide)
        shrunk = arith.div(ONE, grown, wide)
        return arith.mul(arith.sub(grown, shrunk, wide), HALF, context)
    wp = context.precision + _GUARD
    wide = context.widened(16)
    squared = arith.mul(x, x, wide)
    factor = sinh_factor_series(to_fixed(squared, wp), wp)
    return arith.mul(x, from_fixed(factor, wp), context)


def _cosh_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    if x.kind == K_INF:
        return BigFloat.inf(0)
    if x.is_zero():
        return ONE
    if _msb(x) < -(context.precision // 2 + 8):
        return ONE
    return None


def cosh(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Hyperbolic cosine."""
    context = _ctx(context)
    special = _cosh_special(x, context)
    if special is not None:
        return special
    wide = context.widened(16)
    grown = exp(x, wide)
    shrunk = arith.div(ONE, grown, wide)
    return arith.mul(arith.add(grown, shrunk, wide), HALF, context)


def _tanh_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN:
        return BigFloat.nan()
    if x.kind == K_INF:
        return ONE.copysign(x)
    if x.is_zero():
        return x
    msb = _msb(x)
    if msb < -(context.precision // 2 + 8):
        return _round_result(x, context)
    # Saturation: once 1 - tanh < 2^-(precision+1), the rounded answer is ±1.
    if msb >= 0 and x.abs() > BigFloat.from_int(context.precision + 2):
        return ONE.copysign(x)
    return None


def tanh(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Hyperbolic tangent."""
    context = _ctx(context)
    special = _tanh_special(x, context)
    if special is not None:
        return special
    msb = _msb(x)
    wide = context.widened(16)
    if msb >= -2:
        grown = exp(arith.mul(x, TWO, wide), wide)
        numerator = arith.sub(grown, ONE, wide)
        denominator = arith.add(grown, ONE, wide)
        return arith.div(numerator, denominator, context)
    sinh_value = sinh(x, wide)
    cosh_value = cosh(x, wide)
    return arith.div(sinh_value, cosh_value, context)


def _asinh_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind != K_FINITE or x.is_zero():
        return x
    if _msb(x) < -(context.precision // 2 + 8):
        return _round_result(x, context)
    return None


def asinh(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Inverse hyperbolic sine (stable for small and large arguments)."""
    context = _ctx(context)
    special = _asinh_special(x, context)
    if special is not None:
        return special
    wide = context.widened(16)
    magnitude = x.abs()
    squared = arith.mul(magnitude, magnitude, wide)
    root = arith.sqrt(arith.add(squared, ONE, wide), wide)
    # asinh(|x|) = log1p(|x| + x^2/(1 + sqrt(x^2+1))): cancellation-free.
    correction = arith.div(squared, arith.add(ONE, root, wide), wide)
    result = log1p(arith.add(magnitude, correction, wide), context)
    return result.copysign(x)


def _acosh_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN or x < ONE:
        return BigFloat.nan()
    if x.kind == K_INF:
        return BigFloat.inf(0)
    if x == ONE:
        return BigFloat.zero(0)
    return None


def acosh(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Inverse hyperbolic cosine; NaN below 1."""
    context = _ctx(context)
    special = _acosh_special(x, context)
    if special is not None:
        return special
    wide = context.widened(16)
    minus = arith.sub_exact(x, ONE)
    plus = arith.add_exact(x, ONE)
    root = arith.sqrt(arith.mul(minus, plus, wide), wide)
    return log(arith.add(x, root, wide), context)


def _atanh_special(x: BigFloat, context: Context) -> Optional[BigFloat]:
    if x.kind == K_NAN or x.kind == K_INF:
        return BigFloat.nan()
    if x.is_zero():
        return x
    magnitude = x.abs()
    if magnitude > ONE:
        return BigFloat.nan()
    if magnitude == ONE:
        return BigFloat.inf(x.sign)
    if _msb(x) < -(context.precision // 2 + 8):
        return _round_result(x, context)
    return None


def atanh(x: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Inverse hyperbolic tangent; ±inf at ±1, NaN beyond."""
    context = _ctx(context)
    special = _atanh_special(x, context)
    if special is not None:
        return special
    wide = context.widened(16)
    # atanh(x) = log1p(2x / (1-x)) / 2, stable across the whole domain.
    numerator = arith.mul(x, TWO, wide)
    denominator = arith.sub_exact(ONE, x)
    result = log1p(arith.div(numerator, denominator, wide), wide)
    return arith.mul(result, HALF, context)


# ----------------------------------------------------------------------
# Powers
# ----------------------------------------------------------------------

#: Integer exponents up to this magnitude use exact binary powering.
_POW_INT_LIMIT = 1 << 20
#: The limit as a BigFloat, hoisted so the integer-exponent test does
#: not allocate on every call.
_POW_INT_LIMIT_BIG = BigFloat.from_int(_POW_INT_LIMIT)


def _pow_is_odd_integer(y: BigFloat) -> bool:
    """True when y is a finite odd integer (canonical form: exp == 0)."""
    return y.kind == K_FINITE and y.exp == 0 and bool(y.man & 1)


def _pow_special(x: BigFloat, y: BigFloat,
                 context: Context) -> Optional[BigFloat]:
    """The C99 pow special-case table (everything except finite**finite)."""
    if y.is_zero() and y.kind == K_FINITE:
        return ONE  # pow(anything, ±0) = 1, even NaN
    if x.kind == K_FINITE and x.man == 1 and x.exp == 0 and x.sign == 0:
        return ONE  # pow(+1, anything) = 1, even NaN
    if x.kind == K_NAN or y.kind == K_NAN:
        return BigFloat.nan()
    y_is_odd = _pow_is_odd_integer(y)
    if x.is_zero():
        if y.sign == 0:  # positive exponent
            return BigFloat.zero(x.sign if y_is_odd else 0)
        return BigFloat.inf(x.sign if y_is_odd else 0)
    if y.kind == K_INF:
        magnitude_cmp = x.abs()._compare(ONE)
        if magnitude_cmp == 0:
            return ONE  # pow(-1, ±inf) = 1 per C99
        growing = (magnitude_cmp == 1) == (y.sign == 0)
        return BigFloat.inf(0) if growing else BigFloat.zero(0)
    if x.kind == K_INF:
        if x.sign == 0:
            return BigFloat.inf(0) if y.sign == 0 else BigFloat.zero(0)
        sign = 1 if y_is_odd else 0
        return BigFloat.inf(sign) if y.sign == 0 else BigFloat.zero(sign)
    if x.sign == 1 and not y.is_integer():
        return BigFloat.nan()
    return None


def pow_(x: BigFloat, y: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """x**y following the C99 pow special-case table."""
    context = _ctx(context)
    special = _pow_special(x, y, context)
    if special is not None:
        return special
    result_sign = 1 if (x.sign == 1 and _pow_is_odd_integer(y)) else 0
    magnitude = x.abs()
    if y.is_integer() and y.abs() <= _POW_INT_LIMIT_BIG:
        count = int(y.to_fraction())
        result = _integer_power(magnitude, abs(count), context)
        if count < 0:
            result = arith.div(ONE, result, context)
        else:
            result = _round_result(result, context)
        return result.neg() if result_sign else result
    # General case: exp(y * ln x) with widening for the product's magnitude.
    wide = context.widened(_GUARD)
    log_x = log(magnitude, wide)
    product = arith.mul(y, log_x, wide)
    result = exp(product, context)
    return result.neg() if result_sign else result


def _integer_power(base: BigFloat, exponent: int, context: Context) -> BigFloat:
    """base**exponent (exponent >= 0) by binary powering with guard bits."""
    wide = context.widened(_GUARD)
    result = ONE
    factor = base
    remaining = exponent
    while remaining:
        if remaining & 1:
            result = arith.mul(result, factor, wide)
        remaining >>= 1
        if remaining:
            factor = arith.mul(factor, factor, wide)
    return result
