"""Pluggable BigFloat kernel substrates (``AnalysisConfig.substrate``).

The shadow-real semantics ⟦f⟧_R can be evaluated by more than one
arbitrary-precision engine:

* ``python`` — the package's own integer-limb kernels
  (:mod:`repro.bigfloat.arith` / :mod:`repro.bigfloat.transcendental`),
  the reference substrate with zero dependencies.
* ``native`` — a faster engine when one is importable: gmpy2 (MPFR)
  first, then mpmath's ``libmp`` fixed-point kernels, falling back to
  the python kernels when neither is present.  Selection happens once
  per process; a provider that fails its startup self-check (see
  :func:`_self_check`) is discarded rather than trusted.

A substrate replaces only the *general-path numerics*.  Every IEEE
special value, domain error, signed-zero rule, overflow clamp and
cheap shortcut routes through the shared ``_*_special`` helpers of the
python modules, so all substrates agree bit-for-bit on special-value
semantics; general-path results are faithful at the context precision
under every substrate.  Whole-corpus reports are enforced
byte-identical across substrates by ``tests/core/test_substrate_parity``.

Basic arithmetic (+, -, *, /, fma) is *correctly rounded* under both
substrates, so those results are bit-identical everywhere; the
transcendental kernels are faithful, so two substrates may differ in
the last unit of the shadow precision — about 2**-947 relative for the
paper's 1000-bit shadows measuring 53-bit doubles, which no report
metric can observe.

Operations whose python kernels are already exact integer algorithms
(sqrt, fmod, remainder, the integer roundings, fmin/fmax/fdim/copysign)
are served by the python implementations under every substrate.

The hardware double-double tier (:mod:`repro.bigfloat.doubledouble`)
sits *below* every substrate: its kernels are plain IEEE-754 hardware
operations and never route through a :class:`KernelBackend`, so the
substrate choice is irrelevant while a shadow stays on the hardware
tier and takes effect only after promotion to BigFloat.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bigfloat import arith, functions, transcendental
from repro.bigfloat.bigfloat import BigFloat, K_FINITE, ONE
from repro.bigfloat.context import Context, getcontext
from repro.bigfloat.rounding import (
    ROUND_DOWN,
    ROUND_NEAREST_EVEN,
    ROUND_TOWARD_ZERO,
    ROUND_UP,
)
from repro.resilience import faults as _faults
from repro.resilience.errors import KernelFault

SUBSTRATE_PYTHON = "python"
SUBSTRATE_NATIVE = "native"
ALL_SUBSTRATES = (SUBSTRATE_PYTHON, SUBSTRATE_NATIVE)

#: Operations expensive enough that the analysis memoizes their shadow
#: results per (operation, operand trace idents) within one execution —
#: see the kernel-result cache in :mod:`repro.core.analysis`.  The
#: basic arithmetic ops are deliberately absent: at shadow precisions a
#: multiply costs about as much as the cache probe itself.
KERNEL_CACHE_OPERATIONS = frozenset(
    {
        "exp", "exp2", "expm1", "log", "log2", "log10", "log1p",
        "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
        "sinh", "cosh", "tanh", "asinh", "acosh", "atanh",
        "pow", "cbrt", "hypot",
    }
)


class KernelBackend:
    """One substrate: a full ⟦f⟧_R dispatch plus the ⟦f⟧_F handlers.

    ``apply`` has exactly the contract of
    :func:`repro.bigfloat.functions.apply`;  ``double_handlers`` has
    the contract of :data:`~repro.bigfloat.functions.DOUBLE_HANDLERS`
    (the compiled engine pre-binds from it at compile time).
    """

    #: Substrate name ("python" / "native").
    name: str = SUBSTRATE_PYTHON
    #: The engine actually serving the kernels ("python", "mpmath",
    #: "gmpy2"); for the python substrate this is always "python".
    provider: str = "python"

    def __init__(self) -> None:
        self._dispatch: Dict[str, Callable] = dict(functions._REAL_DISPATCH)
        self.double_handlers: Dict[str, Callable[..., float]] = (
            functions.DOUBLE_HANDLERS
        )

    # ------------------------------------------------------------------
    # Fault seams (repro.resilience.faults)
    # ------------------------------------------------------------------
    #
    # Two seams per substrate: ``kernel.raise`` fires on any substrate,
    # ``kernel.<name>.raise`` (e.g. ``kernel.native.raise``) only on
    # the named one — so a chaos test can fail exactly the accelerated
    # kernels and watch the ladder land on the python substrate.  The
    # generic ``apply`` path checks inline; the pre-resolved handlers
    # the fused pipeline binds at compile time are wrapped at
    # *resolution* time, so an unarmed process keeps the raw kernels.

    def _trip_kernel(self) -> None:
        _faults.trip("kernel.raise", KernelFault)
        _faults.trip(f"kernel.{self.name}.raise", KernelFault)

    def _kernel_seams_armed(self) -> bool:
        return _faults.armed("kernel.raise") or \
            _faults.armed(f"kernel.{self.name}.raise")

    def _guarded(self, fn: Optional[Callable]) -> Optional[Callable]:
        if fn is None or not _faults.active() or \
                not self._kernel_seams_armed():
            return fn
        trip = self._trip_kernel

        def kernel(*args):
            trip()
            return fn(*args)
        return kernel

    def apply(
        self,
        operation: str,
        args: Sequence[BigFloat],
        context: Optional[Context] = None,
    ) -> BigFloat:
        """Apply a named operation under this substrate's kernels."""
        if _faults.active():
            self._trip_kernel()
        handler = self._dispatch.get(operation)
        if handler is None:
            raise KeyError(f"unknown operation: {operation!r}")
        return handler(args, context if context is not None else getcontext())

    def handler(self, operation: str) -> Callable:
        """The pre-resolved ``(args, context) -> BigFloat`` callable."""
        handler = self._dispatch.get(operation)
        if handler is None:
            raise KeyError(f"unknown operation: {operation!r}")
        return self._guarded(handler)

    def positional_handler(
        self, operation: str, arity: int
    ) -> Optional[Callable]:
        """The raw positional kernel ``(x[, y[, z]], context) -> BigFloat``,
        or None when this substrate serves ``operation`` through its own
        wrapped dispatch (callers then use :meth:`handler`).

        Only operations whose dispatch entry is still the stock python
        wrapper are resolvable — a substrate override must keep routing
        through the override.  Site-compiled pipelines use this to skip
        one call frame and one argument tuple per executed operation.
        """
        if self._dispatch.get(operation) is not \
                functions._REAL_DISPATCH.get(operation):
            return None
        table = {
            1: functions._UNARY, 2: functions._BINARY, 3: functions._TERNARY,
        }.get(arity)
        if table is None:
            return None
        return self._guarded(table.get(operation))


class PythonBackend(KernelBackend):
    """The reference substrate — the package's own kernels, unchanged."""


# ----------------------------------------------------------------------
# The mpmath provider (libmp fixed-point kernels)
# ----------------------------------------------------------------------

#: Our rounding-mode constants → mpmath's rnd characters.  Nearest-away
#: has no libmp equivalent, so native wrappers fall back to the python
#: kernels for it.
_MPF_RND = {
    ROUND_NEAREST_EVEN: "n",
    ROUND_TOWARD_ZERO: "d",
    ROUND_UP: "c",      # toward +inf
    ROUND_DOWN: "f",    # toward -inf
}

_FLIP_RND = {"c": "f", "f": "c"}


class _MpmathProvider:
    """General-path kernels on mpmath's raw ``(sign, man, exp, bc)`` mpfs.

    Our canonical finite BigFloats (odd mantissa) are exactly libmp's
    normalized form, so conversions are tuple packing, not arithmetic.
    All kernels assume domain-checked finite operands (the shared
    special helpers ran first) and handle exact-cancellation zeros
    themselves.
    """

    name = "mpmath"
    roundings = frozenset(_MPF_RND)

    def __init__(self) -> None:
        import mpmath.libmp as libmp

        self._L = libmp
        L = libmp
        overflow_bits = transcendental._EXP_OVERFLOW_BITS

        def to_mp(b: BigFloat) -> tuple:
            if b.man == 0:
                return L.fzero
            return (b.sign, b.man, b.exp, b.man.bit_length())

        def from_mp(t: tuple) -> BigFloat:
            sign, man, exp, _bc = t
            if man == 0:
                return BigFloat.zero(sign)
            return BigFloat(sign, man, exp)

        def rnd_of(context: Context) -> str:
            return _MPF_RND[context.rounding]

        def k_cbrt(a, context):
            rnd = rnd_of(context)
            if a.sign:
                flipped = _FLIP_RND.get(rnd, rnd)
                root = L.mpf_cbrt(to_mp(a.abs()), context.precision, flipped)
                return from_mp(root).neg()
            return from_mp(L.mpf_cbrt(to_mp(a), context.precision, rnd))

        # -- exponentials / logarithms -------------------------------

        def k_exp(x, context):
            return from_mp(
                L.mpf_exp(to_mp(x), context.precision, rnd_of(context))
            )

        def k_exp2(x, context):
            # 2**x = e**(x ln 2); |x| <= 2**overflow_bits after specials,
            # so prec + overflow_bits + 24 working bits keep the product
            # accurate enough for a faithful exp.
            wp = context.precision + overflow_bits + 24
            product = L.mpf_mul(to_mp(x), L.mpf_ln2(wp), wp, "n")
            return from_mp(
                L.mpf_exp(product, context.precision, rnd_of(context))
            )

        def k_expm1(x, context):
            # e**x computed wide enough to survive the cancellation
            # against 1 (|msb| extra bits), then one rounded subtract.
            msb = x.msb_exponent
            wp = context.precision + max(0, -msb) + 16
            grown = L.mpf_exp(to_mp(x), wp, "n")
            t = L.mpf_sub(grown, L.fone, context.precision, rnd_of(context))
            if t[1] == 0:
                return arith._cancellation_zero(context)
            return from_mp(t)

        def k_log(x, context):
            return from_mp(
                L.mpf_log(to_mp(x), context.precision, rnd_of(context))
            )

        def k_log1p(x, context):
            # 1 + x is exact (x's magnitude is bounded below by the
            # special helper, so the aligned mantissa stays ~2*prec bits).
            t = L.mpf_add(L.fone, to_mp(x), 0, "f")
            return from_mp(L.mpf_log(t, context.precision, rnd_of(context)))

        def k_log2(x, context):
            wp = context.precision + 16
            numerator = L.mpf_log(to_mp(x), wp, "n")
            return from_mp(
                L.mpf_div(numerator, L.mpf_ln2(wp), context.precision,
                          rnd_of(context))
            )

        def k_log10(x, context):
            wp = context.precision + 16
            numerator = L.mpf_log(to_mp(x), wp, "n")
            return from_mp(
                L.mpf_div(numerator, L.mpf_ln10(wp), context.precision,
                          rnd_of(context))
            )

        def k_pow(x, y, context):
            result_sign = (
                1 if (x.sign == 1 and transcendental._pow_is_odd_integer(y))
                else 0
            )
            magnitude = to_mp(x.abs())
            prec = context.precision
            rnd = rnd_of(context)
            if y.is_integer() and y.abs() <= transcendental._POW_INT_LIMIT_BIG:
                result = from_mp(
                    L.mpf_pow_int(magnitude, int(y.to_fraction()), prec, rnd)
                )
            else:
                # exp(y ln x), mirroring the python kernel's overflow
                # clamp so both substrates saturate identically.
                wp = prec + 64
                product = L.mpf_mul(to_mp(y), L.mpf_log(magnitude, wp, "n"),
                                    wp, "n")
                p_sign, p_man, p_exp, p_bc = product
                if p_man == 0:
                    result = ONE
                elif p_exp + p_bc - 1 > overflow_bits:
                    result = (
                        BigFloat.zero(0) if p_sign else BigFloat.inf(0)
                    )
                else:
                    result = from_mp(L.mpf_exp(product, prec, rnd))
            return result.neg() if result_sign else result

        # -- trigonometry --------------------------------------------

        def unary(fn):
            def kernel(x, context):
                return from_mp(
                    fn(to_mp(x), context.precision, rnd_of(context))
                )
            return kernel

        def k_atan2(y, x, context):
            return from_mp(
                L.mpf_atan2(to_mp(y), to_mp(x), context.precision,
                            rnd_of(context))
            )

        def _one_minus_squared(x, wp):
            """sqrt((1-|x|)(1+|x|)) for |x| < 1: factors are exact, so
            there is no cancellation (same trick as the python kernel)."""
            magnitude = to_mp(x.abs())
            one_minus = L.mpf_sub(L.fone, magnitude)   # exact
            one_plus = L.mpf_add(L.fone, magnitude)    # exact
            return L.mpf_sqrt(L.mpf_mul(one_minus, one_plus, wp, "n"),
                              wp, "n")

        def k_asin(x, context):
            # atan(x / sqrt(1 - x^2)); mpf_asin itself loses a large
            # constant factor near |x| = 1, this formulation does not.
            wp = context.precision + 16
            denominator = _one_minus_squared(x, wp)
            ratio = L.mpf_div(to_mp(x), denominator, wp, "n")
            return from_mp(
                L.mpf_atan(ratio, context.precision, rnd_of(context))
            )

        def k_acos(x, context):
            wp = context.precision + 16
            numerator = _one_minus_squared(x, wp)
            return from_mp(
                L.mpf_atan2(numerator, to_mp(x), context.precision,
                            rnd_of(context))
            )

        # The basic arithmetic ops (+, -, *, /, fma) and hypot are
        # deliberately absent: both substrates round them correctly
        # (identical results), and on real shadow operands — mantissas
        # far short of the shadow precision — the python exact-integer
        # kernels win once the wrapper/conversion cost is paid.
        self.kernels: Dict[str, Callable] = {
            "cbrt": k_cbrt,
            "exp": k_exp,
            "exp2": k_exp2,
            "expm1": k_expm1,
            "log": k_log,
            "log1p": k_log1p,
            "log2": k_log2,
            "log10": k_log10,
            "pow": k_pow,
            "sin": unary(L.mpf_sin),
            "cos": unary(L.mpf_cos),
            "tan": unary(L.mpf_tan),
            "asin": k_asin,
            "acos": k_acos,
            "atan": unary(L.mpf_atan),
            "atan2": k_atan2,
            "sinh": unary(L.mpf_sinh),
            "cosh": unary(L.mpf_cosh),
            "tanh": unary(L.mpf_tanh),
            "asinh": unary(L.mpf_asinh),
            "acosh": unary(L.mpf_acosh),
            "atanh": unary(L.mpf_atanh),
        }

    def double_fma(self, a: float, b: float, c: float) -> float:
        """Correctly rounded double fma (same two-step rounding shape
        as the python emulation: exact product+add to 53 bits, then the
        53-bit value converts to a double)."""
        L = self._L
        product = L.mpf_mul(L.from_float(a), L.from_float(b))  # exact
        total = L.mpf_add(product, L.from_float(c), 53, "n")
        return L.to_float(total)


# ----------------------------------------------------------------------
# The gmpy2 provider (MPFR kernels)
# ----------------------------------------------------------------------

class _Gmpy2Provider:
    """General-path kernels on gmpy2's MPFR type.

    This container may not ship gmpy2; the implementation is exercised
    only where it is importable, and :func:`_self_check` validates it
    against the python kernels before it is ever trusted (any failure
    silently falls back to the next provider).
    """

    name = "gmpy2"

    def __init__(self) -> None:  # pragma: no cover - gmpy2 optional
        import gmpy2

        self._g = gmpy2
        self.roundings = frozenset(
            {ROUND_NEAREST_EVEN, ROUND_TOWARD_ZERO, ROUND_UP, ROUND_DOWN}
        )
        self._rnd = {
            ROUND_NEAREST_EVEN: gmpy2.RoundToNearest,
            ROUND_TOWARD_ZERO: gmpy2.RoundToZero,
            ROUND_UP: gmpy2.RoundUp,
            ROUND_DOWN: gmpy2.RoundDown,
        }
        overflow_bits = transcendental._EXP_OVERFLOW_BITS

        def to_g(b: BigFloat):
            if b.man == 0:
                return gmpy2.mpfr(0)
            # The widened emin/emax matter: shadow exponents legally
            # reach ~2^41 (the exp/pow overflow clamp), far past
            # gmpy2's default exponent range — without this the
            # conversion silently saturates to inf/0.
            with gmpy2.context(
                precision=max(2, b.man.bit_length()),
                emin=gmpy2.get_emin_min(),
                emax=gmpy2.get_emax_max(),
            ):
                value = gmpy2.mpfr(b.man if not b.sign else -b.man)
                if b.exp >= 0:
                    return gmpy2.mul_2exp(value, b.exp)
                return gmpy2.div_2exp(value, -b.exp)

        def from_g(v) -> BigFloat:
            if not gmpy2.is_finite(v):
                # A kernel overflowed despite the widened exponent
                # range; surfacing it beats returning a wrong finite
                # value (the self-check and parity suite would only
                # see the symptom).
                raise OverflowError(f"gmpy2 kernel returned {v!r}")
            if v == 0:
                return BigFloat.zero(1 if gmpy2.is_signed(v) else 0)
            man, exp = v.as_mantissa_exp()
            man = int(man)
            sign = 1 if man < 0 else 0
            return BigFloat(sign, abs(man), int(exp))

        def ctx_of(context: Context):
            return gmpy2.context(
                precision=context.precision,
                round=self._rnd[context.rounding],
                emin=gmpy2.get_emin_min(),
                emax=gmpy2.get_emax_max(),
            )

        def wrap1(fn):
            def kernel(x, context):
                with ctx_of(context):
                    return from_g(fn(to_g(x)))
            return kernel

        def wrap2(fn):
            def kernel(a, b, context):
                with ctx_of(context):
                    return from_g(fn(to_g(a), to_g(b)))
            return kernel

        def k_pow(x, y, context):
            result_sign = (
                1 if (x.sign == 1 and transcendental._pow_is_odd_integer(y))
                else 0
            )
            magnitude = x.abs()
            if y.is_integer() and y.abs() <= transcendental._POW_INT_LIMIT_BIG:
                with ctx_of(context):
                    result = from_g(to_g(magnitude) ** int(y.to_fraction()))
            else:
                wide = context.with_precision(context.precision + 64)
                with ctx_of(wide):
                    product = to_g(y) * gmpy2.log(to_g(magnitude))
                exponent = from_g(product)
                if exponent.is_zero():
                    result = ONE
                elif exponent.msb_exponent > overflow_bits:
                    result = (
                        BigFloat.zero(0) if exponent.sign else BigFloat.inf(0)
                    )
                else:
                    with ctx_of(context):
                        result = from_g(gmpy2.exp(product))
            return result.neg() if result_sign else result

        def k_expm1(x, context):
            with ctx_of(context):
                return from_g(gmpy2.expm1(to_g(x)))

        def k_log1p(x, context):
            with ctx_of(context):
                return from_g(gmpy2.log1p(to_g(x)))

        def k_hypot(a, b, context):
            # The squares and their sum carry 8 guard bits (the python
            # kernel computes them exactly) so the final sqrt rounding
            # dominates.
            wide = context.with_precision(context.precision + 8)
            with ctx_of(wide):
                total = gmpy2.fma(to_g(a), to_g(a), to_g(b) * to_g(b))
            with ctx_of(context):
                return from_g(gmpy2.sqrt(total))

        # BigFloat-level basics (+, -, *, /, fma) stay python under
        # every provider (see the mpmath provider's note); gmpy2 still
        # serves the *double-level* fma through double_fma below.
        self.kernels: Dict[str, Callable] = {
            "hypot": k_hypot,
            "cbrt": wrap1(gmpy2.cbrt),
            "exp": wrap1(gmpy2.exp),
            "exp2": wrap1(gmpy2.exp2),
            "expm1": k_expm1,
            "log": wrap1(gmpy2.log),
            "log1p": k_log1p,
            "log2": wrap1(gmpy2.log2),
            "log10": wrap1(gmpy2.log10),
            "pow": k_pow,
            "sin": wrap1(gmpy2.sin),
            "cos": wrap1(gmpy2.cos),
            "tan": wrap1(gmpy2.tan),
            "asin": wrap1(gmpy2.asin),
            "acos": wrap1(gmpy2.acos),
            "atan": wrap1(gmpy2.atan),
            "atan2": wrap2(gmpy2.atan2),
            "sinh": wrap1(gmpy2.sinh),
            "cosh": wrap1(gmpy2.cosh),
            "tanh": wrap1(gmpy2.tanh),
            "asinh": wrap1(gmpy2.asinh),
            "acosh": wrap1(gmpy2.acosh),
            "atanh": wrap1(gmpy2.atanh),
        }

    def double_fma(self, a: float, b: float, c: float
                   ) -> float:  # pragma: no cover - gmpy2 optional
        g = self._g
        with g.context(precision=53):
            return float(g.fma(g.mpfr(a), g.mpfr(b), g.mpfr(c)))


# ----------------------------------------------------------------------
# Special-case routing shared by every native provider
# ----------------------------------------------------------------------

#: op -> the shared special-case helper with the same operand shape.
#: Only operations a provider may override appear here; the basic
#: arithmetic ops never go native (their python kernels are correctly
#: rounded and faster), so they have no routing entry.
_SPECIAL_HELPERS: Dict[str, Callable] = {
    "hypot": arith._hypot_special,
    "cbrt": arith._cbrt_special,
    "exp": transcendental._exp_special,
    "exp2": transcendental._exp2_special,
    "expm1": transcendental._expm1_special,
    "log": transcendental._log_special,
    "log1p": transcendental._log1p_special,
    "log2": transcendental._log2_special,
    "log10": transcendental._log10_special,
    "pow": transcendental._pow_special,
    "sin": transcendental._sin_special,
    "cos": transcendental._cos_special,
    "tan": transcendental._tan_special,
    "asin": transcendental._asin_special,
    "acos": transcendental._acos_special,
    "atan": transcendental._atan_special,
    "atan2": transcendental._atan2_special,
    "sinh": transcendental._sinh_special,
    "cosh": transcendental._cosh_special,
    "tanh": transcendental._tanh_special,
    "asinh": transcendental._asinh_special,
    "acosh": transcendental._acosh_special,
    "atanh": transcendental._atanh_special,
}


def _native_call(special, kernel, fallback, supported_roundings):
    """Route one operation: specials first, kernel on the general path,
    python fallback for rounding modes the provider cannot honour."""

    def call(args: Sequence[BigFloat], context: Context) -> BigFloat:
        if context.rounding not in supported_roundings:
            return fallback(args, context)
        result = special(*args, context)
        if result is not None:
            return result
        return kernel(*args, context)

    return call


class NativeBackend(KernelBackend):
    """The fast substrate: gmpy2, then mpmath, then the python kernels."""

    name = SUBSTRATE_NATIVE

    def __init__(self) -> None:
        super().__init__()
        provider = _load_provider()
        if provider is None:
            # No native library: stay a transparent alias of python.
            self.provider = "python"
            return
        self.provider = provider.name
        for op, kernel in provider.kernels.items():
            special = _SPECIAL_HELPERS[op]
            self._dispatch[op] = _native_call(
                special, kernel, functions._REAL_DISPATCH[op],
                provider.roundings,
            )
        handlers = dict(functions.DOUBLE_HANDLERS)
        handlers["fma"] = _double_fma_guard(provider.double_fma)
        self.double_handlers = handlers


def _double_fma_guard(native_fma: Callable[..., float]) -> Callable[..., float]:
    """⟦fma⟧_F through the native provider, with non-finite and zero
    operands delegated to the python emulation (signed-zero rules)."""
    import math

    python_fma = functions.DOUBLE_HANDLERS["fma"]

    def fma(a: float, b: float, c: float) -> float:
        if (
            math.isfinite(a) and math.isfinite(b) and math.isfinite(c)
            and a != 0.0 and b != 0.0 and c != 0.0
        ):
            return native_fma(a, b, c)
        return python_fma(a, b, c)

    return fma


# ----------------------------------------------------------------------
# Provider loading + self-check
# ----------------------------------------------------------------------

def _check_close(ours: BigFloat, theirs: BigFloat, ulps: int,
                 precision: int) -> bool:
    if ours.kind != K_FINITE or theirs.kind != K_FINITE:
        return ours.key() == theirs.key()
    if ours.is_zero() or theirs.is_zero():
        return ours.key() == theirs.key()
    difference = arith.sub_exact(ours, theirs)
    if difference.is_zero():
        return True
    return difference.msb_exponent <= ours.msb_exponent - precision + ulps


def _load_provider():
    """gmpy2 first, then mpmath; each must pass the self-check."""
    for factory in (_Gmpy2Provider, _MpmathProvider):
        try:
            provider = factory()
            _run_self_check(provider)
        except Exception:
            continue
        return provider
    return None


def _run_self_check(provider) -> None:
    context = Context(precision=200)
    python = functions._REAL_DISPATCH
    exact_ops = {"+", "-", "*", "/", "fma"}
    one_third = arith.div(
        BigFloat.from_int(1), BigFloat.from_int(3), context
    )
    values = [
        BigFloat.from_float(0.7324081429644442),
        BigFloat.from_float(1.819186723437),
        BigFloat.from_float(-0.41778869785),
        BigFloat.from_float(13.75),
        one_third,
    ]
    for op, kernel in provider.kernels.items():
        arity = functions.arity(op)
        operands: Tuple[BigFloat, ...]
        for offset in range(len(values)):
            operands = tuple(
                values[(offset + index) % len(values)]
                for index in range(arity)
            )
            special = _SPECIAL_HELPERS[op](*operands, context)
            if special is not None:
                continue  # not a general-path sample for this op
            theirs = kernel(*operands, context)
            ours = python[op](operands, context)
            tolerance = 0 if op in exact_ops else 2
            if not _check_close(ours, theirs, tolerance, context.precision):
                raise AssertionError(
                    f"substrate self-check failed for {op!r}: "
                    f"{ours!r} vs {theirs!r}"
                )
    # The double-level fma must agree with the python emulation exactly.
    python_fma = functions.DOUBLE_HANDLERS["fma"]
    for triple in [(1.5, 3.25, -4.875), (1e308, 2.0, -1e308),
                   (3.0, 1e-320, 7e-321), (1.1, 2.2, 3.3)]:
        if provider.double_fma(*triple) != python_fma(*triple):
            raise AssertionError("substrate self-check failed for double fma")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_BACKENDS: Dict[str, KernelBackend] = {}


def available_substrates() -> List[str]:
    """Names accepted by ``AnalysisConfig.substrate``."""
    return list(ALL_SUBSTRATES)


def get_backend(name: str) -> KernelBackend:
    """The (process-cached) backend for a substrate name."""
    backend = _BACKENDS.get(name)
    if backend is not None:
        return backend
    if name == SUBSTRATE_PYTHON:
        backend = PythonBackend()
    elif name == SUBSTRATE_NATIVE:
        backend = NativeBackend()
    else:
        raise KeyError(
            f"unknown substrate: {name!r} "
            f"(known: {', '.join(ALL_SUBSTRATES)})"
        )
    _BACKENDS[name] = backend
    return backend


def substrate_provider(name: str) -> str:
    """The engine actually serving a substrate ("python"/"mpmath"/"gmpy2")."""
    return get_backend(name).provider
