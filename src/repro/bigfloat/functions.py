"""Uniform name-based dispatch over all BigFloat operations.

The shadow-real executor, the FPCore evaluator and the mini-Herbie all
apply operations by *name* ("+", "sqrt", "atan2", ...); this module owns
that name → implementation mapping so the three agree exactly on real
semantics.  Names follow FPCore/C99 conventions.
"""

from __future__ import annotations

import math

from typing import Callable, Dict, Optional, Sequence

from repro.bigfloat import arith, transcendental
from repro.bigfloat.bigfloat import BigFloat
from repro.bigfloat.context import Context, getcontext

_UNARY: Dict[str, Callable[[BigFloat, Optional[Context]], BigFloat]] = {
    "neg": lambda x, ctx: x.neg(),
    "fabs": lambda x, ctx: x.abs(),
    "sqrt": arith.sqrt,
    "cbrt": arith.cbrt,
    "exp": transcendental.exp,
    "exp2": transcendental.exp2,
    "expm1": transcendental.expm1,
    "log": transcendental.log,
    "log2": transcendental.log2,
    "log10": transcendental.log10,
    "log1p": transcendental.log1p,
    "sin": transcendental.sin,
    "cos": transcendental.cos,
    "tan": transcendental.tan,
    "asin": transcendental.asin,
    "acos": transcendental.acos,
    "atan": transcendental.atan,
    "sinh": transcendental.sinh,
    "cosh": transcendental.cosh,
    "tanh": transcendental.tanh,
    "asinh": transcendental.asinh,
    "acosh": transcendental.acosh,
    "atanh": transcendental.atanh,
    "trunc": arith.trunc,
    "floor": arith.floor,
    "ceil": arith.ceil,
    "round": arith.round_half_away,
    "nearbyint": arith.round_half_even,
}

_BINARY: Dict[str, Callable[[BigFloat, BigFloat, Optional[Context]], BigFloat]] = {
    "+": arith.add,
    "-": arith.sub,
    "*": arith.mul,
    "/": arith.div,
    "pow": transcendental.pow_,
    "hypot": arith.hypot,
    "atan2": transcendental.atan2,
    "fmin": arith.fmin,
    "fmax": arith.fmax,
    "fmod": arith.fmod,
    "remainder": arith.remainder,
    "fdim": arith.fdim,
    "copysign": lambda a, b, ctx: a.copysign(b),
}

_TERNARY: Dict[str, Callable[..., BigFloat]] = {
    "fma": arith.fma,
}

#: Every operation name the real-number engine understands.
ALL_OPERATIONS = frozenset(_UNARY) | frozenset(_BINARY) | frozenset(_TERNARY)

#: Operations implemented by math *libraries* rather than single hardware
#: instructions — these are what Herbgrind's library wrapping intercepts
#: (paper Section 5.3).  sqrt is hardware on modern ISAs, so excluded.
LIBRARY_OPERATIONS = frozenset(
    {
        "cbrt", "exp", "exp2", "expm1", "log", "log2", "log10", "log1p",
        "sin", "cos", "tan", "asin", "acos", "atan", "sinh", "cosh",
        "tanh", "asinh", "acosh", "atanh", "pow", "hypot", "atan2",
        "fmod", "remainder",
    }
)


def arity(operation: str) -> int:
    """Number of operands of ``operation`` (raises KeyError if unknown)."""
    if operation in _UNARY:
        return 1
    if operation in _BINARY:
        return 2
    if operation in _TERNARY:
        return 3
    raise KeyError(f"unknown operation: {operation!r}")


def _real_unary(fn):
    def call(args, context):
        (x,) = args
        return fn(x, context)
    return call


def _real_binary(fn):
    def call(args, context):
        x, y = args
        return fn(x, y, context)
    return call


def _real_ternary(fn):
    def call(args, context):
        x, y, z = args
        return fn(x, y, z, context)
    return call


#: name -> callable(args, context), resolved once at import time so the
#: per-operation hot path is a single dict lookup.
_REAL_DISPATCH: Dict[str, Callable] = {}
_REAL_DISPATCH.update((n, _real_unary(f)) for n, f in _UNARY.items())
_REAL_DISPATCH.update((n, _real_binary(f)) for n, f in _BINARY.items())
_REAL_DISPATCH.update((n, _real_ternary(f)) for n, f in _TERNARY.items())


def apply(
    operation: str,
    args: Sequence[BigFloat],
    context: Optional[Context] = None,
) -> BigFloat:
    """Apply a named operation to BigFloat operands in the real numbers.

    This is the single entry point the analysis uses for its shadow-real
    execution (paper Figure 4, the ⟦f⟧_R semantics).
    """
    handler = _REAL_DISPATCH.get(operation)
    if handler is None:
        raise KeyError(f"unknown operation: {operation!r}")
    return handler(args, context if context is not None else getcontext())


def apply_double(operation: str, args: Sequence[float]) -> float:
    """Apply a named operation in hardware double precision.

    This is the ⟦f⟧_F semantics: the exact behaviour the client program's
    floats exhibit, routed through Python's libm/IEEE arithmetic.  Used
    both by the machine interpreter and local-error computation.
    """
    handler = DOUBLE_HANDLERS.get(operation)
    if handler is None:
        raise KeyError(f"unknown operation: {operation!r}")
    return handler(*args)


def double_handler(operation: str) -> Callable[..., float]:
    """The positional-argument double implementation of ``operation``.

    Pre-resolving the handler lets hot loops (the threaded-code
    interpreter, local-error measurement) skip the per-call name
    dispatch of :func:`apply_double`; the returned callable has exactly
    ``apply_double``'s semantics for that operation.
    """
    handler = DOUBLE_HANDLERS.get(operation)
    if handler is None:
        raise KeyError(f"unknown operation: {operation!r}")
    return handler


def _double_fmin(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    if a == b == 0.0:
        return a if math.copysign(1.0, a) < math.copysign(1.0, b) else b
    return min(a, b)


def _double_fmax(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    if a == b == 0.0:
        return a if math.copysign(1.0, a) > math.copysign(1.0, b) else b
    return max(a, b)


def _build_double_math() -> Dict[str, Callable[..., float]]:
    def log_with_zero(x: float) -> float:
        if x == 0.0:
            return -math.inf
        return math.log(x)

    def log2_with_zero(x: float) -> float:
        if x == 0.0:
            return -math.inf
        return math.log2(x)

    def log10_with_zero(x: float) -> float:
        if x == 0.0:
            return -math.inf
        return math.log10(x)

    def log1p_with_pole(x: float) -> float:
        if x == -1.0:
            return -math.inf
        return math.log1p(x)

    def atanh_with_pole(x: float) -> float:
        if abs(x) == 1.0:
            return math.copysign(math.inf, x)
        return math.atanh(x)

    def exp2_double(x: float) -> float:
        try:
            return math.exp2(x)  # Python >= 3.11
        except AttributeError:  # pragma: no cover
            return 2.0 ** x

    def cbrt_double(x: float) -> float:
        try:
            return math.cbrt(x)  # Python >= 3.11
        except AttributeError:  # pragma: no cover
            return math.copysign(abs(x) ** (1.0 / 3.0), x)

    def _is_odd_integer(y: float) -> bool:
        # Doubles at or beyond 2^53 are all even integers.
        return (
            math.isfinite(y) and abs(y) < 9007199254740992.0
            and y == int(y) and bool(int(y) & 1)
        )

    def pow_double(x: float, y: float) -> float:
        try:
            return math.pow(x, y)
        except ValueError:
            if x == 0.0:
                # C99 pow(±0, y<0): a divide-by-zero, ±HUGE_VAL — the
                # result carries the base's sign only for odd integer
                # exponents.  Python's math.pow raises instead.
                sign_source = x if _is_odd_integer(y) else 0.0
                return math.copysign(math.inf, sign_source)
            if x < 0 and not math.isnan(y):
                return math.nan
            raise
        except OverflowError:
            # C99 range error: ±HUGE_VAL; negative bases only keep
            # their sign for odd integer exponents (math.pow's generic
            # error wrapper would sign by the base alone).
            negative = x < 0 and _is_odd_integer(y)
            return -math.inf if negative else math.inf

    def round_double(x: float) -> float:
        if math.isnan(x) or math.isinf(x):
            return x
        return float(math.floor(x + 0.5)) if x >= 0 else float(math.ceil(x - 0.5))

    def nearbyint_double(x: float) -> float:
        if math.isnan(x) or math.isinf(x):
            return x
        return float(round(x))  # Python round is half-to-even

    def trunc_double(x: float) -> float:
        if math.isnan(x) or math.isinf(x):
            return x
        return float(math.trunc(x))

    def floor_double(x: float) -> float:
        if math.isnan(x) or math.isinf(x):
            return x
        return float(math.floor(x))

    def ceil_double(x: float) -> float:
        if math.isnan(x) or math.isinf(x):
            return x
        return float(math.ceil(x))

    return {
        "sqrt": math.sqrt,
        "cbrt": cbrt_double,
        "exp": math.exp,
        "exp2": exp2_double,
        "expm1": math.expm1,
        "log": log_with_zero,
        "log2": log2_with_zero,
        "log10": log10_with_zero,
        "log1p": log1p_with_pole,
        "pow": pow_double,
        "hypot": math.hypot,
        "sin": math.sin,
        "cos": math.cos,
        "tan": math.tan,
        "asin": math.asin,
        "acos": math.acos,
        "atan": math.atan,
        "atan2": math.atan2,
        "sinh": math.sinh,
        "cosh": math.cosh,
        "tanh": math.tanh,
        "asinh": math.asinh,
        "acosh": math.acosh,
        "atanh": atanh_with_pole,
        "fmod": math.fmod,
        "remainder": math.remainder,
        "trunc": trunc_double,
        "floor": floor_double,
        "ceil": ceil_double,
        "round": round_double,
        "nearbyint": nearbyint_double,
    }


_DOUBLE_MATH = _build_double_math()


def _double_add(a: float, b: float) -> float:
    return a + b


def _double_sub(a: float, b: float) -> float:
    return a - b


def _double_mul(a: float, b: float) -> float:
    return a * b


def _double_div(a: float, b: float) -> float:
    try:
        return a / b
    except ZeroDivisionError:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)


def _double_neg(a: float) -> float:
    return -a


def _double_fabs(a: float) -> float:
    return abs(a)


def _double_fma(a: float, b: float, c: float) -> float:
    # Python 3.13 has math.fma; emulate exactly with BigFloat otherwise.
    from repro.bigfloat.context import DOUBLE_CONTEXT

    result = arith.fma(
        BigFloat.from_float(a),
        BigFloat.from_float(b),
        BigFloat.from_float(c),
        DOUBLE_CONTEXT,
    )
    return result.to_float()


def _double_copysign(a: float, b: float) -> float:
    return math.copysign(a, b)


def _double_fdim(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    return a - b if a > b else 0.0


def _wrap_math_errors(
    operation: str, handler: Callable[..., float]
) -> Callable[..., float]:
    """libm error semantics: domain error -> NaN, range error -> ±inf."""
    always_positive = operation in ("exp", "exp2", "expm1", "cosh")

    def wrapped(*args: float) -> float:
        try:
            return handler(*args)
        except ValueError:  # math domain error -> NaN, as hardware would
            return math.nan
        except OverflowError:  # math range error -> ±inf
            sign = 1.0
            if not always_positive and args and args[0] < 0:
                sign = -1.0
            return math.copysign(math.inf, sign)

    return wrapped


#: Positional-argument double implementations of every operation, with
#: name dispatch done once at table-build time.  ``apply_double`` and
#: :func:`double_handler` both serve from this table, so the threaded
#: and reference interpreters share one ⟦f⟧_F semantics.
DOUBLE_HANDLERS: Dict[str, Callable[..., float]] = {
    "+": _double_add,
    "-": _double_sub,
    "*": _double_mul,
    "/": _double_div,
    "neg": _double_neg,
    "fabs": _double_fabs,
    "fma": _double_fma,
    "copysign": _double_copysign,
    "fmin": _double_fmin,
    "fmax": _double_fmax,
    "fdim": _double_fdim,
}
DOUBLE_HANDLERS.update(
    (name, _wrap_math_errors(name, handler))
    for name, handler in _DOUBLE_MATH.items()
)
