"""Double-double (compensated two-float) hardware shadow arithmetic.

This module is the hardware tier of the adaptive precision policy: a
:class:`DoubleDouble` value represents the exact real ``hi + lo`` where
both components are binary64 floats and the pair is *normalized*
(``hi == RN(hi + lo)``, so ``|lo| <= ulp(hi) / 2``).  All kernels are
built from the classic error-free transformations — Knuth's TwoSum and
Dekker's TwoProd (split-based; ``math.fma`` is not available on every
supported interpreter) — with the relative error bounds proven in
Joldes, Muller & Popescu, "Tight and rigorous error bounds for basic
building blocks of double-word arithmetic" (ACM TOMS 2017):

===========  =====================================  ==============
operation    algorithm                              relative bound
===========  =====================================  ==============
add / sub    AccurateDWPlusDW (Algorithm 6)         3u^2
mul          DWTimesDW, no-FMA variant              11u^2 [*]_
div          DWDivDW2 (Algorithm 17, no FMA)        15u^2
sqrt         one Newton/Karp step from sqrt(hi)     25/8 u^2
fma          mul then add, compound                 see dd_fma
===========  =====================================  ==============

with ``u = 2**-53``.  Every bound is at most ``16 u^2 = 2**-102``, which
is the single per-op drift constant the policy charges
(:data:`DD_REL_ERR_LOG2`).

Kernels return ``None`` instead of a result whenever any precondition of
the proofs could fail — non-finite inputs or outputs, magnitudes near
the overflow threshold of Dekker's splitting, or nonzero results deep in
the range where relative bounds break down (subnormals).  Callers treat
``None`` as "promote to the BigFloat working tier"; the hardware tier
never guesses.

When a kernel *can* certify that its result is the mathematically exact
value (not merely within bound), it says so: the error-free cases (pure
double addition, in-range pure double products, exact square roots, ...)
keep drift at ``EXACT`` so loop counters and scale factors never force
escalation.  Exactness claims additionally require the result to fit the
full-precision oracle tier (see :func:`fits_precision`): a value the
full tier would have to round may not be claimed exact, or reports could
diverge between tiers.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional, Tuple

from repro.bigfloat.bigfloat import BigFloat

__all__ = [
    "DoubleDouble",
    "DD_REL_ERR_LOG2",
    "two_sum",
    "quick_two_sum",
    "two_prod",
    "dd_add",
    "dd_sub",
    "dd_mul",
    "dd_div",
    "dd_sqrt",
    "dd_fma",
    "dd_neg",
    "dd_abs",
    "DD_KERNELS",
    "fits_precision",
]

#: log2 of the worst-case per-operation relative error of any kernel in
#: this module: 16 u^2 = 2**-102 dominates every proven bound above.
DD_REL_ERR_LOG2 = -102

_SPLITTER = 134217729.0  # 2**27 + 1, Dekker's splitting constant
# Dekker's split computes _SPLITTER * a; keep |a| comfortably below the
# 2**996 threshold where that product overflows.
_SPLIT_MAX = math.ldexp(1.0, 970)
# Below this magnitude a nonzero inexact result is too close to the
# subnormal range for the relative error bounds (and the exactness of
# TwoProd's error term) to hold.
_TINY = math.ldexp(1.0, -960)

_INF = math.inf


# ----------------------------------------------------------------------
# Error-free transformations
# ----------------------------------------------------------------------

def two_sum(a: float, b: float) -> Tuple[float, float]:
    """Knuth's TwoSum: ``s + err == a + b`` exactly, ``s = RN(a + b)``.

    Error-free for every pair of finite doubles whose sum does not
    overflow (subnormals included; no magnitude ordering required).
    """
    s = a + b
    bb = s - a
    err = (a - (s - bb)) + (b - bb)
    return s, err


def quick_two_sum(a: float, b: float) -> Tuple[float, float]:
    """Dekker's FastTwoSum: requires ``|a| >= |b|`` (or ``a == 0``)."""
    s = a + b
    err = b - (s - a)
    return s, err


def two_prod(a: float, b: float) -> Tuple[float, float]:
    """Dekker/Veltkamp TwoProd: ``p + err == a * b`` exactly.

    Error-free provided ``|a|, |b| < 2**970`` (splitting does not
    overflow) and the product stays clear of the subnormal range; the
    op-level kernels below enforce both guards before trusting ``err``.
    """
    p = a * b
    t = _SPLITTER * a
    ah = t - (t - a)
    al = a - ah
    t = _SPLITTER * b
    bh = t - (t - b)
    bl = b - bh
    err = ((ah * bh - p) + ah * bl + al * bh) + al * bl
    return p, err


# ----------------------------------------------------------------------
# Double-word kernels
#
# Each kernel takes component pairs and returns ``(hi, lo, exact)`` —
# a normalized result plus a proven-exactness flag — or ``None`` when a
# precondition fails and the caller must promote to the working tier.
# ----------------------------------------------------------------------

def dd_add(
    xh: float, xl: float, yh: float, yl: float
) -> Optional[Tuple[float, float, bool]]:
    """AccurateDWPlusDW: relative error <= 3u^2, valid under cancellation."""
    # Zero operands first: the renormalization steps below run through
    # hardware additions like (-0.0) + (+0.0) that erase zero signs, so
    # the IEEE sign rules are applied on the raw components instead.
    if xh == 0.0 and xl == 0.0:
        if yh == 0.0:
            return xh + yh, 0.0, True  # hardware applies the sign rule
        return yh, yl, True
    if yh == 0.0 and yl == 0.0:
        return xh, xl, True
    sh, sl = two_sum(xh, yh)
    if sh - sh != 0.0:  # inf or nan: overflow, or nonfinite input
        return None
    th, tl = two_sum(xl, yl)
    c = sl + th
    vh, vl = quick_two_sum(sh, c)
    w = tl + vl
    zh, zl = quick_two_sum(vh, w)
    if zh - zh != 0.0:
        return None
    if xl == 0.0 and yl == 0.0:
        # TwoSum is error-free: (sh, sl) is exactly xh + yh, and the
        # remaining steps only renormalize it.  Exact cancellation comes
        # out +0.0 here, matching the working tier's round-to-nearest
        # cancellation rule.
        return zh, zl, True
    if zh != 0.0 and -_TINY < zh < _TINY:
        # Inexact result in the deep-underflow range: the relative
        # bound no longer holds, so hand the op to the working tier.
        return None
    return zh, zl, False


def dd_sub(
    xh: float, xl: float, yh: float, yl: float
) -> Optional[Tuple[float, float, bool]]:
    """``x - y`` as ``x + (-y)`` (IEEE defines subtraction this way)."""
    return dd_add(xh, xl, -yh, -yl)


def dd_mul(
    xh: float, xl: float, yh: float, yl: float
) -> Optional[Tuple[float, float, bool]]:
    """DWTimesDW without FMA: relative error <= 11u^2 in-range."""
    if not (-_SPLIT_MAX < xh < _SPLIT_MAX and -_SPLIT_MAX < yh < _SPLIT_MAX):
        return None  # nonfinite or too large for Dekker splitting
    ph, pl = two_prod(xh, yh)
    if ph - ph != 0.0:
        return None
    if ph == 0.0:
        if xh != 0.0 and yh != 0.0:
            return None  # nonzero * nonzero underflowed to zero
        # Zero products are exact; keep the hardware's IEEE sign (the
        # renormalization sum would erase a negative zero).
        return ph, 0.0, True
    if xl == 0.0 and yl == 0.0 and not (-_TINY < ph < _TINY):
        # For pure-double operands away from the underflow range
        # TwoProd's error term is exact, so (ph, pl) is exactly xh * yh.
        zh, zl = quick_two_sum(ph, pl)
        return zh, zl, True
    t = xh * yl + xl * yh
    zh, zl = quick_two_sum(ph, pl + t)
    if zh - zh != 0.0:
        return None
    if zh != 0.0 and -_TINY < zh < _TINY:
        return None
    return zh, zl, False


def dd_div(
    xh: float, xl: float, yh: float, yl: float
) -> Optional[Tuple[float, float, bool]]:
    """DWDivDW2 without FMA: relative error <= 15u^2 in-range.

    Division by zero is not handled here — the working tier owns the
    IEEE special-value semantics for that case.
    """
    if yh == 0.0 or yh - yh != 0.0:
        return None
    if xh == 0.0 and xl == 0.0:
        # Zero dividend: exact signed zero straight from the hardware
        # (the correction chain below can flip a negative zero's sign).
        return xh / yh, 0.0, True
    th = xh / yh
    # A zero th here is *underflow* (the zero-dividend case returned
    # above): the true quotient is nonzero, so promote rather than
    # report a zero with a 2^-102 drift charge.
    if th - th != 0.0 or not _TINY < abs(th) < _SPLIT_MAX:
        return None
    if not (_TINY < abs(xh) < _SPLIT_MAX and -_SPLIT_MAX < yh < _SPLIT_MAX):
        # Besides the splitting range, ``xh`` must sit above the
        # underflow guard band: ``two_prod(th, yh)`` reconstructs a
        # product of magnitude ~xh, and when that is deep-subnormal the
        # error term ``pl`` is floor-rounded garbage, silently breaking
        # the Newton correction (observed: plain-division accuracy with
        # a 2^-102 drift charge).
        return None
    ph, pl = two_prod(th, yh)
    if ph - ph != 0.0:
        return None
    dh = xh - ph  # Sterbenz: ph agrees with xh to within a few ulps
    d = (dh - pl) + xl - th * yl
    tl = d / yh
    zh, zl = quick_two_sum(th, tl)
    if zh - zh != 0.0:
        return None
    exact = xl == 0.0 and yl == 0.0 and ph == xh and pl == 0.0 and d == 0.0
    return zh, zl, exact


def dd_sqrt(xh: float, xl: float) -> Optional[Tuple[float, float, bool]]:
    """One Newton/Karp correction of sqrt(hi): error <= (25/8) u^2."""
    if xh == 0.0 and xl == 0.0:
        return xh, 0.0, True  # sqrt(+-0) is +-0, exactly
    if not _TINY < xh < _SPLIT_MAX:
        # Negative, nonfinite, or out of the proven range (a tiny hi
        # yields r*r back in two_prod's underflow danger zone).
        return None
    r = math.sqrt(xh)
    ph, pl = two_prod(r, r)
    e = ((xh - ph) - pl) + xl
    corr = e / (2.0 * r)
    zh, zl = quick_two_sum(r, corr)
    if zh - zh != 0.0:
        return None
    exact = xl == 0.0 and ph == xh and pl == 0.0
    return zh, zl, exact


def dd_fma(
    xh: float, xl: float, yh: float, yl: float, zh: float, zl: float
) -> Optional[Tuple[float, float, bool]]:
    """Fused multiply-add as an exact-product chain.

    The product contributes at most 11u^2 relative to ``x * y`` and the
    final addition 3u^2 relative to the result, so callers charging
    drift must amplify the product term by ``2**(msb(x*y) - msb(result))``
    when the addition cancels — the same amplification the policy
    already applies to fma argument drift.  Exact only when both the
    product and the sum are error-free.
    """
    p = dd_mul(xh, xl, yh, yl)
    if p is None:
        return None
    s = dd_add(p[0], p[1], zh, zl)
    if s is None:
        return None
    return s[0], s[1], p[2] and s[2]


def dd_neg(xh: float, xl: float) -> Tuple[float, float, bool]:
    """Exact negation (component sign flips preserve normalization)."""
    return -xh, -xl, True


def dd_abs(xh: float, xl: float) -> Tuple[float, float, bool]:
    """Exact absolute value."""
    if xh < 0.0 or (xh == 0.0 and math.copysign(1.0, xh) < 0.0):
        return -xh, -xl, True
    return xh, xl, True


#: Binary kernels by operation symbol (unary kernels dispatch directly).
DD_KERNELS = {
    "+": dd_add,
    "-": dd_sub,
    "*": dd_mul,
    "/": dd_div,
}


def fits_precision(hi: float, lo: float, precision: int) -> bool:
    """True when ``hi + lo`` is representable in ``precision`` bits.

    An exactness claim must also fit the full oracle tier: a value the
    oracle would round cannot be byte-identical to the hardware tier's
    exact one.  Conservative span bound: the significand runs from
    ``msb(hi)`` down to at worst ``msb(lo) - 52``.
    """
    if lo == 0.0:
        return precision >= 53
    span = math.frexp(hi)[1] - math.frexp(lo)[1] + 53
    return span <= precision


# ----------------------------------------------------------------------
# The value type
# ----------------------------------------------------------------------

class DoubleDouble:
    """A normalized double-double value: exactly ``hi + lo``.

    Instances are always finite (kernels refuse to construct anything
    else) and immutable by convention.  The class mirrors the slice of
    the :class:`BigFloat` API the analysis touches on shadow values —
    predicates, ``msb_exponent``, ``neg``, comparisons, ``key`` — so
    policy code can hold either representation.
    """

    __slots__ = ("hi", "lo")

    def __init__(self, hi: float, lo: float = 0.0) -> None:
        self.hi = hi
        self.lo = lo

    # -- predicates (kernels guarantee finiteness) ---------------------

    def is_finite(self) -> bool:
        return True

    def is_nan(self) -> bool:
        return False

    def is_inf(self) -> bool:
        return False

    def is_zero(self) -> bool:
        return self.hi == 0.0

    def is_negative(self) -> bool:
        if self.hi == 0.0:
            return math.copysign(1.0, self.hi) < 0.0
        return self.hi < 0.0

    # -- structure -----------------------------------------------------

    @property
    def msb_exponent(self) -> int:
        """floor(log2(|value|)); exact despite rounding in ``hi``.

        ``hi = RN(value)`` can land one binade above the value only when
        it rounded up to an exact power of two, flagged by ``lo < 0``.
        """
        if self.hi == 0.0:
            raise ValueError(f"no msb exponent for {self!r}")
        mantissa, exponent = math.frexp(self.hi)
        if self.lo != 0.0 and abs(mantissa) == 0.5:
            if (self.hi > 0.0) == (self.lo < 0.0):
                return exponent - 2
        return exponent - 1

    def key(self) -> Tuple[str, float, float]:
        """Hashable identity (distinguishes zero signs via repr bits)."""
        return ("dd", self.hi, self.lo)

    def neg(self) -> "DoubleDouble":
        return DoubleDouble(-self.hi, -self.lo)

    def abs(self) -> "DoubleDouble":
        if self.is_negative():
            return DoubleDouble(-self.hi, -self.lo)
        return DoubleDouble(self.hi, self.lo)

    # -- conversions ---------------------------------------------------

    def to_float(self) -> float:
        """RN(value): the normalization invariant makes this ``hi``."""
        return self.hi

    def to_single(self) -> float:
        """Correctly round to binary32 (via the exact promotion; rare)."""
        return self.to_bigfloat().to_single()

    def to_bigfloat(self) -> BigFloat:
        """Exact conversion (both components are exact in binary)."""
        high = BigFloat.from_float(self.hi)
        if self.lo == 0.0:
            return high
        from repro.bigfloat import arith

        return arith.add_exact(high, BigFloat.from_float(self.lo))

    def to_fraction(self) -> Fraction:
        return Fraction(self.hi) + Fraction(self.lo)

    def __repr__(self) -> str:
        return f"DoubleDouble({self.hi!r}, {self.lo!r})"

    # -- comparisons (exact, via the rational value) -------------------
    #
    # Comparisons on shadow values are rare (branch certification goes
    # through the policy's banded path first), so these favour being
    # unconditionally correct over being fast.

    def _as_comparable(self, other: object):
        if type(other) is DoubleDouble:
            return other.to_fraction()
        if isinstance(other, BigFloat):
            if not other.is_finite():
                return None
            return other.to_fraction()
        if isinstance(other, (int, float)):
            if isinstance(other, float) and not math.isfinite(other):
                return None
            return Fraction(other)
        return NotImplemented

    def __eq__(self, other: object) -> bool:
        value = self._as_comparable(other)
        if value is NotImplemented:
            return NotImplemented
        return value is not None and self.to_fraction() == value

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return NotImplemented
        return not result

    def __lt__(self, other: object) -> bool:
        value = self._as_comparable(other)
        if value is NotImplemented:
            return NotImplemented
        if value is None:  # vs inf / nan
            if isinstance(other, BigFloat) and other.is_inf():
                return other.sign == 0
            if isinstance(other, float) and math.isinf(other):
                return other > 0
            return False
        return self.to_fraction() < value

    def __gt__(self, other: object) -> bool:
        value = self._as_comparable(other)
        if value is NotImplemented:
            return NotImplemented
        if value is None:
            if isinstance(other, BigFloat) and other.is_inf():
                return other.sign == 1
            if isinstance(other, float) and math.isinf(other):
                return other < 0
            return False
        return self.to_fraction() > value

    def __le__(self, other: object) -> bool:
        gt = self.__gt__(other)
        if gt is NotImplemented:
            return NotImplemented
        if isinstance(other, float) and math.isnan(other):
            return False
        if isinstance(other, BigFloat) and other.is_nan():
            return False
        return not gt

    def __ge__(self, other: object) -> bool:
        lt = self.__lt__(other)
        if lt is NotImplemented:
            return NotImplemented
        if isinstance(other, float) and math.isnan(other):
            return False
        if isinstance(other, BigFloat) and other.is_nan():
            return False
        return not lt

    # IEEE-style equality is not an equivalence relation across the
    # shadow representations; use .key() for identity-based hashing.
    __hash__ = None  # type: ignore[assignment]


def from_double(value: float) -> DoubleDouble:
    """Wrap a finite double exactly (the common leaf constructor)."""
    return DoubleDouble(value, 0.0)
