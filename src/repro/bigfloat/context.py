"""Precision/rounding contexts for the bigfloat library.

The paper shadows every double with a high-precision value ("1000-bit
mantissa" by default, Section 5.1); :class:`Context` carries that
precision plus the rounding mode.  A module-level default context can be
swapped or temporarily overridden with :func:`local_context`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator

from repro.bigfloat.rounding import ALL_MODES, ROUND_NEAREST_EVEN

#: The paper's default shadow precision (Section 5.1, footnote 10).
DEFAULT_PRECISION = 1000


@dataclass(frozen=True)
class Context:
    """An immutable arithmetic context: precision in bits + rounding mode."""

    precision: int = DEFAULT_PRECISION
    rounding: str = ROUND_NEAREST_EVEN

    def __post_init__(self) -> None:
        if self.precision < 2:
            raise ValueError(f"precision must be >= 2, got {self.precision}")
        if self.rounding not in ALL_MODES:
            raise ValueError(f"unknown rounding mode: {self.rounding!r}")

    def with_precision(self, precision: int) -> "Context":
        """A copy of this context at a different precision."""
        return Context(precision=precision, rounding=self.rounding)

    def with_rounding(self, rounding: str) -> "Context":
        """A copy of this context with a different rounding mode."""
        return Context(precision=self.precision, rounding=rounding)

    def widened(self, extra_bits: int) -> "Context":
        """A copy with ``extra_bits`` guard bits added to the precision."""
        return Context(precision=self.precision + extra_bits, rounding=self.rounding)


#: The binary64 context: rounding any exact result through it models one
#: hardware operation.
DOUBLE_CONTEXT = Context(precision=53)

#: The binary32 context.
SINGLE_CONTEXT = Context(precision=24)

_default_context = Context()


def getcontext() -> Context:
    """The current module-level default context."""
    return _default_context


def setcontext(context: Context) -> None:
    """Replace the module-level default context."""
    global _default_context
    _default_context = context


@contextlib.contextmanager
def local_context(context: Context) -> Iterator[Context]:
    """Temporarily install ``context`` as the default.

    >>> with local_context(Context(precision=200)):
    ...     ...
    """
    global _default_context
    saved = _default_context
    _default_context = context
    try:
        yield context
    finally:
        _default_context = saved
