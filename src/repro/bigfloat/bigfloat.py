"""The :class:`BigFloat` type: arbitrary-precision binary floating point.

A finite ``BigFloat`` represents the exact value
``(-1)**sign * man * 2**exp`` with an unbounded exponent; the special
kinds represent signed infinities and NaN.  Values are immutable and
canonical (nonzero mantissas are odd; zeros have ``man == 0, exp == 0``),
so two equal finite values have identical fields.

Construction is exact; rounding to a :class:`~repro.bigfloat.context.Context`
precision happens in the arithmetic layer (:mod:`repro.bigfloat.arith`)
and when converting to hardware formats (:meth:`BigFloat.to_float`).

This module is the reproduction's substitute for MPFR (paper Section 5.1).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional, Tuple, Union

from repro.bigfloat.rounding import ROUND_NEAREST_EVEN, round_mantissa

K_FINITE = 0
K_INF = 1
K_NAN = 2

_DOUBLE_MANT_BITS = 53
_DOUBLE_EMIN = -1022  # smallest normal exponent (unbiased, of the MSB)
_DOUBLE_EMAX = 1023
_SINGLE_MANT_BITS = 24
_SINGLE_EMIN = -126
_SINGLE_EMAX = 127


class BigFloat:
    """An immutable arbitrary-precision binary floating-point value."""

    __slots__ = ("sign", "man", "exp", "kind")

    sign: int
    man: int
    exp: int
    kind: int

    def __init__(self, sign: int, man: int, exp: int, kind: int = K_FINITE) -> None:
        if kind == K_FINITE:
            if man < 0:
                raise ValueError("mantissa must be non-negative; use sign")
            if man == 0:
                exp = 0
            else:
                # Canonicalize: strip trailing zero bits into the exponent.
                trailing = (man & -man).bit_length() - 1
                if trailing:
                    man >>= trailing
                    exp += trailing
        else:
            man = 0
            exp = 0
        object.__setattr__(self, "sign", 1 if sign else 0)
        object.__setattr__(self, "man", man)
        object.__setattr__(self, "exp", exp)
        object.__setattr__(self, "kind", kind)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BigFloat instances are immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def nan() -> "BigFloat":
        """The (unique, unsigned) NaN value."""
        return _NAN

    @staticmethod
    def inf(sign: int = 0) -> "BigFloat":
        """Positive (sign=0) or negative (sign=1) infinity."""
        return _NEG_INF if sign else _POS_INF

    @staticmethod
    def zero(sign: int = 0) -> "BigFloat":
        """Positive or negative zero."""
        return _NEG_ZERO if sign else _POS_ZERO

    @classmethod
    def from_int(cls, value: int) -> "BigFloat":
        """Exact conversion from a Python integer."""
        if value == 0:
            return _POS_ZERO
        sign = 1 if value < 0 else 0
        return cls(sign, abs(value), 0)

    @classmethod
    def from_float(cls, value: float) -> "BigFloat":
        """Exact conversion from a Python (binary64) float."""
        if math.isnan(value):
            return _NAN
        if math.isinf(value):
            return _NEG_INF if value < 0 else _POS_INF
        if value == 0.0:
            return _NEG_ZERO if math.copysign(1.0, value) < 0 else _POS_ZERO
        mantissa, exponent = math.frexp(value)
        scaled = int(mantissa * (1 << _DOUBLE_MANT_BITS))
        sign = 1 if scaled < 0 else 0
        return cls(sign, abs(scaled), exponent - _DOUBLE_MANT_BITS)

    @classmethod
    def from_fraction(cls, value: Fraction, precision: int,
                      rounding: str = ROUND_NEAREST_EVEN) -> "BigFloat":
        """Convert an exact rational, rounded to ``precision`` bits."""
        if value == 0:
            return _POS_ZERO
        sign = 1 if value < 0 else 0
        numerator = abs(value.numerator)
        denominator = value.denominator
        # Produce precision + 2 quotient bits, then fold the remainder in
        # as a sticky bit so round_mantissa sees the true direction.
        shift = max(
            0, precision + 2 - numerator.bit_length() + denominator.bit_length()
        )
        quotient, remainder = divmod(numerator << shift, denominator)
        exp = -shift
        if remainder:
            quotient = (quotient << 1) | 1
            exp -= 1
        man, exp, __ = round_mantissa(sign, quotient, exp, precision, rounding)
        return cls(sign, man, exp)

    @classmethod
    def exact(cls, value: Union[int, float, "BigFloat"]) -> "BigFloat":
        """Coerce an int/float/BigFloat into a BigFloat without rounding."""
        if isinstance(value, BigFloat):
            return value
        if isinstance(value, bool):
            raise TypeError("cannot convert bool to BigFloat")
        if isinstance(value, int):
            return cls.from_int(value)
        if isinstance(value, float):
            return cls.from_float(value)
        raise TypeError(f"cannot convert {type(value).__name__} to BigFloat")

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def is_nan(self) -> bool:
        return self.kind == K_NAN

    def is_inf(self) -> bool:
        return self.kind == K_INF

    def is_finite(self) -> bool:
        return self.kind == K_FINITE

    def is_zero(self) -> bool:
        return self.kind == K_FINITE and self.man == 0

    def is_negative(self) -> bool:
        """True when the sign bit is set (including -0.0 and -inf)."""
        return self.sign == 1

    def is_integer(self) -> bool:
        """True for finite values with no fractional part."""
        if self.kind != K_FINITE:
            return False
        return self.man == 0 or self.exp >= 0

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def msb_exponent(self) -> int:
        """floor(log2(|self|)) for finite nonzero values."""
        if self.kind != K_FINITE or self.man == 0:
            raise ValueError(f"no msb exponent for {self!r}")
        return self.exp + self.man.bit_length() - 1

    def key(self) -> Tuple[int, int, int, int]:
        """A canonical hashable identity (distinguishes -0.0 from 0.0)."""
        return (self.kind, self.sign, self.man, self.exp)

    def neg(self) -> "BigFloat":
        """The negation (sign flip; negating NaN yields NaN)."""
        if self.kind == K_NAN:
            return _NAN
        return BigFloat(1 - self.sign, self.man, self.exp, self.kind)

    def abs(self) -> "BigFloat":
        """The absolute value (sign cleared)."""
        if self.kind == K_NAN:
            return _NAN
        return BigFloat(0, self.man, self.exp, self.kind)

    def copysign(self, other: "BigFloat") -> "BigFloat":
        """This magnitude with ``other``'s sign bit."""
        if self.kind == K_NAN:
            return _NAN
        return BigFloat(other.sign, self.man, self.exp, self.kind)

    # ------------------------------------------------------------------
    # Comparison (IEEE semantics: NaN unordered, +0 == -0)
    # ------------------------------------------------------------------

    def _compare(self, other: "BigFloat") -> Optional[int]:
        """-1/0/+1 ordering, or None when unordered (NaN involved)."""
        if self.kind == K_NAN or other.kind == K_NAN:
            return None
        if self.is_zero() and other.is_zero():
            return 0
        if self.kind == K_INF or other.kind == K_INF:
            if self.kind == K_INF and other.kind == K_INF:
                return (other.sign > self.sign) - (other.sign < self.sign)
            if self.kind == K_INF:
                return 1 if self.sign == 0 else -1
            return -1 if other.sign == 0 else 1
        if self.is_zero():
            return -1 if other.sign == 0 else 1
        if other.is_zero():
            return 1 if self.sign == 0 else -1
        if self.sign != other.sign:
            return -1 if self.sign else 1
        magnitude = _compare_magnitude(self, other)
        return -magnitude if self.sign else magnitude

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BigFloat):
            return NotImplemented
        return self._compare(other) == 0

    def __ne__(self, other: object) -> bool:
        if not isinstance(other, BigFloat):
            return NotImplemented
        comparison = self._compare(other)
        return comparison is None or comparison != 0

    def __lt__(self, other: "BigFloat") -> bool:
        if not isinstance(other, BigFloat):
            return NotImplemented
        return self._compare(other) == -1

    def __le__(self, other: "BigFloat") -> bool:
        if not isinstance(other, BigFloat):
            return NotImplemented
        comparison = self._compare(other)
        return comparison is not None and comparison <= 0

    def __gt__(self, other: "BigFloat") -> bool:
        if not isinstance(other, BigFloat):
            return NotImplemented
        return self._compare(other) == 1

    def __ge__(self, other: "BigFloat") -> bool:
        if not isinstance(other, BigFloat):
            return NotImplemented
        comparison = self._compare(other)
        return comparison is not None and comparison >= 0

    # IEEE equality is not an equivalence relation (NaN), so BigFloats are
    # deliberately unhashable; use .key() for identity-based hashing.
    __hash__ = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Conversions out
    # ------------------------------------------------------------------

    def to_float(self) -> float:
        """Correctly round to the nearest binary64 value (ties to even).

        Handles overflow to ±inf, gradual underflow through subnormals,
        and total underflow to (signed) zero — without double rounding.
        """
        return self._to_hardware(_DOUBLE_MANT_BITS, _DOUBLE_EMIN, _DOUBLE_EMAX)

    def to_single(self) -> float:
        """Correctly round to the nearest binary32 value (as a double)."""
        return self._to_hardware(_SINGLE_MANT_BITS, _SINGLE_EMIN, _SINGLE_EMAX)

    def _to_hardware(self, mant_bits: int, emin: int, emax: int) -> float:
        if self.kind == K_NAN:
            return math.nan
        if self.kind == K_INF:
            return -math.inf if self.sign else math.inf
        if self.man == 0:
            return -0.0 if self.sign else 0.0
        msb = self.msb_exponent
        # Exponent of the smallest subnormal (its single significant bit):
        # for binary64 this is 2^-1074 = 2^(emin - mant_bits + 1).
        tiny_exp = emin - mant_bits + 1
        if msb >= emin:
            precision = mant_bits
        else:
            # Significant bits available between msb and the subnormal ulp.
            precision = msb - tiny_exp + 1
        if precision < 1:
            # Entirely below half the smallest subnormal => rounds to zero,
            # except exactly-half ties go to even (zero) and above-half
            # rounds up to the smallest subnormal.
            if msb == tiny_exp - 1 and self.man != 1:
                magnitude = math.ldexp(1.0, tiny_exp)
                return -magnitude if self.sign else magnitude
            return -0.0 if self.sign else 0.0
        man, exp, __ = round_mantissa(self.sign, self.man, self.exp, precision)
        if exp + man.bit_length() - 1 > emax:
            return -math.inf if self.sign else math.inf
        try:
            magnitude = math.ldexp(float(man), exp)
        except OverflowError:
            magnitude = math.inf
        return -magnitude if self.sign else magnitude

    def __float__(self) -> float:
        return self.to_float()

    def to_fraction(self) -> Fraction:
        """The exact rational value (finite values only)."""
        if self.kind != K_FINITE:
            raise ValueError(f"{self!r} has no rational value")
        if self.man == 0:
            return Fraction(0)
        value = Fraction(self.man)
        scale = Fraction(2) ** self.exp
        result = value * scale
        return -result if self.sign else result

    def round_to(
        self, precision: int, rounding: str = ROUND_NEAREST_EVEN
    ) -> "BigFloat":
        """This value rounded to ``precision`` significand bits."""
        if self.kind != K_FINITE or self.man == 0:
            return self
        man, exp, __ = round_mantissa(
            self.sign, self.man, self.exp, precision, rounding
        )
        return BigFloat(self.sign, man, exp)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        if self.kind == K_NAN:
            return "BigFloat.nan()"
        if self.kind == K_INF:
            return f"BigFloat.inf({self.sign})"
        if self.man == 0:
            return f"BigFloat.zero({self.sign})"
        approx = self.to_float()
        if math.isinf(approx) or approx == 0.0:
            # Out of double range; show the exact structure instead.
            sign = "-" if self.sign else ""
            return f"BigFloat<{sign}{self.man}*2^{self.exp}>"
        return f"BigFloat({approx!r}, prec={self.man.bit_length()})"

    def __str__(self) -> str:
        if self.kind == K_NAN:
            return "nan"
        if self.kind == K_INF:
            return "-inf" if self.sign else "inf"
        return repr(self.to_float())

    # ------------------------------------------------------------------
    # Operator sugar (uses the module-default context; see arith.py)
    # ------------------------------------------------------------------

    def __add__(self, other: "BigFloat") -> "BigFloat":
        from repro.bigfloat import arith

        return arith.add(self, _coerce(other))

    def __sub__(self, other: "BigFloat") -> "BigFloat":
        from repro.bigfloat import arith

        return arith.sub(self, _coerce(other))

    def __mul__(self, other: "BigFloat") -> "BigFloat":
        from repro.bigfloat import arith

        return arith.mul(self, _coerce(other))

    def __truediv__(self, other: "BigFloat") -> "BigFloat":
        from repro.bigfloat import arith

        return arith.div(self, _coerce(other))

    def __neg__(self) -> "BigFloat":
        return self.neg()

    def __abs__(self) -> "BigFloat":
        return self.abs()


def _coerce(value: Union[int, float, BigFloat]) -> BigFloat:
    if isinstance(value, BigFloat):
        return value
    return BigFloat.exact(value)


def _compare_magnitude(a: BigFloat, b: BigFloat) -> int:
    """-1/0/+1 comparison of |a| vs |b| for finite nonzero values."""
    msb_a = a.exp + a.man.bit_length()
    msb_b = b.exp + b.man.bit_length()
    if msb_a != msb_b:
        return -1 if msb_a < msb_b else 1
    # Same binade: align mantissas exactly and compare integers.
    exp_delta = a.exp - b.exp
    if exp_delta >= 0:
        left = a.man << exp_delta
        right = b.man
    else:
        left = a.man
        right = b.man << -exp_delta
    return (left > right) - (left < right)


_NAN = BigFloat(0, 0, 0, K_NAN)
_POS_INF = BigFloat(0, 0, 0, K_INF)
_NEG_INF = BigFloat(1, 0, 0, K_INF)
_POS_ZERO = BigFloat(0, 0, 0, K_FINITE)
_NEG_ZERO = BigFloat(1, 0, 0, K_FINITE)

#: Exact BigFloat constants reused across the package.
ONE = BigFloat(0, 1, 0)
TWO = BigFloat(0, 1, 1)
HALF = BigFloat(0, 1, -1)
