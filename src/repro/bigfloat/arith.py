"""Correctly rounded basic arithmetic on :class:`BigFloat` values.

Every function takes an optional :class:`Context`; when omitted the
module-default context is used.  All operations follow IEEE-754 special
value semantics (signed zeros, infinities, NaN propagation) so that
shadow-real execution hits the same singularities the hardware does —
this is what lets the Gram-Schmidt case study surface its NaN.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.bigfloat.bigfloat import (
    BigFloat,
    K_FINITE,
    K_INF,
    K_NAN,
    _compare_magnitude,
)
from repro.bigfloat.context import Context, getcontext
from repro.bigfloat.rounding import (
    ROUND_DOWN,
    ROUND_NEAREST_EVEN,
    fold_sticky,
    round_mantissa,
)

#: Largest exponent-alignment shift we materialize before switching to
#: sticky-bit approximation (values further apart than this cannot
#: interact above the rounding precision anyway).
_MAX_ALIGN_SLACK = 8


def _ctx(context: Optional[Context]) -> Context:
    return context if context is not None else getcontext()


def _round(sign: int, man: int, exp: int, context: Context) -> BigFloat:
    if man == 0:
        return BigFloat.zero(sign)
    man, exp, __ = round_mantissa(sign, man, exp, context.precision, context.rounding)
    return BigFloat(sign, man, exp)


# ----------------------------------------------------------------------
# Addition / subtraction
# ----------------------------------------------------------------------

def _add_special(a: BigFloat, b: BigFloat,
                 context: Context) -> Optional[BigFloat]:
    """IEEE special/zero-operand cases of a + b (None = general path).

    Shared with the native substrate (:mod:`repro.bigfloat.backend`) so
    every backend agrees bit-for-bit on signed-zero semantics."""
    if a.kind == K_NAN or b.kind == K_NAN:
        return BigFloat.nan()
    if a.kind == K_INF or b.kind == K_INF:
        if a.kind == K_INF and b.kind == K_INF:
            if a.sign != b.sign:
                return BigFloat.nan()
            return a
        return a if a.kind == K_INF else b
    if a.man == 0 and b.man == 0:
        if a.sign == b.sign:
            return BigFloat.zero(a.sign)
        # +0 + -0 is +0 except when rounding toward -inf.
        return _cancellation_zero(context)
    if a.man == 0:
        return _round(b.sign, b.man, b.exp, context)
    if b.man == 0:
        return _round(a.sign, a.man, a.exp, context)
    return None


def _cancellation_zero(context: Context) -> BigFloat:
    """Exact cancellation: +0, or -0 when rounding toward -inf."""
    return BigFloat.zero(1 if context.rounding == ROUND_DOWN else 0)


def add(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Correctly rounded a + b."""
    context = _ctx(context)
    special = _add_special(a, b, context)
    if special is not None:
        return special
    sign, man, exp = _add_magnitudes(
        a.sign, a.man, a.exp, b.sign, b.man, b.exp, context
    )
    if man == 0:
        return _cancellation_zero(context)
    return _round(sign, man, exp, context)


def sub(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Correctly rounded a - b."""
    return add(a, b.neg(), context)


def add_exact(a: BigFloat, b: BigFloat) -> BigFloat:
    """Exact (unrounded) sum of two finite values.

    Used where cancellation must be captured perfectly, e.g. computing
    x - 1 before a log1p expansion.  The caller is responsible for the
    operands' binades being close enough that exact alignment is cheap.
    """
    if a.kind != K_FINITE or b.kind != K_FINITE:
        raise ValueError("add_exact requires finite operands")
    if a.man == 0:
        return b if b.man else BigFloat.zero(a.sign & b.sign)
    if b.man == 0:
        return a
    exp = min(a.exp, b.exp)
    value_a = a.man << (a.exp - exp)
    value_b = b.man << (b.exp - exp)
    total = (-value_a if a.sign else value_a) + (-value_b if b.sign else value_b)
    if total == 0:
        return BigFloat.zero(0)
    return BigFloat(1 if total < 0 else 0, abs(total), exp)


def sub_exact(a: BigFloat, b: BigFloat) -> BigFloat:
    """Exact (unrounded) difference of two finite values."""
    return add_exact(a, b.neg())


def _add_magnitudes(
    sign_a: int, man_a: int, exp_a: int, sign_b: int, man_b: int, exp_b: int,
    context: Context,
) -> Tuple[int, int, int]:
    """Signed exact sum of two nonzero finite values.

    When the operands' binades are too far apart to interact within the
    rounding precision, the smaller operand collapses to a sticky bit —
    the classic far-path optimization, which also keeps alignment shifts
    bounded for wildly different exponents.
    """
    msb_a = exp_a + man_a.bit_length()
    msb_b = exp_b + man_b.bit_length()
    if msb_a < msb_b or (msb_a == msb_b and exp_a > exp_b):
        sign_a, man_a, exp_a, sign_b, man_b, exp_b = (
            sign_b, man_b, exp_b, sign_a, man_a, exp_a,
        )
        msb_a, msb_b = msb_b, msb_a
    gap = msb_a - msb_b
    if gap > context.precision + _MAX_ALIGN_SLACK:
        # Far path: b only matters as a direction hint strictly below the
        # rounding precision, so pad a out and fold b into one sticky bit.
        pad = context.precision + 4
        shifted = man_a << pad
        exp = exp_a - pad
        if sign_a == sign_b:
            return sign_a, shifted | 1, exp
        # |a| dominates, so the sign stays a's; nudge strictly toward zero.
        return sign_a, shifted - 1, exp
    # Near path: align exactly (shift bounded by gap + mantissa widths).
    exp = min(exp_a, exp_b)
    value_a = man_a << (exp_a - exp)
    value_b = man_b << (exp_b - exp)
    total = (-value_a if sign_a else value_a) + (-value_b if sign_b else value_b)
    if total == 0:
        return 0, 0, 0
    return (1, -total, exp) if total < 0 else (0, total, exp)


# ----------------------------------------------------------------------
# Multiplication / division / fma
# ----------------------------------------------------------------------

def _mul_special(a: BigFloat, b: BigFloat,
                 context: Context) -> Optional[BigFloat]:
    """IEEE special/zero-operand cases of a * b (None = general path)."""
    if a.kind == K_NAN or b.kind == K_NAN:
        return BigFloat.nan()
    sign = a.sign ^ b.sign
    if a.kind == K_INF or b.kind == K_INF:
        if a.is_zero() or b.is_zero():
            return BigFloat.nan()
        return BigFloat.inf(sign)
    if a.man == 0 or b.man == 0:
        return BigFloat.zero(sign)
    return None


def mul(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Correctly rounded a * b."""
    context = _ctx(context)
    special = _mul_special(a, b, context)
    if special is not None:
        return special
    return _round(a.sign ^ b.sign, a.man * b.man, a.exp + b.exp, context)


def _div_special(a: BigFloat, b: BigFloat,
                 context: Context) -> Optional[BigFloat]:
    """IEEE special/zero-operand cases of a / b (None = general path)."""
    if a.kind == K_NAN or b.kind == K_NAN:
        return BigFloat.nan()
    sign = a.sign ^ b.sign
    if a.kind == K_INF:
        if b.kind == K_INF:
            return BigFloat.nan()
        return BigFloat.inf(sign)
    if b.kind == K_INF:
        return BigFloat.zero(sign)
    if b.man == 0:
        if a.man == 0:
            return BigFloat.nan()
        return BigFloat.inf(sign)
    if a.man == 0:
        return BigFloat.zero(sign)
    return None


def div(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Correctly rounded a / b with IEEE zero/infinity semantics."""
    context = _ctx(context)
    special = _div_special(a, b, context)
    if special is not None:
        return special
    sign = a.sign ^ b.sign
    # Produce precision + 3 quotient bits then fold the remainder.
    shift = max(0, context.precision + 3 - a.man.bit_length() + b.man.bit_length())
    quotient, remainder = divmod(a.man << shift, b.man)
    exp = a.exp - b.exp - shift
    quotient, exp = fold_sticky(quotient, exp, remainder != 0)
    return _round(sign, quotient, exp, context)


def _fma_special(a: BigFloat, b: BigFloat, c: BigFloat,
                 context: Context) -> Optional[BigFloat]:
    """Special cases of fma — anything but a finite nonzero product."""
    if a.kind == K_NAN or b.kind == K_NAN or c.kind == K_NAN:
        return BigFloat.nan()
    if a.kind == K_INF or b.kind == K_INF or c.kind == K_INF:
        product = mul(a, b, context.widened(4))
        return add(product, c, context)
    if a.man == 0 or b.man == 0:
        return add(mul(a, b, context), c, context)
    return None


def fma(a: BigFloat, b: BigFloat, c: BigFloat,
        context: Optional[Context] = None) -> BigFloat:
    """Fused multiply-add: a*b + c with a single rounding."""
    context = _ctx(context)
    special = _fma_special(a, b, c, context)
    if special is not None:
        return special
    # Finite nonzero product: it is exact as integers, so add once.
    product_sign = a.sign ^ b.sign
    product_man = a.man * b.man
    product_exp = a.exp + b.exp
    if c.man == 0:
        result = _round(product_sign, product_man, product_exp, context)
        if result.is_zero():
            return BigFloat.zero(product_sign)
        return result
    sign, man, exp = _add_magnitudes(
        product_sign, product_man, product_exp, c.sign, c.man, c.exp, context
    )
    if man == 0:
        return BigFloat.zero(1 if context.rounding == ROUND_DOWN else 0)
    return _round(sign, man, exp, context)


# ----------------------------------------------------------------------
# Roots
# ----------------------------------------------------------------------

def sqrt(a: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Correctly rounded square root; sqrt(-0) = -0, sqrt(x<0) = NaN."""
    context = _ctx(context)
    if a.kind == K_NAN:
        return BigFloat.nan()
    if a.is_zero():
        return a
    if a.sign == 1:
        return BigFloat.nan()
    if a.kind == K_INF:
        return BigFloat.inf(0)
    man, exp = a.man, a.exp
    if exp & 1:
        man <<= 1
        exp -= 1
    # Scale so the integer root carries precision + 3 bits.
    target_bits = 2 * (context.precision + 3)
    scale = max(0, target_bits - man.bit_length())
    scale += scale & 1
    scaled = man << scale
    root = math.isqrt(scaled)
    inexact = root * root != scaled
    result_exp = (exp - scale) // 2
    root, result_exp = fold_sticky(root, result_exp, inexact)
    return _round(0, root, result_exp, context)


def _cbrt_special(a: BigFloat, context: Context) -> Optional[BigFloat]:
    if a.kind == K_NAN:
        return BigFloat.nan()
    if a.is_zero():
        return a
    if a.kind == K_INF:
        return a
    return None


def cbrt(a: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Correctly rounded cube root (defined for negative inputs)."""
    context = _ctx(context)
    special = _cbrt_special(a, context)
    if special is not None:
        return special
    man, exp = a.man, a.exp
    # Align the exponent to a multiple of 3 (shift the mantissa up by
    # exp mod 3 so the final exponent division by 3 is exact).
    shift = exp % 3
    man <<= shift
    exp -= shift
    target_bits = 3 * (context.precision + 3)
    scale = max(0, target_bits - man.bit_length())
    scale += (-scale) % 3
    scaled = man << scale
    root = _integer_cube_root(scaled)
    inexact = root ** 3 != scaled
    result_exp = (exp - scale) // 3
    root, result_exp = fold_sticky(root, result_exp, inexact)
    return _round(a.sign, root, result_exp, context)


def _integer_cube_root(n: int) -> int:
    """floor(n ** (1/3)) for non-negative integers, by Newton iteration."""
    if n < 0:
        raise ValueError("negative operand")
    if n == 0:
        return 0
    guess = 1 << -(-n.bit_length() // 3)
    while True:
        better = (2 * guess + n // (guess * guess)) // 3
        if better >= guess:
            break
        guess = better
    while guess ** 3 > n:
        guess -= 1
    while (guess + 1) ** 3 <= n:
        guess += 1
    return guess


def _hypot_special(a: BigFloat, b: BigFloat,
                   context: Context) -> Optional[BigFloat]:
    if a.kind == K_NAN or b.kind == K_NAN:
        if a.kind == K_INF or b.kind == K_INF:
            return BigFloat.inf(0)  # C99: hypot(inf, nan) = inf
        return BigFloat.nan()
    if a.kind == K_INF or b.kind == K_INF:
        return BigFloat.inf(0)
    return None


def hypot(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """sqrt(a*a + b*b) with one rounding (squares and sum are exact)."""
    context = _ctx(context)
    special = _hypot_special(a, b, context)
    if special is not None:
        return special
    wide = context.widened(8)
    squares = add(mul(a, a, wide), mul(b, b, wide), wide)
    return sqrt(squares, context)


# ----------------------------------------------------------------------
# Sign-structured operations
# ----------------------------------------------------------------------

def fmin(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """C99 fmin: NaN is ignored when the other operand is a number."""
    if a.kind == K_NAN:
        return b
    if b.kind == K_NAN:
        return a
    if a.is_zero() and b.is_zero():
        return a if a.sign >= b.sign else b
    return a if a <= b else b


def fmax(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """C99 fmax: NaN is ignored when the other operand is a number."""
    if a.kind == K_NAN:
        return b
    if b.kind == K_NAN:
        return a
    if a.is_zero() and b.is_zero():
        return a if a.sign <= b.sign else b
    return a if a >= b else b


def fdim(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """C99 fdim: a - b when a > b, else +0 (NaN propagates)."""
    context = _ctx(context)
    if a.kind == K_NAN or b.kind == K_NAN:
        return BigFloat.nan()
    if a > b:
        return sub(a, b, context)
    return BigFloat.zero(0)


# ----------------------------------------------------------------------
# Integer rounding
# ----------------------------------------------------------------------

def _to_integer_parts(a: BigFloat) -> Tuple[int, int]:
    """(integer part toward zero, nonzero-fraction flag) of finite a."""
    if a.exp >= 0:
        return a.man << a.exp, 0
    integral = a.man >> -a.exp
    fraction = a.man - (integral << -a.exp)
    return integral, 1 if fraction else 0


def trunc(a: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Round toward zero to an integer."""
    if a.kind != K_FINITE or a.man == 0:
        return a
    integral, __ = _to_integer_parts(a)
    if integral == 0:
        return BigFloat.zero(a.sign)
    return BigFloat(a.sign, integral, 0)


def floor(a: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Round toward -infinity to an integer."""
    if a.kind != K_FINITE or a.man == 0:
        return a
    integral, has_fraction = _to_integer_parts(a)
    if a.sign and has_fraction:
        integral += 1
    if integral == 0:
        return BigFloat.zero(a.sign)
    return BigFloat(a.sign, integral, 0)


def ceil(a: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Round toward +infinity to an integer."""
    if a.kind != K_FINITE or a.man == 0:
        return a
    integral, has_fraction = _to_integer_parts(a)
    if not a.sign and has_fraction:
        integral += 1
    if integral == 0:
        return BigFloat.zero(a.sign)
    return BigFloat(a.sign, integral, 0)


def round_half_even(a: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Round to the nearest integer, ties to even (C99 nearbyint/rint)."""
    if a.kind != K_FINITE or a.man == 0:
        return a
    if a.exp >= 0:
        return a
    shift = -a.exp
    integral = a.man >> shift
    remainder = a.man - (integral << shift)
    half = 1 << (shift - 1)
    if remainder > half or (remainder == half and integral & 1):
        integral += 1
    if integral == 0:
        return BigFloat.zero(a.sign)
    return BigFloat(a.sign, integral, 0)


def round_half_away(a: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """Round to the nearest integer, ties away from zero (C99 round)."""
    if a.kind != K_FINITE or a.man == 0:
        return a
    if a.exp >= 0:
        return a
    shift = -a.exp
    integral = a.man >> shift
    remainder = a.man - (integral << shift)
    half = 1 << (shift - 1)
    if remainder >= half:
        integral += 1
    if integral == 0:
        return BigFloat.zero(a.sign)
    return BigFloat(a.sign, integral, 0)


# ----------------------------------------------------------------------
# Remainders
# ----------------------------------------------------------------------

#: Refuse fmod/remainder when aligning the operands would materialize
#: more than this many bits (would indicate a pathological program).
_MAX_REMAINDER_SHIFT = 1 << 24


def fmod(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """C99 fmod: exact remainder with the sign of ``a``."""
    if a.kind == K_NAN or b.kind == K_NAN:
        return BigFloat.nan()
    if a.kind == K_INF or b.is_zero():
        return BigFloat.nan()
    if b.kind == K_INF or a.is_zero():
        return a
    remainder_man, exp = _aligned_remainder(a, b)
    if remainder_man == 0:
        return BigFloat.zero(a.sign)
    return BigFloat(a.sign, remainder_man, exp)


def remainder(a: BigFloat, b: BigFloat, context: Optional[Context] = None) -> BigFloat:
    """IEEE remainder: a - round_to_nearest(a/b) * b (exact)."""
    if a.kind == K_NAN or b.kind == K_NAN:
        return BigFloat.nan()
    if a.kind == K_INF or b.is_zero():
        return BigFloat.nan()
    if b.kind == K_INF or a.is_zero():
        return a
    remainder_man, exp = _aligned_remainder(a, b)
    # Fold into [-|b|/2, |b|/2] with ties toward the even quotient.
    man_b = b.man << (b.exp - exp)
    result = remainder_man
    quotient_odd = _remainder_quotient_parity(a, b, exp)
    double_result = 2 * result
    if double_result > man_b or (double_result == man_b and quotient_odd):
        result = result - man_b
    if result == 0:
        return BigFloat.zero(a.sign)
    sign = a.sign if result > 0 else 1 - a.sign
    return BigFloat(sign, abs(result), exp)


def _aligned_remainder(a: BigFloat, b: BigFloat) -> Tuple[int, int]:
    """(|a| mod |b|) as an integer at the common exponent."""
    exp = min(a.exp, b.exp)
    shift_a = a.exp - exp
    shift_b = b.exp - exp
    if max(shift_a, shift_b) > _MAX_REMAINDER_SHIFT:
        raise OverflowError("fmod operands too far apart to align exactly")
    man_a = a.man << shift_a
    man_b = b.man << shift_b
    return man_a % man_b, exp


def _remainder_quotient_parity(a: BigFloat, b: BigFloat, exp: int) -> bool:
    man_a = a.man << (a.exp - exp)
    man_b = b.man << (b.exp - exp)
    return bool((man_a // man_b) & 1)
