"""High-precision mathematical constants, computed from scratch.

π comes from Machin's formula (16·atan(1/5) − 4·atan(1/239)); ln 2 from
the fast artanh series 2·atanh(1/3).  Results are cached per working
precision since the transcendental kernels request the same precisions
repeatedly during shadow execution.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bigfloat.bigfloat import BigFloat
from repro.bigfloat.context import Context
from repro.bigfloat.fixedpoint import from_fixed, tdiv

_GUARD = 16


def _atan_reciprocal_fixed(k: int, wp: int) -> int:
    """atan(1/k) * 2^wp for integer k >= 2, by the Gregory series."""
    power = (1 << wp) // k
    total = power
    k_squared = k * k
    n = 3
    sign = -1
    while power:
        power //= k_squared
        total += sign * tdiv(power, n)
        sign = -sign
        n += 2
    return total


@lru_cache(maxsize=64)
def pi_fixed(wp: int) -> int:
    """π * 2^wp, via Machin: π = 16 atan(1/5) − 4 atan(1/239)."""
    inner = wp + _GUARD
    value = 16 * _atan_reciprocal_fixed(5, inner)
    value -= 4 * _atan_reciprocal_fixed(239, inner)
    return value >> _GUARD


@lru_cache(maxsize=64)
def ln2_fixed(wp: int) -> int:
    """ln(2) * 2^wp, via ln 2 = 2 atanh(1/3) = 2 Σ (1/3)^(2i+1)/(2i+1)."""
    inner = wp + _GUARD
    power = (1 << inner) // 3
    total = power
    n = 3
    while power:
        power //= 9
        total += tdiv(power, n)
        n += 2
    return (total << 1) >> _GUARD


def pi(context: Context) -> BigFloat:
    """π rounded to the context precision."""
    wp = context.precision + _GUARD
    return from_fixed(pi_fixed(wp), wp).round_to(context.precision, context.rounding)


def pi_over_2(context: Context) -> BigFloat:
    """π/2 rounded to the context precision."""
    wp = context.precision + _GUARD
    half_pi = from_fixed(pi_fixed(wp), wp + 1)
    return half_pi.round_to(context.precision, context.rounding)


def ln2(context: Context) -> BigFloat:
    """ln 2 rounded to the context precision."""
    wp = context.precision + _GUARD
    return from_fixed(ln2_fixed(wp), wp).round_to(context.precision, context.rounding)


@lru_cache(maxsize=64)
def e_fixed(wp: int) -> int:
    """e * 2^wp, via e = (e^(1/2))^2 (the square root keeps the series
    argument within exp_series' range).  Cached per working precision
    like :func:`pi_fixed`/:func:`ln2_fixed` — euler_e used to redo the
    series on every call.

    exp_series' 16 halving/squaring rounds amplify its truncation
    error to ~2^22 ulps, so the series runs 40 guard bits wide (the
    old in-line computation ran at ``wp`` directly and was ~6 bits
    short of its advertised precision)."""
    from repro.bigfloat.fixedpoint import exp_series

    inner = wp + 40
    root = exp_series(1 << (inner - 1), inner)
    return (root * root) >> (inner + 40)


def euler_e(context: Context) -> BigFloat:
    """Euler's number e rounded to the context precision."""
    wp = context.precision + _GUARD
    return from_fixed(e_fixed(wp), wp).round_to(context.precision, context.rounding)
