"""Tiered precision policies for the shadow-real execution.

The paper runs every shadow operation at a fixed 1000-bit precision
(Section 5.1, footnote 10).  Most operations do not need anywhere near
that much to decide the questions the analysis actually asks — whether
a value's correctly rounded double changes, whether a real-valued
branch diverges, whether a compensating addition returned its argument
— so a :class:`PrecisionPolicy` lets the analysis run at a cheap
*working* tier and escalate to the *full* tier only when a decision is
precision-sensitive.

Two policies ship:

* :class:`FixedPrecisionPolicy` (``"fixed"``) — the paper's behaviour:
  one tier, no escalation, no bookkeeping.
* :class:`AdaptivePrecisionPolicy` (``"adaptive"``) — shadow values are
  computed at ``working_precision`` (144 bits by default) and carry a
  *drift* bound: the accumulated error in ulps of the working tier,
  maintained by running error analysis (rounding adds one ulp;
  cancellation and ill-conditioned operations amplify by their
  condition exponent).  A decision escalates when its outcome could
  change within the drift band plus ``guard_bits`` of slack:

  - **rounding** (:meth:`rounding_unsafe`) — the value lies within the
    guarded band of a round-to-double tie, so ``to_float`` of the
    working value cannot be certified;
  - **comparison** (:meth:`comparison_unsafe`) — two reals are equal or
    closer than their combined guarded bands, so predicate and
    compensation-equality decisions could flip;
  - **integer boundary** (:meth:`integer_unsafe`) — the value lies
    within the guarded band of an integer, so truncation could flip.

  Catastrophic cancellation does not get a separate trigger: it enters
  the drift bound directly (the ``msb(arg) - msb(result)`` term of
  :meth:`propagate`), widening the band until the checks above fire.
  Likewise the "local error near the threshold Tℓ" trigger is subsumed:
  local error is computed from escalation-checked doubles, so the
  threshold comparison is already exact.

Escalation itself — recomputing a value exactly at the full tier — is
the analysis layer's job (:class:`repro.core.shadow.ShadowEscalator`
re-executes the concrete trace); the policy only decides *when*.

The policy also carries a context *stack*: the working context is the
base entry, and the escalator pushes the full context while it
re-executes (:meth:`escalated`), so any operation run during
escalation sees the full tier without threading contexts through every
call.
"""

from __future__ import annotations

import contextlib
import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.bigfloat import arith
from repro.bigfloat.bigfloat import BigFloat, K_FINITE as _K_FINITE
from repro.bigfloat.context import Context
from repro.bigfloat.doubledouble import (
    DD_REL_ERR_LOG2,
    DoubleDouble,
    dd_sub,
    fits_precision,
)
from repro.bigfloat.rounding import ROUND_NEAREST_EVEN

#: Drift of a value that is exactly representable at the working tier
#: (program inputs, constants, results of provably exact operations).
#: Drift is measured linearly, in ulps of the working tier, so running
#: error analysis is pure float adds/ldexps on the hot path.
EXACT = 0.0

#: Drift of a value the working tier cannot bound at all (a zero or
#: special value produced from inexact operands, runaway accumulation).
#: Every decision that touches an UNTRUSTED value escalates.
UNTRUSTED = math.inf

#: Operations whose relative condition number is bounded by a small
#: constant (|κ| ≲ 2): one extra bit of amplification covers them.
_WELL_CONDITIONED = frozenset(
    {"*", "/", "sqrt", "cbrt", "hypot", "atan", "atan2", "asinh", "tanh",
     "log1p"}
)

#: exp-family: relative condition number is |x| (|x·ln 2| for exp2).
_EXP_FAMILY = frozenset({"exp", "exp2", "expm1", "sinh", "cosh"})

#: Periodic functions: condition blows up near the zeros/poles, which
#: the msb(arg) - msb(result) cancellation term captures (plus the
#: |result| term for tan near its poles).
_TRIG_FAMILY = frozenset({"sin", "cos", "tan"})

#: log-family: condition is 1/|ln x|, large only when the result is
#: small (x near 1), captured by -msb(result).
_LOG_FAMILY = frozenset({"log", "log2", "log10"})

#: Functions with an algebraic singularity at |x| = 1: condition grows
#: like a power of 1/(1 - |x|).
_UNIT_SINGULAR = frozenset({"asin", "acos", "atanh"})


class PrecisionPolicy:
    """Fixed-tier base policy: one precision, nothing ever escalates.

    Subclasses override the three ``*_unsafe`` checks and
    :meth:`propagate` to implement adaptive tiers.  The base class is
    deliberately a complete, working policy — it is the paper's fixed
    1000-bit behaviour and the default.
    """

    name = "fixed"

    #: Whether this policy ever requests escalation (lets the shadow
    #: escalator skip all bookkeeping for fixed runs).
    escalates = False

    def __init__(self, full_precision: int,
                 rounding: str = ROUND_NEAREST_EVEN) -> None:
        self.full_context = Context(precision=full_precision,
                                    rounding=rounding)
        self._stack: List[Context] = [self._base_context()]
        #: Escalation counters by reason, plus totals (adaptive only).
        self.stats: Dict[str, int] = {
            "escalations": 0,
            "rounding": 0,
            "comparison": 0,
            "integer": 0,
        }
        #: Per-op escalation hooks: callables invoked with the reason
        #: string every time a decision escalates (tests/telemetry).
        self.escalation_hooks: List[Callable[[str], None]] = []

    def _base_context(self) -> Context:
        return self.full_context

    # ------------------------------------------------------------------
    # Context stack
    # ------------------------------------------------------------------

    @property
    def context(self) -> Context:
        """The context shadow operations should currently run under."""
        return self._stack[-1]

    def push(self, context: Context) -> None:
        self._stack.append(context)

    def pop(self) -> Context:
        if len(self._stack) == 1:
            raise RuntimeError("cannot pop the policy's base context")
        return self._stack.pop()

    @contextlib.contextmanager
    def escalated(self) -> Iterator[Context]:
        """Run the enclosed block at the full tier."""
        self.push(self.full_context)
        try:
            yield self.full_context
        finally:
            self.pop()

    # ------------------------------------------------------------------
    # Escalation decisions (fixed tier: everything is already exact)
    # ------------------------------------------------------------------

    def note_escalation(self, reason: str) -> None:
        self.stats["escalations"] += 1
        self.stats[reason] = self.stats.get(reason, 0) + 1
        for hook in self.escalation_hooks:
            hook(reason)

    def propagate(self, op: str, args: Sequence[BigFloat],
                  drifts: Sequence[float], result: BigFloat) -> float:
        """Drift bound of ``result = op(args)`` given the args' drifts."""
        return EXACT

    def rounding_unsafe(self, value: BigFloat, drift: float,
                        mant_bits: int = 53, emin: int = -1022) -> bool:
        """Could rounding ``value`` to hardware differ at the full tier?"""
        return False

    def comparison_unsafe(self, a: BigFloat, drift_a: float,
                          b: BigFloat, drift_b: float) -> bool:
        """Could comparing ``a`` and ``b`` flip at the full tier?"""
        return False

    def addition_passthrough(self, candidate: BigFloat, drift_c: float,
                             other: BigFloat,
                             drift_o: float) -> Optional[bool]:
        """Full-tier compensation-equality verdict, if cheaply certain."""
        return None

    def integer_unsafe(self, value: BigFloat, drift: float) -> bool:
        """Could truncating ``value`` to an integer flip at the full tier?"""
        return False


class FixedPrecisionPolicy(PrecisionPolicy):
    """The paper's behaviour: one fixed shadow precision."""

    name = "fixed"


class AdaptivePrecisionPolicy(PrecisionPolicy):
    """Low working tier with guarded escalation to the full tier."""

    name = "adaptive"
    escalates = True

    def __init__(self, full_precision: int, working_precision: int = 144,
                 guard_bits: int = 16,
                 rounding: str = ROUND_NEAREST_EVEN) -> None:
        if working_precision < 53 + guard_bits + 8:
            raise ValueError(
                f"working precision {working_precision} too small for "
                f"{guard_bits} guard bits over a 53-bit target"
            )
        self.working_context = Context(
            precision=min(working_precision, full_precision),
            rounding=rounding,
        )
        self.guard_bits = guard_bits
        #: Beyond this many ulps of drift the working value cannot even
        #: certify the sign/kind of the true value: untrusted outright.
        self._ulps_limit = math.ldexp(
            1.0, self.working_context.precision - 4
        )
        #: Per-operation drift charge of the hardware (double-double)
        #: tier, in working-tier ulps: every kernel's relative error is
        #: at most 2**DD_REL_ERR_LOG2, and one working ulp is 2**(1-p)
        #: relative, so the conversion is a pure exponent shift.
        self._hw_op_ulps = math.ldexp(
            1.0, self.working_context.precision + DD_REL_ERR_LOG2
        )
        super().__init__(full_precision, rounding)

    def _base_context(self) -> Context:
        return self.working_context

    # ------------------------------------------------------------------
    # Running error analysis
    # ------------------------------------------------------------------

    def _amplification(self, op: str, index: int, args: Sequence[BigFloat],
                       result: BigFloat) -> Optional[int]:
        """Condition exponent: bits by which ``op`` amplifies the ulp
        error of argument ``index`` into ulps of the result (None when
        unbounded)."""
        arg = args[index]
        out_msb = result.msb_exponent
        arg_msb = arg.msb_exponent
        if op in ("+", "-", "fdim", "fma"):
            # Absolute errors add; converting arg-ulps to result-ulps
            # shifts by exactly the exponent drop (the ulp ratio) — this
            # is the catastrophic-cancellation amplification.
            if op == "fma" and index < 2:
                product_msb = args[0].msb_exponent + args[1].msb_exponent
                return product_msb - out_msb + 1
            return arg_msb - out_msb
        if op in ("fmin", "fmax"):
            return 0
        if op in _EXP_FAMILY:
            return max(0, arg_msb) + 2
        if op in _LOG_FAMILY:
            return max(0, -out_msb) + 2
        if op in _TRIG_FAMILY:
            return max(0, arg_msb - out_msb) + max(0, out_msb) + 2
        if op in _UNIT_SINGULAR:
            gap = arith.sub(BigFloat(arg.sign, 1, 0), arg,
                            self.working_context)
            if gap.is_zero():
                return None
            return max(0, -gap.msb_exponent) + 2
        if op == "acosh":
            gap = arith.sub(arg, BigFloat(0, 1, 0), self.working_context)
            if gap.is_zero():
                return None
            return max(0, -gap.msb_exponent) + 2
        if op == "pow":
            # rel error amplified by |y| (for x) and |y ln x| (for y).
            y = args[1]
            y_bits = max(0, y.msb_exponent) if not y.is_zero() else 0
            if index == 0:
                return y_bits + 2
            x = args[0]
            lnx_bits = 0
            if not x.is_zero():
                lnx_bits = max(0, abs(x.msb_exponent).bit_length())
            return y_bits + lnx_bits + 2
        if op in _WELL_CONDITIONED:
            return 1
        # Unknown operation: a generous constant; anything genuinely
        # ill-conditioned also shrinks/grows msb and is caught above.
        return 4

    def propagate(self, op: str, args: Sequence[BigFloat],
                  drifts: Sequence[float], result: BigFloat) -> float:
        if type(result) is DoubleDouble:
            # Hardware-tier results normally arrive via propagate_hw
            # (the kernel knows whether it was error-free); reaching
            # this generic entry point means the caller lost that flag,
            # so charge the op as rounded.
            return self.propagate_hw(op, args, drifts, result, False)
        if (op == "+" or op == "-" or op == "*" or op == "/") \
                and result.kind == _K_FINITE and result.man != 0:
            # Inlined fast path for the four binary arithmetic ops —
            # the bulk of every workload; equivalent to the generic
            # code below.
            d0, d1 = drifts
            if d0 == EXACT and d1 == EXACT:
                return EXACT if self._is_exact_operation(op, args) \
                    else 1.0
            if d0 < self._ulps_limit and d1 < self._ulps_limit:
                additive = op == "+" or op == "-"
                if additive:
                    out_msb = result.exp + result.man.bit_length() - 1
                total = 1.0
                try:
                    for drift, arg in ((d0, args[0]), (d1, args[1])):
                        if drift == EXACT:
                            continue
                        if arg.kind != _K_FINITE or arg.man == 0:
                            return UNTRUSTED
                        if additive:
                            amp = arg.exp + arg.man.bit_length() - 1 \
                                - out_msb
                        else:
                            amp = 1
                        total += math.ldexp(drift, amp)
                except OverflowError:
                    return UNTRUSTED
                return total if total < self._ulps_limit else UNTRUSTED
            return UNTRUSTED
        exact_in = all(d == EXACT for d in drifts)
        if op in ("neg", "fabs"):
            return drifts[0]
        if op == "copysign":
            # The magnitude's drift passes through, but only when the
            # sign operand's sign is certain: a drifted sign source
            # whose band reaches zero could flip the result wholesale.
            sign_drift = drifts[1]
            if sign_drift == EXACT:
                return drifts[0]
            sign = args[1]
            if (
                sign.is_finite() and not sign.is_zero()
                and sign_drift < self._ulps_limit
                and math.frexp(sign_drift)[1] + self.guard_bits
                < self.working_context.precision - 1
            ):
                return drifts[0]
            return UNTRUSTED
        if op in ("trunc", "floor", "ceil", "round", "nearbyint"):
            if drifts[0] == EXACT:
                return EXACT
            if self.integer_unsafe(args[0], drifts[0]):
                return UNTRUSTED
            return drifts[0]
        if op in ("fmod", "remainder"):
            # The implicit quotient is a discrete decision: safe only
            # when the operands are exact.
            return 1.0 if exact_in else UNTRUSTED
        if exact_in and result.is_finite() and not result.is_zero():
            # Exact operands: only this operation's own rounding counts.
            if self._is_exact_operation(op, args):
                return EXACT
            return 1.0
        if not result.is_finite() or result.is_zero():
            if exact_in:
                return EXACT
            if result.is_zero() and op == "*" and any(
                a.is_zero() and d == EXACT for a, d in zip(args, drifts)
            ):
                return EXACT  # an exact zero factor forces a true zero
            if result.is_zero() and op == "/" and args[0].is_zero() \
                    and drifts[0] == EXACT:
                return EXACT
            # A zero/NaN/inf summoned from inexact operands: the working
            # tier cannot bound how far the true value is.
            return UNTRUSTED
        # Error in ulps of the result: faithful rounding contributes at
        # most one ulp; each inexact argument contributes its own band
        # scaled by the operation's condition exponent.
        total = 1.0
        for index, (arg, drift) in enumerate(zip(args, drifts)):
            if drift == EXACT:
                continue
            if drift >= self._ulps_limit:
                return UNTRUSTED
            if arg.is_zero() or not arg.is_finite():
                return UNTRUSTED
            amp = self._amplification(op, index, args, result)
            if amp is None:
                return UNTRUSTED
            try:
                total += math.ldexp(drift, amp)
            except OverflowError:
                return UNTRUSTED
        if total >= self._ulps_limit:
            return UNTRUSTED
        return total

    def _is_exact_operation(self, op: str,
                            args: Sequence[BigFloat]) -> bool:
        """Provably unrounded at the working tier (exact args assumed).

        Canonical mantissas are odd, so ``exp`` is the position of the
        lowest set bit; the exact result's width is computable without
        performing the operation.
        """
        precision = self.working_context.precision
        if op in ("fmin", "fmax"):
            return True
        if op not in ("+", "-", "*"):
            # Only the closed arithmetic ops above have a decidable
            # exactness test; anything else (acos(0) = pi/2!) must be
            # treated as rounded.
            return False
        finite = [a for a in args if a.is_finite() and not a.is_zero()]
        if len(finite) != len(args):
            return True  # zeros/specials: +,-,* are exact on them
        if op in ("+", "-"):
            a, b = finite
            width = max(a.msb_exponent, b.msb_exponent) \
                - min(a.exp, b.exp) + 2
            return width <= precision
        a, b = finite
        return a.man.bit_length() + b.man.bit_length() <= precision

    # ------------------------------------------------------------------
    # Hardware (double-double) tier
    # ------------------------------------------------------------------

    def propagate_hw(self, op: str, args: Sequence[DoubleDouble],
                     drifts: Sequence[float], result: DoubleDouble,
                     exact_op: bool) -> float:
        """Drift bound for a hardware-tier result.

        ``exact_op`` is the kernel's proven error-free flag; when set,
        the operation itself contributes nothing and only the amplified
        argument drifts remain.  Drift stays in working-tier ulps so
        hardware and working values share one band algebra.
        """
        if op == "neg" or op == "fabs":
            return drifts[0]
        if op not in ("+", "-", "*", "/", "sqrt", "fma"):
            # No proven bound for anything else at this tier.
            return UNTRUSTED
        if result.hi == 0.0:
            if exact_op and all(d == EXACT for d in drifts):
                return EXACT
            if op == "*" and any(
                a.is_zero() and d == EXACT for a, d in zip(args, drifts)
            ):
                return EXACT  # an exact zero factor forces a true zero
            if op == "/" and args[0].is_zero() and drifts[0] == EXACT:
                return EXACT
            return UNTRUSTED
        all_exact = True
        for d in drifts:
            if d != EXACT:
                all_exact = False
                break
        if all_exact:
            if exact_op:
                if fits_precision(result.hi, result.lo,
                                  self.full_context.precision):
                    return EXACT
                # Exactly computed, but wider than the full tier: the
                # oracle would round where we did not.  The gap is at
                # most half a full-tier ulp — under half a working ulp.
                return 1.0
            if op != "fma":
                # Fresh rounding only; the per-op charge is far below
                # the trust limit by construction.
                return self._hw_op_ulps
        limit = self._ulps_limit
        total = EXACT if exact_op else self._hw_op_ulps
        if op == "*" or op == "/" or op == "sqrt":
            # Relative amplification is a fixed factor of two; no
            # magnitudes needed (exact doubling, overflow saturates).
            for arg, drift in zip(args, drifts):
                if drift == EXACT:
                    continue
                if drift >= limit or arg.is_zero():
                    return UNTRUSTED
                total += drift + drift
            return total if total < limit else UNTRUSTED
        out_msb = result.msb_exponent
        if op == "fma":
            if args[0].is_zero() or args[1].is_zero():
                product_msb = None
            else:
                product_msb = (args[0].msb_exponent
                               + args[1].msb_exponent)
            if not exact_op and product_msb is not None:
                # The product stage's rounding is committed before the
                # addition and amplified by any cancellation in it.
                try:
                    total += math.ldexp(
                        self._hw_op_ulps,
                        max(0, product_msb - out_msb + 1),
                    )
                except OverflowError:
                    return UNTRUSTED
        for index, (arg, drift) in enumerate(zip(args, drifts)):
            if drift == EXACT:
                continue
            if drift >= self._ulps_limit:
                return UNTRUSTED
            if arg.is_zero():
                return UNTRUSTED
            if op == "+" or op == "-":
                amp = arg.msb_exponent - out_msb
            elif op == "fma":
                if index < 2:
                    if product_msb is None:
                        return UNTRUSTED
                    amp = product_msb - out_msb + 1
                else:
                    amp = arg.msb_exponent - out_msb
            else:
                amp = 1
            try:
                total += math.ldexp(drift, amp)
            except OverflowError:
                return UNTRUSTED
        if total >= self._ulps_limit:
            return UNTRUSTED
        return total

    def _hw_rounding_unsafe(self, value: DoubleDouble, drift: float,
                            mant_bits: int, emin: int) -> bool:
        if drift == EXACT:
            return False
        if drift >= self._ulps_limit:
            return True
        if value.hi == 0.0:
            return True  # a drifted zero is never certifiable
        if mant_bits != 53 or emin != -1022:
            # Narrower targets put the ties on a lattice the hardware
            # pair does not expose cheaply; decide exactly instead.
            return self.rounding_unsafe(value.to_bigfloat(), drift,
                                        mant_bits, emin)
        mantissa, exponent = math.frexp(value.hi)
        if exponent - 1 < emin:
            return True  # subnormal target lattice: always confirm
        # hi sits on the binary64 lattice, so the nearest round-to-
        # double ties sit half an ulp above and below it (a quarter ulp
        # below at a binade edge), and lo is the value's exact offset.
        half_ulp = math.ldexp(1.0, exponent - 54)
        if value.hi < 0.0:
            offset = -value.lo
        else:
            offset = value.lo
        up_gap = half_ulp - offset
        down_gap = offset + (
            math.ldexp(1.0, exponent - 55) if abs(mantissa) == 0.5
            else half_ulp
        )
        distance = up_gap if up_gap < down_gap else down_gap
        if distance <= 0.0:
            return True
        # value.msb_exponent, reusing the frexp above: hi overshoots
        # the value's binade only when it rounded up to a power of two.
        msb = exponent - 1
        if value.lo != 0.0 and abs(mantissa) == 0.5 and \
                (value.hi > 0.0) == (value.lo < 0.0):
            msb = exponent - 2
        band = (msb - self.working_context.precision + 1
                + math.frexp(drift)[1] + self.guard_bits)
        try:
            # One extra doubling absorbs the float rounding in the gap
            # arithmetic above.
            return math.ldexp(1.0, band + 1) >= distance
        except OverflowError:
            return True

    def _hw_comparison_unsafe(self, a, drift_a: float,
                              b, drift_b: float) -> bool:
        if drift_a >= self._ulps_limit or drift_b >= self._ulps_limit:
            return True
        precision = self.working_context.precision
        slack = None
        for value, drift in ((a, drift_a), (b, drift_b)):
            if drift == EXACT:
                continue
            if value.is_zero():
                return True
            band = value.msb_exponent - precision + 1 + math.frexp(drift)[1]
            if slack is None or band > slack:
                slack = band
        if type(a) is DoubleDouble and type(b) is DoubleDouble:
            diff = dd_sub(a.hi, a.lo, b.hi, b.lo)
            if diff is None or diff[0] == 0.0:
                return True
            diff_msb = DoubleDouble(diff[0], diff[1]).msb_exponent
        else:
            big_a = a.to_bigfloat() if type(a) is DoubleDouble else a
            big_b = b.to_bigfloat() if type(b) is DoubleDouble else b
            if not big_a.is_finite() or not big_b.is_finite():
                return True
            difference = arith.sub(big_a, big_b, self.working_context)
            if difference.is_zero():
                return True
            diff_msb = difference.msb_exponent
        return diff_msb <= slack + self.guard_bits

    # ------------------------------------------------------------------
    # Escalation checks
    # ------------------------------------------------------------------

    def rounding_unsafe(self, value: BigFloat, drift: float,
                        mant_bits: int = 53, emin: int = -1022) -> bool:
        if type(value) is DoubleDouble:
            return self._hw_rounding_unsafe(value, drift, mant_bits, emin)
        if drift == EXACT:
            return False
        if drift >= self._ulps_limit:
            return True
        if not value.is_finite() or value.is_zero():
            # Drifted specials/zeros were flagged UNTRUSTED upstream,
            # but be defensive: the working tier cannot certify them.
            return True
        precision = self.working_context.precision
        msb = value.msb_exponent
        # log2 of the guarded error band around the working value
        # (frexp's exponent is ceil(log2) for positive floats).
        slack = msb - precision + 1 + math.frexp(drift)[1] + self.guard_bits
        length = value.man.bit_length()
        tiny_exp = emin - mant_bits + 1
        p_target = mant_bits if msb >= emin else msb - tiny_exp + 1
        if p_target < 2:
            # At/below the smallest subnormals every decision is a tie
            # decision; these are vanishingly rare — always confirm.
            return True
        shift = length - p_target
        if shift <= 0:
            # Already on the target lattice: the nearest tie is half a
            # target ulp away.
            return slack >= msb - p_target
        half = 1 << (shift - 1)
        rem = value.man & ((1 << shift) - 1)
        distance = rem - half if rem >= half else half - rem
        if distance == 0:
            return True  # exactly on a tie: parity could flip either way
        distance_exp = value.exp + distance.bit_length() - 1
        return slack >= distance_exp

    def comparison_unsafe(self, a: BigFloat, drift_a: float,
                          b: BigFloat, drift_b: float) -> bool:
        if drift_a == EXACT and drift_b == EXACT:
            return False
        if type(a) is DoubleDouble or type(b) is DoubleDouble:
            return self._hw_comparison_unsafe(a, drift_a, b, drift_b)
        if drift_a >= self._ulps_limit or drift_b >= self._ulps_limit:
            return True
        if not a.is_finite() or not b.is_finite():
            return True  # a drifted special: kind itself is uncertain
        precision = self.working_context.precision
        slack = None
        for value, drift in ((a, drift_a), (b, drift_b)):
            if drift == EXACT:
                continue
            if value.is_zero():
                return True
            band = value.msb_exponent - precision + 1 + math.frexp(drift)[1]
            if slack is None or band > slack:
                slack = band
        difference = arith.sub(a, b, self.working_context)
        if difference.is_zero():
            return True
        return difference.msb_exponent <= slack + self.guard_bits

    def addition_passthrough(self, candidate: BigFloat, drift_c: float,
                             other: BigFloat,
                             drift_o: float) -> Optional[bool]:
        """Full-tier verdict on ``round_full(c* + o*) == c*``, if cheap.

        The compensation check (paper Section 5.3) asks whether an
        addition returned one of its arguments *in the reals*.  At the
        full tier that holds iff the other operand is smaller than half
        an ulp of the candidate at ``full_precision`` — decidable from
        working-tier magnitudes alone whenever the operands are not
        within a few binades of that 2^-full_precision ratio.  Returns
        True/False when certain, None when the full tier must decide.
        """
        if drift_c >= self._ulps_limit or drift_o >= self._ulps_limit:
            return None
        if other.is_zero():
            # An exact zero term changes nothing at any tier.
            return True if drift_o == EXACT else None
        if candidate.is_zero() or not candidate.is_finite() \
                or not other.is_finite():
            return None
        window = candidate.msb_exponent - self.full_context.precision
        other_msb = other.msb_exponent
        if other_msb >= window + 4:
            return False  # |other| clearly exceeds half an ulp: must move
        if other_msb <= window - 4:
            return True  # |other| clearly below a quarter ulp: absorbed
        return None

    def integer_unsafe(self, value: BigFloat, drift: float) -> bool:
        if drift == EXACT:
            return False
        if type(value) is DoubleDouble:
            # Integer-boundary checks are rare; decide on the exact
            # BigFloat promotion rather than duplicating the lattice
            # walk on component pairs.
            return self.integer_unsafe(value.to_bigfloat(), drift)
        if drift >= self._ulps_limit:
            return True
        if not value.is_finite() or value.is_zero():
            return True
        precision = self.working_context.precision
        slack = value.msb_exponent - precision + 1 \
            + math.frexp(drift)[1] + self.guard_bits
        if value.exp >= 0:
            # Integral at the working tier, inexact overall: the true
            # value sits within the band of an integer boundary.
            return True
        nearest = arith.round_half_even(value, self.working_context)
        delta = arith.sub(value, nearest, self.working_context)
        if delta.is_zero():
            return True
        return delta.msb_exponent <= slack


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_POLICIES: Dict[str, type] = {
    FixedPrecisionPolicy.name: FixedPrecisionPolicy,
    AdaptivePrecisionPolicy.name: AdaptivePrecisionPolicy,
}


def available_policies() -> List[str]:
    return sorted(_POLICIES)


def register_policy(name: str, cls: type) -> None:
    """Register (or replace) a policy class under ``name``."""
    _POLICIES[name] = cls


def make_policy(name: str, full_precision: int, working_precision: int = 144,
                guard_bits: int = 16,
                rounding: str = ROUND_NEAREST_EVEN) -> PrecisionPolicy:
    """Instantiate the policy registered under ``name``."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(available_policies())
        raise KeyError(f"unknown precision policy {name!r} (known: {known})")
    if cls is FixedPrecisionPolicy:
        return cls(full_precision, rounding=rounding)
    try:
        return cls(full_precision, working_precision=working_precision,
                   guard_bits=guard_bits, rounding=rounding)
    except TypeError:
        # Registered policies without tier parameters (fixed-style).
        return cls(full_precision, rounding=rounding)
