"""Arbitrary-precision binary floating point — the MPFR substitute.

Herbgrind shadows every client double with a high-precision value
(Section 5.1 of the paper; 1000-bit significand by default).  This
package provides that capability from scratch:

* :class:`BigFloat` — immutable arbitrary-precision values with IEEE
  special-value semantics (signed zeros, infinities, NaN).
* :class:`Context` — precision + rounding mode, with a module default.
* :mod:`repro.bigfloat.arith` — correctly rounded +, -, *, /, sqrt, fma…
* :mod:`repro.bigfloat.transcendental` — faithful exp/log/trig/… kernels
  built on integer fixed-point series with Ziv-style reduction retries.
* :func:`apply` / :func:`apply_double` — name-based dispatch used by the
  shadow executor for the ⟦f⟧_R and ⟦f⟧_F semantics of Figure 4.
* :mod:`repro.bigfloat.doubledouble` — the compensated two-double
  hardware tier (:class:`DoubleDouble`) the adaptive policy runs below
  the working tier, with escalation-certified error bounds.
"""

from repro.bigfloat.bigfloat import BigFloat, HALF, ONE, TWO
from repro.bigfloat.context import (
    Context,
    DEFAULT_PRECISION,
    DOUBLE_CONTEXT,
    SINGLE_CONTEXT,
    getcontext,
    local_context,
    setcontext,
)
from repro.bigfloat.functions import (
    ALL_OPERATIONS,
    LIBRARY_OPERATIONS,
    apply,
    apply_double,
    arity,
)
from repro.bigfloat.rounding import (
    ROUND_DOWN,
    ROUND_NEAREST_AWAY,
    ROUND_NEAREST_EVEN,
    ROUND_TOWARD_ZERO,
    ROUND_UP,
)
from repro.bigfloat import arith, constants, transcendental
from repro.bigfloat.doubledouble import DD_KERNELS, DoubleDouble
from repro.bigfloat.backend import (
    ALL_SUBSTRATES,
    KERNEL_CACHE_OPERATIONS,
    KernelBackend,
    available_substrates,
    get_backend,
    substrate_provider,
)
from repro.bigfloat.policy import (
    AdaptivePrecisionPolicy,
    EXACT,
    FixedPrecisionPolicy,
    PrecisionPolicy,
    UNTRUSTED,
    available_policies,
    make_policy,
    register_policy,
)

__all__ = [
    "ALL_OPERATIONS",
    "ALL_SUBSTRATES",
    "KERNEL_CACHE_OPERATIONS",
    "KernelBackend",
    "available_substrates",
    "get_backend",
    "substrate_provider",
    "AdaptivePrecisionPolicy",
    "BigFloat",
    "Context",
    "DD_KERNELS",
    "DoubleDouble",
    "EXACT",
    "FixedPrecisionPolicy",
    "PrecisionPolicy",
    "UNTRUSTED",
    "available_policies",
    "make_policy",
    "register_policy",
    "DEFAULT_PRECISION",
    "DOUBLE_CONTEXT",
    "HALF",
    "LIBRARY_OPERATIONS",
    "ONE",
    "ROUND_DOWN",
    "ROUND_NEAREST_AWAY",
    "ROUND_NEAREST_EVEN",
    "ROUND_TOWARD_ZERO",
    "ROUND_UP",
    "SINGLE_CONTEXT",
    "TWO",
    "apply",
    "apply_double",
    "arith",
    "arity",
    "constants",
    "getcontext",
    "local_context",
    "setcontext",
    "transcendental",
]
