"""Integer fixed-point helpers for the transcendental kernels.

The transcendental functions (exp, log, sin, ...) are evaluated as power
series over *fixed-point integers*: an integer ``v`` at working precision
``wp`` represents the real ``v / 2**wp``.  All helpers truncate toward
zero so that alternating series terms reliably decay to zero (floor
division would let negative terms get stuck at -1).

Accuracy contract: each helper is exact or within 1 fixed-point ulp
(2**-wp); kernels run with ~32 guard bits over the target precision, so
series evaluation with a few hundred terms still delivers a faithfully
rounded result at the context precision.
"""

from __future__ import annotations

from typing import Tuple

from repro.bigfloat.bigfloat import BigFloat, K_FINITE


def tdiv(a: int, b: int) -> int:
    """Truncating integer division (rounds toward zero, unlike //)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def tshift(a: int, shift: int) -> int:
    """Truncating right shift (rounds toward zero, unlike >>)."""
    if shift <= 0:
        return a << -shift
    if a >= 0:
        return a >> shift
    return -((-a) >> shift)


def fmul(a: int, b: int, wp: int) -> int:
    """Fixed-point multiply: (a/2^wp) * (b/2^wp) at scale 2^wp."""
    return tshift(a * b, wp)


def fdiv(a: int, b: int, wp: int) -> int:
    """Fixed-point divide: (a/2^wp) / (b/2^wp) at scale 2^wp."""
    return tdiv(a << wp, b)


def fsqrt(a: int, wp: int) -> int:
    """Fixed-point square root of a non-negative value."""
    if a < 0:
        raise ValueError("fsqrt of negative fixed-point value")
    import math

    return math.isqrt(a << wp)


def to_fixed(value: BigFloat, wp: int) -> int:
    """Convert a finite BigFloat to fixed point at scale 2^wp (truncating)."""
    if value.kind != K_FINITE:
        raise ValueError(f"cannot convert {value!r} to fixed point")
    if value.man == 0:
        return 0
    magnitude = tshift(value.man, -(value.exp + wp))
    return -magnitude if value.sign else magnitude


def from_fixed(value: int, wp: int) -> BigFloat:
    """Convert a fixed-point integer at scale 2^wp to an exact BigFloat."""
    if value == 0:
        return BigFloat.zero(0)
    sign = 1 if value < 0 else 0
    return BigFloat(sign, abs(value), -wp)


def exp_series(x: int, wp: int) -> int:
    """e**x for |x| <= ~0.36 (post-reduction), via halving + Taylor.

    The argument is scaled down by 2**HALVINGS so the Taylor series
    converges in a handful of terms, then the result is squared back up.
    """
    halvings = 16
    reduced = tshift(x, halvings)
    term = 1 << wp
    total = term
    k = 1
    while term:
        term = tdiv(fmul(term, reduced, wp), k)
        total += term
        k += 1
    for __ in range(halvings):
        total = fmul(total, total, wp)
    return total


def expm1_factor_series(x: int, wp: int) -> int:
    """(e**x - 1)/x = 1 + x/2! + x^2/3! + ... for small |x|.

    The caller multiplies the (near-1, hence fully accurate) factor by the
    full-precision argument, so tiny arguments do not lose their leading
    bits to cancellation against 1.
    """
    term = 1 << wp
    factor = term
    k = 2
    while term:
        term = tdiv(fmul(term, x, wp), k)
        factor += term
        k += 1
    return factor


def atan_factor_series(x_squared: int, wp: int) -> int:
    """atan(x)/x = 1 - x^2/3 + x^4/5 - ... for small |x| (as factor)."""
    one = 1 << wp
    total = one
    power = one
    n = 3
    sign = -1
    while power:
        power = fmul(power, x_squared, wp)
        total += sign * tdiv(power, n)
        sign = -sign
        n += 2
    return total


def log_series(m: int, wp: int) -> int:
    """ln(m) for m in [1, 2), via the atanh expansion.

    ln(m) = 2 * atanh(t) with t = (m-1)/(m+1) in [0, 1/3]; each term
    contributes at least log2(9) ~ 3.17 bits.
    """
    one = 1 << wp
    t = fdiv(m - one, m + one, wp)
    t_squared = fmul(t, t, wp)
    power = t
    total = t
    n = 3
    while power:
        power = fmul(power, t_squared, wp)
        total += tdiv(power, n)
        n += 2
    return total << 1


def log1p_over_x_series(x: int, wp: int) -> int:
    """ln(1+x)/x for |x| <= 1/4, for full-relative-precision log1p.

    Series: 1 - x/2 + x^2/3 - x^3/4 + ... (at least 2 bits per term).
    """
    one = 1 << wp
    total = one
    power = one
    n = 2
    sign = -1
    while power:
        power = fmul(power, x, wp)
        total += sign * tdiv(power, n)
        sign = -sign
        n += 1
    return total


def sin_cos_series(r: int, wp: int) -> Tuple[int, int]:
    """(sin r, cos r) for |r| <= ~0.8 (after pi/2 reduction), via Taylor."""
    r_squared = fmul(r, r, wp)
    # sin
    term = r
    sin_total = r
    k = 1
    while term:
        term = tdiv(fmul(term, r_squared, wp), (2 * k) * (2 * k + 1))
        term = -term
        sin_total += term
        k += 1
    # cos
    term = 1 << wp
    cos_total = term
    k = 1
    while term:
        term = tdiv(fmul(term, r_squared, wp), (2 * k - 1) * (2 * k))
        term = -term
        cos_total += term
        k += 1
    return sin_total, cos_total


def atan_series(t: int, wp: int) -> int:
    """atan(t) for |t| <= ~2**-8 (after halving reduction), via Taylor."""
    t_squared = fmul(t, t, wp)
    power = t
    total = t
    n = 3
    sign = -1
    while power:
        power = fmul(power, t_squared, wp)
        total += sign * tdiv(power, n)
        sign = -sign
        n += 2
    return total


def sinh_factor_series(x_squared: int, wp: int) -> int:
    """sinh(x)/x = 1 + x^2/3! + x^4/5! + ... for small |x| (as factor)."""
    one = 1 << wp
    term = one
    total = one
    k = 1
    while term:
        term = tdiv(fmul(term, x_squared, wp), (2 * k) * (2 * k + 1))
        total += term
        k += 1
    return total
