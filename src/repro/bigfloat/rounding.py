"""Rounding modes and the core mantissa-rounding routine.

Every arithmetic operation in :mod:`repro.bigfloat` is *exact-then-round*:
it computes an exact (or sticky-augmented) integer significand and then
rounds it to the context precision here.  This mirrors MPFR's semantics
and is what makes the shadow-real execution trustworthy.
"""

from __future__ import annotations

from typing import Tuple

#: Round to nearest, ties to even (IEEE default; MPFR's MPFR_RNDN).
ROUND_NEAREST_EVEN = "RNE"
#: Round to nearest, ties away from zero.
ROUND_NEAREST_AWAY = "RNA"
#: Round toward zero (truncate).
ROUND_TOWARD_ZERO = "RTZ"
#: Round toward +infinity.
ROUND_UP = "RUP"
#: Round toward -infinity.
ROUND_DOWN = "RDN"

ALL_MODES = (
    ROUND_NEAREST_EVEN,
    ROUND_NEAREST_AWAY,
    ROUND_TOWARD_ZERO,
    ROUND_UP,
    ROUND_DOWN,
)


def round_mantissa(
    sign: int, man: int, exp: int, precision: int, mode: str = ROUND_NEAREST_EVEN
) -> Tuple[int, int, bool]:
    """Round ``(-1)**sign * man * 2**exp`` to at most ``precision`` bits.

    ``man`` must be positive.  Returns ``(man', exp', inexact)`` where the
    rounded value is ``(-1)**sign * man' * 2**exp'`` and ``inexact`` is
    True when rounding discarded nonzero bits.

    The sticky-bit convention used throughout the package: callers that
    computed a truncated significand with a nonzero remainder append one
    extra LSB (``man = (q << 1) | 1``) before calling; that bit makes the
    value strictly between representable neighbours, which is all any
    rounding mode needs to know.
    """
    if man <= 0:
        raise ValueError("round_mantissa requires a positive mantissa")
    if precision < 1:
        raise ValueError(f"precision must be >= 1, got {precision}")
    bit_length = man.bit_length()
    if bit_length <= precision:
        return man, exp, False
    shift = bit_length - precision
    kept = man >> shift
    remainder = man - (kept << shift)
    exp += shift
    if remainder == 0:
        return kept, exp, False
    half = 1 << (shift - 1)
    if mode == ROUND_NEAREST_EVEN:
        round_up = remainder > half or (remainder == half and kept & 1)
    elif mode == ROUND_NEAREST_AWAY:
        round_up = remainder >= half
    elif mode == ROUND_TOWARD_ZERO:
        round_up = False
    elif mode == ROUND_UP:
        round_up = sign == 0
    elif mode == ROUND_DOWN:
        round_up = sign == 1
    else:
        raise ValueError(f"unknown rounding mode: {mode!r}")
    if round_up:
        kept += 1
        if kept.bit_length() > precision:
            # 0b111..1 + 1 carried out; renormalize (kept is a power of two).
            kept >>= 1
            exp += 1
    return kept, exp, True


def fold_sticky(quotient: int, exp: int, inexact: bool) -> Tuple[int, int]:
    """Fold an inexactness flag into the significand as an extra LSB.

    Used by division, square roots and the transcendental kernels, whose
    exact results do not terminate: the extra bit records "there is more
    below", which round_mantissa then interprets correctly.
    """
    if inexact:
        return (quotient << 1) | 1, exp - 1
    return quotient, exp
