"""The Section 8.1 evaluation machinery: oracle + end-to-end pipeline."""

from repro.eval.oracle import SIGNIFICANT_BITS, OracleVerdict, oracle_judge
from repro.eval.pipeline import (
    BenchmarkOutcome,
    SuiteSummary,
    evaluate_benchmark,
    evaluate_suite,
    sample_points_for_record,
)

__all__ = [
    "BenchmarkOutcome",
    "OracleVerdict",
    "SIGNIFICANT_BITS",
    "SuiteSummary",
    "evaluate_benchmark",
    "evaluate_suite",
    "oracle_judge",
    "sample_points_for_record",
]
