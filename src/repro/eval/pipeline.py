"""The Section 8.1 methodology, end to end.

Per benchmark: compile to the machine, run under the analysis on
sampled inputs, collect the candidate root causes, and feed each
extracted expression (with its *observed* input characteristics as the
sampling region) to the mini-Herbie.  A benchmark counts as a
Herbgrind success when some reported root cause is improvable.

The input-characteristics configuration determines how the improver's
sample points are drawn (Figure 5b):

* ``sign_split`` / ``range`` — sample inside the recorded ranges,
* ``representative`` — jitter around the single example input,
* ``none`` — fall back to a blind default box.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.api.sampling import sample_range
from repro.api.session import AnalysisSession
from repro.core import AnalysisConfig
from repro.core.config import (
    CHARACTERISTICS_NONE,
    CHARACTERISTICS_RANGE,
    CHARACTERISTICS_REPRESENTATIVE,
    CHARACTERISTICS_SIGN_SPLIT,
)
from repro.core.inputs import (
    NoSummary,
    RangeSummary,
    RepresentativeInput,
    SignSplitRangeSummary,
)
from repro.core.records import OpRecord
from repro.eval.oracle import OracleVerdict, oracle_judge
from repro.fpcore.ast import FPCore, free_variables
from repro.improve import ImprovementResult, SearchSettings, improve_expression

#: Blind sampling box used when characteristics are unavailable.
DEFAULT_RANGE = (-1e9, 1e9)


def _summary_range(summary) -> Optional[Tuple[float, float]]:
    if isinstance(summary, SignSplitRangeSummary):
        clauses_lo = []
        low = math.inf
        high = -math.inf
        if summary.negative.count:
            low = min(low, summary.negative.low)
            high = max(high, summary.negative.high)
        if summary.nonnegative.count:
            low = min(low, summary.nonnegative.low)
            high = max(high, summary.nonnegative.high)
        if low <= high:
            return (low, high)
        return None
    if isinstance(summary, RangeSummary):
        if summary.count:
            return (summary.low, summary.high)
        return None
    return None


def sample_points_for_record(
    record: OpRecord,
    count: int = 16,
    seed: int = 0,
) -> Tuple[List[str], List[List[float]]]:
    """Sample improver inputs for one extracted root cause.

    Half the points come from the *problematic* input ranges (where the
    operation had high local error — the region the repair must win on)
    and half from the total ranges (so a repair is not accepted at the
    price of the benign region).  Falls back to the representative
    example and finally to a blind default box — reproducing the
    Figure 5b degradation when characteristics are disabled.
    """
    expression = record.symbolic_expression
    variables = list(free_variables(expression)) if expression is not None else []
    rng = random.Random(seed)

    def sample_variable(variable: str, problematic: bool) -> float:
        tables = [record.problematic_inputs, record.total_inputs]
        if not problematic:
            tables = tables[::-1]
        for table in tables:
            summary = table.by_variable.get(variable)
            bounds = _summary_range(summary) if summary is not None else None
            if bounds is not None and bounds[0] < bounds[1]:
                return sample_range(rng, *bounds)
            if bounds is not None:
                return bounds[0]
            if isinstance(summary, RepresentativeInput) and summary.value is not None:
                return summary.value * rng.uniform(0.5, 2.0)
        if record.example_problematic and variable in record.example_problematic:
            return record.example_problematic[variable]
        return rng.uniform(*DEFAULT_RANGE)

    points: List[List[float]] = []
    for index in range(count):
        problematic = index % 2 == 0
        points.append(
            [sample_variable(v, problematic) for v in variables]
        )
    return variables, points


@dataclass
class BenchmarkOutcome:
    """Everything Section 8.1 needs to know about one benchmark."""

    name: str
    oracle: OracleVerdict
    herbgrind_detected: bool
    herbgrind_max_output_error: float
    candidate_count: int
    reported_count: int
    best_improvement: Optional[ImprovementResult]
    improved_expression: Optional[str] = None

    @property
    def herbgrind_improvable(self) -> bool:
        return (
            self.best_improvement is not None
            and self.best_improvement.improved()
        )


def evaluate_benchmark(
    core: FPCore,
    config: Optional[AnalysisConfig] = None,
    num_points: int = 16,
    seed: int = 0,
    settings: Optional[SearchSettings] = None,
    max_causes: int = 3,
    session: Optional[AnalysisSession] = None,
) -> BenchmarkOutcome:
    """Run oracle + Herbgrind + improver for one benchmark.

    Analysis routes through :class:`repro.api.AnalysisSession`; pass
    ``session`` to share compiled-program and input-set caches across
    benchmarks (``evaluate_suite`` does).
    """
    if config is None:
        config = AnalysisConfig(shadow_precision=256)
    if session is None:
        session = AnalysisSession(
            config=config, num_points=num_points, seed=seed
        )
    oracle = oracle_judge(core, num_points=num_points, seed=seed)
    analysis = session.analyze(
        core, config=config, num_points=num_points, seed=seed
    ).raw
    detected = analysis.max_output_error() > config.output_error_threshold
    causes = analysis.reported_root_causes()
    best: Optional[ImprovementResult] = None
    best_text: Optional[str] = None
    for record in causes[:max_causes]:
        expression = record.symbolic_expression
        if expression is None:
            continue
        variables, points = sample_points_for_record(
            record, count=num_points, seed=seed
        )
        if not variables:
            continue
        try:
            result = improve_expression(
                expression, variables, points, settings=settings
            )
        except Exception:
            continue
        if best is None or result.improvement > best.improvement:
            best = result
            from repro.fpcore.printer import format_expr

            best_text = format_expr(result.best)
    return BenchmarkOutcome(
        name=core.name or "<anonymous>",
        oracle=oracle,
        herbgrind_detected=detected,
        herbgrind_max_output_error=analysis.max_output_error(),
        candidate_count=len(analysis.candidate_records()),
        reported_count=len(causes),
        best_improvement=best,
        improved_expression=best_text,
    )


@dataclass
class SuiteSummary:
    """The headline Section 8.1 counts."""

    outcomes: List[BenchmarkOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def oracle_erroneous(self) -> int:
        return sum(1 for o in self.outcomes if o.oracle.has_significant_error)

    @property
    def oracle_improvable(self) -> int:
        return sum(1 for o in self.outcomes if o.oracle.improvable)

    @property
    def herbgrind_detected(self) -> int:
        """Erroneous-by-oracle benchmarks Herbgrind also detects."""
        return sum(
            1 for o in self.outcomes
            if o.oracle.has_significant_error and o.herbgrind_detected
        )

    @property
    def herbgrind_reported(self) -> int:
        """Erroneous benchmarks with at least one reported root cause."""
        return sum(
            1 for o in self.outcomes
            if o.oracle.has_significant_error and o.reported_count > 0
        )

    @property
    def herbgrind_improvable(self) -> int:
        """Erroneous benchmarks whose reported cause Herbie can improve
        (the paper's 'true root cause' success count)."""
        return sum(
            1 for o in self.outcomes
            if o.oracle.has_significant_error and o.herbgrind_improvable
        )

    def end_to_end_rate(self) -> float:
        if self.oracle_erroneous == 0:
            return 1.0
        return self.herbgrind_improvable / self.oracle_erroneous


def evaluate_suite(
    corpus: Sequence[FPCore],
    config: Optional[AnalysisConfig] = None,
    num_points: int = 16,
    seed: int = 0,
    settings: Optional[SearchSettings] = None,
    session: Optional[AnalysisSession] = None,
) -> SuiteSummary:
    """Run the full Section 8.1 pipeline over a benchmark corpus.

    One :class:`repro.api.AnalysisSession` is shared across the whole
    suite so repeated evaluations reuse compiled programs and samples.
    """
    if session is None:
        session = AnalysisSession(
            config=config, num_points=num_points, seed=seed
        )
    summary = SuiteSummary()
    for core in corpus:
        summary.outcomes.append(
            evaluate_benchmark(
                core,
                config=config,
                num_points=num_points,
                seed=seed,
                settings=settings,
                session=session,
            )
        )
    return summary
