"""The Section 8.1 oracle: ground truth for the improvability study.

The paper compares Herbgrind against "an 'oracle' which directly
extracts the relevant symbolic expression from the source benchmark":
since FPBench benchmarks *are* expressions, the oracle skips analysis
entirely and hands the source expression (with its :pre sampling box)
straight to Herbie.  Herbgrind is then judged by how often its
*extracted* root causes are improvable wherever the oracle's are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api.sampling import sample_inputs
from repro.fpcore.ast import FPCore, While
from repro.improve import (
    ErrorEvaluator,
    ImprovementResult,
    Improver,
    SearchSettings,
)

#: Section 8.1's significance threshold: > 5 bits of error.
SIGNIFICANT_BITS = 5.0


def _contains_loop(core: FPCore) -> bool:
    from repro.fpcore.ast import If, Let, Op

    def walk(expr) -> bool:
        if isinstance(expr, While):
            return True
        if isinstance(expr, Op):
            children = list(expr.args)
        elif isinstance(expr, If):
            children = [expr.cond, expr.then, expr.orelse]
        elif isinstance(expr, Let):
            children = [value for __, value in expr.bindings] + [expr.body]
        else:
            children = []
        return any(walk(c) for c in children)

    return walk(core.body)


@dataclass
class OracleVerdict:
    """The oracle's judgment of one benchmark."""

    name: str
    max_error: float
    average_error: float
    has_significant_error: bool
    improvement: Optional[ImprovementResult]

    @property
    def improvable(self) -> bool:
        return self.improvement is not None and self.improvement.improved()


def oracle_judge(
    core: FPCore,
    num_points: int = 16,
    seed: int = 0,
    settings: Optional[SearchSettings] = None,
) -> OracleVerdict:
    """Measure the benchmark's error and, if significant, try to
    improve the source expression directly."""
    points = sample_inputs(core, num_points, seed=seed)
    evaluator = ErrorEvaluator(core.body, list(core.arguments), points)
    errors = evaluator.errors(core.body)
    max_error = max(errors, default=0.0)
    average = sum(errors) / len(errors) if errors else 0.0
    significant = max_error > SIGNIFICANT_BITS
    improvement = None
    if significant and not _contains_loop(core):
        improver = Improver(evaluator, settings=settings)
        improvement = improver.improve()
    return OracleVerdict(
        name=core.name or "<anonymous>",
        max_error=max_error,
        average_error=average,
        has_significant_error=significant,
        improvement=improvement,
    )
