"""The mini-Herbie improver (the paper's improvability judge, Section 8.1).

Architecture mirrors Herbie [29]: sampled inputs, a high-precision
ground truth, a rewrite-rule database searched by beam search, a
simplification pass, and regime inference for branch synthesis.
"""

from repro.improve.evaluate import ErrorEvaluator
from repro.improve.patterns import (
    instantiate,
    match,
    positions,
    replace_at,
    rewrite_everywhere,
)
from repro.improve.rules import Rule, all_rules, rules_by_name
from repro.improve.search import (
    ImprovementResult,
    Improver,
    SearchSettings,
    improve_expression,
    judge_improvable,
)
from repro.improve.simplify import simplify

__all__ = [
    "ErrorEvaluator",
    "ImprovementResult",
    "Improver",
    "Rule",
    "SearchSettings",
    "all_rules",
    "improve_expression",
    "instantiate",
    "judge_improvable",
    "match",
    "positions",
    "replace_at",
    "rewrite_everywhere",
    "rules_by_name",
    "simplify",
]
