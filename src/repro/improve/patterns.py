"""Pattern matching and substitution over FPCore expressions.

The improver's rewrite rules are expressed as pattern pairs; a pattern
is an ordinary FPCore expression whose variables are pattern variables.
Linear and non-linear patterns both work (a repeated variable must
match equal sub-expressions).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.fpcore.ast import Expr, If, Num, Op, Var


def match(pattern: Expr, expr: Expr) -> Optional[Dict[str, Expr]]:
    """Match ``expr`` against ``pattern``; returns bindings or None."""
    bindings: Dict[str, Expr] = {}
    return bindings if _match_into(pattern, expr, bindings) else None


def _match_into(pattern: Expr, expr: Expr, bindings: Dict[str, Expr]) -> bool:
    if isinstance(pattern, Var):
        bound = bindings.get(pattern.name)
        if bound is None:
            bindings[pattern.name] = expr
            return True
        return bound == expr
    if isinstance(pattern, Num):
        return isinstance(expr, Num) and pattern.value == expr.value
    if isinstance(pattern, Op):
        if not (isinstance(expr, Op) and expr.op == pattern.op
                and len(expr.args) == len(pattern.args)):
            return False
        return all(
            _match_into(p, e, bindings)
            for p, e in zip(pattern.args, expr.args)
        )
    if isinstance(pattern, If):
        if not isinstance(expr, If):
            return False
        return (
            _match_into(pattern.cond, expr.cond, bindings)
            and _match_into(pattern.then, expr.then, bindings)
            and _match_into(pattern.orelse, expr.orelse, bindings)
        )
    return pattern == expr


def instantiate(pattern: Expr, bindings: Dict[str, Expr]) -> Expr:
    """Fill a pattern's variables from ``bindings``."""
    if isinstance(pattern, Var):
        try:
            return bindings[pattern.name]
        except KeyError:
            raise KeyError(f"unbound pattern variable {pattern.name}") from None
    if isinstance(pattern, Op):
        return Op(pattern.op, tuple(instantiate(a, bindings) for a in pattern.args))
    if isinstance(pattern, If):
        return If(
            instantiate(pattern.cond, bindings),
            instantiate(pattern.then, bindings),
            instantiate(pattern.orelse, bindings),
        )
    return pattern


Path = Tuple[int, ...]


def positions(expr: Expr) -> Iterator[Tuple[Path, Expr]]:
    """All sub-expression positions, root first (If branches included)."""
    yield (), expr
    if isinstance(expr, Op):
        for index, argument in enumerate(expr.args):
            for path, sub in positions(argument):
                yield (index,) + path, sub
    elif isinstance(expr, If):
        parts = (expr.cond, expr.then, expr.orelse)
        for index, part in enumerate(parts):
            for path, sub in positions(part):
                yield (index,) + path, sub


def replace_at(expr: Expr, path: Path, replacement: Expr) -> Expr:
    """A copy of ``expr`` with the sub-expression at ``path`` replaced."""
    if not path:
        return replacement
    head, rest = path[0], path[1:]
    if isinstance(expr, Op):
        new_args = list(expr.args)
        new_args[head] = replace_at(new_args[head], rest, replacement)
        return Op(expr.op, tuple(new_args))
    if isinstance(expr, If):
        parts = [expr.cond, expr.then, expr.orelse]
        parts[head] = replace_at(parts[head], rest, replacement)
        return If(*parts)
    raise IndexError(f"path {path} does not exist in {expr}")


def rewrite_everywhere(expr: Expr, lhs: Expr, rhs: Expr) -> List[Expr]:
    """Every single-position application of the rule lhs -> rhs."""
    results = []
    for path, sub in positions(expr):
        bindings = match(lhs, sub)
        if bindings is not None:
            try:
                built = instantiate(rhs, bindings)
            except KeyError:
                continue
            results.append(replace_at(expr, path, built))
    return results
