"""The improvement search: beam search over rewrites + regime splits.

This is the mini-Herbie the evaluation uses to decide whether a
candidate root cause is *improvable* (a true root cause, Section 8.1):
beam search over the rule database scored by sampled bits-of-error,
followed by Herbie-style regime inference (branching on a variable's
sign or a threshold) — the mechanism that produces the paper's
``if x <= 0`` repair for the complex square root.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.fpcore.ast import Expr, If, Op, Var, num
from repro.fpcore.printer import format_expr
from repro.improve.evaluate import ErrorEvaluator
from repro.improve.patterns import rewrite_everywhere
from repro.improve.rules import Rule, all_rules
from repro.improve.simplify import simplify


@dataclass
class SearchSettings:
    """Search budget knobs."""

    beam_width: int = 6
    generations: int = 4
    max_candidates_per_generation: int = 3000
    max_expression_size: int = 60
    try_regimes: bool = True
    #: Improvement below this many bits does not count (noise floor).
    min_improvement_bits: float = 1.0


@dataclass
class ImprovementResult:
    """Outcome of one improvement attempt."""

    original: Expr
    best: Expr
    initial_error: float
    best_error: float
    regime_variable: Optional[str] = None

    @property
    def improvement(self) -> float:
        return self.initial_error - self.best_error

    def improved(self, threshold: float = 1.0) -> bool:
        return self.improvement >= threshold

    def describe(self) -> str:
        return (
            f"{self.initial_error:.1f} -> {self.best_error:.1f} bits"
            f" ({format_expr(self.best)})"
        )


def _expression_size(expr: Expr) -> int:
    if isinstance(expr, Op):
        return 1 + sum(_expression_size(a) for a in expr.args)
    if isinstance(expr, If):
        return 1 + sum(
            _expression_size(e) for e in (expr.cond, expr.then, expr.orelse)
        )
    return 1


class Improver:
    """Beam-search improver over a fixed evaluator."""

    def __init__(
        self,
        evaluator: ErrorEvaluator,
        rules: Optional[Sequence[Rule]] = None,
        settings: Optional[SearchSettings] = None,
    ) -> None:
        self.evaluator = evaluator
        self.rules = list(rules) if rules is not None else all_rules()
        self.settings = settings if settings is not None else SearchSettings()

    # ------------------------------------------------------------------

    def improve(self, expr: Optional[Expr] = None) -> ImprovementResult:
        """Search for a lower-error equivalent of the spec (or expr)."""
        settings = self.settings
        start = simplify(expr if expr is not None else self.evaluator.spec)
        initial_error = self.evaluator.average_error(start)
        scored: Dict[str, Tuple[float, Expr]] = {}

        def consider(candidate: Expr) -> None:
            if _expression_size(candidate) > settings.max_expression_size:
                return
            key = format_expr(candidate)
            if key in scored:
                return
            scored[key] = (self.evaluator.average_error(candidate), candidate)

        consider(start)
        beam = [start]
        for __ in range(settings.generations):
            produced = 0
            for current in beam:
                for rule in self.rules:
                    for rewritten in rewrite_everywhere(
                        current, rule.lhs, rule.rhs
                    ):
                        consider(simplify(rewritten))
                        produced += 1
                        if produced >= settings.max_candidates_per_generation:
                            break
                    if produced >= settings.max_candidates_per_generation:
                        break
                if produced >= settings.max_candidates_per_generation:
                    break
            ranked = sorted(
                scored.values(), key=lambda item: (item[0], _expression_size(item[1]))
            )
            beam = [candidate for __, candidate in ranked[: settings.beam_width]]
        best_error, best = min(
            scored.values(), key=lambda item: (item[0], _expression_size(item[1]))
        )
        result = ImprovementResult(
            original=start,
            best=best,
            initial_error=initial_error,
            best_error=best_error,
        )
        if settings.try_regimes:
            regime = self._try_regimes(scored)
            if regime is not None and regime.best_error < result.best_error - 0.5:
                regime.initial_error = initial_error
                result = regime
        return result

    # ------------------------------------------------------------------
    # Regime inference (Herbie's branch synthesis, simplified)
    # ------------------------------------------------------------------

    def _try_regimes(
        self, scored: Dict[str, Tuple[float, Expr]]
    ) -> Optional[ImprovementResult]:
        """Try branching on each variable's sign or median threshold.

        For each split, pick the best candidate *per side* from the
        already-scored pool and stitch them with an If.
        """
        evaluator = self.evaluator
        if len(evaluator.points) < 4 or len(scored) < 2:
            return None
        # Keep the best handful of candidates for per-side evaluation.
        pool = sorted(scored.values(), key=lambda item: item[0])[:12]
        best_result: Optional[ImprovementResult] = None
        for axis, variable in enumerate(evaluator.variables):
            values = sorted(p[axis] for p in evaluator.points)
            thresholds = {0.0, values[len(values) // 2]}
            for threshold in thresholds:
                left_idx = [
                    i for i, p in enumerate(evaluator.points)
                    if p[axis] <= threshold
                ]
                right_idx = [
                    i for i, p in enumerate(evaluator.points)
                    if p[axis] > threshold
                ]
                if len(left_idx) < 2 or len(right_idx) < 2:
                    continue
                left_eval = evaluator.subset(left_idx)
                right_eval = evaluator.subset(right_idx)
                left_error, left_best = min(
                    ((left_eval.average_error(c), c) for __, c in pool),
                    key=lambda item: item[0],
                )
                right_error, right_best = min(
                    ((right_eval.average_error(c), c) for __, c in pool),
                    key=lambda item: item[0],
                )
                if left_best == right_best:
                    continue
                combined = If(
                    Op("<=", (Var(variable), num(threshold))),
                    left_best,
                    right_best,
                )
                total = evaluator.average_error(combined)
                if best_result is None or total < best_result.best_error:
                    best_result = ImprovementResult(
                        original=evaluator.spec,
                        best=combined,
                        initial_error=math.nan,
                        best_error=total,
                        regime_variable=variable,
                    )
        return best_result


def improve_expression(
    expr: Expr,
    variables: Sequence[str],
    points: Sequence[Sequence[float]],
    settings: Optional[SearchSettings] = None,
    context=None,
) -> ImprovementResult:
    """One-call improvement of an expression on given sample points."""
    evaluator = ErrorEvaluator(expr, variables, points, context=context)
    return Improver(evaluator, settings=settings).improve()


def judge_improvable(
    expr: Expr,
    variables: Sequence[str],
    points: Sequence[Sequence[float]],
    threshold_bits: float = 1.0,
    settings: Optional[SearchSettings] = None,
    context=None,
) -> ImprovementResult:
    """The Section 8.1 oracle call: can this fragment be improved?

    A candidate root cause is a *true* root cause when rewriting it
    reduces sampled error by at least ``threshold_bits``.
    """
    result = improve_expression(
        expr, variables, points, settings=settings, context=context
    )
    return result
