"""The rewrite-rule database of the mini-Herbie.

Rules are mathematical identities over the reals; like Herbie, the
search applies them without soundness side-conditions and lets the
sampled-error objective decide what helps (a rewrite that divides by a
quantity that can be zero simply scores badly on those samples).

The selection covers the families Herbie's paper highlights: conjugate
tricks for cancellation, fraction arithmetic, exp/log and trig
identities, compensation-friendly regroupings, and the specialised
library functions (expm1, log1p, hypot, fma).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.fpcore.ast import Expr
from repro.fpcore.parser import parse_expr


@dataclass(frozen=True)
class Rule:
    """A named left-to-right rewrite."""

    name: str
    lhs: Expr
    rhs: Expr


def _rule(name: str, lhs: str, rhs: str) -> Rule:
    return Rule(name, parse_expr(lhs), parse_expr(rhs))


def _bidirectional(name: str, left: str, right: str) -> Tuple[Rule, Rule]:
    return (
        _rule(name, left, right),
        _rule(name + "-rev", right, left),
    )


_RULES: List[Rule] = [
    # --- commutativity / associativity / regrouping -------------------
    _rule("add-commute", "(+ a b)", "(+ b a)"),
    _rule("mul-commute", "(* a b)", "(* b a)"),
    *_bidirectional("add-assoc", "(+ (+ a b) c)", "(+ a (+ b c))"),
    *_bidirectional("mul-assoc", "(* (* a b) c)", "(* a (* b c))"),
    *_bidirectional("sub-chain", "(- (- a b) c)", "(- a (+ b c))"),
    *_bidirectional("add-sub-swap", "(- (+ a b) c)", "(+ a (- b c))"),
    _rule("sub-commute-neg", "(- a b)", "(- (- b a))"),  # parsed as neg
    # --- identities ----------------------------------------------------
    _rule("add-zero", "(+ a 0)", "a"),
    _rule("sub-zero", "(- a 0)", "a"),
    _rule("mul-one", "(* a 1)", "a"),
    _rule("div-one", "(/ a 1)", "a"),
    _rule("sub-self", "(- a a)", "0"),
    _rule("div-self", "(/ a a)", "1"),
    _rule("add-self", "(+ a a)", "(* 2 a)"),
    *_bidirectional("neg-sub", "(- a)", "(- 0 a)"),
    _rule("neg-of-diff", "(- (- a b))", "(- b a)"),
    # --- cancellation shortcuts -----------------------------------------
    _rule("cancel-add-left", "(- (+ a b) a)", "b"),
    _rule("cancel-add-right", "(- (+ a b) b)", "a"),
    _rule("cancel-sub", "(+ (- a b) b)", "a"),
    # --- fractions -------------------------------------------------------
    *_bidirectional(
        "frac-sub", "(- (/ 1 a) (/ 1 b))", "(/ (- b a) (* a b))"
    ),
    *_bidirectional(
        "frac-common", "(- (/ a c) (/ b c))", "(/ (- a b) c)"
    ),
    *_bidirectional("div-mul", "(/ (/ a b) c)", "(/ a (* b c))"),
    *_bidirectional("mul-div", "(* a (/ b c))", "(/ (* a b) c)"),
    _rule("div-flip", "(/ a (/ b c))", "(/ (* a c) b)"),
    *_bidirectional("div-split", "(/ (+ a b) c)", "(+ (/ a c) (/ b c))"),
    *_bidirectional("div-split-sub", "(/ (- a b) c)", "(- (/ a c) (/ b c))"),
    # --- distribution ----------------------------------------------------
    *_bidirectional("distribute", "(* a (+ b c))", "(+ (* a b) (* a c))"),
    *_bidirectional("distribute-sub", "(* a (- b c))", "(- (* a b) (* a c))"),
    *_bidirectional(
        "difference-of-squares", "(- (* a a) (* b b))", "(* (- a b) (+ a b))"
    ),
    # --- conjugates (the cancellation killers) ---------------------------
    _rule(
        "sqrt-conjugate",
        "(- (sqrt a) (sqrt b))",
        "(/ (- a b) (+ (sqrt a) (sqrt b)))",
    ),
    _rule(
        "sqrt-conjugate-sum",
        "(+ (sqrt a) (sqrt b))",
        "(/ (- a b) (- (sqrt a) (sqrt b)))",
    ),
    _rule(
        "flip-sub",
        "(- a b)",
        "(/ (- (* a a) (* b b)) (+ a b))",
    ),
    _rule(
        "sqrt-sub-var",
        "(- (sqrt a) b)",
        "(/ (- a (* b b)) (+ (sqrt a) b))",
    ),
    # --- squares ----------------------------------------------------------
    *_bidirectional("sqr-sqrt", "(* (sqrt a) (sqrt a))", "a"),
    _rule("sqrt-of-square", "(sqrt (* a a))", "(fabs a)"),
    *_bidirectional("sqrt-prod", "(sqrt (* a b))", "(* (sqrt a) (sqrt b))"),
    *_bidirectional("hypot-def", "(sqrt (+ (* a a) (* b b)))", "(hypot a b)"),
    # --- exp / log ---------------------------------------------------------
    _rule("expm1-def", "(- (exp a) 1)", "(expm1 a)"),
    _rule("expm1-def-flip", "(- 1 (exp a))", "(- (expm1 a))"),
    _rule("log1p-def", "(log (+ 1 a))", "(log1p a)"),
    _rule("log1p-def-comm", "(log (+ a 1))", "(log1p a)"),
    *_bidirectional("exp-sum", "(exp (+ a b))", "(* (exp a) (exp b))"),
    *_bidirectional("exp-diff", "(exp (- a b))", "(/ (exp a) (exp b))"),
    _rule("exp-log", "(exp (log a))", "a"),
    _rule("log-exp", "(log (exp a))", "a"),
    *_bidirectional("log-prod", "(log (* a b))", "(+ (log a) (log b))"),
    *_bidirectional("log-div", "(log (/ a b))", "(- (log a) (log b))"),
    *_bidirectional("pow-def", "(pow a b)", "(exp (* b (log a)))"),
    _rule("pow-half", "(pow a 1/2)", "(sqrt a)"),
    _rule("log1p-expm1", "(log1p (expm1 a))", "a"),
    _rule("expm1-log1p", "(expm1 (log1p a))", "a"),
    # --- trigonometry --------------------------------------------------------
    _rule("sin-over-cos", "(/ (sin a) (cos a))", "(tan a)"),
    *_bidirectional(
        "one-minus-cos", "(- 1 (cos a))",
        "(* 2 (* (sin (/ a 2)) (sin (/ a 2))))",
    ),
    _rule(
        "half-angle-tan", "(/ (- 1 (cos a)) (sin a))", "(tan (/ a 2))"
    ),
    _rule(
        "pythagorean-sin", "(- 1 (* (cos a) (cos a)))", "(* (sin a) (sin a))"
    ),
    _rule(
        "pythagorean-cos", "(- 1 (* (sin a) (sin a)))", "(* (cos a) (cos a))"
    ),
    *_bidirectional(
        "sin-diff", "(- (sin (+ a b)) (sin a))",
        "(+ (* (sin a) (- (cos b) 1)) (* (cos a) (sin b)))",
    ),
    *_bidirectional(
        "cos-diff", "(- (cos (+ a b)) (cos a))",
        "(- (* (cos a) (- (cos b) 1)) (* (sin a) (sin b)))",
    ),
    # --- hyperbolics -----------------------------------------------------------
    _rule("sinh-def", "(- (exp a) (exp (- a)))", "(* 2 (sinh a))"),
    _rule(
        "cosh-minus-one", "(- (cosh a) 1)",
        "(* 2 (* (sinh (/ a 2)) (sinh (/ a 2))))",
    ),
    _rule(
        "exp-sum-two", "(+ (- (exp a) 2) (exp (- a)))",
        "(* 2 (- (cosh a) 1))",
    ),
    # --- fused ops ----------------------------------------------------------------
    *_bidirectional("fma-def", "(+ (* a b) c)", "(fma a b c)"),
    _rule("fms-def", "(- (* a b) c)", "(fma a b (- c))"),
]


def all_rules() -> List[Rule]:
    """The full rule database (copied so callers may filter freely)."""
    return list(_RULES)


def rules_by_name() -> dict:
    return {rule.name: rule for rule in _RULES}
