"""Algebraic simplification: keeps rewrite candidates small.

Constant folding is done in exact rational arithmetic (so it never
introduces rounding error of its own), plus a few size-reducing
identities.  Run after every rewrite generation, like Herbie's
simplification pass.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.fpcore.ast import Expr, If, Num, Op, num

_ZERO = Fraction(0)
_ONE = Fraction(1)


def _fold_constant(op: str, args) -> Optional[Fraction]:
    """Evaluate an all-constant application exactly, if defined."""
    values = [a.value for a in args]
    if op == "+":
        return values[0] + values[1]
    if op == "-":
        return values[0] - values[1]
    if op == "*":
        return values[0] * values[1]
    if op == "/":
        if values[1] == 0:
            return None
        return values[0] / values[1]
    if op == "neg":
        return -values[0]
    if op == "fabs":
        return abs(values[0])
    return None


def simplify(expr: Expr) -> Expr:
    """Bottom-up constant folding and identity elimination."""
    if isinstance(expr, Op):
        args = tuple(simplify(a) for a in expr.args)
        expr = Op(expr.op, args)
        if all(isinstance(a, Num) for a in args):
            folded = _fold_constant(expr.op, args)
            if folded is not None:
                return Num(folded)
        return _identities(expr)
    if isinstance(expr, If):
        return If(simplify(expr.cond), simplify(expr.then), simplify(expr.orelse))
    return expr


def _is_const(expr: Expr, value: Fraction) -> bool:
    return isinstance(expr, Num) and expr.value == value


def _identities(expr: Op) -> Expr:
    op, args = expr.op, expr.args
    if op == "+":
        left, right = args
        if _is_const(left, _ZERO):
            return right
        if _is_const(right, _ZERO):
            return left
    elif op == "-":
        if len(args) == 2:
            left, right = args
            if _is_const(right, _ZERO):
                return left
            if _is_const(left, _ZERO):
                return simplify_neg(right)
            if left == right:
                return num(0)
    elif op == "*":
        left, right = args
        if _is_const(left, _ONE):
            return right
        if _is_const(right, _ONE):
            return left
        if _is_const(left, _ZERO) or _is_const(right, _ZERO):
            # NOTE: unsound for NaN/inf operands, like Herbie's own
            # simplifier; the sampled objective vets the result.
            return num(0)
    elif op == "/":
        left, right = args
        if _is_const(right, _ONE):
            return left
        if _is_const(left, _ZERO):
            return num(0)
    elif op == "neg":
        (operand,) = args
        if isinstance(operand, Op) and operand.op == "neg":
            return operand.args[0]
        if isinstance(operand, Num):
            return Num(-operand.value)
    elif op == "sqrt":
        (operand,) = args
        if isinstance(operand, Num) and operand.value >= 0:
            root = _exact_sqrt(operand.value)
            if root is not None:
                return Num(root)
    elif op == "pow":
        base, exponent = args
        if _is_const(exponent, _ONE):
            return base
        if _is_const(exponent, _ZERO):
            return num(1)
    return expr


def simplify_neg(expr: Expr) -> Expr:
    if isinstance(expr, Num):
        return Num(-expr.value)
    if isinstance(expr, Op) and expr.op == "neg":
        return expr.args[0]
    return Op("neg", (expr,))


def _exact_sqrt(value: Fraction) -> Optional[Fraction]:
    import math

    numerator = math.isqrt(value.numerator)
    denominator = math.isqrt(value.denominator)
    if numerator * numerator == value.numerator \
            and denominator * denominator == value.denominator:
        return Fraction(numerator, denominator)
    return None
