"""The sampled-error objective for the improvement search.

Following Herbie, the ground truth for a candidate rewriting is the
*original* expression evaluated in high-precision reals on each sample
point — computed once and cached; every candidate is then scored with
cheap double-precision evaluation against that cached truth.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.bigfloat import BigFloat, Context
from repro.fpcore.ast import Expr
from repro.fpcore.evaluator import EvaluationError, eval_double, eval_real
from repro.ieee import MAX_ERROR_BITS, bits_of_error


class ErrorEvaluator:
    """Scores candidate expressions against a fixed spec + sample set."""

    def __init__(
        self,
        spec: Expr,
        variables: Sequence[str],
        points: Sequence[Sequence[float]],
        context: Optional[Context] = None,
    ) -> None:
        self.spec = spec
        self.variables = list(variables)
        self.points = [list(p) for p in points]
        self.context = context if context is not None else Context(precision=192)
        self.truth: List[float] = []
        for point in self.points:
            env = {
                name: BigFloat.from_float(value)
                for name, value in zip(self.variables, point)
            }
            try:
                real = eval_real(spec, env, self.context)
                self.truth.append(
                    real.to_float() if isinstance(real, BigFloat) else math.nan
                )
            except (EvaluationError, OverflowError, ZeroDivisionError):
                self.truth.append(math.nan)

    # ------------------------------------------------------------------

    def errors(self, candidate: Expr) -> List[float]:
        """Per-point bits of error of ``candidate``."""
        result = []
        for point, truth in zip(self.points, self.truth):
            env: Dict[str, float] = dict(zip(self.variables, point))
            try:
                value = eval_double(candidate, env)
            except (EvaluationError, OverflowError, ZeroDivisionError):
                result.append(MAX_ERROR_BITS)
                continue
            if isinstance(value, bool):
                result.append(MAX_ERROR_BITS)
            elif math.isnan(truth):
                # Spec itself is undefined here (e.g. a real pole):
                # score 0 if the candidate is also NaN, full otherwise.
                result.append(0.0 if math.isnan(value) else MAX_ERROR_BITS)
            else:
                result.append(bits_of_error(value, truth))
        return result

    def average_error(self, candidate: Expr) -> float:
        """Mean bits of error over the sample points."""
        errors = self.errors(candidate)
        if not errors:
            return 0.0
        return sum(errors) / len(errors)

    def subset(self, indices: Sequence[int]) -> "ErrorEvaluator":
        """An evaluator restricted to a subset of the points (for
        regime inference); reuses the cached ground truth."""
        clone = object.__new__(ErrorEvaluator)
        clone.spec = self.spec
        clone.variables = self.variables
        clone.context = self.context
        clone.points = [self.points[i] for i in indices]
        clone.truth = [self.truth[i] for i in indices]
        return clone
