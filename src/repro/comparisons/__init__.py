"""Reimplementations of the Table 1 comparison tools' strategies.

Each tool is a machine tracer, so all four analyses (these three plus
Herbgrind itself) run on identical programs — which is what makes the
Table 1 feature/overhead comparison meaningful.
"""

from repro.comparisons.bz import BZAnalysis, DiscreteFactorReport, run_bz
from repro.comparisons.fpdebug import FpDebugAnalysis, OpErrorRecord, run_fpdebug
from repro.comparisons.verrou import RandomRoundingTracer, VerrouReport, run_verrou

__all__ = [
    "BZAnalysis",
    "DiscreteFactorReport",
    "FpDebugAnalysis",
    "OpErrorRecord",
    "RandomRoundingTracer",
    "VerrouReport",
    "run_bz",
    "run_fpdebug",
    "run_verrou",
]
