"""A Bao-Zhang-style analysis (OOPSLA 2013).

BZ detects *possible* instability cheaply: a one-bit taint is set by a
heuristic cancellation detector (an addition/subtraction whose result
exponent drops far below its operands') and propagated; the tool
reports when tainted values reach "discrete factors" — branches, int
conversions, outputs.  The design goal is a cheap filter for deciding
when to re-run in high precision, so a high false-positive rate
(80-90% in their paper) is acceptable; Table 1's comparison points are
that it detects control divergence but offers no localization, no
shadow reals, and no input characterization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.ieee import double_exponent
from repro.machine import isa
from repro.machine.interpreter import Interpreter, Tracer
from repro.machine.values import FloatBox


@dataclass
class DiscreteFactorReport:
    """A tainted value reaching a discrete factor."""

    kind: str  # "branch" | "conversion" | "output"
    loc: Optional[str]
    hits: int = 0


class BZAnalysis(Tracer):
    """Cancellation heuristic + one-bit taint to discrete factors."""

    def __init__(self, cancellation_bits: int = 30) -> None:
        self.cancellation_bits = cancellation_bits
        self.suspect_ops: Set[int] = set()
        self.factor_reports: Dict[int, DiscreteFactorReport] = {}
        self.cancellations = 0
        self._instructions: Dict[int, isa.Instr] = {}

    # taint rides in box.shadow as a plain bool

    @staticmethod
    def _tainted(box: FloatBox) -> bool:
        return box.shadow is True

    def on_const(self, instr, box):
        box.shadow = False

    def on_read(self, instr, box, index):
        box.shadow = False

    def on_op(self, instr, op, args, result):
        taint = any(self._tainted(a) for a in args)
        if op in ("+", "-") and not taint:
            taint = self._cancelled(instr, [a.value for a in args], result.value)
        result.shadow = taint
        return None

    def on_library(self, instr, name, args, result):
        result.shadow = any(self._tainted(a) for a in args)
        return None

    def on_bitop(self, instr, box, result):
        result.shadow = self._tainted(box)

    def on_int_to_float(self, instr, value, box):
        box.shadow = False

    def _cancelled(self, instr, values: List[float], result: float) -> bool:
        """Exponent-drop heuristic: |result| lost >= N bits vs operands."""
        finite = [v for v in values if v != 0.0 and math.isfinite(v)]
        if not finite:
            return False
        if result == 0.0:
            # Exact cancellation of nonzero operands.
            drop = self.cancellation_bits
        elif not math.isfinite(result):
            return False
        else:
            drop = max(double_exponent(v) for v in finite) - double_exponent(result)
        if drop >= self.cancellation_bits:
            self.cancellations += 1
            self.suspect_ops.add(id(instr))
            self._instructions[id(instr)] = instr
            return True
        return False

    # ------------------------------------------------------------------
    # Discrete factors
    # ------------------------------------------------------------------

    def _report(self, instr, kind: str) -> None:
        record = self.factor_reports.get(id(instr))
        if record is None:
            record = DiscreteFactorReport(kind=kind, loc=getattr(instr, "loc", None))
            self.factor_reports[id(instr)] = record
            self._instructions[id(instr)] = instr
        record.hits += 1

    def on_branch(self, instr, lhs, rhs, taken):
        if self._tainted(lhs) or self._tainted(rhs):
            self._report(instr, "branch")

    def on_float_to_int(self, instr, box, result):
        if self._tainted(box):
            self._report(instr, "conversion")

    def on_out(self, instr, box):
        if self._tainted(box):
            self._report(instr, "output")

    # ------------------------------------------------------------------

    def reported_factors(self) -> List[DiscreteFactorReport]:
        return sorted(self.factor_reports.values(), key=lambda r: -r.hits)


def run_bz(
    program: isa.Program,
    input_sets: Sequence[Sequence[float]],
    cancellation_bits: int = 30,
) -> BZAnalysis:
    """Run the BZ-style analysis over several input sets."""
    analysis = BZAnalysis(cancellation_bits=cancellation_bits)
    for inputs in input_sets:
        Interpreter(program, tracer=analysis).run(inputs)
    return analysis
