"""An FpDebug-style analysis (Benz, Hildebrandt, Hack — PLDI 2012).

FpDebug shadows every value with an MPFR high-precision counterpart and
reports, per *operation address*, the error of the computed value
against its shadow.  Compared with Herbgrind (paper Table 1):

* it measures **total** error per op, not local error, so it blames
  innocent operations fed by erroneous operands;
* it has no influence tracking — its reports are not output-sensitive;
* no symbolic expressions — localization is an opcode address;
* no input characterization, no library wrapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bigfloat import BigFloat, Context, apply
from repro.core.localerror import total_error
from repro.machine import isa
from repro.machine.interpreter import Interpreter, Tracer
from repro.machine.values import FloatBox


@dataclass
class OpErrorRecord:
    """Per-instruction error statistics, FpDebug style."""

    loc: Optional[str]
    op: str
    executions: int = 0
    max_error: float = 0.0
    sum_error: float = 0.0

    @property
    def average_error(self) -> float:
        return self.sum_error / self.executions if self.executions else 0.0


class FpDebugAnalysis(Tracer):
    """Shadow-real per-op error measurement without root-cause analysis."""

    def __init__(self, precision: int = 120) -> None:
        self.context = Context(precision=precision)
        self.records: Dict[int, OpErrorRecord] = {}
        self._instructions: Dict[int, isa.Instr] = {}

    def _shadow(self, box: FloatBox) -> BigFloat:
        if box.shadow is None:
            box.shadow = BigFloat.from_float(box.value)
        return box.shadow

    def on_const(self, instr, box):
        box.shadow = BigFloat.from_float(box.value)

    def on_read(self, instr, box, index):
        box.shadow = BigFloat.from_float(box.value)

    def on_op(self, instr, op, args, result):
        shadows = [self._shadow(a) for a in args]
        try:
            real = apply(op, shadows, self.context)
        except KeyError:
            result.shadow = BigFloat.from_float(result.value)
            return None
        result.shadow = real
        record = self.records.get(id(instr))
        if record is None:
            self._instructions[id(instr)] = instr
            record = OpErrorRecord(loc=getattr(instr, "loc", None), op=op)
            self.records[id(instr)] = record
        error = total_error(result.value, real)
        record.executions += 1
        record.sum_error += error
        if error > record.max_error:
            record.max_error = error
        return None

    def on_library(self, instr, name, args, result):
        return self.on_op(instr, name, args, result)

    def on_bitop(self, instr, box, result):
        result.shadow = BigFloat.from_float(result.value)

    def on_int_to_float(self, instr, value, box):
        box.shadow = BigFloat.from_int(value)

    # ------------------------------------------------------------------

    def erroneous_operations(self, threshold: float = 5.0) -> List[OpErrorRecord]:
        """Operations whose max error exceeded the threshold, worst first.

        Note this includes every op *downstream* of an error — the
        false positives Herbgrind's local-error criterion avoids.
        """
        flagged = [r for r in self.records.values() if r.max_error > threshold]
        flagged.sort(key=lambda r: -r.max_error)
        return flagged


def run_fpdebug(
    program: isa.Program,
    input_sets: Sequence[Sequence[float]],
    precision: int = 120,
) -> FpDebugAnalysis:
    """Run the FpDebug-style analysis over several input sets."""
    analysis = FpDebugAnalysis(precision=precision)
    for inputs in input_sets:
        Interpreter(program, tracer=analysis).run(inputs)
    return analysis
