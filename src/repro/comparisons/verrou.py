"""A Verrou-style analysis (Févotte & Lathuilière, 2016).

Verrou perturbs the rounding of every floating-point operation (random
rounding / Monte-Carlo arithmetic) and re-runs the program; digits that
stay stable across runs are trustworthy, digits that wobble are not.
It needs no shadow values — hence its low overhead in the paper's
Table 1 — but it can only say *that* something is unstable, not where
(localization "None" in the table).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bigfloat import BigFloat, Context, ROUND_DOWN, ROUND_UP, apply
from repro.machine import isa
from repro.machine.interpreter import Interpreter, Tracer


class RandomRoundingTracer(Tracer):
    """Overrides each operation's result with a randomly-directed
    correctly-rounded value (the Monte-Carlo arithmetic kernel)."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self._up = Context(precision=53, rounding=ROUND_UP)
        self._down = Context(precision=53, rounding=ROUND_DOWN)

    def _perturbed(self, op: str, values: Sequence[float]) -> Optional[float]:
        context = self._up if self.rng.random() < 0.5 else self._down
        try:
            result = apply(op, [BigFloat.from_float(v) for v in values], context)
        except KeyError:
            return None
        return result.to_float()

    def on_op(self, instr, op, args, result):
        return self._perturbed(op, [a.value for a in args])

    def on_library(self, instr, name, args, result):
        return self._perturbed(name, [a.value for a in args])


@dataclass
class VerrouReport:
    """Stability statistics for each program output."""

    means: List[float]
    spreads: List[float]  # max - min across perturbed runs
    reference: List[float]

    def significant_digits(self, index: int) -> float:
        """Estimated stable significant (decimal) digits of output i."""
        mean = self.means[index]
        spread = self.spreads[index]
        if spread == 0.0:
            return 17.0
        if mean == 0.0 or math.isnan(mean) or math.isnan(spread):
            return 0.0
        ratio = abs(spread / mean)
        if ratio == 0.0:
            return 17.0
        return max(0.0, -math.log10(ratio))

    def unstable_outputs(self, digit_threshold: float = 5.0) -> List[int]:
        """Outputs with fewer stable digits than the threshold."""
        return [
            i for i in range(len(self.means))
            if self.significant_digits(i) < digit_threshold
        ]


def run_verrou(
    program: isa.Program,
    inputs: Sequence[float],
    runs: int = 8,
    seed: int = 0,
) -> VerrouReport:
    """Run the program ``runs`` times under random rounding."""
    reference = Interpreter(program).run(list(inputs))
    samples: List[List[float]] = []
    for run in range(runs):
        tracer = RandomRoundingTracer(random.Random(seed * 1000 + run))
        samples.append(Interpreter(program, tracer=tracer).run(list(inputs)))
    means = []
    spreads = []
    for position in range(len(reference)):
        values = [s[position] for s in samples]
        finite = [v for v in values if not math.isnan(v)]
        if not finite:
            means.append(math.nan)
            spreads.append(math.nan)
            continue
        means.append(sum(finite) / len(finite))
        spreads.append(max(finite) - min(finite))
    return VerrouReport(means=means, spreads=spreads, reference=reference)
