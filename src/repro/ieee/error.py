"""The bits-of-error metric used throughout the analysis.

Herbgrind (following Herbie) measures the error of a computed double
``approx`` against the correctly rounded shadow-real result ``exact`` as

    log2(1 + ulps(approx, exact))

capped at :data:`MAX_ERROR_BITS` (64).  The paper's Gram-Schmidt case
study reports NaN results as *maximal* error, so any NaN involvement
yields the cap.
"""

from __future__ import annotations

import math

from repro.ieee.float32 import ulps_between_single
from repro.ieee.float64 import ulps_between

#: Error assigned to NaNs and the metric's cap: one bit per bit of a double.
MAX_ERROR_BITS = 64.0

#: Cap used when measuring single-precision results.
MAX_ERROR_BITS_SINGLE = 32.0


def bits_of_error(approx: float, exact: float) -> float:
    """Bits of error of ``approx`` relative to ``exact`` (both doubles).

    ``exact`` should already be the shadow-real result rounded to double
    (see :meth:`repro.bigfloat.BigFloat.to_float`).  Returns a value in
    [0, 64]; NaN anywhere yields 64, matching the paper's treatment of
    invalid results as maximal error.
    """
    if approx == exact:
        return 0.0  # the common exact case (also covers ±0.0: distance 0)
    if math.isnan(approx) or math.isnan(exact):
        return MAX_ERROR_BITS
    distance = ulps_between(approx, exact)
    if distance == 0:
        return 0.0
    return min(MAX_ERROR_BITS, math.log2(1 + distance))


def bits_of_error_single(approx: float, exact: float) -> float:
    """Bits of error measured in the binary32 lattice (capped at 32)."""
    if approx == exact:
        return 0.0  # the common exact case (also covers ±0.0: distance 0)
    if math.isnan(approx) or math.isnan(exact):
        return MAX_ERROR_BITS_SINGLE
    distance = ulps_between_single(approx, exact)
    if distance == 0:
        return 0.0
    return min(MAX_ERROR_BITS_SINGLE, math.log2(1 + distance))


def significant_error(bits: float, threshold: float = 5.0) -> bool:
    """The paper's significance test: more than ``threshold`` bits of error.

    Section 8.1 uses 5 bits as the cut-off between noise and significant
    inaccuracy; the threshold is exposed because Figure 5a sweeps it.
    """
    return bits > threshold
