"""The bits-of-error metric used throughout the analysis.

Herbgrind (following Herbie) measures the error of a computed double
``approx`` against the correctly rounded shadow-real result ``exact`` as

    log2(1 + ulps(approx, exact))

capped at :data:`MAX_ERROR_BITS` (64).  The paper's Gram-Schmidt case
study reports NaN results as *maximal* error, so any NaN involvement
yields the cap.
"""

from __future__ import annotations

import math

from repro.ieee.float32 import ulps_between_single
from repro.ieee.float64 import double_to_bits, ulps_between

#: Error assigned to NaNs and the metric's cap: one bit per bit of a double.
MAX_ERROR_BITS = 64.0

#: Cap used when measuring single-precision results.
MAX_ERROR_BITS_SINGLE = 32.0

_ABS_MASK = 0x7FFFFFFFFFFFFFFF
_EXP_INF = 0x7FF0000000000000
#: Smallest normal magnitude pattern (exponent field 1, mantissa 0).
_MIN_NORMAL_BITS = 0x0010000000000000
_LOG2 = math.log2


def bits_of_error(approx: float, exact: float) -> float:
    """Bits of error of ``approx`` relative to ``exact`` (both doubles).

    ``exact`` should already be the shadow-real result rounded to double
    (see :meth:`repro.bigfloat.BigFloat.to_float`).  Returns a value in
    [0, 64]; NaN anywhere yields 64, matching the paper's treatment of
    invalid results as maximal error.
    """
    if approx == exact:
        return 0.0  # the common exact case (also covers ±0.0: distance 0)
    if math.isnan(approx) or math.isnan(exact):
        return MAX_ERROR_BITS
    distance = ulps_between(approx, exact)
    if distance == 0:
        return 0.0
    return min(MAX_ERROR_BITS, math.log2(1 + distance))


def bits_of_error_fast(approx: float, exact: float) -> float:
    """:func:`bits_of_error`, reimplemented on raw 64-bit patterns.

    The per-operation pipeline's error stage calls this once per
    executed operation, so its common case — two distinct finite
    *normal* doubles — runs entirely in integer arithmetic on the
    unpacked sign/exponent/mantissa fields: NaN detection is one
    integer compare of the exponent field against the all-ones
    pattern, the ordered-int mapping is a sign-bit test, and the ulp
    distance is an integer subtraction.  Values whose exponents sit at
    the edges of the lattice — infinities, subnormals, zeros — fall
    back to :func:`bits_of_error` (the exact metric), which the edge
    suite ``tests/core/test_error_fast.py`` pins this path against
    exhaustively.

    Results are bit-identical to :func:`bits_of_error` for every input
    pair; the engine-parity suite enforces that end to end.
    """
    if approx == exact:
        return 0.0  # the common exact case (also covers ±0.0)
    a = double_to_bits(approx)
    b = double_to_bits(exact)
    am = a & _ABS_MASK
    bm = b & _ABS_MASK
    if am >= _EXP_INF or bm >= _EXP_INF:
        # NaN (mantissa ≠ 0) saturates; infinities live on the ulp
        # lattice — both are the reference implementation's edge cases.
        return bits_of_error(approx, exact)
    if am < _MIN_NORMAL_BITS or bm < _MIN_NORMAL_BITS:
        # Subnormals and zeros: exponents are no longer a magnitude
        # ladder down here, keep the exact metric authoritative.
        return bits_of_error(approx, exact)
    distance = (am if a == am else -am) - (bm if b == bm else -bm)
    if distance < 0:
        distance = -distance
    return min(MAX_ERROR_BITS, _LOG2(1 + distance))


def bits_of_error_single(approx: float, exact: float) -> float:
    """Bits of error measured in the binary32 lattice (capped at 32)."""
    if approx == exact:
        return 0.0  # the common exact case (also covers ±0.0: distance 0)
    if math.isnan(approx) or math.isnan(exact):
        return MAX_ERROR_BITS_SINGLE
    distance = ulps_between_single(approx, exact)
    if distance == 0:
        return 0.0
    return min(MAX_ERROR_BITS_SINGLE, math.log2(1 + distance))


def significant_error(bits: float, threshold: float = 5.0) -> bool:
    """The paper's significance test: more than ``threshold`` bits of error.

    Section 8.1 uses 5 bits as the cut-off between noise and significant
    inaccuracy; the threshold is exposed because Figure 5a sweeps it.
    """
    return bits > threshold
