"""Bit-level manipulation of IEEE-754 single-precision values.

The machine interpreter supports single-precision operands (the paper's
VEX machine distinguishes F32 and F64 values); these helpers round
doubles through the single format and measure single-precision ulps.
"""

from __future__ import annotations

import math
import struct

#: Largest finite single-precision value.
FLOAT32_MAX = struct.unpack("<f", struct.pack("<I", 0x7F7FFFFF))[0]

_SIGN_BIT32 = 1 << 31


def to_single(value: float) -> float:
    """Round a double to the nearest single-precision value (as a double).

    This is the rounding a store-to-float32 performs; the result is a
    Python float that is exactly representable in binary32 (or inf/NaN).
    """
    return struct.unpack("<f", struct.pack("<f", value))[0]


def double_fits_single(value: float) -> bool:
    """True when ``value`` round-trips through binary32 unchanged."""
    if math.isnan(value):
        return True
    return to_single(value) == value and not (
        value == 0.0
        and math.copysign(1.0, value)
        != math.copysign(1.0, to_single(value))
    )


def single_to_bits(value: float) -> int:
    """The raw 32-bit pattern of ``value`` after rounding to binary32."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_single(bits: int) -> float:
    """The single-precision value (widened to double) for a 32-bit pattern."""
    if not 0 <= bits < (1 << 32):
        raise ValueError(f"bit pattern out of range: {bits:#x}")
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def _ordered_int32(value: float) -> int:
    if math.isnan(value):
        raise ValueError("ordered int is undefined for NaN")
    bits = single_to_bits(value)
    if bits & _SIGN_BIT32:
        return -(bits ^ _SIGN_BIT32)
    return bits


def ulps_between_single(a: float, b: float) -> int:
    """Ulp distance between two values measured in the binary32 lattice."""
    return abs(_ordered_int32(a) - _ordered_int32(b))
