"""IEEE-754 bit-level utilities and the bits-of-error metric.

The Herbgrind analysis measures floating-point error as a *bits of error*
quantity: the base-2 logarithm of the ulp distance between the computed
double and the correctly rounded shadow-real result (the metric used by
Herbie and by the paper's evaluation, capped at 64 bits).
"""

from repro.ieee.float64 import (
    DOUBLE_MAX,
    DOUBLE_MIN_NORMAL,
    DOUBLE_MIN_SUBNORMAL,
    bits_to_double,
    copysign_bit,
    double_exponent,
    double_to_bits,
    is_negative_zero,
    next_double,
    ordered_int,
    prev_double,
    ulp,
    ulps_between,
)
from repro.ieee.float32 import (
    FLOAT32_MAX,
    bits_to_single,
    double_fits_single,
    single_to_bits,
    to_single,
    ulps_between_single,
)
from repro.ieee.error import (
    MAX_ERROR_BITS,
    bits_of_error,
    bits_of_error_single,
    significant_error,
)

__all__ = [
    "DOUBLE_MAX",
    "DOUBLE_MIN_NORMAL",
    "DOUBLE_MIN_SUBNORMAL",
    "FLOAT32_MAX",
    "MAX_ERROR_BITS",
    "bits_of_error",
    "bits_of_error_single",
    "bits_to_double",
    "bits_to_single",
    "copysign_bit",
    "double_exponent",
    "double_fits_single",
    "double_to_bits",
    "is_negative_zero",
    "next_double",
    "ordered_int",
    "prev_double",
    "significant_error",
    "single_to_bits",
    "to_single",
    "ulp",
    "ulps_between",
    "ulps_between_single",
]
