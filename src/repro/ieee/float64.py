"""Bit-level manipulation of IEEE-754 double-precision values.

These helpers form the lowest layer of the reproduction: everything above
(the bigfloat shadow reals, the machine interpreter, the error metric)
speaks in terms of raw 64-bit patterns and ulp distances defined here.
"""

from __future__ import annotations

import math
import struct

#: Largest finite double, 0x7FEF...F.
DOUBLE_MAX = struct.unpack("<d", struct.pack("<Q", 0x7FEFFFFFFFFFFFFF))[0]

#: Smallest positive normal double, 2**-1022.
DOUBLE_MIN_NORMAL = 2.0 ** -1022

#: Smallest positive subnormal double, 2**-1074.
DOUBLE_MIN_SUBNORMAL = 2.0 ** -1074

_SIGN_BIT = 1 << 63
_EXP_MASK = 0x7FF0000000000000
_MAN_MASK = 0x000FFFFFFFFFFFFF

#: Pre-compiled converters: these run for every traced operation, and
#: bound Struct methods skip the per-call format-cache lookup.
_PACK_DOUBLE = struct.Struct("<d").pack
_UNPACK_BITS = struct.Struct("<Q").unpack
_PACK_BITS = struct.Struct("<Q").pack
_UNPACK_DOUBLE = struct.Struct("<d").unpack


def double_to_bits(value: float) -> int:
    """Return the raw 64-bit pattern of ``value`` as an unsigned integer."""
    return _UNPACK_BITS(_PACK_DOUBLE(value))[0]


def bits_to_double(bits: int) -> float:
    """Return the double whose raw pattern is the unsigned 64-bit ``bits``."""
    if not 0 <= bits < (1 << 64):
        raise ValueError(f"bit pattern out of range: {bits:#x}")
    return _UNPACK_DOUBLE(_PACK_BITS(bits))[0]


def is_negative_zero(value: float) -> bool:
    """True exactly for ``-0.0`` (which compares equal to ``0.0``)."""
    return value == 0.0 and math.copysign(1.0, value) < 0.0


def copysign_bit(value: float) -> int:
    """Return the sign bit of ``value``: 0 for positive, 1 for negative.

    Unlike comparisons this distinguishes -0.0 from +0.0 and gives the
    sign bit of NaNs, mirroring what a binary tool sees.
    """
    return double_to_bits(value) >> 63


def double_exponent(value: float) -> int:
    """The unbiased binary exponent of a nonzero finite double.

    For subnormals the stored exponent field is zero; we report the
    mathematical exponent (``floor(log2(|value|))``).
    """
    if value == 0.0 or math.isinf(value) or math.isnan(value):
        raise ValueError(f"no exponent for {value!r}")
    __, exp = math.frexp(value)
    return exp - 1


def ordered_int(value: float) -> int:
    """Map a double to an integer whose ordering matches float ordering.

    Non-negative doubles map to their bit pattern; negative doubles map
    to the negation of their magnitude pattern.  Consecutive doubles map
    to consecutive integers, so ulp distances are integer differences.
    NaNs are rejected — callers must handle them first.
    """
    if math.isnan(value):
        raise ValueError("ordered_int is undefined for NaN")
    bits = double_to_bits(value)
    if bits & _SIGN_BIT:
        return -(bits ^ _SIGN_BIT)
    return bits


def ulps_between(a: float, b: float) -> int:
    """The number of representable doubles strictly between ``a`` and ``b``,
    plus one if they differ (i.e. the ulp distance in the ordered-int space).

    ``+0.0`` and ``-0.0`` are treated as the same point (distance 0).
    """
    return abs(ordered_int(a) - ordered_int(b))


def next_double(value: float) -> float:
    """The next representable double above ``value``."""
    if math.isnan(value):
        return value
    if value == math.inf:
        return value
    ordered = ordered_int(value) + 1
    return _from_ordered(ordered)


def prev_double(value: float) -> float:
    """The next representable double below ``value``."""
    if math.isnan(value):
        return value
    if value == -math.inf:
        return value
    ordered = ordered_int(value) - 1
    return _from_ordered(ordered)


def _from_ordered(ordered: int) -> float:
    if ordered < 0:
        bits = (-ordered) | _SIGN_BIT
    else:
        bits = ordered
    return bits_to_double(bits)


def ulp(value: float) -> float:
    """The gap between ``value`` and the next double away from zero."""
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"no ulp for {value!r}")
    if value >= 0.0:
        return next_double(value) - value
    return value - prev_double(value)
