"""The graceful-degradation ladder over the accelerated analysis stack.

The standing parity invariant (PRs 2–7) — corpus reports byte-identical
across engine × precision-policy × substrate × batched layers — makes
every fast layer an *untrusted accelerator with a verified fallback*: a
slower configuration produces the same bytes.  The ladder turns that
invariant into availability.  On a classified failure
(:class:`~repro.resilience.errors.DegradableError` or
:class:`~repro.machine.interpreter.MachineError`) it retries the
analysis down the stack, one rung at a time, cumulatively::

    initial        the request as given
    working-tier   hardware double-double shadow tier off
    sequential     batched lockstep off (compiled engine kept)
    reference      compiled engine -> reference interpreter
    python-substrate   native kernels -> the pure-python reference
    fixed-policy   adaptive precision tiers -> fixed full precision

Rungs a request already sits on are skipped (a reference-engine,
python-substrate, fixed-policy request has no ladder below it), and a
non-degradable exception propagates immediately from whatever rung
raised it.  The winning rung records its path in
``result.extra["degradation"]`` — visible to in-process callers and
the serving stats, but **stripped from the serialized JSON**
(:meth:`AnalysisResult.to_dict`) so a degraded result stays
byte-identical to the clean run, which is the whole point.

``REPRO_DEGRADE=0`` (or ``AnalysisSession(degrade=False)`` /
``herbgrind-py analyze --no-degrade``) disables the ladder: the first
failure propagates, which is what you want when *debugging* the fast
path rather than serving traffic over it.
"""

from __future__ import annotations

import dataclasses
import logging
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import (
    ENGINE_COMPILED,
    ENGINE_REFERENCE,
    resolve_hw_tier,
)
from repro.machine.interpreter import MachineError
from repro.resilience.errors import DegradableError

logger = logging.getLogger("repro.resilience")

#: Environment kill-switch for the ladder (on unless "0"/"false"/"off").
ENV_VAR = "REPRO_DEGRADE"

#: Rung names, in ladder order.
RUNG_INITIAL = "initial"
RUNG_WORKING_TIER = "working-tier"
RUNG_SEQUENTIAL = "sequential"
RUNG_REFERENCE = "reference-engine"
RUNG_PYTHON_SUBSTRATE = "python-substrate"
RUNG_FIXED_POLICY = "fixed-policy"

LADDER_ORDER = (
    RUNG_WORKING_TIER,
    RUNG_SEQUENTIAL,
    RUNG_REFERENCE,
    RUNG_PYTHON_SUBSTRATE,
    RUNG_FIXED_POLICY,
)


def degradation_enabled(override: Optional[bool] = None) -> bool:
    """The effective ladder switch: explicit override, else the env."""
    if override is not None:
        return override
    return os.environ.get(ENV_VAR, "1").strip().lower() not in (
        "0", "false", "off"
    )


def classify(exc: BaseException) -> Optional[str]:
    """The degradable-failure kind of ``exc``, or None (not ours)."""
    if isinstance(exc, DegradableError):
        return type(exc).__name__
    if isinstance(exc, MachineError):
        return "MachineError"
    return None


def _batched_possible(request) -> bool:
    """Whether the request's default feature stack batches at all."""
    if request.features is not None:
        return bool(request.features.batched)
    from repro.core.analysis import _batched_default

    return _batched_default()


class DegradationLadder:
    """The rung planner + retry driver for one request shape."""

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = degradation_enabled(enabled)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, request) -> List[Tuple[str, Any]]:
        """The (rung name, degraded request) sequence below ``request``.

        Rungs are cumulative: each keeps every downgrade of the rungs
        above it, so the bottom rung is the slowest, most trusted
        configuration (reference engine, python substrate, fixed
        policy) regardless of where the failure struck.
        """
        rungs: List[Tuple[str, Any]] = []
        config = request.config
        changes: Dict[str, Any] = {}
        base = request
        if resolve_hw_tier(config):
            # The hardware shadow tier sits below the working tier; a
            # fault there degrades to BigFloat working-tier shadows
            # first, keeping every layer above intact.
            changes["hw_tier"] = False
            base = self._working_tier_request(request)
            rungs.append((RUNG_WORKING_TIER, base))
        if config.engine == ENGINE_COMPILED:
            if _batched_possible(request):
                rungs.append((RUNG_SEQUENTIAL,
                              self._sequential_request(base)))
            changes["engine"] = ENGINE_REFERENCE
            rungs.append((RUNG_REFERENCE,
                          self._derived(request, dict(changes))))
        if config.substrate != "python":
            changes["substrate"] = "python"
            rungs.append((RUNG_PYTHON_SUBSTRATE,
                          self._derived(request, dict(changes))))
        if config.precision_policy != "fixed":
            changes["precision_policy"] = "fixed"
            rungs.append((RUNG_FIXED_POLICY,
                          self._derived(request, dict(changes))))
        return rungs

    @staticmethod
    def _derived(request, changes: Dict[str, Any]):
        derived = dataclasses.replace(
            request, config=request.config.with_(**changes)
        )
        # An explicit feature override belongs to the configuration it
        # was built for; a degraded rung re-derives its default stack.
        derived.features = None
        return derived

    @staticmethod
    def _working_tier_request(request):
        """The same request with only the hardware tier turned off.

        Unlike :meth:`_derived` this keeps an explicit feature override:
        the hardware tier is pure shadow policy, orthogonal to the
        engine feature stack.
        """
        return dataclasses.replace(
            request, config=request.config.with_(hw_tier=False)
        )

    @staticmethod
    def _sequential_request(request):
        """The same request with only the batched layer turned off."""
        from repro.core.analysis import EngineFeatures

        base = (
            request.features if request.features is not None
            else EngineFeatures.for_engine(request.config.engine)
        )
        derived = dataclasses.replace(request)
        derived.features = dataclasses.replace(base, batched=False)
        return derived

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, request, execute: Callable[[Any], Any]):
        """``execute(request)``, retried down the ladder on failure.

        ``execute`` maps a request to an
        :class:`~repro.api.results.AnalysisResult`.  On success after
        one or more degradations, the winning result's
        ``extra["degradation"]`` records the path::

            {"degraded": True, "rung": "<winning rung>",
             "attempts": [{"rung": ..., "error":
                           {"type": ..., "message": ...}}, ...]}

        A non-degradable exception propagates from whatever rung it
        struck; a ladder that runs dry re-raises the *last* degradable
        failure (the bottom rung's).
        """
        if not self.enabled:
            return execute(request)
        attempts: List[Dict[str, Any]] = []
        try:
            return execute(request)
        except Exception as exc:  # noqa: BLE001 — classified below
            kind = classify(exc)
            if kind is None:
                raise
            attempts.append(self._attempt(RUNG_INITIAL, exc, kind))
            last_error = exc
        for rung, degraded in self.plan(request):
            logger.warning(
                "degrading %s to rung %r after %s: %s",
                getattr(request, "name", "<request>"), rung,
                type(last_error).__name__, last_error,
            )
            try:
                result = execute(degraded)
            except Exception as exc:  # noqa: BLE001 — classified below
                kind = classify(exc)
                if kind is None:
                    raise
                attempts.append(self._attempt(rung, exc, kind))
                last_error = exc
                continue
            result.extra["degradation"] = {
                "degraded": True,
                "rung": rung,
                "attempts": attempts,
            }
            return result
        raise last_error

    @staticmethod
    def _attempt(rung: str, exc: BaseException, kind: str) -> Dict[str, Any]:
        error: Dict[str, Any] = {
            "type": type(exc).__name__, "kind": kind, "message": str(exc),
        }
        seam = getattr(exc, "seam", "")
        if seam:
            error["seam"] = seam
        return {"rung": rung, "error": error}


def run_with_ladder(request, execute: Callable[[Any], Any],
                    enabled: Optional[bool] = None):
    """Module-level convenience: one ladder, one request, one run."""
    return DegradationLadder(enabled).run(request, execute)
