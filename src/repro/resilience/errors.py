"""The failure taxonomy of the degradation ladder.

Every exception here is *degradable*: it marks a failure that a less
accelerated configuration can plausibly avoid — a crashed substrate
kernel, a fast-path engine fault, an exhausted per-analysis resource
budget.  The ladder (:mod:`repro.resilience.ladder`) catches exactly
this family (plus :class:`repro.machine.interpreter.MachineError`) and
retries the analysis down the stack; anything else is a caller bug and
propagates untouched.

Everything is stdlib-only and import-light: the analysis hot path
imports this module at startup.
"""

from __future__ import annotations


class DegradableError(Exception):
    """A failure a less-accelerated configuration may avoid.

    ``seam`` optionally names the fault-injection seam that raised it
    (:mod:`repro.resilience.faults`), so chaos tests can assert *which*
    injected fault a degradation attempt absorbed.
    """

    seam: str = ""


class KernelFault(DegradableError):
    """A BigFloat substrate kernel failed (native library crash or an
    injected ``kernel.*`` fault).  Degrades native → python substrate."""


class EngineFault(DegradableError):
    """A fast-path engine layer failed (compiled/batched execution or
    an injected ``engine.*`` fault).  Degrades toward the reference
    interpreter."""


class FaultInjected(DegradableError):
    """The generic exception of a fired fault seam with no more
    specific class (see :func:`repro.resilience.faults.trip`)."""


class ResourceExhausted(DegradableError):
    """A per-analysis resource guard fired (:class:`ResourceGuard` in
    :mod:`repro.core.analysis`)."""


class AnalysisDeadlineExceeded(ResourceExhausted):
    """``AnalysisConfig.deadline_seconds`` elapsed mid-analysis."""


class OpBudgetExceeded(ResourceExhausted):
    """``AnalysisConfig.op_budget`` analysed operations were spent."""
