"""Deterministic fault injection at named seams.

The chaos suite (``tests/resilience/``) needs real failures — kernel
raises, workers dying mid-task, torn store writes, reset sockets — that
are *reproducible*: same spec, same seed, same firing sequence.  This
module is the registry those seams consult.  It is dormant by default:
every seam guards itself behind :func:`active`, a single module-global
flag, so production code pays one attribute read when no plan is
installed.

Fault specs
-----------

A plan is a ``;``-separated list of clauses, one per seam::

    site[:key=value[,key=value...]][;site...]

with parameters

``skip=N``
    ignore the first N hits of the seam (fire from hit N+1 on),
``times=N``
    fire at most N times (default: every eligible hit),
``p=F``
    fire each eligible hit with probability F, drawn from a
    deterministic per-site stream (default 1.0),
``seed=N``
    seed of that stream (default 0; the stream is keyed by
    ``(seed, site)`` so two seams never share a sequence).

Examples::

    REPRO_FAULTS="kernel.native.raise:times=1"
    REPRO_FAULTS="worker.exit:skip=1,times=1;store.write.truncate:times=2"
    REPRO_FAULTS="backend.flaky:p=0.25,seed=7"

Seams call either :func:`trip` (raise a
:class:`~repro.resilience.errors.DegradableError` subclass when the
site fires), :func:`fire` (boolean, for non-raise behaviours like
``os._exit``), or :func:`corrupt_text` (store corruption).  Installed
plans also export themselves through the ``REPRO_FAULTS`` environment
variable so forked/spawned worker processes inherit them; counters are
**per process** — a respawned worker starts its plan from hit zero,
which the poison-quarantine tests rely on.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Type

from repro.resilience.errors import DegradableError, FaultInjected

#: The environment variable a plan is loaded from (and exported to, so
#: child worker processes inherit the plan across fork/spawn).
ENV_VAR = "REPRO_FAULTS"


class FaultSpecError(ValueError):
    """A malformed fault spec string."""


@dataclass
class FaultRule:
    """Firing schedule of one seam."""

    site: str
    skip: int = 0
    times: Optional[int] = None
    p: float = 1.0
    seed: int = 0
    hits: int = 0
    fires: int = 0
    _rng: Optional[random.Random] = field(default=None, repr=False)

    def should_fire(self) -> bool:
        self.hits += 1
        if self.hits <= self.skip:
            return False
        if self.times is not None and self.fires >= self.times:
            return False
        if self.p < 1.0:
            if self._rng is None:
                # Keyed by (seed, site): two seams in one plan draw
                # from independent, reproducible streams.
                self._rng = random.Random(f"{self.seed}:{self.site}")
            if self._rng.random() >= self.p:
                return False
        self.fires += 1
        return True


class FaultPlan:
    """A set of rules, one per seam, with thread-safe firing."""

    def __init__(self, rules: Dict[str, FaultRule]) -> None:
        self.rules = rules
        self._lock = threading.Lock()

    def fire(self, site: str) -> bool:
        rule = self.rules.get(site)
        if rule is None:
            return False
        with self._lock:
            return rule.should_fire()

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                site: {"hits": rule.hits, "fires": rule.fires}
                for site, rule in self.rules.items()
            }


def parse_spec(spec: str) -> FaultPlan:
    """Parse the ``site[:k=v,...][;...]`` grammar into a plan."""
    rules: Dict[str, FaultRule] = {}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        site, _, params = clause.partition(":")
        site = site.strip()
        if not site:
            raise FaultSpecError(f"empty seam name in clause {clause!r}")
        rule = FaultRule(site)
        for param in params.split(","):
            param = param.strip()
            if not param:
                continue
            key, sep, value = param.partition("=")
            if not sep:
                raise FaultSpecError(
                    f"expected key=value, got {param!r} in {clause!r}"
                )
            key = key.strip()
            try:
                if key == "skip":
                    rule.skip = int(value)
                elif key == "times":
                    rule.times = int(value)
                elif key == "p":
                    rule.p = float(value)
                elif key == "seed":
                    rule.seed = int(value)
                else:
                    raise FaultSpecError(
                        f"unknown fault parameter {key!r} in {clause!r}"
                    )
            except ValueError as exc:
                if isinstance(exc, FaultSpecError):
                    raise
                raise FaultSpecError(
                    f"bad value for {key!r} in {clause!r}: {value!r}"
                ) from None
        if rule.skip < 0 or (rule.times is not None and rule.times < 0) \
                or not (0.0 <= rule.p <= 1.0):
            raise FaultSpecError(f"out-of-range parameter in {clause!r}")
        rules[site] = rule
    return FaultPlan(rules)


# ----------------------------------------------------------------------
# Module-global plan state
# ----------------------------------------------------------------------

_lock = threading.Lock()
_plan: Optional[FaultPlan] = None
#: Fast-path flag: seams read this one global before anything else.
_armed = False
_env_loaded = False


def _ensure_loaded() -> None:
    global _plan, _armed, _env_loaded
    if _env_loaded:
        return
    with _lock:
        if _env_loaded:
            return
        spec = os.environ.get(ENV_VAR, "").strip()
        if spec:
            _plan = parse_spec(spec)
            _armed = bool(_plan.rules)
        _env_loaded = True


def active() -> bool:
    """Whether any fault plan is installed (cheap; seams gate on it)."""
    if not _env_loaded:
        _ensure_loaded()
    return _armed


def armed(site: str) -> bool:
    """Whether the installed plan has a rule for ``site``."""
    return active() and site in _plan.rules


def fire(site: str) -> bool:
    """Advance ``site``'s schedule; True when the seam should fail."""
    if not active():
        return False
    return _plan.fire(site)


def trip(site: str, exc_type: Type[DegradableError] = FaultInjected) -> None:
    """Raise ``exc_type`` when ``site`` fires (the raise-seam helper)."""
    if fire(site):
        exc = exc_type(f"injected fault at seam {site!r}")
        exc.seam = site
        raise exc


def corrupt_text(site_prefix: str, text: str) -> str:
    """Apply text-corruption seams under ``site_prefix``.

    ``<prefix>.truncate`` halves the text (a torn write / partial
    read); ``<prefix>.empty`` empties it (a zero-byte file left by a
    killed writer).  With no plan installed, returns ``text`` as-is.
    """
    if not active():
        return text
    if fire(f"{site_prefix}.truncate"):
        return text[: max(1, len(text) // 2)]
    if fire(f"{site_prefix}.empty"):
        return ""
    return text


def install(spec: str, export_env: bool = True) -> FaultPlan:
    """Install a plan from a spec string (replacing any current plan).

    With ``export_env`` (default) the spec is also written to
    ``REPRO_FAULTS`` so worker processes forked/spawned afterwards
    inherit it.
    """
    global _plan, _armed, _env_loaded
    plan = parse_spec(spec)
    with _lock:
        _plan = plan
        _armed = bool(plan.rules)
        _env_loaded = True
        if export_env:
            os.environ[ENV_VAR] = spec
    return plan


def uninstall() -> None:
    """Remove the plan (and the env export); all seams go dormant."""
    global _plan, _armed, _env_loaded
    with _lock:
        _plan = None
        _armed = False
        _env_loaded = True
        os.environ.pop(ENV_VAR, None)


def snapshot() -> Dict[str, Dict[str, int]]:
    """Per-seam hit/fire counters of the installed plan (``{}`` if none)."""
    if not active():
        return {}
    return _plan.snapshot()


def fired(site: str) -> int:
    """How many times ``site`` has fired in this process."""
    return snapshot().get(site, {}).get("fires", 0)


@contextmanager
def injected(spec: str, export_env: bool = True) -> Iterator[FaultPlan]:
    """Install ``spec`` for the duration of a ``with`` block.

    Restores the previous plan *and* the previous ``REPRO_FAULTS``
    value on exit, so tests can nest and never leak arming state.
    """
    global _plan, _armed, _env_loaded
    previous_env = os.environ.get(ENV_VAR)
    with _lock:
        previous_plan, previous_armed = _plan, _armed
    plan = install(spec, export_env=export_env)
    try:
        yield plan
    finally:
        with _lock:
            _plan = previous_plan
            _armed = previous_armed
            _env_loaded = True
            if previous_env is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = previous_env
