"""Robustness: fault injection and the graceful-degradation ladder.

See ``docs/robustness.md``.  The package is deliberately import-light:
:mod:`repro.core.analysis` and the substrate backends import
:mod:`repro.resilience.faults` on their hot paths, so this ``__init__``
must not import :mod:`repro.resilience.ladder` (which imports the
analysis layer back) — callers import the ladder module explicitly.
"""

from repro.resilience.errors import (
    AnalysisDeadlineExceeded,
    DegradableError,
    EngineFault,
    FaultInjected,
    KernelFault,
    OpBudgetExceeded,
    ResourceExhausted,
)

__all__ = [
    "AnalysisDeadlineExceeded",
    "DegradableError",
    "EngineFault",
    "FaultInjected",
    "KernelFault",
    "OpBudgetExceeded",
    "ResourceExhausted",
]
