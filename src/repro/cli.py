"""Command-line front end: ``herbgrind-py``.

Sub-commands:

* ``analyze <fpcore-or-file>`` — run an analysis backend on sampled
  inputs and print the Herbgrind-style report (or ``--json``).
* ``improve <expr>`` — run the mini-Herbie on a bare expression.
* ``corpus`` — list or analyse the bundled 86-benchmark suite.
* ``lint`` — rank error-prone sites *without running anything*: the
  interval/condition-number static analysis
  (:mod:`repro.staticanalysis`) over one program or the whole corpus.
* ``backends`` — list the registered analysis backends.
* ``serve`` — run the analysis-as-a-service HTTP server
  (:mod:`repro.serve`): warm answers from the sharded result store,
  cold ones through a supervised worker pool.

All analysis routes through :class:`repro.api.AnalysisSession`, so the
CLI exercises exactly the code path programmatic and batch callers use.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.api import (
    AnalysisSession,
    available_backends,
    results_to_json,
    sample_box,
)
from repro.bigfloat import available_policies, available_substrates
from repro.core import AnalysisConfig, generate_report
from repro.fpcore import load_corpus, parse_expr, parse_fpcore
from repro.fpcore.ast import free_variables
from repro.fpcore.printer import format_expr
from repro.improve import improve_expression


def _read_source(argument: str) -> str:
    if os.path.exists(argument):
        with open(argument, "r", encoding="utf-8") as handle:
            return handle.read()
    return argument


def _hw_tier_override(args: argparse.Namespace):
    """``--hw-tier on/off`` as the config's tri-state override."""
    choice = getattr(args, "hw_tier", None)
    if choice is None:
        return None
    return choice == "on"


def _session(args: argparse.Namespace, **config_fields) -> AnalysisSession:
    config = AnalysisConfig(
        shadow_precision=args.precision,
        precision_policy=getattr(args, "precision_policy", "fixed"),
        working_precision=getattr(args, "working_precision", 144),
        engine=getattr(args, "engine", "compiled"),
        substrate=getattr(args, "substrate", "python"),
        deadline_seconds=getattr(args, "deadline", None),
        op_budget=getattr(args, "op_budget", None),
        hw_tier=_hw_tier_override(args),
        **config_fields,
    )
    return AnalysisSession(
        config=config,
        backend=getattr(args, "backend", "herbgrind"),
        num_points=args.points,
        seed=getattr(args, "seed", 0),
        cache_dir=getattr(args, "cache_dir", None),
        degrade=False if getattr(args, "no_degrade", False) else None,
    )


def _arm_faults(args: argparse.Namespace) -> None:
    """Install the ``--faults`` injection plan before any analysis runs."""
    if getattr(args, "faults", None):
        from repro.resilience import faults

        faults.install(args.faults)


def _has_report(result) -> bool:
    from repro.core.analysis import HerbgrindAnalysis

    return isinstance(result.raw, HerbgrindAnalysis)


def _print_result(result, as_json: bool) -> None:
    if as_json:
        print(result.to_json())
    elif _has_report(result):
        print(generate_report(result.raw).format())
    elif result.backend == "herbgrind":
        # A cache hit from disk carries no in-process analysis; render
        # a report-shaped summary from the serialized result instead of
        # silently switching the output format to JSON.
        print(_cached_report(result))
    else:
        # Non-Herbgrind backends have no report renderer; JSON is the
        # canonical serialization.
        print(result.to_json())


def _cached_report(result) -> str:
    lines = [
        f"{result.benchmark}: max output error "
        f"{result.max_output_error:.1f} bits (cached result)"
    ]
    causes = result.reported_root_causes()
    if not causes:
        lines.append("No erroneous spots detected.")
    for cause in causes:
        lines.append("")
        lines.append(f"Operation at {cause.loc or '<unknown>'}")
        lines.append(cause.fpcore_text())
        if cause.example_problematic:
            values = ", ".join(
                repr(v) for v in cause.example_problematic.values()
            )
            lines.append(f"Example problematic input: ({values})")
    return "\n".join(lines)


def _command_analyze(args: argparse.Namespace) -> int:
    _arm_faults(args)
    source = _read_source(args.source)
    core = parse_fpcore(source)
    session = _session(
        args,
        local_error_threshold=args.threshold,
        max_expression_depth=args.depth,
    )
    result = session.analyze(core, profile=args.profile)
    _print_result(result, args.json)
    return 0


def _command_improve(args: argparse.Namespace) -> int:
    expression = parse_expr(_read_source(args.expression))
    variables = args.var or list(free_variables(expression))
    if not variables:
        print("expression has no variables", file=sys.stderr)
        return 1
    low, high = args.range
    points = sample_box(variables, low, high, args.points, seed=args.seed)
    result = improve_expression(expression, variables, points)
    print(f"before: {format_expr(result.original)}  ({result.initial_error:.1f} bits)")
    print(f"after:  {format_expr(result.best)}  ({result.best_error:.1f} bits)")
    return 0


def _command_corpus(args: argparse.Namespace) -> int:
    corpus = load_corpus()
    if args.list:
        for core in corpus:
            family = core.properties.get("herbgrind-family", "?")
            print(f"{core.name:<28} [{family}] args={','.join(core.arguments)}")
        return 0
    _arm_faults(args)
    session = _session(args)
    selected = [c for c in corpus if args.name is None or c.name == args.name]
    if not selected:
        print(f"no benchmark named {args.name!r}", file=sys.stderr)
        return 1
    results = session.analyze_batch(
        selected, workers=args.workers, profile=args.profile
    )
    if args.json:
        print(results_to_json(results))
        return 0
    for result in results:
        print(f"{result.benchmark:<28} max-error={result.max_output_error:5.1f} bits"
              f"  root-causes={len(result.reported_root_causes())}")
        if args.name is not None and _has_report(result):
            print(generate_report(result.raw).format())
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.staticanalysis import lint_core

    if args.source is not None:
        cores = [parse_fpcore(_read_source(args.source))]
    else:
        corpus = load_corpus()
        cores = [c for c in corpus if args.name is None or c.name == args.name]
        if not cores:
            print(f"no benchmark named {args.name!r}", file=sys.stderr)
            return 1
    reports = [
        (core, lint_core(core, min_severity=args.min_severity))
        for core in cores
    ]
    if args.json:
        import json

        payload = {
            "programs": [
                {
                    "program": core.name or "<anonymous>",
                    "diagnostics": [d.to_dict() for d in diagnostics],
                }
                for core, diagnostics in reports
            ]
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    flagged = 0
    for core, diagnostics in reports:
        if not diagnostics:
            continue
        flagged += 1
        print(f"{core.name or '<anonymous>'}:")
        for diagnostic in diagnostics:
            print("  " + diagnostic.format().replace("\n", "\n  "))
    print(f"{flagged}/{len(reports)} programs flagged")
    return 0


def _command_backends(args: argparse.Namespace) -> int:
    for name in available_backends():
        print(name)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import run_server

    if args.no_degrade:
        # Worker processes read REPRO_DEGRADE at analysis time; the
        # env var is how the flag crosses the fork.
        os.environ["REPRO_DEGRADE"] = "0"
    _arm_faults(args)  # install() exports REPRO_FAULTS for the workers
    return run_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store_dir=args.store_dir,
        queue_limit=args.queue_limit,
        timeout=args.timeout if args.timeout > 0 else None,
        batch_shard_size=args.shard_size,
        log_level=args.log_level,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="herbgrind-py",
        description="Find root causes of floating-point error (PLDI 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyse an FPCore program")
    analyze.add_argument("source", help="FPCore text or path to a .fpcore file")
    analyze.add_argument("--points", type=int, default=16)
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--precision", type=int, default=256)
    analyze.add_argument("--threshold", type=float, default=5.0,
                         help="local-error threshold Tℓ in bits")
    analyze.add_argument("--depth", type=int, default=20,
                         help="max expression depth")
    analyze.add_argument("--backend", default="herbgrind",
                         choices=available_backends(),
                         help="analysis backend to run")
    analyze.add_argument("--precision-policy", default="fixed",
                         choices=available_policies(),
                         help="shadow precision tiering (adaptive escalates "
                              "to --precision only when decisions need it)")
    analyze.add_argument("--working-precision", type=int, default=144,
                         help="working-tier bits for --precision-policy "
                              "adaptive")
    analyze.add_argument("--hw-tier", choices=("on", "off"), default=None,
                         help="hardware double-double shadow tier below "
                              "the working tier (adaptive policy only; "
                              "default: on, or the REPRO_HWTIER env; "
                              "reports are identical either way)")
    analyze.add_argument("--cache-dir", metavar="DIR",
                         help="persist analysis results as JSON under DIR "
                              "and reuse them across runs")
    analyze.add_argument("--engine", default="compiled",
                         choices=("compiled", "reference"),
                         help="execution engine: the threaded-code fast "
                              "path (default) or the reference "
                              "interpreter (identical results)")
    analyze.add_argument("--substrate", default="python",
                         choices=available_substrates(),
                         help="BigFloat kernel substrate: the pure-python "
                              "reference (default) or the native "
                              "gmpy2/mpmath kernels (identical reports, "
                              "falls back to python when neither library "
                              "is installed)")
    analyze.add_argument("--json", action="store_true",
                         help="emit the AnalysisResult JSON serialization")
    analyze.add_argument("--profile", action="store_true",
                         help="count per-stage pipeline events and emit "
                              "them as extra.pipeline_profile in the "
                              "result JSON (results are unchanged)")
    analyze.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-analysis wall-clock budget; exceeding "
                              "it raises AnalysisDeadlineExceeded")
    analyze.add_argument("--op-budget", type=int, default=None,
                         metavar="OPS",
                         help="per-analysis shadow-operation budget; "
                              "exceeding it raises OpBudgetExceeded")
    analyze.add_argument("--no-degrade", action="store_true",
                         help="disable the graceful-degradation ladder: "
                              "engine/substrate failures propagate "
                              "instead of retrying down the stack")
    analyze.add_argument("--faults", metavar="SPEC",
                         help="arm deterministic fault injection, e.g. "
                              "'kernel.raise:times=1' (see "
                              "docs/robustness.md for the grammar)")
    analyze.set_defaults(func=_command_analyze)

    improve = sub.add_parser("improve", help="improve a bare expression")
    improve.add_argument("expression")
    improve.add_argument("--var", action="append",
                         help="variable order (repeatable)")
    improve.add_argument("--range", nargs=2, type=float,
                         default=(1e-3, 1e3), metavar=("LO", "HI"))
    improve.add_argument("--points", type=int, default=16)
    improve.add_argument("--seed", type=int, default=0)
    improve.set_defaults(func=_command_improve)

    corpus = sub.add_parser("corpus", help="the 86-benchmark suite")
    corpus.add_argument("--list", action="store_true")
    corpus.add_argument("--name", help="analyse one benchmark in detail")
    corpus.add_argument("--points", type=int, default=8)
    corpus.add_argument("--precision", type=int, default=256)
    corpus.add_argument("--backend", default="herbgrind",
                        choices=available_backends(),
                        help="analysis backend to run")
    corpus.add_argument("--precision-policy", default="fixed",
                        choices=available_policies(),
                        help="shadow precision tiering")
    corpus.add_argument("--working-precision", type=int, default=144,
                        help="working-tier bits for adaptive tiering")
    corpus.add_argument("--hw-tier", choices=("on", "off"), default=None,
                        help="hardware double-double shadow tier "
                             "(adaptive policy only; reports are "
                             "identical either way)")
    corpus.add_argument("--cache-dir", metavar="DIR",
                        help="persist analysis results as JSON under DIR "
                             "and reuse them across runs")
    corpus.add_argument("--engine", default="compiled",
                        choices=("compiled", "reference"),
                        help="execution engine (results are identical)")
    corpus.add_argument("--substrate", default="python",
                        choices=available_substrates(),
                        help="BigFloat kernel substrate (reports are "
                             "identical)")
    corpus.add_argument("--workers", type=int, default=1,
                        help="worker processes for batch analysis")
    corpus.add_argument("--json", action="store_true",
                        help="emit AnalysisResult JSON for the batch")
    corpus.add_argument("--profile", action="store_true",
                        help="emit per-stage pipeline attribution in "
                             "each result's extra.pipeline_profile")
    corpus.add_argument("--no-degrade", action="store_true",
                        help="disable the graceful-degradation ladder")
    corpus.add_argument("--faults", metavar="SPEC",
                        help="arm deterministic fault injection "
                             "(docs/robustness.md)")
    corpus.set_defaults(func=_command_corpus)

    lint = sub.add_parser(
        "lint",
        help="static analysis: rank error-prone sites without running",
    )
    lint.add_argument("source", nargs="?",
                      help="FPCore text or path to a .fpcore file "
                           "(default: the bundled corpus)")
    lint.add_argument("--name", help="lint one corpus benchmark by name")
    lint.add_argument("--min-severity", default="info",
                      choices=("info", "warning", "error"),
                      help="suppress diagnostics below this severity")
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable diagnostics")
    lint.set_defaults(func=_command_lint)

    backends = sub.add_parser("backends", help="list analysis backends")
    backends.set_defaults(func=_command_backends)

    serve = sub.add_parser(
        "serve", help="run the analysis HTTP server (repro.serve)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8318,
                       help="TCP port (0 picks a free one; the chosen "
                            "port is printed on startup)")
    serve.add_argument("--workers", type=int, default=2,
                       help="analysis worker processes")
    serve.add_argument("--store-dir", metavar="DIR",
                       help="sharded result store directory, shared "
                            "with AnalysisSession(cache_dir=...) and "
                            "safe for multiple server processes")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="bounded cold-path queue; beyond it "
                            "requests get HTTP 429")
    serve.add_argument("--timeout", type=float, default=300.0,
                       help="per-request analysis timeout in seconds "
                            "(0 disables; timed-out workers are "
                            "killed and respawned)")
    serve.add_argument("--shard-size", type=int, default=4,
                       help="requests per work-stealing shard for "
                            "POST /v1/batch")
    serve.add_argument("--log-level", default="info",
                       choices=("debug", "info", "warning", "error"),
                       help="structured per-request log verbosity")
    serve.add_argument("--no-degrade", action="store_true",
                       help="disable the graceful-degradation ladder in "
                            "analysis workers (sets REPRO_DEGRADE=0)")
    serve.add_argument("--faults", metavar="SPEC",
                       help="arm deterministic fault injection; exported "
                            "as REPRO_FAULTS so forked workers inherit "
                            "the plan (docs/robustness.md)")
    serve.set_defaults(func=_command_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
