"""Command-line front end: ``herbgrind-py``.

Sub-commands:

* ``analyze <fpcore-or-file>`` — run the analysis on sampled inputs and
  print the Herbgrind-style report.
* ``improve <expr>`` — run the mini-Herbie on a bare expression.
* ``corpus`` — list or analyse the bundled 86-benchmark suite.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core import AnalysisConfig, analyze_fpcore, generate_report
from repro.fpcore import load_corpus, parse_expr, parse_fpcore
from repro.fpcore.ast import free_variables
from repro.fpcore.printer import format_expr
from repro.improve import improve_expression


def _read_source(argument: str) -> str:
    if os.path.exists(argument):
        with open(argument, "r", encoding="utf-8") as handle:
            return handle.read()
    return argument


def _command_analyze(args: argparse.Namespace) -> int:
    source = _read_source(args.source)
    core = parse_fpcore(source)
    config = AnalysisConfig(
        shadow_precision=args.precision,
        local_error_threshold=args.threshold,
        max_expression_depth=args.depth,
    )
    analysis = analyze_fpcore(
        core, config=config, num_points=args.points, seed=args.seed
    )
    print(generate_report(analysis).format())
    return 0


def _command_improve(args: argparse.Namespace) -> int:
    expression = parse_expr(_read_source(args.expression))
    variables = args.var or list(free_variables(expression))
    if not variables:
        print("expression has no variables", file=sys.stderr)
        return 1
    low, high = args.range
    import random

    rng = random.Random(args.seed)
    import math

    points: List[List[float]] = []
    for __ in range(args.points):
        point = []
        for __v in variables:
            if low > 0 and high / low > 1e3:
                point.append(math.exp(rng.uniform(math.log(low), math.log(high))))
            else:
                point.append(rng.uniform(low, high))
        points.append(point)
    result = improve_expression(expression, variables, points)
    print(f"before: {format_expr(result.original)}  ({result.initial_error:.1f} bits)")
    print(f"after:  {format_expr(result.best)}  ({result.best_error:.1f} bits)")
    return 0


def _command_corpus(args: argparse.Namespace) -> int:
    corpus = load_corpus()
    if args.list:
        for core in corpus:
            family = core.properties.get("herbgrind-family", "?")
            print(f"{core.name:<28} [{family}] args={','.join(core.arguments)}")
        return 0
    config = AnalysisConfig(shadow_precision=args.precision)
    selected = [c for c in corpus if args.name is None or c.name == args.name]
    if not selected:
        print(f"no benchmark named {args.name!r}", file=sys.stderr)
        return 1
    for core in selected:
        analysis = analyze_fpcore(core, config=config, num_points=args.points)
        causes = analysis.reported_root_causes()
        error = analysis.max_output_error()
        print(f"{core.name:<28} max-error={error:5.1f} bits"
              f"  root-causes={len(causes)}")
        if args.name is not None:
            print(generate_report(analysis).format())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="herbgrind-py",
        description="Find root causes of floating-point error (PLDI 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyse an FPCore program")
    analyze.add_argument("source", help="FPCore text or path to a .fpcore file")
    analyze.add_argument("--points", type=int, default=16)
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--precision", type=int, default=256)
    analyze.add_argument("--threshold", type=float, default=5.0,
                         help="local-error threshold Tℓ in bits")
    analyze.add_argument("--depth", type=int, default=20,
                         help="max expression depth")
    analyze.set_defaults(func=_command_analyze)

    improve = sub.add_parser("improve", help="improve a bare expression")
    improve.add_argument("expression")
    improve.add_argument("--var", action="append",
                         help="variable order (repeatable)")
    improve.add_argument("--range", nargs=2, type=float,
                         default=(1e-3, 1e3), metavar=("LO", "HI"))
    improve.add_argument("--points", type=int, default=16)
    improve.add_argument("--seed", type=int, default=0)
    improve.set_defaults(func=_command_improve)

    corpus = sub.add_parser("corpus", help="the 86-benchmark suite")
    corpus.add_argument("--list", action="store_true")
    corpus.add_argument("--name", help="analyse one benchmark in detail")
    corpus.add_argument("--points", type=int, default=8)
    corpus.add_argument("--precision", type=int, default=256)
    corpus.set_defaults(func=_command_corpus)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
