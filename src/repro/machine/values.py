"""Runtime value boxes.

Every float the machine computes lives in a :class:`FloatBox`.  Copies
(Mov, Load, Store, parameter passing, returns) share the *same* box, so
any shadow state a tracer attaches travels with the value through
registers, the heap, and function boundaries — exactly the sharing
optimization of paper Section 6 ("shadow values are shared between
copies"), and the mechanism by which the analysis sees error flow
non-locally.

Integers are plain Python ints: the paper's analysis does not shadow
non-floating-point computation.
"""

from __future__ import annotations

import itertools
from typing import Optional

_box_counter = itertools.count()


class FloatBox:
    """A mutable-identity box holding one double and optional shadow state."""

    __slots__ = ("value", "shadow", "ident")

    def __init__(self, value: float, shadow: Optional[object] = None) -> None:
        self.value = value
        self.shadow = shadow
        self.ident = next(_box_counter)

    def __repr__(self) -> str:
        tag = " shadowed" if self.shadow is not None else ""
        return f"<FloatBox #{self.ident} {self.value!r}{tag}>"
