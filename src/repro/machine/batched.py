"""Lockstep batched execution: all sample points through one pass.

The analysis driver re-runs a program once per sample point, paying
dispatch, trace interning, anti-unification, and shadow bookkeeping N
times.  :class:`BatchedProgram` runs all N points *in lockstep* instead:
registers become SoA columns (a flat list of machine values plus a
parallel list of per-lane shadows per slot), and every analysis site is
visited once per batch with one fused callback invocation covering all
lanes (see ``HerbgrindAnalysis.batch_site_callback``), so the per-site
setup — record lookup, kernel resolution, policy flags, interning-table
probes — is paid once per sub-batch instead of once per point.

Byte-identical reports are the non-negotiable contract, and they follow
from an ordering argument: event order is only observable *per record*
(per analysis site), and when no instruction executes twice in a run,
visiting sites in program order and lanes in ascending order inside
each site delivers events at every record in exactly the order the
sequential per-point loop does.  Three mechanisms enforce the premise:

* **Static gate** — only forward-control programs compile: constants,
  float/int ALU ops, moves, wrapped library calls, reads, outs,
  conversions, bitcasts, and *forward* branches/jumps.  Backward edges
  (loops), memory traffic, user calls, packed ops, and integer branches
  make :meth:`BatchedProgram.compile` return None and the driver falls
  back to the sequential engine.
* **Branch-signature grouping** — before any aggregation, each lane is
  probed through a native :class:`CompiledProgram` recording its
  branch-taken signature; lanes are then partitioned into maximal runs
  of *consecutive* lanes with identical signatures.  Each group runs as
  one uniform sub-batch (divergent regions degrade to one-lane
  batches), and groups execute in lane order, which keeps cross-group
  aggregation at shared records in global lane order.
* **Fallback on error** — a probe failure aborts before aggregation
  starts; a :class:`MachineError` mid-batch is caught by the driver,
  which discards the partially aggregated analysis and re-runs the
  sequential loop from scratch, reproducing exact sequential error
  semantics.

Each sub-batch shares one tracer epoch (``on_batch_start`` /
``on_batch_finish``): leaf idents are value-keyed and escalator memo
entries are pure functions of their idents, so lanes only warm each
other's caches.

The SoA register columns this module maintains are also what makes the
vectorized lane kernels of :mod:`repro.machine.lanes` possible: the
fused batch callbacks built by ``HerbgrindAnalysis.batch_site_callback``
receive whole value/shadow columns per operand and (when NumPy is
available) run the machine arithmetic and the hardware double-double
shadow kernels as array operations over all lanes at once, falling back
lane-by-lane to the scalar path wherever a lane needs a special-case
branch, promotion, or escalation.  This module stays NumPy-agnostic:
columns are plain lists at this layer, and the vectorization decision
lives entirely inside the callback.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.bigfloat.functions import DOUBLE_HANDLERS, LIBRARY_OPERATIONS
from repro.ieee.float32 import to_single
from repro.ieee.float64 import bits_to_double, double_to_bits
from repro.machine import isa
from repro.machine.compiled import CompiledProgram
from repro.machine.interpreter import (
    MachineError,
    Tracer,
    _float_predicate,
    _int_alu,
    _truncate_to_int,
)
from repro.machine.values import FloatBox

#: Marker for integer register columns (their ``shads`` entry): the
#: analysis does not shadow non-float computation, and the sentinel
#: doubles as the dynamic type check — a float op hitting ``_INT`` (or
#: an int op hitting a shadow list) raises instead of silently
#: computing on the wrong column.
_INT = object()

_MASK64 = (1 << 64) - 1
_HALT = -1


class _Ineligible(Exception):
    """Internal: the program cannot be batched (compile returns None)."""


class _ProbeTracer(Tracer):
    """Records the branch-taken signature of one native run."""

    def __init__(self) -> None:
        self.outcomes: List[bool] = []

    def on_branch(self, instr, lhs, rhs, taken) -> None:
        self.outcomes.append(taken)


class _BatchState:
    """Per-group run state: SoA register columns plus output streams."""

    __slots__ = ("vals", "shads", "outputs", "columns", "pos", "n")


class BatchedProgram:
    """A program compiled for lockstep multi-point execution.

    Construct through :meth:`compile`, which returns None when the
    program is statically ineligible.  :meth:`run_points` is the whole
    orchestration: probe, group, and run — returning each point's
    outputs in input order, or None when the probe failed (the caller
    then runs the untouched sequential path).
    """

    @classmethod
    def compile(
        cls,
        program: isa.Program,
        tracer: Tracer,
        wrap_libraries: bool = True,
        libm: Optional[Dict[str, isa.Function]] = None,
        max_steps: int = 50_000_000,
        double_handlers: Optional[Dict[str, Callable[..., float]]] = None,
    ) -> Optional["BatchedProgram"]:
        try:
            return cls(
                program, tracer, wrap_libraries, libm, max_steps,
                double_handlers,
            )
        except _Ineligible:
            return None

    def __init__(
        self,
        program: isa.Program,
        tracer: Tracer,
        wrap_libraries: bool = True,
        libm: Optional[Dict[str, isa.Function]] = None,
        max_steps: int = 50_000_000,
        double_handlers: Optional[Dict[str, Callable[..., float]]] = None,
    ) -> None:
        self.program = program
        self.tracer = tracer
        self.wrap_libraries = wrap_libraries
        self.libm = libm if libm is not None else {}
        self.max_steps = max_steps
        self.double_handlers = (
            double_handlers if double_handlers is not None
            else DOUBLE_HANDLERS
        )
        #: Uniform sub-batches executed by the last run_points call.
        self.groups_run = 0
        self._probe_program: Optional[CompiledProgram] = None
        self._probe_tracer: Optional[_ProbeTracer] = None
        function = program.functions.get(program.entry)
        if function is None:
            raise _Ineligible("no entry function")
        self._slots: Dict[str, int] = {}
        self._has_branches = False
        self._code = [
            self._compile_instr(instr, index, function)
            for index, instr in enumerate(function.instrs)
        ]
        self.nslots = len(self._slots)

    # ------------------------------------------------------------------
    # Orchestration: probe, group, run
    # ------------------------------------------------------------------

    def run_points(
        self, input_sets: Sequence[Sequence[float]]
    ) -> Optional[List[List[float]]]:
        """All points' outputs, in input order; None if the probe failed.

        Raises :class:`MachineError` if a lane fails *during* a batch —
        by then aggregation has begun, and the caller must discard the
        analysis and fall back to the sequential loop.
        """
        points = [list(map(float, inputs)) for inputs in input_sets]
        self.groups_run = 0
        if not points:
            return []
        signatures = None
        if self._has_branches:
            signatures = self._probe(points)
            if signatures is None:
                return None
        outputs: List[List[float]] = []
        start = 0
        total = len(points)
        while start < total:
            end = start + 1
            if signatures is not None:
                signature = signatures[start]
                while end < total and signatures[end] == signature:
                    end += 1
            else:
                end = total
            outputs.extend(self._run_group(points[start:end]))
            self.groups_run += 1
            start = end
        return outputs

    def _probe(
        self, points: List[List[float]]
    ) -> Optional[List[tuple]]:
        """Native per-lane branch signatures, or None on any failure.

        The probe aggregates nothing (it runs under its own tracer), so
        failing here is free: the analysis is still pristine and the
        sequential path reproduces the error exactly, including partial
        aggregation up to the failing lane.
        """
        if self._probe_program is None:
            self._probe_tracer = _ProbeTracer()
            self._probe_program = CompiledProgram(
                self.program,
                tracer=self._probe_tracer,
                wrap_libraries=self.wrap_libraries,
                libm=self.libm,
                max_steps=self.max_steps,
                double_handlers=self.double_handlers,
            )
        tracer = self._probe_tracer
        signatures = []
        for inputs in points:
            tracer.outcomes = []
            try:
                self._probe_program.run(inputs)
            except MachineError:
                return None
            signatures.append(tuple(tracer.outcomes))
        return signatures

    def _run_group(self, points: List[List[float]]) -> List[List[float]]:
        """One uniform sub-batch in lockstep; one tracer epoch."""
        n = len(points)
        st = _BatchState()
        st.n = n
        st.vals = [None] * self.nslots
        st.shads = [None] * self.nslots
        st.columns = points
        st.pos = 0
        st.outputs = [[] for _ in range(n)]
        tracer = self.tracer
        tracer.on_batch_start(self, n)
        code = self._code
        end = len(code)
        pc = 0
        while 0 <= pc < end:
            pc = code[pc](st)
        tracer.on_batch_finish(self)
        return st.outputs

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _slot(self, register: str) -> int:
        slot = self._slots.get(register)
        if slot is None:
            slot = self._slots[register] = len(self._slots)
        return slot

    def _hook(self, name: str):
        """The tracer's override of ``name``, or None (call elided)."""
        if getattr(type(self.tracer), name) is getattr(Tracer, name):
            return None
        return getattr(self.tracer, name)

    def _compile_instr(self, instr, index: int, function: isa.Function):
        slot = self._slot
        nxt = index + 1

        if isinstance(instr, isa.Const):
            d = slot(instr.dst)
            value = to_single(instr.value) if instr.single \
                else float(instr.value)
            const_cb = self.tracer.fused_const_callback(instr)
            on_const = self._hook("on_const")

            def step(st, _d=d, _v=value, _cb=const_cb, _g=on_const,
                     _i=instr, _n=nxt):
                # One call, broadcast: constant shadows are a pure
                # function of (site, value) within an epoch, so every
                # lane of the batch shares the one shadow the
                # sequential path would intern per lane anyway.
                shadow = None
                if _cb is not None:
                    box = FloatBox(_v)
                    _cb(box)
                    shadow = box.shadow
                elif _g is not None:
                    box = FloatBox(_v)
                    _g(_i, box)
                    shadow = box.shadow
                n = st.n
                st.vals[_d] = [_v] * n
                st.shads[_d] = [shadow] * n
                return _n
            return step

        if isinstance(instr, isa.ConstInt):
            d = slot(instr.dst)
            value = instr.value

            def step(st, _d=d, _v=value, _n=nxt):
                st.vals[_d] = [_v] * st.n
                st.shads[_d] = _INT
                return _n
            return step

        if isinstance(instr, isa.FloatOp):
            machine_fn = self.double_handlers.get(instr.op)
            if machine_fn is None:
                raise _Ineligible(f"unknown operation {instr.op!r}")
            srcs = [slot(s) for s in instr.srcs]
            d = slot(instr.dst)
            batch_cb = self.tracer.batch_site_callback(
                instr, instr.op, len(srcs), instr.single, machine_fn
            )
            if batch_cb is not None and len(srcs) == 2:
                a, b = srcs

                def step(st, _a=a, _b=b, _d=d, _cb=batch_cb, _n=nxt):
                    va = st.vals[_a]
                    vb = st.vals[_b]
                    sa = st.shads[_a]
                    sb = st.shads[_b]
                    if va is None or vb is None \
                            or sa is _INT or sb is _INT:
                        raise MachineError(
                            "float op on a non-float register"
                        )
                    rv, rs = _cb(va, sa, vb, sb)
                    st.vals[_d] = rv
                    st.shads[_d] = rs
                    return _n
                return step
            if batch_cb is not None and len(srcs) == 1:
                a = srcs[0]

                def step(st, _a=a, _d=d, _cb=batch_cb, _n=nxt):
                    va = st.vals[_a]
                    sa = st.shads[_a]
                    if va is None or sa is _INT:
                        raise MachineError(
                            "float op on a non-float register"
                        )
                    rv, rs = _cb(va, sa)
                    st.vals[_d] = rv
                    st.shads[_d] = rs
                    return _n
                return step
            return self._per_lane_op(
                instr, instr.op, srcs, d, machine_fn, instr.single,
                self._hook("on_op"), nxt,
            )

        if isinstance(instr, isa.Call):
            name = instr.function
            wrapped = name in LIBRARY_OPERATIONS and (
                self.wrap_libraries or name not in self.libm
            )
            if not wrapped:
                raise _Ineligible(f"unwrapped call to {name!r}")
            machine_fn = self.double_handlers.get(name)
            if machine_fn is None:
                raise _Ineligible(f"unknown library {name!r}")
            srcs = [slot(s) for s in instr.args]
            d = slot(instr.dst)
            batch_cb = self.tracer.batch_site_callback(
                instr, name, len(srcs), False, machine_fn
            )
            if batch_cb is not None and len(srcs) == 2:
                a, b = srcs

                def step(st, _a=a, _b=b, _d=d, _cb=batch_cb, _n=nxt):
                    va = st.vals[_a]
                    vb = st.vals[_b]
                    sa = st.shads[_a]
                    sb = st.shads[_b]
                    if va is None or vb is None \
                            or sa is _INT or sb is _INT:
                        raise MachineError(
                            "library call on a non-float register"
                        )
                    rv, rs = _cb(va, sa, vb, sb)
                    st.vals[_d] = rv
                    st.shads[_d] = rs
                    return _n
                return step
            if batch_cb is not None and len(srcs) == 1:
                a = srcs[0]

                def step(st, _a=a, _d=d, _cb=batch_cb, _n=nxt):
                    va = st.vals[_a]
                    sa = st.shads[_a]
                    if va is None or sa is _INT:
                        raise MachineError(
                            "library call on a non-float register"
                        )
                    rv, rs = _cb(va, sa)
                    st.vals[_d] = rv
                    st.shads[_d] = rs
                    return _n
                return step
            return self._per_lane_op(
                instr, name, srcs, d, machine_fn, False,
                self._hook("on_library"), nxt,
            )

        if isinstance(instr, isa.Mov):
            s = slot(instr.src)
            d = slot(instr.dst)

            def step(st, _s=s, _d=d, _n=nxt):
                vals = st.vals[_s]
                if vals is None:
                    raise MachineError(
                        f"register {instr.src!r} is uninitialized"
                    )
                # Alias the columns: copies share shadow state exactly
                # as boxed copies share the box.  Safe because writes
                # always install fresh column lists.
                st.vals[_d] = vals
                st.shads[_d] = st.shads[_s]
                return _n
            return step

        if isinstance(instr, isa.IntOp):
            lhs = slot(instr.lhs)
            rhs = slot(instr.rhs)
            d = slot(instr.dst)
            op = instr.op

            def step(st, _l=lhs, _r=rhs, _d=d, _op=op, _n=nxt):
                lv = st.vals[_l]
                rv = st.vals[_r]
                if lv is None or rv is None \
                        or st.shads[_l] is not _INT \
                        or st.shads[_r] is not _INT:
                    raise MachineError(
                        "integer op on a non-integer register"
                    )
                st.vals[_d] = [
                    _int_alu(_op, lv[i], rv[i]) for i in range(st.n)
                ]
                st.shads[_d] = _INT
                return _n
            return step

        if isinstance(instr, isa.BitcastToInt):
            s = slot(instr.src)
            d = slot(instr.dst)

            def step(st, _s=s, _d=d, _n=nxt):
                vals = st.vals[_s]
                if vals is None or st.shads[_s] is _INT:
                    raise MachineError("bitcast of a non-float register")
                st.vals[_d] = [double_to_bits(v) for v in vals]
                st.shads[_d] = _INT
                return _n
            return step

        if isinstance(instr, isa.BitcastToFloat):
            s = slot(instr.src)
            d = slot(instr.dst)

            def step(st, _s=s, _d=d, _n=nxt):
                vals = st.vals[_s]
                if vals is None or st.shads[_s] is not _INT:
                    raise MachineError(
                        "bitcast of a non-integer register"
                    )
                st.vals[_d] = [
                    bits_to_double(v & _MASK64) for v in vals
                ]
                # Shadows stay lazy (None) exactly like an unshadowed
                # box: the first consumer interns an opaque leaf into
                # the column, sharing it with later consumers.
                st.shads[_d] = [None] * st.n
                return _n
            return step

        if isinstance(instr, isa.FloatBitOp):
            s = slot(instr.src)
            d = slot(instr.dst)
            mask = instr.mask
            bit_op = instr.op
            if bit_op not in ("xor", "and", "or"):
                raise _Ineligible(f"unknown float bit op {bit_op!r}")
            on_bitop = self._hook("on_bitop")

            def step(st, _s=s, _d=d, _op=bit_op, _m=mask,
                     _cb=on_bitop, _i=instr, _n=nxt):
                vals = st.vals[_s]
                shads = st.shads[_s]
                if vals is None or shads is _INT:
                    raise MachineError(
                        "float bit op on a non-float register"
                    )
                n = st.n
                rv = [0.0] * n
                rs = [None] * n
                for i in range(n):
                    bits = double_to_bits(vals[i])
                    if _op == "xor":
                        bits ^= _m
                    elif _op == "and":
                        bits &= _m
                    else:
                        bits |= _m
                    value = bits_to_double(bits & _MASK64)
                    if _cb is not None:
                        src_box = FloatBox(vals[i])
                        src_box.shadow = shads[i]
                        box = FloatBox(value)
                        _cb(_i, src_box, box)
                        if shads[i] is None:
                            shads[i] = src_box.shadow
                        rv[i] = box.value
                        rs[i] = box.shadow
                    else:
                        rv[i] = value
                st.vals[_d] = rv
                st.shads[_d] = rs
                return _n
            return step

        if isinstance(instr, isa.FloatToInt):
            s = slot(instr.src)
            d = slot(instr.dst)
            on_f2i = self._hook("on_float_to_int")

            def step(st, _s=s, _d=d, _cb=on_f2i, _i=instr, _n=nxt):
                vals = st.vals[_s]
                shads = st.shads[_s]
                if vals is None or shads is _INT:
                    raise MachineError(
                        "float->int of a non-float register"
                    )
                n = st.n
                rv = [0] * n
                for i in range(n):
                    result = _truncate_to_int(vals[i])
                    rv[i] = result
                    if _cb is not None:
                        box = FloatBox(vals[i])
                        box.shadow = shads[i]
                        _cb(_i, box, result)
                        if shads[i] is None:
                            shads[i] = box.shadow
                st.vals[_d] = rv
                st.shads[_d] = _INT
                return _n
            return step

        if isinstance(instr, isa.IntToFloat):
            s = slot(instr.src)
            d = slot(instr.dst)
            on_i2f = self._hook("on_int_to_float")

            def step(st, _s=s, _d=d, _cb=on_i2f, _i=instr, _n=nxt):
                vals = st.vals[_s]
                if vals is None or st.shads[_s] is not _INT:
                    raise MachineError(
                        "int->float of a non-integer register"
                    )
                n = st.n
                rv = [0.0] * n
                rs = [None] * n
                for i in range(n):
                    value = vals[i]
                    box = FloatBox(float(value))
                    if _cb is not None:
                        _cb(_i, value, box)
                    rv[i] = box.value
                    rs[i] = box.shadow
                st.vals[_d] = rv
                st.shads[_d] = rs
                return _n
            return step

        if isinstance(instr, isa.Branch):
            self._has_branches = True
            lhs = slot(instr.lhs)
            rhs = slot(instr.rhs)
            pred = instr.pred
            try:
                target = function.label_index(instr.target)
            except KeyError:
                raise _Ineligible(f"unknown label {instr.target!r}")
            if target <= index:
                raise _Ineligible("backward branch (loop)")
            batch_cb = self.tracer.batch_branch_callback(instr)
            on_branch = self._hook("on_branch")

            def step(st, _l=lhs, _r=rhs, _p=pred, _t=target,
                     _cb=batch_cb, _g=on_branch, _i=instr, _n=nxt):
                lv = st.vals[_l]
                rv = st.vals[_r]
                ls = st.shads[_l]
                rs = st.shads[_r]
                if lv is None or rv is None \
                        or ls is _INT or rs is _INT:
                    raise MachineError("branch on a non-float register")
                n = st.n
                taken = _float_predicate(_p, lv[0], rv[0])
                for i in range(1, n):
                    if _float_predicate(_p, lv[i], rv[i]) != taken:
                        # The probe partitions lanes by signature, so
                        # this is unreachable; raising falls back to
                        # the sequential loop rather than corrupting
                        # aggregation order.
                        raise MachineError(
                            "batched lanes diverged at a branch"
                        )
                if _cb is not None:
                    _cb(lv, ls, rv, rs, taken)
                elif _g is not None:
                    for i in range(n):
                        lbox = FloatBox(lv[i])
                        lbox.shadow = ls[i]
                        rbox = FloatBox(rv[i])
                        rbox.shadow = rs[i]
                        _g(_i, lbox, rbox, taken)
                        if ls[i] is None:
                            ls[i] = lbox.shadow
                        if rs[i] is None:
                            rs[i] = rbox.shadow
                return _t if taken else _n
            return step

        if isinstance(instr, isa.Jump):
            try:
                target = function.label_index(instr.target)
            except KeyError:
                raise _Ineligible(f"unknown label {instr.target!r}")
            if target <= index:
                raise _Ineligible("backward jump (loop)")

            def step(st, _t=target):
                return _t
            return step

        if isinstance(instr, isa.Read):
            d = slot(instr.dst)
            on_read = self._hook("on_read")

            def step(st, _d=d, _cb=on_read, _i=instr, _n=nxt):
                pos = st.pos
                n = st.n
                vals = [0.0] * n
                shads = [None] * n
                for i in range(n):
                    lane = st.columns[i]
                    if pos >= len(lane):
                        raise MachineError(
                            "program read past the end of its inputs"
                        )
                    value = lane[pos]
                    vals[i] = value
                    if _cb is not None:
                        box = FloatBox(value)
                        _cb(_i, box, pos)
                        shads[i] = box.shadow
                st.pos = pos + 1
                st.vals[_d] = vals
                st.shads[_d] = shads
                return _n
            return step

        if isinstance(instr, isa.Out):
            s = slot(instr.src)
            on_out = self._hook("on_out")

            def step(st, _s=s, _cb=on_out, _i=instr, _n=nxt):
                vals = st.vals[_s]
                shads = st.shads[_s]
                if vals is None or shads is _INT:
                    raise MachineError("out of a non-float register")
                outputs = st.outputs
                for i in range(st.n):
                    value = vals[i]
                    outputs[i].append(value)
                    if _cb is not None:
                        box = FloatBox(value)
                        box.shadow = shads[i]
                        _cb(_i, box)
                        if shads[i] is None:
                            shads[i] = box.shadow
                return _n
            return step

        if isinstance(instr, isa.Halt):
            def step(st):
                return _HALT
            return step

        # PackedOp, Load, Store, IntBranch, Ret, user calls: sequential.
        raise _Ineligible(f"unsupported instruction {type(instr).__name__}")

    def _per_lane_op(self, instr, op, srcs, d, machine_fn, single,
                     hook, nxt):
        """Generic fallback for sites without a batch callback (arity
        outside 1-2, kernels unknown to ⟦f⟧_R, non-analysis tracers):
        loop the lanes through the sequential hook with temporary
        boxes.  Lane order is ascending, so aggregation order still
        matches the sequential loop."""
        def step(st, _srcs=tuple(srcs), _d=d, _fn=machine_fn,
                 _single=single, _cb=hook, _i=instr, _op=op, _n=nxt):
            cols = []
            shad_cols = []
            for s in _srcs:
                vals = st.vals[s]
                shads = st.shads[s]
                if vals is None or shads is _INT:
                    raise MachineError(
                        "float op on a non-float register"
                    )
                cols.append(vals)
                shad_cols.append(shads)
            n = st.n
            rv = [0.0] * n
            rs = [None] * n
            for i in range(n):
                boxes = []
                for vals, shads in zip(cols, shad_cols):
                    box = FloatBox(vals[i])
                    box.shadow = shads[i]
                    boxes.append(box)
                value = _fn(*[box.value for box in boxes])
                if _single:
                    value = to_single(value)
                result = FloatBox(value)
                if _cb is not None:
                    override = _cb(_i, _op, boxes, result)
                    if override is not None:
                        result.value = (
                            to_single(override) if _single else override
                        )
                    for box, shads in zip(boxes, shad_cols):
                        if shads[i] is None and box.shadow is not None:
                            shads[i] = box.shadow
                rv[i] = result.value
                rs[i] = result.shadow
            st.vals[_d] = rv
            st.shads[_d] = rs
            return _n
        return step
