"""Instruction set of the abstract float machine.

This is the paper's abstract machine (Figure 2) extended with the
VEX-level details Section 5 names as essential for real binaries:

* two floating-point precisions (``single`` flag on float ops),
* SIMD-style packed operations (multiple lanes in one instruction),
* integer arithmetic and *bitwise operations on float registers*
  (gcc negates a double by XORing the sign bit — Herbgrind must
  recognize that as a negation),
* loads/stores through an untyped heap addressed by integer registers,
* calls, so values cross function boundaries,
* explicit ``Read``/``Out`` statements (program inputs and outputs),
* float→int conversions and float conditional branches — the *spots*
  of the analysis.

Instructions are frozen dataclasses; ``loc`` carries a source location
string ("main.cpp:24") used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Predicates usable in branches (on floats these are IEEE comparisons,
#: so any comparison with NaN is false).
PREDICATES = frozenset({"lt", "le", "gt", "ge", "eq", "ne"})

#: Integer ALU operations.
INT_OPS = frozenset(
    {"iadd", "isub", "imul", "idiv", "imod", "ishl", "ishr", "iand", "ior", "ixor"}
)

#: Bitwise operations applicable to the raw bits of a float register.
FLOAT_BIT_OPS = frozenset({"xor", "and", "or"})

#: The sign-bit mask used by compiler-emitted negation (paper 5.3).
SIGN_BIT_MASK = 1 << 63

#: The complement mask used by compiler-emitted fabs.
ABS_MASK = SIGN_BIT_MASK - 1


@dataclass(frozen=True)
class Instr:
    """Base class for instructions."""


@dataclass(frozen=True)
class Const(Instr):
    """dst <- floating-point constant."""

    dst: str
    value: float
    single: bool = False
    loc: Optional[str] = None


@dataclass(frozen=True)
class ConstInt(Instr):
    """dst <- integer constant."""

    dst: str
    value: int
    loc: Optional[str] = None


@dataclass(frozen=True)
class FloatOp(Instr):
    """dst <- op(srcs) in floating point (1-3 operands).

    ``op`` names come from :data:`repro.bigfloat.functions.ALL_OPERATIONS`;
    only *hardware* operations should appear here (+, -, *, /, neg,
    fabs, sqrt, fma, fmin, fmax, copysign) — library functions go
    through :class:`Call` so the wrapping machinery can intercept them.
    """

    dst: str
    op: str
    srcs: Tuple[str, ...]
    single: bool = False
    loc: Optional[str] = None


@dataclass(frozen=True)
class PackedOp(Instr):
    """SIMD-style lane-wise float operation (one instruction, n lanes)."""

    op: str
    dsts: Tuple[str, ...]
    lanes: Tuple[Tuple[str, ...], ...]  # one operand tuple per lane
    single: bool = False
    loc: Optional[str] = None


@dataclass(frozen=True)
class FloatBitOp(Instr):
    """dst <- bits(src) OP mask, reinterpreted as a float.

    Models compiler-emitted sign tricks (negation via XOR of the sign
    bit, fabs via AND with the complement).
    """

    dst: str
    op: str  # one of FLOAT_BIT_OPS
    src: str
    mask: int
    loc: Optional[str] = None


@dataclass(frozen=True)
class IntOp(Instr):
    """dst <- integer ALU operation."""

    dst: str
    op: str  # one of INT_OPS
    lhs: str
    rhs: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Mov(Instr):
    """dst <- src (copies the value box; shadows are shared)."""

    dst: str
    src: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Load(Instr):
    """dst <- memory[addr_register]."""

    dst: str
    addr: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Store(Instr):
    """memory[addr_register] <- src."""

    addr: str
    src: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class BitcastToInt(Instr):
    """dst(int) <- raw bits of float src."""

    dst: str
    src: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class BitcastToFloat(Instr):
    """dst(float) <- float with raw bits of int src."""

    dst: str
    src: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class FloatToInt(Instr):
    """dst(int) <- truncate(float src).  A conversion *spot*."""

    dst: str
    src: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class IntToFloat(Instr):
    """dst(float) <- exact value of int src (rounded to double)."""

    dst: str
    src: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Branch(Instr):
    """if pred(lhs, rhs) on floats: jump to label.  A control *spot*."""

    pred: str
    lhs: str
    rhs: str
    target: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class IntBranch(Instr):
    """if pred(lhs, rhs) on integers: jump to label (not a spot)."""

    pred: str
    lhs: str
    rhs: str
    target: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Jump(Instr):
    """Unconditional jump to label."""

    target: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Call(Instr):
    """dst <- function(args).

    When ``function`` names a math-library routine, the interpreter's
    wrapping mode decides whether to treat it as one atomic operation
    (wrapped; paper Section 5.3) or to execute its software-libm IR
    body (unwrapped; Section 8.2's ablation).
    """

    dst: str
    function: str
    args: Tuple[str, ...]
    loc: Optional[str] = None


@dataclass(frozen=True)
class Ret(Instr):
    """Return a value from the current function."""

    src: Optional[str] = None
    loc: Optional[str] = None


@dataclass(frozen=True)
class Read(Instr):
    """dst <- next program input (a double)."""

    dst: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Out(Instr):
    """Print a float value: a program output *spot*."""

    src: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Halt(Instr):
    """Stop the machine."""

    loc: Optional[str] = None


@dataclass
class Function:
    """A named function: parameter registers + instruction list + labels."""

    name: str
    params: Tuple[str, ...] = ()
    instrs: list = field(default_factory=list)
    labels: dict = field(default_factory=dict)

    def label_index(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"unknown label {label!r} in {self.name}") from None


@dataclass
class Program:
    """A collection of functions; execution starts at ``entry``."""

    functions: dict = field(default_factory=dict)
    entry: str = "main"

    def add(self, function: Function) -> None:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None

    def instruction_count(self) -> int:
        return sum(len(f.instrs) for f in self.functions.values())
