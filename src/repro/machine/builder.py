"""Fluent construction of machine functions.

The builder hands out fresh register names, manages labels, and lets
callers attach source locations — the case-study programs and the
software libm are written against this API, in the way one would write
assembly with a macro assembler.

Example::

    fn = FunctionBuilder("main")
    x = fn.read()
    y = fn.op("sqrt", x, loc="main.c:3")
    fn.out(y)
    fn.halt()
    program = Program()
    program.add(fn.build())
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence, Tuple

from repro.machine import isa

Reg = str


class FunctionBuilder:
    """Accumulates instructions for one function."""

    #: Operations emitted as primitive FloatOp instructions; everything
    #: else in ALL_OPERATIONS is a library routine and must go through
    #: :meth:`call` so wrapping can intercept it.
    HARDWARE_OPS = frozenset(
        {
            "+", "-", "*", "/", "neg", "fabs", "sqrt", "fma",
            "fmin", "fmax", "copysign",
            "trunc", "floor", "ceil", "round", "nearbyint", "fdim",
        }
    )

    def __init__(self, name: str, params: Sequence[str] = ()) -> None:
        self.name = name
        self.params: Tuple[str, ...] = tuple(params)
        self.instrs: list = []
        self.labels: Dict[str, int] = {}
        self._register_counter = itertools.count()
        self._label_counter = itertools.count()
        self._default_loc: Optional[str] = None

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------

    def fresh(self, hint: str = "t") -> Reg:
        """A fresh register name."""
        return f"{hint}.{next(self._register_counter)}"

    def fresh_label(self, hint: str = "L") -> str:
        """A fresh (not yet placed) label name."""
        return f"{hint}.{next(self._label_counter)}"

    def at(self, loc: Optional[str]) -> "FunctionBuilder":
        """Set the default source location for subsequent instructions."""
        self._default_loc = loc
        return self

    def _loc(self, loc: Optional[str]) -> Optional[str]:
        return loc if loc is not None else self._default_loc

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------

    def const(self, value: float, single: bool = False,
              loc: Optional[str] = None) -> Reg:
        dst = self.fresh("c")
        self.instrs.append(
            isa.Const(dst, float(value), single=single, loc=self._loc(loc))
        )
        return dst

    def const_int(self, value: int, loc: Optional[str] = None) -> Reg:
        dst = self.fresh("i")
        self.instrs.append(isa.ConstInt(dst, int(value), loc=self._loc(loc)))
        return dst

    def op(self, op: str, *srcs: Reg, single: bool = False,
           loc: Optional[str] = None) -> Reg:
        """A float operation: hardware ops inline, library ops as calls."""
        if op in self.HARDWARE_OPS:
            dst = self.fresh()
            self.instrs.append(
                isa.FloatOp(dst, op, tuple(srcs), single=single, loc=self._loc(loc))
            )
            return dst
        return self.call(op, *srcs, loc=loc)

    def packed(self, op: str, lanes: Sequence[Sequence[Reg]],
               loc: Optional[str] = None) -> Tuple[Reg, ...]:
        """A SIMD-style lane-wise operation; returns one register per lane."""
        dsts = tuple(self.fresh("v") for __ in lanes)
        self.instrs.append(
            isa.PackedOp(op, dsts, tuple(tuple(lane) for lane in lanes),
                         loc=self._loc(loc))
        )
        return dsts

    def bit_negate(self, src: Reg, loc: Optional[str] = None) -> Reg:
        """gcc-style negation: XOR the sign bit (paper Section 5.3)."""
        dst = self.fresh()
        self.instrs.append(
            isa.FloatBitOp(dst, "xor", src, isa.SIGN_BIT_MASK, loc=self._loc(loc))
        )
        return dst

    def bit_fabs(self, src: Reg, loc: Optional[str] = None) -> Reg:
        """gcc-style fabs: AND away the sign bit."""
        dst = self.fresh()
        self.instrs.append(
            isa.FloatBitOp(dst, "and", src, isa.ABS_MASK, loc=self._loc(loc))
        )
        return dst

    def int_op(self, op: str, lhs: Reg, rhs: Reg, loc: Optional[str] = None) -> Reg:
        dst = self.fresh("i")
        self.instrs.append(isa.IntOp(dst, op, lhs, rhs, loc=self._loc(loc)))
        return dst

    def mov(self, src: Reg, loc: Optional[str] = None) -> Reg:
        dst = self.fresh()
        self.instrs.append(isa.Mov(dst, src, loc=self._loc(loc)))
        return dst

    def mov_to(self, dst: Reg, src: Reg, loc: Optional[str] = None) -> None:
        self.instrs.append(isa.Mov(dst, src, loc=self._loc(loc)))

    def load(self, addr: Reg, loc: Optional[str] = None) -> Reg:
        dst = self.fresh()
        self.instrs.append(isa.Load(dst, addr, loc=self._loc(loc)))
        return dst

    def store(self, addr: Reg, src: Reg, loc: Optional[str] = None) -> None:
        self.instrs.append(isa.Store(addr, src, loc=self._loc(loc)))

    def bitcast_to_int(self, src: Reg, loc: Optional[str] = None) -> Reg:
        dst = self.fresh("i")
        self.instrs.append(isa.BitcastToInt(dst, src, loc=self._loc(loc)))
        return dst

    def bitcast_to_float(self, src: Reg, loc: Optional[str] = None) -> Reg:
        dst = self.fresh()
        self.instrs.append(isa.BitcastToFloat(dst, src, loc=self._loc(loc)))
        return dst

    def float_to_int(self, src: Reg, loc: Optional[str] = None) -> Reg:
        dst = self.fresh("i")
        self.instrs.append(isa.FloatToInt(dst, src, loc=self._loc(loc)))
        return dst

    def int_to_float(self, src: Reg, loc: Optional[str] = None) -> Reg:
        dst = self.fresh()
        self.instrs.append(isa.IntToFloat(dst, src, loc=self._loc(loc)))
        return dst

    def branch(self, pred: str, lhs: Reg, rhs: Reg, target: str,
               loc: Optional[str] = None) -> None:
        self.instrs.append(isa.Branch(pred, lhs, rhs, target, loc=self._loc(loc)))

    def int_branch(self, pred: str, lhs: Reg, rhs: Reg, target: str,
                   loc: Optional[str] = None) -> None:
        self.instrs.append(isa.IntBranch(pred, lhs, rhs, target, loc=self._loc(loc)))

    def jump(self, target: str, loc: Optional[str] = None) -> None:
        self.instrs.append(isa.Jump(target, loc=self._loc(loc)))

    def label(self, name: Optional[str] = None) -> str:
        """Place a label at the current position."""
        if name is None:
            name = self.fresh_label()
        if name in self.labels:
            raise ValueError(f"label {name!r} already placed")
        self.labels[name] = len(self.instrs)
        return name

    def call(self, function: str, *args: Reg, loc: Optional[str] = None) -> Reg:
        dst = self.fresh()
        self.instrs.append(
            isa.Call(dst, function, tuple(args), loc=self._loc(loc))
        )
        return dst

    def ret(self, src: Optional[Reg] = None, loc: Optional[str] = None) -> None:
        self.instrs.append(isa.Ret(src, loc=self._loc(loc)))

    def read(self, loc: Optional[str] = None) -> Reg:
        dst = self.fresh("in")
        self.instrs.append(isa.Read(dst, loc=self._loc(loc)))
        return dst

    def out(self, src: Reg, loc: Optional[str] = None) -> None:
        self.instrs.append(isa.Out(src, loc=self._loc(loc)))

    def halt(self, loc: Optional[str] = None) -> None:
        self.instrs.append(isa.Halt(loc=self._loc(loc)))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def build(self) -> isa.Function:
        """Validate labels and produce the Function."""
        for instr in self.instrs:
            target = getattr(instr, "target", None)
            if target is not None and target not in self.labels:
                raise ValueError(
                    f"{self.name}: branch to unplaced label {target!r}"
                )
        return isa.Function(
            name=self.name,
            params=self.params,
            instrs=list(self.instrs),
            labels=dict(self.labels),
        )
