"""A software math library written in the machine IR.

Real libms (FDLIBM, glibc) implement transcendental functions with
hundreds of primitive float instructions, bit manipulations, and
"magic constant" tricks.  The paper's Section 8.2 ablation turns
Herbgrind's library wrapping *off* and observes exactly those internals
leaking into the extracted expressions, e.g.::

    (x − 0.6931472 (y − 6.755399e15) + 2.576980e10) − 2.576980e10

where ``6.755399e15`` is the 1.5·2^52 round-to-nearest-integer trick.
To make that ablation reproducible, this module implements the whole
library-operation surface (exp/log/trig/pow/...) as IR functions built
from hardware ops, branches, integer ops and bitcasts — the same
reduction-plus-polynomial-kernel style FDLIBM uses, including the
magic-constant reduction in exp/sin/cos.

Accuracy is a few ulps (faithful-ish), which is all the ablation needs:
the paper notes that *without* wrapping Herbgrind also measures output
accuracy slightly incorrectly — an artifact our reproduction shares by
construction.

Routines assume normal (non-subnormal) inputs, like the corpus produces.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.machine.builder import FunctionBuilder, Reg
from repro.machine.isa import Function

#: 1.5 * 2**52: adding and subtracting this rounds a small double to an
#: integer — the constant the paper's Section 8.2 example exposes.
MAGIC_ROUND = 6755399441055744.0

_LN2_HI = 6.93147180369123816490e-01
_LN2_LO = 1.90821492927058770002e-10
_LOG2E = 1.4426950408889634
_PIO2_HI = 1.5707963267341256e00
_PIO2_MID = 6.0771005065061922e-11
_PIO2_LO = 2.0222662487959506e-21
_TWO_OVER_PI = 0.6366197723675814


def _factorial_coeffs(terms: int) -> List[float]:
    """[1/terms!, ..., 1/2!, 1/1!, 1/0!] for Horner evaluation of e^r."""
    return [1.0 / math.factorial(k) for k in range(terms, -1, -1)]


def _horner(fn: FunctionBuilder, x: Reg, coefficients: List[float]) -> Reg:
    """Emit Horner evaluation; coefficients from highest degree down."""
    acc = fn.const(coefficients[0])
    for coefficient in coefficients[1:]:
        scaled = fn.op("*", acc, x)
        acc = fn.op("+", scaled, fn.const(coefficient))
    return acc


def _ret_if_nan(fn: FunctionBuilder, x: Reg) -> None:
    """Return x when x is NaN (the 'x != x' idiom)."""
    ok = fn.fresh_label("notnan")
    fn.branch("eq", x, x, ok)
    fn.ret(x)
    fn.label(ok)


# ----------------------------------------------------------------------
# exp and friends
# ----------------------------------------------------------------------

def _build_exp() -> Function:
    fn = FunctionBuilder("exp", params=("x",))
    fn.at("libm/e_exp.c")
    x = "x"
    _ret_if_nan(fn, x)
    # Range checks.
    overflow = fn.fresh_label("overflow")
    underflow = fn.fresh_label("underflow")
    fn.branch("gt", x, fn.const(709.782712893384), overflow)
    fn.branch("lt", x, fn.const(-745.2), underflow)
    # n = round(x * log2(e)) via the magic-constant trick.
    magic = fn.const(MAGIC_ROUND)
    z = fn.op("*", x, fn.const(_LOG2E))
    shifted = fn.op("+", z, magic)
    n_float = fn.op("-", shifted, magic)
    # r = x - n*ln2 in two pieces (compensated reduction).
    r_high = fn.op("-", x, fn.op("*", n_float, fn.const(_LN2_HI)))
    r = fn.op("-", r_high, fn.op("*", n_float, fn.const(_LN2_LO)))
    # Polynomial kernel: e^r as a degree-13 Taylor Horner form.
    poly = _horner(fn, r, _factorial_coeffs(13))
    # Scale by 2^n: build the exponent bits directly.
    n_int = fn.float_to_int(n_float)
    biased = fn.int_op("iadd", n_int, fn.const_int(1023))
    bits = fn.int_op("ishl", biased, fn.const_int(52))
    scale = fn.bitcast_to_float(bits)
    fn.ret(fn.op("*", poly, scale))
    fn.label(overflow)
    fn.ret(fn.const(math.inf))
    fn.label(underflow)
    fn.ret(fn.const(0.0))
    return fn.build()


def _build_exp2() -> Function:
    fn = FunctionBuilder("exp2", params=("x",))
    fn.at("libm/e_exp2.c")
    scaled = fn.op("*", "x", fn.const(math.log(2.0)))
    fn.ret(fn.call("exp", scaled))
    return fn.build()


def _build_expm1() -> Function:
    # Deliberately the naive composition: exp(x) - 1.  With wrapping
    # off, Herbgrind sees exp's magic-constant internals — the paper's
    # Section 8.2 example expression.
    fn = FunctionBuilder("expm1", params=("x",))
    fn.at("libm/s_expm1.c")
    grown = fn.call("exp", "x")
    fn.ret(fn.op("-", grown, fn.const(1.0)))
    return fn.build()


# ----------------------------------------------------------------------
# log and friends
# ----------------------------------------------------------------------

def _build_log() -> Function:
    fn = FunctionBuilder("log", params=("x",))
    fn.at("libm/e_log.c")
    x = "x"
    _ret_if_nan(fn, x)
    pole = fn.fresh_label("pole")
    domain = fn.fresh_label("domain")
    zero = fn.const(0.0)
    fn.branch("eq", x, zero, pole)
    fn.branch("lt", x, zero, domain)
    # Split exponent and mantissa via bit surgery.
    bits = fn.bitcast_to_int(x)
    raw_exponent = fn.int_op("ishr", bits, fn.const_int(52))
    exponent = fn.int_op("isub", raw_exponent, fn.const_int(1023))
    man_bits = fn.int_op("iand", bits, fn.const_int((1 << 52) - 1))
    one_bits = fn.int_op("ior", man_bits, fn.const_int(0x3FF0000000000000))
    mantissa = fn.bitcast_to_float(one_bits)  # in [1, 2)
    # Fold m > sqrt(2) down a binade to center the series argument.
    m_cell = fn.mov(mantissa)
    e_cell_f = fn.int_to_float(exponent)
    e_cell = fn.mov(e_cell_f)
    no_fold = fn.fresh_label("nofold")
    fn.branch("le", m_cell, fn.const(math.sqrt(2.0)), no_fold)
    fn.mov_to(m_cell, fn.op("*", m_cell, fn.const(0.5)))
    fn.mov_to(e_cell, fn.op("+", e_cell, fn.const(1.0)))
    fn.label(no_fold)
    one = fn.const(1.0)
    t = fn.op("/", fn.op("-", m_cell, one), fn.op("+", m_cell, one))
    t_squared = fn.op("*", t, t)
    # ln(m) = 2t * (1 + t^2/3 + t^4/5 + ...): 11 odd-reciprocal terms.
    coefficients = [1.0 / (2 * k + 1) for k in range(11, -1, -1)]
    series = _horner(fn, t_squared, coefficients)
    ln_mantissa = fn.op("*", fn.op("*", fn.const(2.0), t), series)
    high = fn.op("*", e_cell, fn.const(_LN2_HI))
    low = fn.op("*", e_cell, fn.const(_LN2_LO))
    fn.ret(fn.op("+", fn.op("+", high, ln_mantissa), low))
    fn.label(pole)
    fn.ret(fn.const(-math.inf))
    fn.label(domain)
    fn.ret(fn.const(math.nan))
    return fn.build()


def _build_log1p() -> Function:
    fn = FunctionBuilder("log1p", params=("x",))
    fn.at("libm/s_log1p.c")
    grown = fn.op("+", fn.const(1.0), "x")
    fn.ret(fn.call("log", grown))
    return fn.build()


def _build_log2() -> Function:
    fn = FunctionBuilder("log2", params=("x",))
    fn.at("libm/e_log2.c")
    natural = fn.call("log", "x")
    fn.ret(fn.op("*", natural, fn.const(_LOG2E)))
    return fn.build()


def _build_log10() -> Function:
    fn = FunctionBuilder("log10", params=("x",))
    fn.at("libm/e_log10.c")
    natural = fn.call("log", "x")
    fn.ret(fn.op("*", natural, fn.const(0.4342944819032518)))
    return fn.build()


# ----------------------------------------------------------------------
# sin / cos / tan
# ----------------------------------------------------------------------

def _build_sin_kernel() -> Function:
    """sin(r) for |r| <= pi/4, as r * P(r^2)."""
    fn = FunctionBuilder("__sin_kernel", params=("r",))
    fn.at("libm/k_sin.c")
    r_squared = fn.op("*", "r", "r")
    coefficients = [
        (-1.0) ** k / math.factorial(2 * k + 1) for k in range(8, -1, -1)
    ]
    series = _horner(fn, r_squared, coefficients)
    fn.ret(fn.op("*", "r", series))
    return fn.build()


def _build_cos_kernel() -> Function:
    """cos(r) for |r| <= pi/4, as P(r^2)."""
    fn = FunctionBuilder("__cos_kernel", params=("r",))
    fn.at("libm/k_cos.c")
    r_squared = fn.op("*", "r", "r")
    coefficients = [
        (-1.0) ** k / math.factorial(2 * k) for k in range(8, -1, -1)
    ]
    fn.ret(_horner(fn, r_squared, coefficients))
    return fn.build()


def _emit_pio2_reduction(fn: FunctionBuilder, x: Reg):
    """Emit n = round(x/(pi/2)) and the compensated remainder r."""
    magic = fn.const(MAGIC_ROUND)
    z = fn.op("*", x, fn.const(_TWO_OVER_PI))
    shifted = fn.op("+", z, magic)
    n_float = fn.op("-", shifted, magic)
    r = fn.op("-", x, fn.op("*", n_float, fn.const(_PIO2_HI)))
    r = fn.op("-", r, fn.op("*", n_float, fn.const(_PIO2_MID)))
    r = fn.op("-", r, fn.op("*", n_float, fn.const(_PIO2_LO)))
    quadrant = fn.int_op(
        "iand", fn.float_to_int(n_float), fn.const_int(3)
    )
    return quadrant, r


def _build_sin() -> Function:
    fn = FunctionBuilder("sin", params=("x",))
    fn.at("libm/s_sin.c")
    _ret_if_nan(fn, "x")
    quadrant, r = _emit_pio2_reduction(fn, "x")
    q1 = fn.fresh_label("q1")
    q2 = fn.fresh_label("q2")
    q3 = fn.fresh_label("q3")
    fn.int_branch("eq", quadrant, fn.const_int(1), q1)
    fn.int_branch("eq", quadrant, fn.const_int(2), q2)
    fn.int_branch("eq", quadrant, fn.const_int(3), q3)
    fn.ret(fn.call("__sin_kernel", r))
    fn.label(q1)
    fn.ret(fn.call("__cos_kernel", r))
    fn.label(q2)
    fn.ret(fn.bit_negate(fn.call("__sin_kernel", r)))
    fn.label(q3)
    fn.ret(fn.bit_negate(fn.call("__cos_kernel", r)))
    return fn.build()


def _build_cos() -> Function:
    fn = FunctionBuilder("cos", params=("x",))
    fn.at("libm/s_cos.c")
    _ret_if_nan(fn, "x")
    quadrant, r = _emit_pio2_reduction(fn, "x")
    q1 = fn.fresh_label("q1")
    q2 = fn.fresh_label("q2")
    q3 = fn.fresh_label("q3")
    fn.int_branch("eq", quadrant, fn.const_int(1), q1)
    fn.int_branch("eq", quadrant, fn.const_int(2), q2)
    fn.int_branch("eq", quadrant, fn.const_int(3), q3)
    fn.ret(fn.call("__cos_kernel", r))
    fn.label(q1)
    fn.ret(fn.bit_negate(fn.call("__sin_kernel", r)))
    fn.label(q2)
    fn.ret(fn.bit_negate(fn.call("__cos_kernel", r)))
    fn.label(q3)
    fn.ret(fn.call("__sin_kernel", r))
    return fn.build()


def _build_tan() -> Function:
    fn = FunctionBuilder("tan", params=("x",))
    fn.at("libm/s_tan.c")
    sin_value = fn.call("sin", "x")
    cos_value = fn.call("cos", "x")
    fn.ret(fn.op("/", sin_value, cos_value))
    return fn.build()


# ----------------------------------------------------------------------
# atan / atan2 / asin / acos
# ----------------------------------------------------------------------

def _build_atan_kernel() -> Function:
    """atan(t) for t in [0, 1], by double argument-halving + series."""
    fn = FunctionBuilder("__atan_kernel", params=("t",))
    fn.at("libm/k_atan.c")
    one = fn.const(1.0)
    current = fn.mov("t")
    for __ in range(2):
        squared = fn.op("*", current, current)
        root = fn.op("sqrt", fn.op("+", one, squared))
        current = fn.op("/", current, fn.op("+", one, root))
    t_squared = fn.op("*", current, current)
    coefficients = [(-1.0) ** k / (2 * k + 1) for k in range(12, -1, -1)]
    series = _horner(fn, t_squared, coefficients)
    quarter = fn.op("*", current, series)
    fn.ret(fn.op("*", fn.const(4.0), quarter))
    return fn.build()


def _build_atan() -> Function:
    fn = FunctionBuilder("atan", params=("x",))
    fn.at("libm/s_atan.c")
    x = "x"
    _ret_if_nan(fn, x)
    magnitude = fn.bit_fabs(x)
    big = fn.fresh_label("big")
    fn.branch("gt", magnitude, fn.const(1.0), big)
    inner = fn.call("__atan_kernel", magnitude)
    fn.ret(fn.op("copysign", inner, x))
    fn.label(big)
    reciprocal = fn.op("/", fn.const(1.0), magnitude)
    folded = fn.op("-", fn.const(math.pi / 2), fn.call("__atan_kernel", reciprocal))
    fn.ret(fn.op("copysign", folded, x))
    return fn.build()


def _build_atan2() -> Function:
    fn = FunctionBuilder("atan2", params=("y", "x"))
    fn.at("libm/e_atan2.c")
    x, y = "x", "y"
    _ret_if_nan(fn, x)
    _ret_if_nan(fn, y)
    zero = fn.const(0.0)
    x_nonpos = fn.fresh_label("xnonpos")
    fn.branch("le", x, zero, x_nonpos)
    # x > 0: plain atan of the ratio.
    fn.ret(fn.call("atan", fn.op("/", y, x)))
    fn.label(x_nonpos)
    x_zero = fn.fresh_label("xzero")
    fn.branch("eq", x, zero, x_zero)
    # x < 0: pi - atan(|y/x|), signed like y.
    ratio = fn.bit_fabs(fn.op("/", y, x))
    base = fn.op("-", fn.const(math.pi), fn.call("atan", ratio))
    fn.ret(fn.op("copysign", base, y))
    fn.label(x_zero)
    y_zero = fn.fresh_label("yzero")
    fn.branch("eq", y, zero, y_zero)
    fn.ret(fn.op("copysign", fn.const(math.pi / 2), y))
    fn.label(y_zero)
    # Both zero: result depends on the sign *bit* of x.
    bits = fn.bitcast_to_int(x)
    sign = fn.int_op("ishr", bits, fn.const_int(63))
    neg_x = fn.fresh_label("negzero")
    fn.int_branch("ne", sign, fn.const_int(0), neg_x)
    fn.ret(fn.op("copysign", zero, y))
    fn.label(neg_x)
    fn.ret(fn.op("copysign", fn.const(math.pi), y))
    return fn.build()


def _build_asin() -> Function:
    fn = FunctionBuilder("asin", params=("x",))
    fn.at("libm/e_asin.c")
    one = fn.const(1.0)
    # sqrt((1-x)(1+x)) goes NaN outside [-1, 1], which then propagates.
    product = fn.op("*", fn.op("-", one, "x"), fn.op("+", one, "x"))
    root = fn.op("sqrt", product)
    fn.ret(fn.call("atan2", "x", root))
    return fn.build()


def _build_acos() -> Function:
    fn = FunctionBuilder("acos", params=("x",))
    fn.at("libm/e_acos.c")
    one = fn.const(1.0)
    product = fn.op("*", fn.op("-", one, "x"), fn.op("+", one, "x"))
    root = fn.op("sqrt", product)
    fn.ret(fn.call("atan2", root, "x"))
    return fn.build()


# ----------------------------------------------------------------------
# pow, cbrt, hypot
# ----------------------------------------------------------------------

def _build_pow() -> Function:
    fn = FunctionBuilder("pow", params=("x", "y"))
    fn.at("libm/e_pow.c")
    x, y = "x", "y"
    zero = fn.const(0.0)
    one = fn.const(1.0)
    trivial = fn.fresh_label("one")
    fn.branch("eq", y, zero, trivial)
    fn.branch("eq", x, one, trivial)
    x_zero = fn.fresh_label("xzero")
    fn.branch("eq", x, zero, x_zero)
    # General case (negative bases yield NaN via log, as documented).
    fn.ret(fn.call("exp", fn.op("*", y, fn.call("log", x))))
    fn.label(trivial)
    fn.ret(one)
    fn.label(x_zero)
    y_negative = fn.fresh_label("yneg")
    fn.branch("lt", y, zero, y_negative)
    fn.ret(zero)
    fn.label(y_negative)
    fn.ret(fn.const(math.inf))
    return fn.build()


def _build_cbrt() -> Function:
    fn = FunctionBuilder("cbrt", params=("x",))
    fn.at("libm/s_cbrt.c")
    zero_label = fn.fresh_label("zero")
    zero = fn.const(0.0)
    fn.branch("eq", "x", zero, zero_label)
    magnitude = fn.bit_fabs("x")
    third = fn.op("/", fn.call("log", magnitude), fn.const(3.0))
    root = fn.call("exp", third)
    fn.ret(fn.op("copysign", root, "x"))
    fn.label(zero_label)
    fn.ret("x")
    return fn.build()


def _build_hypot() -> Function:
    fn = FunctionBuilder("hypot", params=("x", "y"))
    fn.at("libm/e_hypot.c")
    squares = fn.op("+", fn.op("*", "x", "x"), fn.op("*", "y", "y"))
    fn.ret(fn.op("sqrt", squares))
    return fn.build()


# ----------------------------------------------------------------------
# Hyperbolics
# ----------------------------------------------------------------------

def _build_sinh() -> Function:
    fn = FunctionBuilder("sinh", params=("x",))
    fn.at("libm/e_sinh.c")
    grown = fn.call("exp", "x")
    shrunk = fn.op("/", fn.const(1.0), grown)
    fn.ret(fn.op("*", fn.op("-", grown, shrunk), fn.const(0.5)))
    return fn.build()


def _build_cosh() -> Function:
    fn = FunctionBuilder("cosh", params=("x",))
    fn.at("libm/e_cosh.c")
    grown = fn.call("exp", "x")
    shrunk = fn.op("/", fn.const(1.0), grown)
    fn.ret(fn.op("*", fn.op("+", grown, shrunk), fn.const(0.5)))
    return fn.build()


def _build_tanh() -> Function:
    fn = FunctionBuilder("tanh", params=("x",))
    fn.at("libm/s_tanh.c")
    doubled = fn.op("*", "x", fn.const(2.0))
    grown = fn.call("exp", doubled)
    one = fn.const(1.0)
    fn.ret(fn.op("/", fn.op("-", grown, one), fn.op("+", grown, one)))
    return fn.build()


def _build_asinh() -> Function:
    fn = FunctionBuilder("asinh", params=("x",))
    fn.at("libm/s_asinh.c")
    squared = fn.op("*", "x", "x")
    root = fn.op("sqrt", fn.op("+", squared, fn.const(1.0)))
    fn.ret(fn.call("log", fn.op("+", "x", root)))
    return fn.build()


def _build_acosh() -> Function:
    fn = FunctionBuilder("acosh", params=("x",))
    fn.at("libm/e_acosh.c")
    squared = fn.op("*", "x", "x")
    root = fn.op("sqrt", fn.op("-", squared, fn.const(1.0)))
    fn.ret(fn.call("log", fn.op("+", "x", root)))
    return fn.build()


def _build_atanh() -> Function:
    fn = FunctionBuilder("atanh", params=("x",))
    fn.at("libm/e_atanh.c")
    one = fn.const(1.0)
    ratio = fn.op("/", fn.op("+", one, "x"), fn.op("-", one, "x"))
    fn.ret(fn.op("*", fn.const(0.5), fn.call("log", ratio)))
    return fn.build()


# ----------------------------------------------------------------------
# Remainders
# ----------------------------------------------------------------------

def _build_fmod() -> Function:
    fn = FunctionBuilder("fmod", params=("x", "y"))
    fn.at("libm/e_fmod.c")
    quotient = fn.op("trunc", fn.op("/", "x", "y"))
    fn.ret(fn.op("-", "x", fn.op("*", quotient, "y")))
    return fn.build()


def _build_remainder() -> Function:
    fn = FunctionBuilder("remainder", params=("x", "y"))
    fn.at("libm/s_remainder.c")
    quotient = fn.op("nearbyint", fn.op("/", "x", "y"))
    fn.ret(fn.op("-", "x", fn.op("*", quotient, "y")))
    return fn.build()


_BUILDERS = [
    _build_exp, _build_exp2, _build_expm1,
    _build_log, _build_log1p, _build_log2, _build_log10,
    _build_sin_kernel, _build_cos_kernel, _build_sin, _build_cos, _build_tan,
    _build_atan_kernel, _build_atan, _build_atan2, _build_asin, _build_acos,
    _build_pow, _build_cbrt, _build_hypot,
    _build_sinh, _build_cosh, _build_tanh,
    _build_asinh, _build_acosh, _build_atanh,
    _build_fmod, _build_remainder,
]

_cache: Dict[str, Function] = {}


def build_libm() -> Dict[str, Function]:
    """Build (once) and return the software libm as {name: Function}."""
    if not _cache:
        for build in _BUILDERS:
            function = build()
            _cache[function.name] = function
    return dict(_cache)
