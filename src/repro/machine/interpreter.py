"""The machine interpreter, with tracer hooks for dynamic analyses.

The interpreter executes :class:`~repro.machine.isa.Program` objects the
way Valgrind executes a client binary.  A :class:`Tracer` receives a
callback per analysed event — this is the reproduction's analogue of
VEX instrumentation.  The Herbgrind analysis, FpDebug, BZ and Verrou
are all tracers; running with the default no-op tracer measures native
(uninstrumented) speed for the overhead experiments.

Library calls (`Call` to a name in ``LIBRARY_OPERATIONS``) are where
wrapping happens: with ``wrap_libraries=True`` (the default, paper
Section 5.3) the call is executed as a single atomic operation and the
tracer sees ``on_library``; with wrapping off the interpreter inlines
the software-libm IR body (Section 8.2's ablation), so the tracer sees
hundreds of primitive operations, magic constants and all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.bigfloat.functions import DOUBLE_HANDLERS, LIBRARY_OPERATIONS
from repro.ieee.float32 import to_single
from repro.machine import isa
from repro.machine.values import FloatBox

Value = Union[FloatBox, int]


class MachineError(RuntimeError):
    """Raised on ill-formed programs or runaway execution."""


class Tracer:
    """Analysis callbacks; the base class is a no-op (native execution).

    Callbacks that produce a float may return a replacement value to
    override the machine's result (used by the Verrou-style analysis to
    perturb rounding); returning None keeps the hardware result.
    """

    def on_start(self, interpreter: "Interpreter") -> None:
        """Execution is about to begin."""

    def fused_site_callback(self, instr: isa.Instr, op: str, arity: int,
                            single: bool = False):
        """A per-site fused analysis callback, or None for the generic path.

        The compiled engine queries this once per float-op / wrapped
        library-call instruction at compile time; a non-None return
        replaces the per-event ``on_op``/``on_library`` dispatch for
        that site with a direct call to the returned closure
        (``callback(*arg_boxes, result_box)``), whose result cannot be
        overridden.  The base tracer — and with it every analysis that
        does not site-compile — returns None, and the reference
        interpreter never asks: it is the unfused oracle the compiled
        pipeline is checked against.
        """
        return None

    def fused_const_callback(self, instr: isa.Instr):
        """A per-site fused replacement for ``on_const``
        (``callback(box)``), or None for the generic dispatch.  Same
        contract and caveats as :meth:`fused_site_callback`."""
        return None

    def fused_branch_callback(self, instr: isa.Branch):
        """A per-site fused replacement for ``on_branch``
        (``callback(lhs_box, rhs_box, taken)``), or None for the
        generic dispatch.  Same contract as
        :meth:`fused_site_callback`."""
        return None

    def batch_site_callback(self, instr: isa.Instr, op: str, arity: int,
                            single: bool, machine_fn):
        """A per-site batch analysis callback, or None for the per-lane path.

        The batched engine queries this once per float-op / wrapped
        library-call instruction at compile time.  A non-None return is
        called with SoA columns — ``callback(avals, ashads[, bvals,
        bshads])`` for value/shadow columns per operand — and must
        return ``(result_values, result_shadows)`` columns, computing
        the machine result per lane through ``machine_fn`` itself so
        per-site setup is paid once per batch rather than once per
        lane.  The base tracer returns None, which makes the batched
        engine fall back to per-lane dispatch through the sequential
        hooks.
        """
        return None

    def batch_branch_callback(self, instr: isa.Branch):
        """A per-site batch replacement for ``on_branch``
        (``callback(lvals, lshads, rvals, rshads, taken)`` over SoA
        columns), or None to loop the sequential hook per lane."""
        return None

    def on_batch_start(self, machine, lanes: int) -> None:
        """A batch of ``lanes`` lockstep executions is about to begin.

        Default: behave exactly like one sequential ``on_start`` — a
        batch is one epoch shared by all its lanes.
        """
        self.on_start(machine)

    def on_batch_finish(self, machine) -> None:
        """The current batch of lockstep executions halted."""
        self.on_finish(machine)

    def on_const(self, instr: isa.Instr, box: FloatBox) -> None:
        """A floating-point constant was materialized."""

    def on_read(self, instr: isa.Read, box: FloatBox, index: int) -> None:
        """A program input was read (index = position in input stream)."""

    def on_op(
        self, instr: isa.Instr, op: str, args: Sequence[FloatBox], result: FloatBox
    ) -> Optional[float]:
        """A floating-point operation executed."""
        return None

    def on_library(
        self, instr: isa.Call, name: str, args: Sequence[FloatBox], result: FloatBox
    ) -> Optional[float]:
        """A wrapped math-library call executed as one atomic operation."""
        return None

    def on_bitop(
        self, instr: isa.FloatBitOp, box: FloatBox, result: FloatBox
    ) -> None:
        """A bitwise operation on a float register executed."""

    def on_int_to_float(self, instr: isa.IntToFloat, value: int, box: FloatBox) -> None:
        """An integer was converted to floating point."""

    def on_float_to_int(
        self, instr: isa.FloatToInt, box: FloatBox, result: int
    ) -> None:
        """A float→int conversion executed (a conversion spot)."""

    def on_branch(
        self, instr: isa.Branch, lhs: FloatBox, rhs: FloatBox, taken: bool
    ) -> None:
        """A floating-point conditional branch executed (a control spot)."""

    def on_out(self, instr: isa.Out, box: FloatBox) -> None:
        """A value reached a program output (an output spot)."""

    def on_finish(self, interpreter: "Interpreter") -> None:
        """Execution halted."""


@dataclass
class ExecutionStats:
    """Dynamic instruction counts, for the overhead experiments."""

    steps: int = 0
    float_ops: int = 0
    library_calls: int = 0
    branches: int = 0
    loads: int = 0
    stores: int = 0
    calls: int = 0


@dataclass
class _Frame:
    function: isa.Function
    registers: Dict[str, Value] = field(default_factory=dict)
    pc: int = 0
    return_register: Optional[str] = None


class Interpreter:
    """Executes a program under an optional tracer."""

    def __init__(
        self,
        program: isa.Program,
        tracer: Optional[Tracer] = None,
        wrap_libraries: bool = True,
        libm: Optional[Dict[str, isa.Function]] = None,
        max_steps: int = 50_000_000,
        double_handlers: Optional[Dict[str, Callable[..., float]]] = None,
    ) -> None:
        self.program = program
        self.tracer = tracer if tracer is not None else Tracer()
        self.wrap_libraries = wrap_libraries
        self.libm = libm if libm is not None else {}
        self.max_steps = max_steps
        #: ⟦f⟧_F handler table (substrate-selected); defaults to the
        #: module table, whose semantics every substrate preserves.
        self._double_handlers = (
            double_handlers if double_handlers is not None
            else DOUBLE_HANDLERS
        )
        self.memory: Dict[int, Value] = {}
        self.outputs: List[float] = []
        self.stats = ExecutionStats()
        self._inputs: List[float] = []
        self._input_position = 0

    def _apply_double(self, operation: str, args: Sequence[float]) -> float:
        """⟦f⟧_F through this interpreter's substrate handler table."""
        handler = self._double_handlers.get(operation)
        if handler is None:
            raise KeyError(f"unknown operation: {operation!r}")
        return handler(*args)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, inputs: Sequence[float] = ()) -> List[float]:
        """Execute from the entry function; returns the Out values.

        Each run starts from fresh memory, outputs, and stats — the
        same construct-once/run-many contract as the compiled engine,
        so one Interpreter can be reused across input sets.
        """
        self._inputs = [float(v) for v in inputs]
        self._input_position = 0
        self.outputs = []
        self.memory = {}
        self.stats = ExecutionStats()
        self.tracer.on_start(self)
        frames = [_Frame(self.program.function(self.program.entry))]
        while frames:
            frame = frames[-1]
            if frame.pc >= len(frame.function.instrs):
                # Falling off the end of a function behaves like Ret/Halt.
                frames.pop()
                continue
            instr = frame.function.instrs[frame.pc]
            self.stats.steps += 1
            if self.stats.steps > self.max_steps:
                raise MachineError(
                    f"exceeded {self.max_steps} steps (infinite loop?)"
                )
            advance = self._execute(instr, frame, frames)
            if advance is StopIteration:
                break
        self.tracer.on_finish(self)
        return self.outputs

    # ------------------------------------------------------------------
    # Register access
    # ------------------------------------------------------------------

    @staticmethod
    def _float_box(frame: _Frame, register: str) -> FloatBox:
        value = frame.registers.get(register)
        if not isinstance(value, FloatBox):
            raise MachineError(f"register {register!r} does not hold a float")
        return value

    @staticmethod
    def _int_value(frame: _Frame, register: str) -> int:
        value = frame.registers.get(register)
        if isinstance(value, bool) or not isinstance(value, int):
            raise MachineError(f"register {register!r} does not hold an integer")
        return value

    # ------------------------------------------------------------------
    # Instruction dispatch
    # ------------------------------------------------------------------

    def _execute(self, instr: isa.Instr, frame: _Frame, frames: List[_Frame]):
        if isinstance(instr, isa.Const):
            value = to_single(instr.value) if instr.single else float(instr.value)
            box = FloatBox(value)
            frame.registers[instr.dst] = box
            self.tracer.on_const(instr, box)
        elif isinstance(instr, isa.ConstInt):
            frame.registers[instr.dst] = instr.value
        elif isinstance(instr, isa.FloatOp):
            self._float_op(instr, frame)
        elif isinstance(instr, isa.PackedOp):
            self._packed_op(instr, frame)
        elif isinstance(instr, isa.FloatBitOp):
            self._float_bit_op(instr, frame)
        elif isinstance(instr, isa.IntOp):
            frame.registers[instr.dst] = _int_alu(
                instr.op,
                self._int_value(frame, instr.lhs),
                self._int_value(frame, instr.rhs),
            )
        elif isinstance(instr, isa.Mov):
            value = frame.registers.get(instr.src)
            if value is None:
                raise MachineError(f"register {instr.src!r} is uninitialized")
            frame.registers[instr.dst] = value
        elif isinstance(instr, isa.Load):
            address = self._int_value(frame, instr.addr)
            try:
                frame.registers[instr.dst] = self.memory[address]
            except KeyError:
                raise MachineError(f"load from uninitialized address {address}")
            self.stats.loads += 1
        elif isinstance(instr, isa.Store):
            address = self._int_value(frame, instr.addr)
            value = frame.registers.get(instr.src)
            if value is None:
                raise MachineError(f"register {instr.src!r} is uninitialized")
            self.memory[address] = value
            self.stats.stores += 1
        elif isinstance(instr, isa.BitcastToInt):
            from repro.ieee.float64 import double_to_bits

            box = self._float_box(frame, instr.src)
            frame.registers[instr.dst] = double_to_bits(box.value)
        elif isinstance(instr, isa.BitcastToFloat):
            from repro.ieee.float64 import bits_to_double

            bits = self._int_value(frame, instr.src) & ((1 << 64) - 1)
            frame.registers[instr.dst] = FloatBox(bits_to_double(bits))
        elif isinstance(instr, isa.FloatToInt):
            box = self._float_box(frame, instr.src)
            result = _truncate_to_int(box.value)
            frame.registers[instr.dst] = result
            self.tracer.on_float_to_int(instr, box, result)
        elif isinstance(instr, isa.IntToFloat):
            value = self._int_value(frame, instr.src)
            box = FloatBox(float(value))
            frame.registers[instr.dst] = box
            self.tracer.on_int_to_float(instr, value, box)
        elif isinstance(instr, isa.Branch):
            lhs = self._float_box(frame, instr.lhs)
            rhs = self._float_box(frame, instr.rhs)
            taken = _float_predicate(instr.pred, lhs.value, rhs.value)
            self.stats.branches += 1
            self.tracer.on_branch(instr, lhs, rhs, taken)
            if taken:
                frame.pc = frame.function.label_index(instr.target)
                return None
        elif isinstance(instr, isa.IntBranch):
            lhs = self._int_value(frame, instr.lhs)
            rhs = self._int_value(frame, instr.rhs)
            self.stats.branches += 1
            if _int_predicate(instr.pred, lhs, rhs):
                frame.pc = frame.function.label_index(instr.target)
                return None
        elif isinstance(instr, isa.Jump):
            frame.pc = frame.function.label_index(instr.target)
            return None
        elif isinstance(instr, isa.Call):
            return self._call(instr, frame, frames)
        elif isinstance(instr, isa.Ret):
            result = frame.registers.get(instr.src) if instr.src else None
            frames.pop()
            if frames and frame.return_register is not None:
                if result is None:
                    raise MachineError(f"{frame.function.name} returned nothing")
                frames[-1].registers[frame.return_register] = result
            return None
        elif isinstance(instr, isa.Read):
            if self._input_position >= len(self._inputs):
                raise MachineError("program read past the end of its inputs")
            value = self._inputs[self._input_position]
            box = FloatBox(value)
            frame.registers[instr.dst] = box
            self.tracer.on_read(instr, box, self._input_position)
            self._input_position += 1
        elif isinstance(instr, isa.Out):
            box = self._float_box(frame, instr.src)
            self.outputs.append(box.value)
            self.tracer.on_out(instr, box)
        elif isinstance(instr, isa.Halt):
            return StopIteration
        else:
            raise MachineError(f"unknown instruction {instr!r}")
        frame.pc += 1
        return None

    # ------------------------------------------------------------------
    # Floating-point operations
    # ------------------------------------------------------------------

    def _float_op(self, instr: isa.FloatOp, frame: _Frame) -> None:
        args = [self._float_box(frame, src) for src in instr.srcs]
        value = self._apply_double(instr.op, [a.value for a in args])
        if instr.single:
            value = to_single(value)
        box = FloatBox(value)
        frame.registers[instr.dst] = box
        self.stats.float_ops += 1
        override = self.tracer.on_op(instr, instr.op, args, box)
        if override is not None:
            box.value = to_single(override) if instr.single else override

    def _packed_op(self, instr: isa.PackedOp, frame: _Frame) -> None:
        if len(instr.dsts) != len(instr.lanes):
            raise MachineError("packed op lane/destination mismatch")
        lane_boxes = []
        for lane in instr.lanes:
            lane_boxes.append([self._float_box(frame, src) for src in lane])
        for dst, args in zip(instr.dsts, lane_boxes):
            value = self._apply_double(instr.op, [a.value for a in args])
            if instr.single:
                value = to_single(value)
            box = FloatBox(value)
            frame.registers[dst] = box
            self.stats.float_ops += 1
            override = self.tracer.on_op(instr, instr.op, args, box)
            if override is not None:
                box.value = to_single(override) if instr.single else override

    def _float_bit_op(self, instr: isa.FloatBitOp, frame: _Frame) -> None:
        from repro.ieee.float64 import bits_to_double, double_to_bits

        box = self._float_box(frame, instr.src)
        bits = double_to_bits(box.value)
        if instr.op == "xor":
            bits ^= instr.mask
        elif instr.op == "and":
            bits &= instr.mask
        elif instr.op == "or":
            bits |= instr.mask
        else:
            raise MachineError(f"unknown float bit op {instr.op!r}")
        result = FloatBox(bits_to_double(bits & ((1 << 64) - 1)))
        frame.registers[instr.dst] = result
        self.stats.float_ops += 1
        self.tracer.on_bitop(instr, box, result)

    # ------------------------------------------------------------------
    # Calls (user functions, wrapped/unwrapped library calls)
    # ------------------------------------------------------------------

    def _call(self, instr: isa.Call, frame: _Frame, frames: List[_Frame]):
        self.stats.calls += 1
        name = instr.function
        is_library = name in LIBRARY_OPERATIONS
        if is_library and (self.wrap_libraries or name not in self.libm):
            # Wrapped: one atomic operation (paper Section 5.3).
            args = [self._float_box(frame, a) for a in instr.args]
            value = self._apply_double(name, [a.value for a in args])
            box = FloatBox(value)
            frame.registers[instr.dst] = box
            self.stats.library_calls += 1
            override = self.tracer.on_library(instr, name, args, box)
            if override is not None:
                box.value = override
            frame.pc += 1
            return None
        if is_library:
            callee = self.libm.get(name)
        else:
            # Plain call: program functions first, then libm-internal
            # helpers (polynomial kernels the libm routines share).
            callee = self.program.functions.get(name) or self.libm.get(name)
        if callee is None:
            raise MachineError(f"call to unknown function {name!r}")
        if len(callee.params) != len(instr.args):
            raise MachineError(
                f"{name} expects {len(callee.params)} arguments,"
                f" got {len(instr.args)}"
            )
        new_frame = _Frame(callee, return_register=instr.dst)
        for param, arg in zip(callee.params, instr.args):
            value = frame.registers.get(arg)
            if value is None:
                raise MachineError(f"argument register {arg!r} is uninitialized")
            new_frame.registers[param] = value
        frame.pc += 1  # return lands after the call
        frames.append(new_frame)
        return None


def _truncate_to_int(value: float) -> int:
    if math.isnan(value):
        return 0  # hardware cvttsd2si yields INT_MIN; 0 keeps demos tame
    if math.isinf(value):
        return (1 << 62) if value > 0 else -(1 << 62)
    return math.trunc(value)


def _float_predicate(pred: str, lhs: float, rhs: float) -> bool:
    if math.isnan(lhs) or math.isnan(rhs):
        return pred == "ne"
    return _compare(pred, lhs, rhs)


def _int_predicate(pred: str, lhs: int, rhs: int) -> bool:
    return _compare(pred, lhs, rhs)


def _compare(pred: str, lhs, rhs) -> bool:
    if pred == "lt":
        return lhs < rhs
    if pred == "le":
        return lhs <= rhs
    if pred == "gt":
        return lhs > rhs
    if pred == "ge":
        return lhs >= rhs
    if pred == "eq":
        return lhs == rhs
    if pred == "ne":
        return lhs != rhs
    raise MachineError(f"unknown predicate {pred!r}")


def _int_alu(op: str, lhs: int, rhs: int) -> int:
    if op == "iadd":
        return lhs + rhs
    if op == "isub":
        return lhs - rhs
    if op == "imul":
        return lhs * rhs
    if op == "idiv":
        if rhs == 0:
            raise MachineError("integer division by zero")
        quotient = abs(lhs) // abs(rhs)
        return -quotient if (lhs < 0) != (rhs < 0) else quotient
    if op == "imod":
        # C-style remainder: lhs - rhs * trunc(lhs / rhs).
        if rhs == 0:
            raise MachineError("integer modulo by zero")
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        return lhs - rhs * quotient
    if op == "ishl":
        return lhs << rhs
    if op == "ishr":
        return lhs >> rhs
    if op == "iand":
        return lhs & rhs
    if op == "ior":
        return lhs | rhs
    if op == "ixor":
        return lhs ^ rhs
    raise MachineError(f"unknown integer op {op!r}")
