"""Compiling FPCore benchmarks to machine programs.

The paper compiles FPBench benchmarks to native code with the
FPCore-to-C compiler and GCC, then analyses the binaries (Section 8.1).
This module is the analogue: it lowers FPCore ASTs to the machine IR.

Lowering decisions mirror what a C compiler does:

* numeric literals are rounded to double at compile time,
* named constants become double literals (like C's ``M_PI``),
* hardware operations become FloatOp instructions; math-library
  operations become ``Call`` instructions so that wrapping applies,
* ``if`` and boolean operators lower to conditional branches — each
  float comparison is a machine branch, i.e. a Herbgrind control spot,
* ``while`` loops lower to branch/jump cycles,
* a benchmark's entry point Reads one input per argument and Outs the
  final result (the driver loop the paper links against each benchmark).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.fpcore.ast import (
    BOOLEAN_OPS,
    COMPARISON_OPS,
    Const,
    Expr,
    FPCore,
    If,
    Let,
    Num,
    Op,
    Var,
    While,
)
from repro.fpcore.evaluator import _double_constant
from repro.machine.builder import FunctionBuilder, Reg
from repro.machine.isa import Function, Program

#: FPCore comparison op -> machine branch predicate.
_PREDICATE = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}


class CompileError(ValueError):
    """Raised when an FPCore construct cannot be lowered."""


class _ExprCompiler:
    def __init__(self, builder: FunctionBuilder, loc_prefix: str) -> None:
        self.builder = builder
        self.loc_prefix = loc_prefix
        self._node_counter = 0

    def _loc(self) -> str:
        self._node_counter += 1
        return f"{self.loc_prefix}:{self._node_counter}"

    # ------------------------------------------------------------------
    # Value expressions
    # ------------------------------------------------------------------

    def compile(self, expr: Expr, env: Dict[str, Reg]) -> Reg:
        if isinstance(expr, Num):
            return self.builder.const(float(expr.value), loc=self._loc())
        if isinstance(expr, Const):
            constant = _double_constant(expr.name)
            if isinstance(constant, bool):
                raise CompileError(
                    f"boolean constant {expr.name} in value position"
                )
            return self.builder.const(constant, loc=self._loc())
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise CompileError(f"unbound variable {expr.name}") from None
        if isinstance(expr, Op):
            if expr.op in COMPARISON_OPS or expr.op in BOOLEAN_OPS:
                raise CompileError(
                    f"boolean operator {expr.op} in value position"
                )
            args = [self.compile(arg, env) for arg in expr.args]
            return self.builder.op(expr.op, *args, loc=self._loc())
        if isinstance(expr, If):
            return self._compile_if(expr, env)
        if isinstance(expr, Let):
            scope = dict(env)
            if expr.sequential:
                for name, value in expr.bindings:
                    scope[name] = self.compile(value, scope)
            else:
                compiled = [
                    (name, self.compile(value, env)) for name, value in expr.bindings
                ]
                scope.update(compiled)
            return self.compile(expr.body, scope)
        if isinstance(expr, While):
            return self._compile_while(expr, env)
        raise CompileError(f"cannot compile {type(expr).__name__}")

    def _compile_if(self, expr: If, env: Dict[str, Reg]) -> Reg:
        builder = self.builder
        result = builder.fresh("phi")
        else_label = builder.fresh_label("else")
        end_label = builder.fresh_label("endif")
        self.compile_condition(expr.cond, env, jump_if_false=else_label)
        then_value = self.compile(expr.then, env)
        builder.mov_to(result, then_value, loc=self._loc())
        builder.jump(end_label)
        builder.label(else_label)
        else_value = self.compile(expr.orelse, env)
        builder.mov_to(result, else_value, loc=self._loc())
        builder.label(end_label)
        return result

    def _compile_while(self, expr: While, env: Dict[str, Reg]) -> Reg:
        builder = self.builder
        scope = dict(env)
        # Loop variables live in dedicated mutable registers.
        cells: Dict[str, Reg] = {}
        if expr.sequential:
            for name, init, __ in expr.bindings:
                value = self.compile(init, scope)
                cell = builder.fresh(f"loop_{name}")
                builder.mov_to(cell, value, loc=self._loc())
                cells[name] = cell
                scope[name] = cell
        else:
            initial = [
                (name, self.compile(init, env))
                for name, init, __ in expr.bindings
            ]
            for name, value in initial:
                cell = builder.fresh(f"loop_{name}")
                builder.mov_to(cell, value, loc=self._loc())
                cells[name] = cell
                scope[name] = cell
        head = builder.label(builder.fresh_label("loop"))
        exit_label = builder.fresh_label("done")
        self.compile_condition(expr.cond, scope, jump_if_false=exit_label)
        if expr.sequential:
            for name, __, update in expr.bindings:
                value = self.compile(update, scope)
                builder.mov_to(cells[name], value, loc=self._loc())
        else:
            updated = [
                (name, self.compile(update, scope))
                for name, __, update in expr.bindings
            ]
            for name, value in updated:
                builder.mov_to(cells[name], value, loc=self._loc())
        builder.jump(head)
        builder.label(exit_label)
        return self.compile(expr.body, scope)

    # ------------------------------------------------------------------
    # Conditions (compiled to control flow, so comparisons become spots)
    # ------------------------------------------------------------------

    def compile_condition(
        self, expr: Expr, env: Dict[str, Reg], jump_if_false: str
    ) -> None:
        """Emit code that falls through when ``expr`` is true."""
        builder = self.builder
        if isinstance(expr, Const):
            if expr.name == "TRUE":
                return
            if expr.name == "FALSE":
                builder.jump(jump_if_false)
                return
            raise CompileError(f"constant {expr.name} in condition")
        if isinstance(expr, Op) and expr.op == "not":
            # Fall through when the operand is false.
            past = builder.fresh_label("not")
            self.compile_condition(expr.args[0], env, jump_if_false=past)
            builder.jump(jump_if_false)
            builder.label(past)
            return
        if isinstance(expr, Op) and expr.op == "and":
            for arg in expr.args:
                self.compile_condition(arg, env, jump_if_false=jump_if_false)
            return
        if isinstance(expr, Op) and expr.op == "or":
            done = builder.fresh_label("or")
            for arg in expr.args[:-1]:
                next_try = builder.fresh_label("try")
                self.compile_condition(arg, env, jump_if_false=next_try)
                builder.jump(done)
                builder.label(next_try)
            self.compile_condition(expr.args[-1], env, jump_if_false=jump_if_false)
            builder.label(done)
            return
        if isinstance(expr, Op) and expr.op in COMPARISON_OPS:
            # Branch-on-true then jump: simply inverting the predicate
            # would be wrong for NaN (both < and >= are false), so we
            # emit the same branch/jump pair a C compiler does.
            values = [self.compile(arg, env) for arg in expr.args]
            predicate = _PREDICATE[expr.op]
            for lhs, rhs in zip(values, values[1:]):
                holds = builder.fresh_label("cmp")
                builder.branch(predicate, lhs, rhs, holds, loc=self._loc())
                builder.jump(jump_if_false)
                builder.label(holds)
            return
        raise CompileError(
            f"cannot compile condition {type(expr).__name__}/{getattr(expr, 'op', '')}"
        )


def compile_fpcore(
    core: FPCore, name: Optional[str] = None, loc_prefix: Optional[str] = None
) -> Program:
    """Compile a benchmark into a standalone program.

    The entry function reads one input per FPCore argument, evaluates
    the body, and Outs the result — mirroring the driver the paper
    compiles around each FPBench benchmark.
    """
    program_name = name or core.name or "benchmark"
    prefix = loc_prefix or f"{program_name}.c"
    builder = FunctionBuilder("main")
    compiler = _ExprCompiler(builder, prefix)
    env: Dict[str, Reg] = {}
    for argument in core.arguments:
        env[argument] = builder.read(loc=f"{prefix}:arg-{argument}")
    result = compiler.compile(core.body, env)
    builder.out(result, loc=f"{prefix}:output")
    builder.halt()
    program = Program()
    program.add(builder.build())
    return program


def compile_expression(
    body: Expr, arguments, name: str = "expr", loc_prefix: Optional[str] = None
) -> Program:
    """Compile a bare expression with the given argument order."""
    core = FPCore(arguments=tuple(arguments), body=body, name=name)
    return compile_fpcore(core, name=name, loc_prefix=loc_prefix)
