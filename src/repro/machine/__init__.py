"""The abstract float machine: the reproduction's Valgrind/VEX substitute.

Programs are lists of IR instructions over float/int registers, a heap,
branches, and calls (paper Figure 2 extended with the Section 5
realities: two precisions, SIMD-style packed ops, bitwise float tricks,
untyped memory).  The interpreter takes a :class:`Tracer` — the
instrumentation seam where Herbgrind and the comparison tools attach.
"""

from repro.machine import isa, lanes
from repro.machine.batched import BatchedProgram
from repro.machine.builder import FunctionBuilder
from repro.machine.compiled import CompiledProgram
from repro.machine.compiler import CompileError, compile_expression, compile_fpcore
from repro.machine.interpreter import (
    ExecutionStats,
    Interpreter,
    MachineError,
    Tracer,
)
from repro.machine.isa import Function, Program
from repro.machine.libm import MAGIC_ROUND, build_libm
from repro.machine.values import FloatBox

__all__ = [
    "BatchedProgram",
    "CompileError",
    "CompiledProgram",
    "ExecutionStats",
    "FloatBox",
    "Function",
    "FunctionBuilder",
    "Interpreter",
    "MachineError",
    "MAGIC_ROUND",
    "Program",
    "Tracer",
    "build_libm",
    "compile_expression",
    "compile_fpcore",
    "isa",
    "lanes",
]
