"""NumPy-vectorized lane arithmetic for the batched engine.

The batched engine stores registers as SoA columns (see
:mod:`repro.machine.batched`), but the analysis' per-site callbacks
still walked those columns lane by lane, paying one Python arithmetic
call per lane for the machine value and one double-double kernel call
per lane for the hardware shadow.  This module lifts both onto NumPy:

* :func:`machine_binary` / :func:`machine_unary` compute a whole
  machine-value column with one ufunc call, patching the rare lanes
  whose scalar handler has non-IEEE glue (division by zero, negative
  sqrt) through the scalar handler so the column is bit-identical to
  the per-lane loop.
* :func:`dd_binary_columns` / :func:`dd_unary_columns` run the
  double-double kernels of :mod:`repro.bigfloat.doubledouble` over
  hi/lo component arrays in the exact scalar operation order — binary64
  ufuncs round-to-nearest exactly like Python's scalar float ops, so
  every accepted lane is bit-for-bit the scalar kernel's result — and
  return an ``ok`` mask; rejected lanes (guard trips, special-case
  branches, non-hardware shadows) simply fall back to the existing
  scalar per-lane path, which is also where escalation lives.

Everything degrades to ``None`` when NumPy is absent (the ``pure`` CI
leg), when ``REPRO_NUMPY=0`` disables it, or when a column is shorter
than :data:`MIN_LANES` (ufunc dispatch overhead would beat the win).
Callers treat ``None`` as "use the per-lane loop"; reports are
byte-identical either way because vectorization only changes who
computes each lane, never what is computed.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional, Sequence, Tuple

from repro.bigfloat.doubledouble import DoubleDouble

try:
    if os.environ.get("REPRO_NUMPY", "1") == "0":
        raise ImportError("vectorized lanes disabled by REPRO_NUMPY=0")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the pure CI leg
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "MIN_LANES",
    "MACHINE_BINARY_OPS",
    "MACHINE_UNARY_OPS",
    "DD_BINARY_OPS",
    "DD_UNARY_OPS",
    "machine_binary",
    "machine_unary",
    "dd_binary_columns",
    "dd_unary_columns",
    "split_column",
]

#: True when the vectorized paths are available in this process.
HAVE_NUMPY = _np is not None

#: Below this many lanes the per-call ufunc overhead outweighs the
#: saved Python arithmetic; the per-lane loop is faster.
MIN_LANES = 8

# Mirrors of the doubledouble module's guard constants (kept private
# there; the vectorized kernels must apply identical guards).
_SPLITTER = 134217729.0  # 2**27 + 1
_SPLIT_MAX = math.ldexp(1.0, 970)
_TINY = math.ldexp(1.0, -960)

#: Operations whose scalar double handler is the plain IEEE operation
#: (plus scalar-patched special cases), vectorizable bit-identically.
MACHINE_BINARY_OPS = frozenset(("+", "-", "*", "/"))
MACHINE_UNARY_OPS = frozenset(("sqrt", "fabs", "neg"))

#: Operations with a vectorized double-double kernel.
DD_BINARY_OPS = frozenset(("+", "-", "*", "/"))
DD_UNARY_OPS = frozenset(("sqrt",))


# ----------------------------------------------------------------------
# Machine-value columns
# ----------------------------------------------------------------------

def machine_binary(
    op: str, avals: Sequence[float], bvals: Sequence[float], scalar_fn
) -> Optional[List[float]]:
    """One vectorized machine-value column, or None to use the loop.

    Lanes where the scalar handler's semantics are not the raw IEEE
    ufunc (division by zero goes through explicit sign glue in
    ``DOUBLE_HANDLERS``) are recomputed through ``scalar_fn`` so the
    column matches the per-lane loop bit for bit, NaN signs included.
    """
    if _np is None or op not in MACHINE_BINARY_OPS \
            or len(avals) < MIN_LANES:
        return None
    with _np.errstate(all="ignore"):
        a = _np.asarray(avals)
        b = _np.asarray(bvals)
        if op == "+":
            out = (a + b).tolist()
        elif op == "-":
            out = (a - b).tolist()
        elif op == "*":
            out = (a * b).tolist()
        else:
            result = a / b
            out = result.tolist()
            zero = b == 0.0
            if zero.any():
                for i in _np.flatnonzero(zero).tolist():
                    out[i] = scalar_fn(avals[i], bvals[i])
    return out


def machine_unary(
    op: str, avals: Sequence[float], scalar_fn
) -> Optional[List[float]]:
    """Unary counterpart of :func:`machine_binary`."""
    if _np is None or op not in MACHINE_UNARY_OPS \
            or len(avals) < MIN_LANES:
        return None
    with _np.errstate(all="ignore"):
        a = _np.asarray(avals)
        if op == "fabs":
            return _np.abs(a).tolist()
        if op == "neg":
            return _np.negative(a).tolist()
        result = _np.sqrt(a)
        out = result.tolist()
        negative = a < 0.0
        if negative.any():
            # math.sqrt maps the domain error to +NaN; hardware sqrt
            # may disagree on the NaN's sign bit, so patch per lane.
            for i in _np.flatnonzero(negative).tolist():
                out[i] = scalar_fn(avals[i])
    return out


# ----------------------------------------------------------------------
# Double-double component columns
# ----------------------------------------------------------------------

def split_column(
    vals: Sequence[float], shads: Sequence
) -> Optional[Tuple[List[float], List[float], List[bool]]]:
    """SoA hi/lo components of a shadow column's double-double reals.

    Unfilled opaque lanes (shadow still None) use the machine value —
    exactly the leaf :meth:`_opaque_shadow_value` will intern for them.
    Lanes carrying a non-hardware real are masked out; a column with no
    hardware lanes at all returns None so callers skip the vector pass.
    """
    n = len(vals)
    hi = [0.0] * n
    lo = [0.0] * n
    ok = [True] * n
    any_hw = False
    for i in range(n):
        shadow = shads[i]
        if shadow is None:
            value = vals[i]
            if value - value == 0.0:
                hi[i] = value
                any_hw = True
            else:
                ok[i] = False
        else:
            real = shadow.real
            if type(real) is DoubleDouble:
                hi[i] = real.hi
                lo[i] = real.lo
                any_hw = True
            else:
                ok[i] = False
    if not any_hw:
        return None
    return hi, lo, ok


def dd_binary_columns(
    op: str,
    avals: Sequence[float], ashads: Sequence,
    bvals: Sequence[float], bshads: Sequence,
) -> Optional[Tuple[List[float], List[float], List[bool], List[bool]]]:
    """One vectorized double-double pass over a binary site's columns.

    Returns per-lane ``(hi, lo, exact, ok)`` lists; ``ok`` lanes carry
    exactly what the scalar kernel would return, everything else falls
    back to the per-lane path (including its promotion handling).
    Returns None when vectorization is off or the columns hold no
    hardware lanes.
    """
    if _np is None or op not in DD_BINARY_OPS or len(avals) < MIN_LANES:
        return None
    a = split_column(avals, ashads)
    if a is None:
        return None
    b = split_column(bvals, bshads)
    if b is None:
        return None
    with _np.errstate(all="ignore"):
        xh = _np.asarray(a[0])
        xl = _np.asarray(a[1])
        yh = _np.asarray(b[0])
        yl = _np.asarray(b[1])
        ok = _np.logical_and(a[2], b[2])
        if op == "+":
            zh, zl, exact, ok = _dd_add(xh, xl, yh, yl, ok)
        elif op == "-":
            zh, zl, exact, ok = _dd_add(xh, xl, -yh, -yl, ok)
        elif op == "*":
            zh, zl, exact, ok = _dd_mul(xh, xl, yh, yl, ok)
        else:
            zh, zl, exact, ok = _dd_div(xh, xl, yh, yl, ok)
    return zh.tolist(), zl.tolist(), exact.tolist(), ok.tolist()


def dd_unary_columns(
    op: str, avals: Sequence[float], ashads: Sequence
) -> Optional[Tuple[List[float], List[float], List[bool], List[bool]]]:
    """Unary counterpart of :func:`dd_binary_columns` (sqrt only —
    negation and absolute value are single flips, cheaper scalar)."""
    if _np is None or op not in DD_UNARY_OPS or len(avals) < MIN_LANES:
        return None
    a = split_column(avals, ashads)
    if a is None:
        return None
    with _np.errstate(all="ignore"):
        xh = _np.asarray(a[0])
        xl = _np.asarray(a[1])
        ok = _np.asarray(a[2])
        zh, zl, exact, ok = _dd_sqrt(xh, xl, ok)
    return zh.tolist(), zl.tolist(), exact.tolist(), ok.tolist()


# ----------------------------------------------------------------------
# Vectorized error-free transformations and kernels
#
# Each mirrors its scalar namesake in repro.bigfloat.doubledouble
# operation for operation: binary64 ufuncs and Python scalar floats
# round identically, so accepted lanes are bit-identical to the scalar
# kernels (the lanes fuzz suite checks exactly that).  Guard trips and
# the scalar kernels' special-case early returns (zero operands, zero
# products, zero dividends — where IEEE sign rules need the raw
# hardware result) clear the lane's ``ok`` bit instead of branching.
# ----------------------------------------------------------------------

def _two_sum(a, b):
    s = a + b
    bb = s - a
    return s, (a - (s - bb)) + (b - bb)


def _quick_two_sum(a, b):
    s = a + b
    return s, b - (s - a)


def _two_prod(a, b):
    p = a * b
    t = _SPLITTER * a
    ah = t - (t - a)
    al = a - ah
    t = _SPLITTER * b
    bh = t - (t - b)
    bl = b - bh
    return p, ((ah * bh - p) + ah * bl + al * bh) + al * bl


def _dd_add(xh, xl, yh, yl, ok):
    # Zero operands take the scalar kernel's sign-preserving branch.
    ok = ok & ~((xh == 0.0) & (xl == 0.0)) & ~((yh == 0.0) & (yl == 0.0))
    sh, sl = _two_sum(xh, yh)
    ok &= (sh - sh) == 0.0
    th, tl = _two_sum(xl, yl)
    vh, vl = _quick_two_sum(sh, sl + th)
    zh, zl = _quick_two_sum(vh, tl + vl)
    ok &= (zh - zh) == 0.0
    exact = (xl == 0.0) & (yl == 0.0)
    # Inexact results in the deep-underflow range promote (guard).
    ok &= ~(~exact & (zh != 0.0) & (zh > -_TINY) & (zh < _TINY))
    return zh, zl, exact, ok


def _dd_mul(xh, xl, yh, yl, ok):
    ok = ok & (xh > -_SPLIT_MAX) & (xh < _SPLIT_MAX) \
        & (yh > -_SPLIT_MAX) & (yh < _SPLIT_MAX)
    ph, pl = _two_prod(xh, yh)
    ok &= (ph - ph) == 0.0
    ok &= ph != 0.0  # zero products: scalar sign/underflow branch
    pure = (xl == 0.0) & (yl == 0.0)
    # A pure product landing in the underflow band takes the scalar
    # generic path (and promotes); don't claim it exact here.
    ok &= ~(pure & (ph > -_TINY) & (ph < _TINY))
    t = xh * yl + xl * yh
    zh, zl = _quick_two_sum(ph, _np.where(pure, pl, pl + t))
    ok &= (zh - zh) == 0.0
    ok &= ~(~pure & (zh != 0.0) & (zh > -_TINY) & (zh < _TINY))
    return zh, zl, pure, ok


def _dd_div(xh, xl, yh, yl, ok):
    ok = ok & (yh != 0.0) & ((yh - yh) == 0.0)
    ok &= ~((xh == 0.0) & (xl == 0.0))  # zero dividends: sign branch
    abs_xh = _np.abs(xh)
    ok &= (abs_xh > _TINY) & (abs_xh < _SPLIT_MAX) \
        & (yh > -_SPLIT_MAX) & (yh < _SPLIT_MAX)
    th = xh / yh
    ok &= (th - th) == 0.0
    # A zero th is underflow here (zero dividends were masked above):
    # the scalar kernel promotes, so the lane must too.
    abs_th = _np.abs(th)
    ok &= (abs_th > _TINY) & (abs_th < _SPLIT_MAX)
    ph, pl = _two_prod(th, yh)
    ok &= (ph - ph) == 0.0
    dh = xh - ph
    d = (dh - pl) + xl - th * yl
    tl = d / yh
    zh, zl = _quick_two_sum(th, tl)
    ok &= (zh - zh) == 0.0
    exact = (xl == 0.0) & (yl == 0.0) & (ph == xh) & (pl == 0.0) \
        & (d == 0.0)
    return zh, zl, exact, ok


def _dd_sqrt(xh, xl, ok):
    # The range guard also rejects zeros (scalar early return),
    # negatives, and non-finite highs.
    ok = ok & (xh > _TINY) & (xh < _SPLIT_MAX)
    r = _np.sqrt(_np.where(ok, xh, 1.0))
    ph, pl = _two_prod(r, r)
    e = ((xh - ph) - pl) + xl
    zh, zl = _quick_two_sum(r, e / (2.0 * r))
    ok &= (zh - zh) == 0.0
    exact = (xl == 0.0) & (ph == xh) & (pl == 0.0)
    return zh, zl, exact, ok
