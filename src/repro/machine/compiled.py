"""Threaded-code compilation of machine programs (the engine fast path).

The reference :class:`~repro.machine.interpreter.Interpreter` decides
what every instruction *is* every time it executes it: an isinstance
chain, dict lookups for registers and labels, name dispatch for the
double semantics, and virtual tracer calls even when the tracer does
not observe the event.  For loop-heavy programs that per-instruction
decision cost dominates the whole analysis.

:class:`CompiledProgram` pays those decisions once, at compile time:

* every instruction becomes one pre-bound Python closure (classic
  threaded code) stored in a flat list indexed by pc,
* register names are resolved to list slots, labels to pc indices,
  operation names to their :data:`~repro.bigfloat.functions.DOUBLE_HANDLERS`
  callables, and callees to their compiled bodies,
* tracer callbacks are bound at compile time — and *elided* entirely
  when the tracer does not override them, so native (no-op tracer)
  execution carries no instrumentation cost.

The compiled engine is semantics-identical to the reference
interpreter — same values, same tracer event sequence, same outputs —
which the engine-parity suite (``tests/machine/test_compiled.py``,
``tests/core/test_engine_parity.py``) checks end to end.  The
reference interpreter remains the oracle; ``engine="reference"`` in
:class:`~repro.core.config.AnalysisConfig` selects it.

A compiled program is specialized to one tracer: compile once per
(program, tracer, wrapping) combination and call :meth:`run` once per
input set — exactly the shape of
:func:`repro.core.analysis.analyze_program`.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Optional, Sequence

from repro.bigfloat.functions import DOUBLE_HANDLERS, LIBRARY_OPERATIONS
from repro.ieee.float32 import to_single
from repro.ieee.float64 import bits_to_double, double_to_bits
from repro.machine import isa
from repro.machine.interpreter import (
    ExecutionStats,
    MachineError,
    Tracer,
    _int_alu,
    _truncate_to_int,
)
from repro.machine.values import FloatBox

#: Sentinel pc values returned by closures.
_HALT = -1
#: The closure switched frames (call/ret): resync code/pc from state.
_SYNC = -2

#: Branch predicates.  Python comparison operators have exactly the
#: IEEE NaN semantics the reference implements by hand: every ordered
#: comparison with NaN is False and ``!=`` is True.
_PREDICATES: Dict[str, Callable] = {
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "eq": operator.eq,
    "ne": operator.ne,
}


def _int_op_fn(op: str) -> Callable[[int, int], int]:
    simple = {
        "iadd": operator.add,
        "isub": operator.sub,
        "imul": operator.mul,
        "ishl": operator.lshift,
        "ishr": operator.rshift,
        "iand": operator.and_,
        "ior": operator.or_,
        "ixor": operator.xor,
    }
    fn = simple.get(op)
    if fn is not None:
        return fn
    # idiv/imod carry C-style truncation semantics; reuse the reference
    # ALU so the two engines cannot drift.
    return lambda lhs, rhs, _op=op: _int_alu(_op, lhs, rhs)


class _RunState:
    """Mutable machine state threaded through the compiled closures."""

    __slots__ = (
        "code", "regs", "pc", "frames", "memory", "outputs",
        "inputs", "input_pos",
        "float_ops", "library_calls", "branches", "loads", "stores",
        "calls", "implicit_steps",
    )

    def __init__(self) -> None:
        self.code: List[Callable] = []
        self.regs: List = []
        self.pc = 0
        self.frames: List = []
        self.memory: Dict[int, object] = {}
        self.outputs: List[float] = []
        self.inputs: List[float] = []
        self.input_pos = 0
        self.float_ops = 0
        self.library_calls = 0
        self.branches = 0
        self.loads = 0
        self.stores = 0
        self.calls = 0
        self.implicit_steps = 0


class _CompiledFunction:
    """One function lowered to a closure list plus a register frame."""

    __slots__ = ("name", "nregs", "param_slots", "code")

    def __init__(self, name: str) -> None:
        self.name = name
        self.nregs = 0
        self.param_slots: List[int] = []
        self.code: List[Callable] = []


def _error_step(message: str) -> Callable:
    """A closure that raises when (and only when) it executes.

    Static problems the reference reports at runtime (unknown callee,
    arity mismatch, malformed packed op) must not fail at compile time
    for programs that never reach the bad instruction.
    """

    def step(st, _msg=message):
        raise MachineError(_msg)

    return step


class CompiledProgram:
    """A program compiled to threaded code for one tracer.

    Mirrors the reference interpreter's constructor and :meth:`run`
    contract; each :meth:`run` starts from fresh memory/outputs, like
    constructing a fresh reference interpreter per input set.
    """

    def __init__(
        self,
        program: isa.Program,
        tracer: Optional[Tracer] = None,
        wrap_libraries: bool = True,
        libm: Optional[Dict[str, isa.Function]] = None,
        max_steps: int = 50_000_000,
        double_handlers: Optional[Dict[str, Callable[..., float]]] = None,
    ) -> None:
        self.program = program
        self.tracer = tracer if tracer is not None else Tracer()
        self.wrap_libraries = wrap_libraries
        self.libm = libm if libm is not None else {}
        self.max_steps = max_steps
        #: ⟦f⟧_F handler table the threaded code pre-binds from; the
        #: analysis passes its substrate's table (only the emulated
        #: operations — fma — can differ, and results are identical).
        self.double_handlers = (
            double_handlers if double_handlers is not None
            else DOUBLE_HANDLERS
        )
        self.memory: Dict[int, object] = {}
        self.outputs: List[float] = []
        self.stats = ExecutionStats()
        self._functions: Dict[int, _CompiledFunction] = {}
        #: Tracer callbacks, pre-bound; None when the tracer does not
        #: override the base no-op (the call is then elided entirely).
        tracer_type = type(self.tracer)

        def hook(name: str):
            if getattr(tracer_type, name) is getattr(Tracer, name):
                return None
            return getattr(self.tracer, name)

        self._on_const = hook("on_const")
        self._on_read = hook("on_read")
        self._on_op = hook("on_op")
        self._on_library = hook("on_library")
        self._on_bitop = hook("on_bitop")
        self._on_int_to_float = hook("on_int_to_float")
        self._on_float_to_int = hook("on_float_to_int")
        self._on_branch = hook("on_branch")
        self._on_out = hook("on_out")
        self._entry = self._compile_function(
            program.function(program.entry)
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, inputs: Sequence[float] = ()) -> List[float]:
        """Execute from the entry function; returns the Out values."""
        st = _RunState()
        st.inputs = [float(v) for v in inputs]
        entry = self._entry
        st.code = code = entry.code
        st.regs = [None] * entry.nregs
        self.tracer.on_start(self)
        pc = 0
        steps = 0
        max_steps = self.max_steps
        try:
            while True:
                steps += 1
                if steps > max_steps:
                    raise MachineError(
                        f"exceeded {max_steps} steps (infinite loop?)"
                    )
                ret = code[pc](st)
                if ret >= 0:
                    pc = ret
                elif ret == _SYNC:
                    code = st.code
                    pc = st.pc
                else:
                    break
        except (AttributeError, TypeError) as error:
            # A register held the wrong kind of value (an integer where
            # a FloatBox was required, a box where an integer was) —
            # the reference reports these as machine errors, at the
            # same instruction.  Only errors raised *by this module's
            # closures* qualify: the same exception types from inside a
            # tracer callback are real bugs and must propagate
            # unchanged, as they would under the reference engine.
            tb = error.__traceback__
            while tb is not None and tb.tb_next is not None:
                tb = tb.tb_next
            if tb is not None and tb.tb_frame.f_code.co_filename == __file__:
                raise MachineError(
                    f"ill-typed register access: {error}"
                ) from error
            raise
        self.memory = st.memory
        self.outputs = st.outputs
        stats = ExecutionStats(
            steps=steps - st.implicit_steps,
            float_ops=st.float_ops,
            library_calls=st.library_calls,
            branches=st.branches,
            loads=st.loads,
            stores=st.stores,
            calls=st.calls,
        )
        self.stats = stats
        self.tracer.on_finish(self)
        return st.outputs

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _compile_function(self, function: isa.Function) -> _CompiledFunction:
        cached = self._functions.get(id(function))
        if cached is not None:
            return cached
        compiled = _CompiledFunction(function.name)
        # Register early: calls (including recursive ones) bind to the
        # object, whose .code fills in below.
        self._functions[id(function)] = compiled
        slots: Dict[str, int] = {}

        def slot(register: str) -> int:
            index = slots.get(register)
            if index is None:
                index = slots[register] = len(slots)
            return index

        compiled.param_slots = [slot(p) for p in function.params]
        code = compiled.code
        for index, instr in enumerate(function.instrs):
            code.append(self._compile_instr(instr, index + 1, function, slot))
        # Falling off the end behaves like a bare Ret (reference
        # semantics) — but without counting an executed step.
        code.append(self._compile_ret(None, implicit=True))
        compiled.nregs = len(slots)
        return compiled

    def _compile_instr(
        self, instr: isa.Instr, nxt: int, function: isa.Function, slot
    ) -> Callable:
        if isinstance(instr, isa.Const):
            value = to_single(instr.value) if instr.single else float(instr.value)
            dst = slot(instr.dst)
            on_const = self._on_const
            site_cb = self.tracer.fused_const_callback(instr)
            if site_cb is not None:
                def step(st, _v=value, _d=dst, _n=nxt, _scb=site_cb):
                    box = FloatBox(_v)
                    st.regs[_d] = box
                    _scb(box)
                    return _n
            elif on_const is None:
                def step(st, _v=value, _d=dst, _n=nxt):
                    st.regs[_d] = FloatBox(_v)
                    return _n
            else:
                def step(st, _v=value, _d=dst, _n=nxt, _cb=on_const, _i=instr):
                    box = FloatBox(_v)
                    st.regs[_d] = box
                    _cb(_i, box)
                    return _n
            return step

        if isinstance(instr, isa.ConstInt):
            dst, value = slot(instr.dst), instr.value

            def step(st, _v=value, _d=dst, _n=nxt):
                st.regs[_d] = _v
                return _n
            return step

        if isinstance(instr, isa.FloatOp):
            return self._compile_float_op(instr, nxt, slot)

        if isinstance(instr, isa.PackedOp):
            return self._compile_packed_op(instr, nxt, slot)

        if isinstance(instr, isa.FloatBitOp):
            return self._compile_float_bit_op(instr, nxt, slot)

        if isinstance(instr, isa.IntOp):
            fn = _int_op_fn(instr.op) if instr.op in isa.INT_OPS else None
            if fn is None:
                return _error_step(f"unknown integer op {instr.op!r}")
            dst, lhs, rhs = slot(instr.dst), slot(instr.lhs), slot(instr.rhs)

            def step(st, _d=dst, _l=lhs, _r=rhs, _fn=fn, _n=nxt):
                r = st.regs
                r[_d] = _fn(r[_l], r[_r])
                return _n
            return step

        if isinstance(instr, isa.Mov):
            dst, src = slot(instr.dst), slot(instr.src)

            def step(st, _d=dst, _s=src, _n=nxt, _name=instr.src):
                r = st.regs
                value = r[_s]
                if value is None:
                    raise MachineError(f"register {_name!r} is uninitialized")
                r[_d] = value
                return _n
            return step

        if isinstance(instr, isa.Load):
            dst, addr = slot(instr.dst), slot(instr.addr)

            def step(st, _d=dst, _a=addr, _n=nxt):
                address = st.regs[_a]
                try:
                    st.regs[_d] = st.memory[address]
                except KeyError:
                    raise MachineError(
                        f"load from uninitialized address {address}"
                    ) from None
                st.loads += 1
                return _n
            return step

        if isinstance(instr, isa.Store):
            addr, src = slot(instr.addr), slot(instr.src)

            def step(st, _a=addr, _s=src, _n=nxt, _name=instr.src):
                r = st.regs
                value = r[_s]
                if value is None:
                    raise MachineError(f"register {_name!r} is uninitialized")
                st.memory[r[_a]] = value
                st.stores += 1
                return _n
            return step

        if isinstance(instr, isa.BitcastToInt):
            dst, src = slot(instr.dst), slot(instr.src)

            def step(st, _d=dst, _s=src, _n=nxt):
                r = st.regs
                r[_d] = double_to_bits(r[_s].value)
                return _n
            return step

        if isinstance(instr, isa.BitcastToFloat):
            dst, src = slot(instr.dst), slot(instr.src)

            def step(st, _d=dst, _s=src, _n=nxt):
                r = st.regs
                r[_d] = FloatBox(bits_to_double(r[_s] & ((1 << 64) - 1)))
                return _n
            return step

        if isinstance(instr, isa.FloatToInt):
            dst, src = slot(instr.dst), slot(instr.src)
            on_f2i = self._on_float_to_int

            def step(st, _d=dst, _s=src, _n=nxt, _cb=on_f2i, _i=instr):
                r = st.regs
                box = r[_s]
                result = _truncate_to_int(box.value)
                r[_d] = result
                if _cb is not None:
                    _cb(_i, box, result)
                return _n
            return step

        if isinstance(instr, isa.IntToFloat):
            dst, src = slot(instr.dst), slot(instr.src)
            on_i2f = self._on_int_to_float

            def step(st, _d=dst, _s=src, _n=nxt, _cb=on_i2f, _i=instr):
                r = st.regs
                value = r[_s]
                box = FloatBox(float(value))
                r[_d] = box
                if _cb is not None:
                    _cb(_i, value, box)
                return _n
            return step

        if isinstance(instr, isa.Branch):
            pred = _PREDICATES.get(instr.pred)
            if pred is None:
                return _error_step(f"unknown predicate {instr.pred!r}")
            lhs, rhs = slot(instr.lhs), slot(instr.rhs)
            try:
                target = function.label_index(instr.target)
            except KeyError as error:
                return _error_step(str(error))
            on_branch = self._on_branch
            site_cb = self.tracer.fused_branch_callback(instr)
            if site_cb is not None:
                def step(st, _l=lhs, _r=rhs, _p=pred, _t=target, _n=nxt,
                         _scb=site_cb):
                    r = st.regs
                    a = r[_l]
                    b = r[_r]
                    taken = _p(a.value, b.value)
                    st.branches += 1
                    _scb(a, b, taken)
                    return _t if taken else _n
                return step

            def step(st, _l=lhs, _r=rhs, _p=pred, _t=target, _n=nxt,
                     _cb=on_branch, _i=instr):
                r = st.regs
                a = r[_l]
                b = r[_r]
                taken = _p(a.value, b.value)
                st.branches += 1
                if _cb is not None:
                    _cb(_i, a, b, taken)
                return _t if taken else _n
            return step

        if isinstance(instr, isa.IntBranch):
            pred = _PREDICATES.get(instr.pred)
            if pred is None:
                return _error_step(f"unknown predicate {instr.pred!r}")
            lhs, rhs = slot(instr.lhs), slot(instr.rhs)
            try:
                target = function.label_index(instr.target)
            except KeyError as error:
                return _error_step(str(error))

            def step(st, _l=lhs, _r=rhs, _p=pred, _t=target, _n=nxt):
                r = st.regs
                st.branches += 1
                return _t if _p(r[_l], r[_r]) else _n
            return step

        if isinstance(instr, isa.Jump):
            try:
                target = function.label_index(instr.target)
            except KeyError as error:
                return _error_step(str(error))

            def step(st, _t=target):
                return _t
            return step

        if isinstance(instr, isa.Call):
            return self._compile_call(instr, nxt, slot)

        if isinstance(instr, isa.Ret):
            return self._compile_ret(
                slot(instr.src) if instr.src else None,
                function_name=function.name,
            )

        if isinstance(instr, isa.Read):
            dst = slot(instr.dst)
            on_read = self._on_read

            def step(st, _d=dst, _n=nxt, _cb=on_read, _i=instr):
                position = st.input_pos
                if position >= len(st.inputs):
                    raise MachineError(
                        "program read past the end of its inputs"
                    )
                box = FloatBox(st.inputs[position])
                st.regs[_d] = box
                if _cb is not None:
                    _cb(_i, box, position)
                st.input_pos = position + 1
                return _n
            return step

        if isinstance(instr, isa.Out):
            src = slot(instr.src)
            on_out = self._on_out

            def step(st, _s=src, _n=nxt, _cb=on_out, _i=instr):
                box = st.regs[_s]
                st.outputs.append(box.value)
                if _cb is not None:
                    _cb(_i, box)
                return _n
            return step

        if isinstance(instr, isa.Halt):
            def step(st):
                return _HALT
            return step

        return _error_step(f"unknown instruction {instr!r}")

    # ------------------------------------------------------------------

    def _compile_float_op(self, instr: isa.FloatOp, nxt: int, slot) -> Callable:
        fn = self.double_handlers.get(instr.op)
        if fn is None:
            return _error_step(f"unknown operation: {instr.op!r}")
        src_slots = tuple(slot(s) for s in instr.srcs)
        dst = slot(instr.dst)
        on_op = self._on_op
        single = instr.single
        # Site-compiled analysis pipeline: the tracer may hand back a
        # fused per-site callback, compiled once per (site, config),
        # that replaces the generic on_op dispatch entirely.
        site_cb = self.tracer.fused_site_callback(
            instr, instr.op, len(src_slots), single
        )
        if site_cb is not None and len(src_slots) == 2 and not single:
            s0, s1 = src_slots

            def step(st, _s0=s0, _s1=s1, _d=dst, _fn=fn, _n=nxt,
                     _scb=site_cb):
                r = st.regs
                a = r[_s0]
                b = r[_s1]
                box = FloatBox(_fn(a.value, b.value))
                r[_d] = box
                st.float_ops += 1
                _scb(a, b, box)
                return _n
            return step
        if site_cb is not None and len(src_slots) == 1:

            def step(st, _s0=src_slots[0], _d=dst, _fn=fn, _n=nxt,
                     _scb=site_cb, _single=single):
                r = st.regs
                a = r[_s0]
                value = _fn(a.value)
                if _single:
                    value = to_single(value)
                box = FloatBox(value)
                r[_d] = box
                st.float_ops += 1
                _scb(a, box)
                return _n
            return step
        if site_cb is not None and len(src_slots) == 2:
            s0, s1 = src_slots

            def step(st, _s0=s0, _s1=s1, _d=dst, _fn=fn, _n=nxt,
                     _scb=site_cb):
                r = st.regs
                a = r[_s0]
                b = r[_s1]
                box = FloatBox(to_single(_fn(a.value, b.value)))
                r[_d] = box
                st.float_ops += 1
                _scb(a, b, box)
                return _n
            return step
        if len(src_slots) == 2 and not single:
            # The overwhelmingly common shape gets its own closure.
            s0, s1 = src_slots

            def step(st, _s0=s0, _s1=s1, _d=dst, _fn=fn, _n=nxt,
                     _cb=on_op, _i=instr, _op=instr.op):
                r = st.regs
                a = r[_s0]
                b = r[_s1]
                box = FloatBox(_fn(a.value, b.value))
                r[_d] = box
                st.float_ops += 1
                if _cb is not None:
                    override = _cb(_i, _op, (a, b), box)
                    if override is not None:
                        box.value = override
                return _n
            return step

        def step(st, _slots=src_slots, _d=dst, _fn=fn, _n=nxt,
                 _cb=on_op, _i=instr, _op=instr.op, _single=single):
            r = st.regs
            args = [r[s] for s in _slots]
            value = _fn(*[a.value for a in args])
            if _single:
                value = to_single(value)
            box = FloatBox(value)
            r[_d] = box
            st.float_ops += 1
            if _cb is not None:
                override = _cb(_i, _op, args, box)
                if override is not None:
                    box.value = to_single(override) if _single else override
            return _n
        return step

    def _compile_packed_op(self, instr: isa.PackedOp, nxt: int, slot) -> Callable:
        if len(instr.dsts) != len(instr.lanes):
            return _error_step("packed op lane/destination mismatch")
        fn = self.double_handlers.get(instr.op)
        if fn is None:
            return _error_step(f"unknown operation: {instr.op!r}")
        lanes = tuple(tuple(slot(s) for s in lane) for lane in instr.lanes)
        dsts = tuple(slot(d) for d in instr.dsts)
        on_op = self._on_op
        single = instr.single

        def step(st, _lanes=lanes, _dsts=dsts, _fn=fn, _n=nxt,
                 _cb=on_op, _i=instr, _op=instr.op, _single=single):
            r = st.regs
            # Gather every lane's boxes before writing any destination,
            # exactly like the reference (lanes may overlap dsts).
            lane_boxes = [[r[s] for s in lane] for lane in _lanes]
            for dst, args in zip(_dsts, lane_boxes):
                value = _fn(*[a.value for a in args])
                if _single:
                    value = to_single(value)
                box = FloatBox(value)
                r[dst] = box
                st.float_ops += 1
                if _cb is not None:
                    override = _cb(_i, _op, args, box)
                    if override is not None:
                        box.value = to_single(override) if _single else override
            return _n
        return step

    def _compile_float_bit_op(
        self, instr: isa.FloatBitOp, nxt: int, slot
    ) -> Callable:
        bit_fn = {
            "xor": operator.xor, "and": operator.and_, "or": operator.or_,
        }.get(instr.op)
        if bit_fn is None:
            return _error_step(f"unknown float bit op {instr.op!r}")
        dst, src = slot(instr.dst), slot(instr.src)
        mask = instr.mask
        on_bitop = self._on_bitop

        def step(st, _d=dst, _s=src, _m=mask, _fn=bit_fn, _n=nxt,
                 _cb=on_bitop, _i=instr):
            r = st.regs
            box = r[_s]
            bits = _fn(double_to_bits(box.value), _m)
            result = FloatBox(bits_to_double(bits & ((1 << 64) - 1)))
            r[_d] = result
            st.float_ops += 1
            if _cb is not None:
                _cb(_i, box, result)
            return _n
        return step

    def _compile_call(self, instr: isa.Call, nxt: int, slot) -> Callable:
        name = instr.function
        is_library = name in LIBRARY_OPERATIONS
        if is_library and (self.wrap_libraries or name not in self.libm):
            # Wrapped: one atomic operation (paper Section 5.3).
            fn = self.double_handlers[name]
            arg_slots = tuple(slot(a) for a in instr.args)
            dst = slot(instr.dst)
            on_library = self._on_library
            site_cb = self.tracer.fused_site_callback(
                instr, name, len(arg_slots)
            )
            if site_cb is not None and len(arg_slots) == 1:

                def step(st, _s0=arg_slots[0], _d=dst, _fn=fn, _n=nxt,
                         _scb=site_cb):
                    r = st.regs
                    a = r[_s0]
                    box = FloatBox(_fn(a.value))
                    r[_d] = box
                    st.calls += 1
                    st.library_calls += 1
                    _scb(a, box)
                    return _n
                return step
            if site_cb is not None and len(arg_slots) == 2:
                s0, s1 = arg_slots

                def step(st, _s0=s0, _s1=s1, _d=dst, _fn=fn, _n=nxt,
                         _scb=site_cb):
                    r = st.regs
                    a = r[_s0]
                    b = r[_s1]
                    box = FloatBox(_fn(a.value, b.value))
                    r[_d] = box
                    st.calls += 1
                    st.library_calls += 1
                    _scb(a, b, box)
                    return _n
                return step

            def step(st, _slots=arg_slots, _d=dst, _fn=fn, _n=nxt,
                     _cb=on_library, _i=instr, _name=name):
                r = st.regs
                args = [r[s] for s in _slots]
                box = FloatBox(_fn(*[a.value for a in args]))
                r[_d] = box
                st.calls += 1
                st.library_calls += 1
                if _cb is not None:
                    override = _cb(_i, _name, args, box)
                    if override is not None:
                        box.value = override
                return _n
            return step

        if is_library:
            callee = self.libm.get(name)
        else:
            callee = self.program.functions.get(name) or self.libm.get(name)
        if callee is None:
            return _error_step(f"call to unknown function {name!r}")
        if len(callee.params) != len(instr.args):
            return _error_step(
                f"{name} expects {len(callee.params)} arguments,"
                f" got {len(instr.args)}"
            )
        compiled = self._compile_function(callee)
        arg_slots = tuple(slot(a) for a in instr.args)
        ret_slot = slot(instr.dst)
        arg_names = instr.args

        def step(st, _callee=compiled, _slots=arg_slots, _ret=ret_slot,
                 _n=nxt, _names=arg_names):
            regs = st.regs
            frame = [None] * _callee.nregs
            params = _callee.param_slots
            for position, src in enumerate(_slots):
                value = regs[src]
                if value is None:
                    raise MachineError(
                        f"argument register {_names[position]!r} is"
                        " uninitialized"
                    )
                frame[params[position]] = value
            st.frames.append((st.code, regs, _ret, _n))
            st.code = _callee.code
            st.regs = frame
            st.pc = 0
            st.calls += 1
            return _SYNC
        return step

    def _compile_ret(
        self,
        src_slot: Optional[int],
        function_name: str = "?",
        implicit: bool = False,
    ) -> Callable:
        if implicit:
            # Falling off the end behaves like the reference's frame
            # pop: no step is counted, no return value is demanded, and
            # the caller's destination register stays untouched.
            def fall_off(st):
                st.implicit_steps += 1
                frames = st.frames
                if not frames:
                    return _HALT
                code, regs, __, ret_pc = frames.pop()
                st.code = code
                st.regs = regs
                st.pc = ret_pc
                return _SYNC
            return fall_off

        def step(st, _s=src_slot, _name=function_name):
            result = st.regs[_s] if _s is not None else None
            frames = st.frames
            if not frames:
                return _HALT
            code, regs, ret_slot, ret_pc = frames.pop()
            if ret_slot is not None:
                if result is None:
                    raise MachineError(f"{_name} returned nothing")
                regs[ret_slot] = result
            st.code = code
            st.regs = regs
            st.pc = ret_pc
            return _SYNC
        return step
