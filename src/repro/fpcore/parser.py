"""S-expression lexer and parser for FPCore.

Supports the FPCore 1.x constructs the corpus and reports need:
operators, literals (integer, decimal, rational, scientific), named
constants, let/let*, while/while*, if, preconditions and other
properties, and the ``!`` annotation form (parsed, annotations dropped).
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Iterator, List, Optional, Tuple, Union

from repro.fpcore.ast import (
    CONSTANTS,
    Const,
    Expr,
    FPCore,
    If,
    Let,
    Num,
    Op,
    Var,
    While,
)


class FPCoreSyntaxError(ValueError):
    """Raised when FPCore source text cannot be parsed."""


_TOKEN_PATTERN = re.compile(
    r"""
      (?P<comment>;[^\n]*)
    | (?P<open>[(\[])
    | (?P<close>[)\]])
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<atom>[^\s()\[\];"]+)
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> Iterator[str]:
    """Yield tokens, dropping comments; ( and [ are normalized."""
    position = 0
    for match in _TOKEN_PATTERN.finditer(source):
        between = source[position : match.start()]
        if between.strip():
            raise FPCoreSyntaxError(f"unexpected characters: {between.strip()!r}")
        position = match.end()
        kind = match.lastgroup
        if kind == "comment":
            continue
        text = match.group()
        if kind == "open":
            yield "("
        elif kind == "close":
            yield ")"
        else:
            yield text
    if source[position:].strip():
        raise FPCoreSyntaxError(f"unexpected trailing text: {source[position:]!r}")


SExpr = Union[str, List["SExpr"]]


def _read_sexprs(tokens: List[str]) -> List[SExpr]:
    result: List[SExpr] = []
    stack: List[List[SExpr]] = []
    for token in tokens:
        if token == "(":
            stack.append([])
        elif token == ")":
            if not stack:
                raise FPCoreSyntaxError("unbalanced ')'")
            finished = stack.pop()
            if stack:
                stack[-1].append(finished)
            else:
                result.append(finished)
        else:
            if stack:
                stack[-1].append(token)
            else:
                result.append(token)
    if stack:
        raise FPCoreSyntaxError("unbalanced '('")
    return result


_DECIMAL_PATTERN = re.compile(
    r"^[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?$"
)
_RATIONAL_PATTERN = re.compile(r"^[+-]?\d+/\d+$")
_HEX_PATTERN = re.compile(r"^[+-]?0x[0-9a-fA-F]+(\.[0-9a-fA-F]*)?(p[+-]?\d+)?$")


def parse_number(token: str) -> Optional[Fraction]:
    """Parse a numeric token to its exact rational value, or None."""
    if _DECIMAL_PATTERN.match(token):
        return _decimal_to_fraction(token)
    if _RATIONAL_PATTERN.match(token):
        numerator, denominator = token.split("/")
        return Fraction(int(numerator), int(denominator))
    if _HEX_PATTERN.match(token):
        return Fraction(float.fromhex(token))
    return None


def _decimal_to_fraction(token: str) -> Fraction:
    mantissa = token
    exponent = 0
    for e in ("e", "E"):
        if e in token:
            mantissa, exp_text = token.split(e)
            exponent = int(exp_text)
            break
    if "." in mantissa:
        whole, fractional = mantissa.split(".")
        digits = (whole or "0") + fractional
        exponent -= len(fractional)
    else:
        digits = mantissa
    value = Fraction(int(digits or "0"))
    return value * Fraction(10) ** exponent


def _parse_expr(sexpr: SExpr) -> Expr:
    if isinstance(sexpr, str):
        number = parse_number(sexpr)
        if number is not None:
            return Num(number, text=sexpr)
        if sexpr in CONSTANTS:
            return Const(sexpr)
        return Var(sexpr)
    if not sexpr:
        raise FPCoreSyntaxError("empty application ()")
    head = sexpr[0]
    if not isinstance(head, str):
        raise FPCoreSyntaxError(f"expected operator, got {head!r}")
    if head == "if":
        if len(sexpr) != 4:
            raise FPCoreSyntaxError("if needs exactly 3 sub-expressions")
        return If(*(_parse_expr(part) for part in sexpr[1:]))
    if head in ("let", "let*"):
        return _parse_let(sexpr, sequential=head.endswith("*"))
    if head in ("while", "while*"):
        return _parse_while(sexpr, sequential=head.endswith("*"))
    if head == "!":
        # Annotation: (! :prop value ... expr); properties are dropped.
        return _parse_expr(sexpr[-1])
    args = tuple(_parse_expr(part) for part in sexpr[1:])
    if head == "-" and len(args) == 1:
        return Op("neg", args)
    if head == "+" and len(args) == 1:
        return args[0]
    return Op(head, args)


def _parse_let(sexpr: SExpr, sequential: bool) -> Let:
    if len(sexpr) != 3 or not isinstance(sexpr[1], list):
        raise FPCoreSyntaxError("let needs a binding list and a body")
    bindings = []
    for binding in sexpr[1]:
        if not (isinstance(binding, list) and len(binding) == 2
                and isinstance(binding[0], str)):
            raise FPCoreSyntaxError(f"bad let binding: {binding!r}")
        bindings.append((binding[0], _parse_expr(binding[1])))
    return Let(tuple(bindings), _parse_expr(sexpr[2]), sequential)


def _parse_while(sexpr: SExpr, sequential: bool) -> While:
    if len(sexpr) != 4 or not isinstance(sexpr[2], list):
        raise FPCoreSyntaxError("while needs a condition, bindings, and a body")
    bindings = []
    for binding in sexpr[2]:
        if not (isinstance(binding, list) and len(binding) == 3
                and isinstance(binding[0], str)):
            raise FPCoreSyntaxError(f"bad while binding: {binding!r}")
        bindings.append(
            (binding[0], _parse_expr(binding[1]), _parse_expr(binding[2]))
        )
    return While(
        _parse_expr(sexpr[1]), tuple(bindings), _parse_expr(sexpr[3]), sequential
    )


def parse_expr(source: str) -> Expr:
    """Parse a single FPCore expression from text."""
    sexprs = _read_sexprs(list(tokenize(source)))
    if len(sexprs) != 1:
        raise FPCoreSyntaxError(f"expected one expression, found {len(sexprs)}")
    return _parse_expr(sexprs[0])


def parse_fpcore(source: str) -> FPCore:
    """Parse a single (FPCore ...) form from text."""
    cores = parse_fpcores(source)
    if len(cores) != 1:
        raise FPCoreSyntaxError(f"expected one FPCore, found {len(cores)}")
    return cores[0]


def parse_fpcores(source: str) -> List[FPCore]:
    """Parse every (FPCore ...) form in ``source``."""
    sexprs = _read_sexprs(list(tokenize(source)))
    return [_parse_fpcore(s) for s in sexprs]


def _parse_fpcore(sexpr: SExpr) -> FPCore:
    if not (isinstance(sexpr, list) and sexpr and sexpr[0] == "FPCore"):
        raise FPCoreSyntaxError("expected (FPCore ...)")
    rest = sexpr[1:]
    name: Optional[str] = None
    if rest and isinstance(rest[0], str):
        name = rest[0]
        rest = rest[1:]
    if not rest or not isinstance(rest[0], list):
        raise FPCoreSyntaxError("FPCore needs an argument list")
    arguments = _parse_arguments(rest[0])
    rest = rest[1:]
    properties = {}
    index = 0
    while index + 1 < len(rest) and isinstance(rest[index], str) \
            and rest[index].startswith(":"):
        key = rest[index][1:]
        properties[key] = _parse_property(key, rest[index + 1])
        index += 2
    if index != len(rest) - 1:
        raise FPCoreSyntaxError("FPCore needs exactly one body expression")
    body = _parse_expr(rest[index])
    if properties.get("name") and name is None:
        name = str(properties["name"])
    return FPCore(arguments=arguments, body=body, name=name, properties=properties)


def _parse_arguments(sexpr: List[SExpr]) -> Tuple[str, ...]:
    arguments = []
    for arg in sexpr:
        if isinstance(arg, str):
            arguments.append(arg)
        elif isinstance(arg, list) and arg and arg[0] == "!":
            # Annotated argument: (! :prop value ... name)
            last = arg[-1]
            if not isinstance(last, str):
                raise FPCoreSyntaxError(f"bad annotated argument: {arg!r}")
            arguments.append(last)
        else:
            raise FPCoreSyntaxError(f"bad argument: {arg!r}")
    return tuple(arguments)


def _parse_property(key: str, value: SExpr) -> object:
    if key in ("pre", "spec", "herbie-target", "alt"):
        return _parse_expr(value)
    if isinstance(value, str):
        if value.startswith('"') and value.endswith('"'):
            return value[1:-1]
        return value
    return value
