"""AST for the FPCore benchmark format (FPBench 1.x subset).

FPCore is the interchange format of the FPBench suite the paper uses for
its evaluation (Section 8), and also the format of Herbgrind's *reports*
(the extracted root-cause expressions are printed as FPCore so they can
be piped into Herbie).  We therefore use this AST in three roles:

* parsing the benchmark corpus,
* representing extracted symbolic expressions in reports,
* feeding the mini-Herbie improver.

All nodes are immutable and hashable, so they can serve as dictionary
keys during anti-unification and rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Tuple, Union

#: Operators whose result is boolean.
COMPARISON_OPS = frozenset({"<", ">", "<=", ">=", "==", "!="})
BOOLEAN_OPS = frozenset({"and", "or", "not"})
CLASSIFICATION_OPS = frozenset({"isnan", "isinf", "isfinite", "isnormal", "signbit"})

#: Named constants of the FPCore standard.
CONSTANTS = frozenset(
    {
        "E", "LOG2E", "LOG10E", "LN2", "LN10",
        "PI", "PI_2", "PI_4", "M_1_PI", "M_2_PI", "M_2_SQRTPI",
        "SQRT2", "SQRT1_2", "INFINITY", "NAN", "TRUE", "FALSE",
    }
)


class Expr:
    """Base class for FPCore expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Num(Expr):
    """A numeric literal, kept as an exact rational plus source text.

    Equality is by value only: ``1``, ``1.0`` and ``1e0`` are the same
    literal (the text is just the preferred rendering).
    """

    value: Fraction
    text: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.text:
            object.__setattr__(self, "text", _format_fraction(self.value))

    def __str__(self) -> str:
        return self.text

    def as_float(self) -> float:
        """``float(self.value)``, computed once — anti-unification
        compares literals against concrete trace values on every
        update."""
        try:
            return self._float  # type: ignore[attr-defined]
        except AttributeError:
            value = float(self.value)
            object.__setattr__(self, "_float", value)
            return value

    def __hash__(self) -> int:
        # Same value-only formula the dataclass would generate, cached:
        # literals are hashed repeatedly as dict keys during
        # anti-unification and rewriting.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            result = hash((self.value,))
            object.__setattr__(self, "_hash", result)
            return result


@dataclass(frozen=True)
class Const(Expr):
    """A named constant such as PI or E."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in CONSTANTS:
            raise ValueError(f"unknown FPCore constant: {self.name!r}")

    def __str__(self) -> str:
        return self.name


#: Hash-consing table for :class:`Var` (variable names recur endlessly
#: across anti-unification updates, so one instance serves them all).
_VAR_INTERN: Dict[str, "Var"] = {}


@dataclass(frozen=True)
class Var(Expr):
    """A free or bound variable reference.

    Instances are hash-consed: ``Var("x") is Var("x")``.  Equality and
    hashing are unchanged; interning just makes the identity-based
    memo tables of anti-unification maximally effective and skips
    re-allocating the same handful of names millions of times.
    """

    name: str

    def __new__(cls, name: str = "") -> "Var":
        if cls is Var:
            cached = _VAR_INTERN.get(name)
            if cached is not None:
                return cached
            self = super().__new__(cls)
            if isinstance(name, str):
                _VAR_INTERN[name] = self
            return self
        return super().__new__(cls)

    def __getnewargs__(self):
        # Pickle/deepcopy must re-enter __new__ with the real name, or
        # every round-tripped Var would collapse onto the instance
        # interned for the default name.
        return (self.name,)

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            result = hash((self.name,))
            object.__setattr__(self, "_hash", result)
            return result


@dataclass(frozen=True)
class Op(Expr):
    """An operator application, including comparisons and boolean ops."""

    op: str
    args: Tuple[Expr, ...]

    def __str__(self) -> str:
        inner = " ".join(str(a) for a in self.args)
        return f"({self.op} {inner})"

    def __hash__(self) -> int:
        # Cached: hashing an Op re-walks its whole subtree, and the
        # improver/anti-unification hash the same expressions over and
        # over as dictionary keys.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            result = hash((self.op, self.args))
            object.__setattr__(self, "_hash", result)
            return result


@dataclass(frozen=True)
class If(Expr):
    """A conditional expression (if cond then else)."""

    cond: Expr
    then: Expr
    orelse: Expr

    def __str__(self) -> str:
        return f"(if {self.cond} {self.then} {self.orelse})"


@dataclass(frozen=True)
class Let(Expr):
    """(let ([x e] ...) body) or the sequential let* variant."""

    bindings: Tuple[Tuple[str, Expr], ...]
    body: Expr
    sequential: bool = False

    def __str__(self) -> str:
        keyword = "let*" if self.sequential else "let"
        bound = " ".join(f"[{name} {expr}]" for name, expr in self.bindings)
        return f"({keyword} ({bound}) {self.body})"


@dataclass(frozen=True)
class While(Expr):
    """(while cond ([x init update] ...) body) (and while*)."""

    cond: Expr
    bindings: Tuple[Tuple[str, Expr, Expr], ...]
    body: Expr
    sequential: bool = False

    def __str__(self) -> str:
        keyword = "while*" if self.sequential else "while"
        bound = " ".join(
            f"[{name} {init} {update}]" for name, init, update in self.bindings
        )
        return f"({keyword} {self.cond} ({bound}) {self.body})"


@dataclass(frozen=True)
class FPCore:
    """A top-level FPCore form: arguments, properties, and a body."""

    arguments: Tuple[str, ...]
    body: Expr
    name: Optional[str] = None
    properties: Dict[str, object] = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        from repro.fpcore.printer import format_fpcore

        return format_fpcore(self)

    @property
    def pre(self) -> Optional[Expr]:
        """The :pre precondition expression, if any."""
        value = self.properties.get("pre")
        return value if isinstance(value, Expr) else None


Number = Union[int, float, Fraction]


def _format_fraction(value: Fraction) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


#: Hash-consing table for :func:`num` literals, keyed by input type and
#: value so spellings with different renderings never conflate.
_NUM_INTERN: Dict[tuple, Num] = {}

#: Bound on the literal table: a long-lived process analyzing many
#: programs sees an unbounded stream of distinct constants, so the
#: table resets (cheap — interning is an optimization, not a semantic)
#: rather than growing monotonically.
_NUM_INTERN_LIMIT = 65536


def num(value: Number) -> Num:
    """Make a literal from a Python number (floats are taken exactly).

    Results are hash-consed per (type, value): anti-unification turns
    every constant trace leaf into a literal on every first-seen trace,
    and loop bodies replay the same constants indefinitely.
    """
    key = (value.__class__, value)
    try:
        cached = _NUM_INTERN.get(key)
    except TypeError:  # unhashable exotic Number subclass: build fresh
        cached = None
        key = None
    if cached is not None:
        return cached
    result = _build_num(value)
    if key is not None and value == value:  # never cache under NaN keys
        if len(_NUM_INTERN) >= _NUM_INTERN_LIMIT:
            _NUM_INTERN.clear()
        _NUM_INTERN[key] = result
    return result


def _build_num(value: Number) -> Num:
    if isinstance(value, Fraction):
        return Num(value)
    if isinstance(value, int):
        return Num(Fraction(value))
    import math

    if not math.isfinite(value):
        # Fraction cannot hold inf/NaN; render as the named constants.
        if math.isnan(value):
            return Num(Fraction(0), text="NAN")
        return Num(Fraction(0), text="INFINITY" if value > 0 else "(- INFINITY)")
    if value == int(value) and abs(value) < 1e16:
        # Render small integral doubles without the trailing ".0".
        return Num(Fraction(value), text=str(int(value)))
    return Num(Fraction(value), text=repr(value))


def free_variables(expr: Expr) -> Tuple[str, ...]:
    """Free variables of ``expr`` in first-occurrence order."""
    seen: Dict[str, None] = {}

    def walk(node: Expr, bound: frozenset) -> None:
        if isinstance(node, Var):
            if node.name not in bound and node.name not in seen:
                seen[node.name] = None
        elif isinstance(node, Op):
            for arg in node.args:
                walk(arg, bound)
        elif isinstance(node, If):
            walk(node.cond, bound)
            walk(node.then, bound)
            walk(node.orelse, bound)
        elif isinstance(node, Let):
            inner = bound
            for name, value in node.bindings:
                walk(value, inner if node.sequential else bound)
                if node.sequential:
                    inner = inner | {name}
            if not node.sequential:
                inner = bound | {name for name, __ in node.bindings}
            walk(node.body, inner)
        elif isinstance(node, While):
            # Textual order: condition, then each binding's init and
            # update, then the body (inits run in the outer scope).
            names = frozenset(name for name, __, ___ in node.bindings)
            walk(node.cond, bound | names)
            for __, init, update in node.bindings:
                walk(init, bound)
                walk(update, bound | names)
            walk(node.body, bound | names)

    walk(expr, frozenset())
    return tuple(seen)


def expression_size(expr: Expr) -> int:
    """Number of operator nodes in ``expr`` (the paper's expression size)."""
    if isinstance(expr, Op):
        return 1 + sum(expression_size(a) for a in expr.args)
    if isinstance(expr, If):
        return 1 + sum(
            expression_size(e) for e in (expr.cond, expr.then, expr.orelse)
        )
    if isinstance(expr, Let):
        return sum(expression_size(e) for __, e in expr.bindings) + expression_size(
            expr.body
        )
    if isinstance(expr, While):
        total = expression_size(expr.cond) + expression_size(expr.body)
        for __, init, update in expr.bindings:
            total += expression_size(init) + expression_size(update)
        return total
    return 0


def expression_depth(expr: Expr) -> int:
    """Depth of the operator tree (leaves are depth 1)."""
    if isinstance(expr, Op):
        return 1 + max((expression_depth(a) for a in expr.args), default=0)
    if isinstance(expr, If):
        return 1 + max(
            expression_depth(e) for e in (expr.cond, expr.then, expr.orelse)
        )
    if isinstance(expr, (Let, While)):
        return 1 + expression_depth(expr.body)
    return 1


def substitute(expr: Expr, replacements: Dict[str, Expr]) -> Expr:
    """Replace free variables by expressions (capture-naive: FPCore
    corpus bodies never shadow the replaced names in our uses)."""
    if isinstance(expr, Var):
        return replacements.get(expr.name, expr)
    if isinstance(expr, Op):
        return Op(expr.op, tuple(substitute(a, replacements) for a in expr.args))
    if isinstance(expr, If):
        return If(
            substitute(expr.cond, replacements),
            substitute(expr.then, replacements),
            substitute(expr.orelse, replacements),
        )
    if isinstance(expr, Let):
        new_bindings = tuple(
            (name, substitute(value, replacements)) for name, value in expr.bindings
        )
        shadowed = {name for name, __ in expr.bindings}
        inner = {k: v for k, v in replacements.items() if k not in shadowed}
        return Let(new_bindings, substitute(expr.body, inner), expr.sequential)
    if isinstance(expr, While):
        shadowed = {name for name, __, ___ in expr.bindings}
        inner = {k: v for k, v in replacements.items() if k not in shadowed}
        new_bindings = tuple(
            (name, substitute(init, replacements), substitute(update, inner))
            for name, init, update in expr.bindings
        )
        return While(
            substitute(expr.cond, inner), new_bindings,
            substitute(expr.body, inner), expr.sequential,
        )
    return expr
