"""Rendering FPCore ASTs back to text.

Herbgrind reports present each root cause as an FPCore form with a
:pre describing observed input ranges (Section 3 of the paper shows the
format); this module produces that text.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.fpcore.ast import (
    Const,
    Expr,
    FPCore,
    If,
    Let,
    Num,
    Op,
    Var,
    While,
)


def format_expr(expr: Expr) -> str:
    """Render an expression as a single-line s-expression."""
    if isinstance(expr, Num):
        return expr.text
    if isinstance(expr, (Const, Var)):
        return expr.name
    if isinstance(expr, Op):
        operator = "-" if expr.op == "neg" else expr.op
        return "(" + " ".join([operator] + [format_expr(a) for a in expr.args]) + ")"
    if isinstance(expr, If):
        parts = [format_expr(e) for e in (expr.cond, expr.then, expr.orelse)]
        return f"(if {parts[0]} {parts[1]} {parts[2]})"
    if isinstance(expr, Let):
        keyword = "let*" if expr.sequential else "let"
        bindings = " ".join(
            f"[{name} {format_expr(value)}]" for name, value in expr.bindings
        )
        return f"({keyword} ({bindings}) {format_expr(expr.body)})"
    if isinstance(expr, While):
        keyword = "while*" if expr.sequential else "while"
        bindings = " ".join(
            f"[{name} {format_expr(init)} {format_expr(update)}]"
            for name, init, update in expr.bindings
        )
        condition = format_expr(expr.cond)
        return f"({keyword} {condition} ({bindings}) {format_expr(expr.body)})"
    raise TypeError(f"cannot format {type(expr).__name__}")


def format_fpcore(core: FPCore, multiline: bool = False) -> str:
    """Render a full (FPCore ...) form.

    With ``multiline`` the properties land on their own lines, matching
    the shape of the report in the paper's Section 3.
    """
    parts: List[str] = ["FPCore"]
    if core.name and " " not in core.name and core.properties.get("name") != core.name:
        parts.append(core.name)
    parts.append("(" + " ".join(core.arguments) + ")")
    property_chunks: List[str] = []
    for key, value in core.properties.items():
        if isinstance(value, Expr):
            rendered = format_expr(value)
        elif isinstance(value, str) and (" " in value or not value):
            rendered = f'"{value}"'
        else:
            rendered = str(value)
        property_chunks.append(f":{key} {rendered}")
    body = format_expr(core.body)
    if multiline:
        lines = ["(" + " ".join(parts)]
        lines.extend(f"  {chunk}" for chunk in property_chunks)
        lines.append(f"  {body})")
        return "\n".join(lines)
    chunks = parts + property_chunks + [body]
    return "(" + " ".join(chunks) + ")"


def format_ranges(
    variables: Iterable[str], ranges: Iterable[tuple]
) -> str:
    """Render a :pre conjunction of (<= lo x hi) constraints."""
    clauses = [
        f"(<= {low!r} {name} {high!r})"
        for name, (low, high) in zip(variables, ranges)
    ]
    if not clauses:
        return "TRUE"
    if len(clauses) == 1:
        return clauses[0]
    return "(and " + " ".join(clauses) + ")"
