"""Evaluation of FPCore expressions in doubles and in shadow reals.

Two semantics, mirroring Figure 4 of the paper:

* :func:`eval_double` — ⟦·⟧_F: IEEE double precision, via the same
  `apply_double` dispatch the machine interpreter uses.
* :func:`eval_real` — ⟦·⟧_R: arbitrary-precision BigFloat arithmetic.

The pair is what the Section 8.1 "oracle" uses to decide which corpus
benchmarks actually exhibit error, and what the mini-Herbie uses as its
ground truth.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Mapping, Optional, Union

from repro.bigfloat import (
    BigFloat,
    Context,
    apply,
    apply_double,
    constants,
    getcontext,
)
from repro.fpcore.ast import (
    BOOLEAN_OPS,
    CLASSIFICATION_OPS,
    COMPARISON_OPS,
    Const,
    Expr,
    If,
    Let,
    Num,
    Op,
    Var,
    While,
)


class EvaluationError(ValueError):
    """Raised for unknown variables/operators or runaway while loops."""


#: Safety cap on while-loop iterations during evaluation.
MAX_LOOP_ITERATIONS = 1_000_000

DoubleValue = Union[float, bool]
RealValue = Union[BigFloat, bool]


def _double_constant(name: str) -> DoubleValue:
    table = {
        "E": math.e,
        "LOG2E": math.log2(math.e),
        "LOG10E": math.log10(math.e),
        "LN2": math.log(2.0),
        "LN10": math.log(10.0),
        "PI": math.pi,
        "PI_2": math.pi / 2,
        "PI_4": math.pi / 4,
        "M_1_PI": 1.0 / math.pi,
        "M_2_PI": 2.0 / math.pi,
        "M_2_SQRTPI": 2.0 / math.sqrt(math.pi),
        "SQRT2": math.sqrt(2.0),
        "SQRT1_2": math.sqrt(0.5),
        "INFINITY": math.inf,
        "NAN": math.nan,
        "TRUE": True,
        "FALSE": False,
    }
    return table[name]


def _real_constant(name: str, context: Context) -> RealValue:
    from repro.bigfloat import arith, transcendental

    wide = context.widened(16)
    if name == "TRUE":
        return True
    if name == "FALSE":
        return False
    if name == "INFINITY":
        return BigFloat.inf(0)
    if name == "NAN":
        return BigFloat.nan()
    if name == "PI":
        return constants.pi(context)
    if name == "PI_2":
        return constants.pi_over_2(context)
    if name == "PI_4":
        return arith.mul(constants.pi(wide), BigFloat(0, 1, -2), context)
    if name == "E":
        return constants.euler_e(context)
    if name == "LN2":
        return constants.ln2(context)
    if name == "LN10":
        return transcendental.log(BigFloat.from_int(10), context)
    if name == "LOG2E":
        return arith.div(BigFloat.from_int(1), constants.ln2(wide), context)
    if name == "LOG10E":
        return arith.div(
            BigFloat.from_int(1), transcendental.log(BigFloat.from_int(10), wide),
            context,
        )
    if name == "SQRT2":
        return arith.sqrt(BigFloat.from_int(2), context)
    if name == "SQRT1_2":
        return arith.sqrt(BigFloat(0, 1, -1), context)
    if name == "M_1_PI":
        return arith.div(BigFloat.from_int(1), constants.pi(wide), context)
    if name == "M_2_PI":
        return arith.div(BigFloat.from_int(2), constants.pi(wide), context)
    if name == "M_2_SQRTPI":
        return arith.div(
            BigFloat.from_int(2), arith.sqrt(constants.pi(wide), wide), context
        )
    raise EvaluationError(f"unknown constant: {name}")


def _compare_chain(op: str, values: list, is_real: bool) -> bool:
    """FPCore comparisons are n-ary: (< a b c) means a < b < c."""
    if op == "!=":
        # != is pairwise-distinct.
        for i, left in enumerate(values):
            for right in values[i + 1 :]:
                if not _compare_once("!=", left, right, is_real):
                    return False
        return True
    for left, right in zip(values, values[1:]):
        if not _compare_once(op, left, right, is_real):
            return False
    return True


def _compare_once(op: str, left, right, is_real: bool) -> bool:
    if is_real:
        table = {
            "<": lambda: left < right,
            ">": lambda: left > right,
            "<=": lambda: left <= right,
            ">=": lambda: left >= right,
            "==": lambda: left == right,
            "!=": lambda: left != right,
        }
        return table[op]()
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    if op == "==":
        return left == right
    return left != right


def eval_double(expr: Expr, env: Mapping[str, DoubleValue]) -> DoubleValue:
    """Evaluate in IEEE double precision (the ⟦·⟧_F semantics)."""
    if isinstance(expr, Num):
        return float(Fraction(expr.value))
    if isinstance(expr, Const):
        return _double_constant(expr.name)
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise EvaluationError(f"unbound variable: {expr.name}") from None
    if isinstance(expr, If):
        branch = expr.then if eval_double(expr.cond, env) else expr.orelse
        return eval_double(branch, env)
    if isinstance(expr, Let):
        scope = dict(env)
        if expr.sequential:
            for name, value in expr.bindings:
                scope[name] = eval_double(value, scope)
        else:
            evaluated = [
                (name, eval_double(value, env))
                for name, value in expr.bindings
            ]
            scope.update(evaluated)
        return eval_double(expr.body, scope)
    if isinstance(expr, While):
        return _eval_while(expr, env, eval_double)
    if isinstance(expr, Op):
        if expr.op in COMPARISON_OPS:
            values = [eval_double(a, env) for a in expr.args]
            return _compare_chain(expr.op, values, is_real=False)
        if expr.op in BOOLEAN_OPS:
            if expr.op == "not":
                return not eval_double(expr.args[0], env)
            if expr.op == "and":
                return all(eval_double(a, env) for a in expr.args)
            return any(eval_double(a, env) for a in expr.args)
        if expr.op in CLASSIFICATION_OPS:
            value = eval_double(expr.args[0], env)
            return _classify_double(expr.op, value)
        values = [eval_double(a, env) for a in expr.args]
        try:
            return apply_double(expr.op, values)
        except KeyError:
            raise EvaluationError(f"unknown operator: {expr.op}") from None
    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


def _classify_double(op: str, value: float) -> bool:
    if op == "isnan":
        return math.isnan(value)
    if op == "isinf":
        return math.isinf(value)
    if op == "isfinite":
        return math.isfinite(value)
    if op == "isnormal":
        return math.isfinite(value) and value != 0.0 and abs(value) >= 2.0 ** -1022
    return math.copysign(1.0, value) < 0  # signbit


def eval_real(
    expr: Expr,
    env: Mapping[str, RealValue],
    context: Optional[Context] = None,
) -> RealValue:
    """Evaluate in the reals (the ⟦·⟧_R semantics) at ``context``."""
    context = context if context is not None else getcontext()
    if isinstance(expr, Num):
        return BigFloat.from_fraction(expr.value, context.precision, context.rounding)
    if isinstance(expr, Const):
        return _real_constant(expr.name, context)
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise EvaluationError(f"unbound variable: {expr.name}") from None
    if isinstance(expr, If):
        branch = expr.then if eval_real(expr.cond, env, context) else expr.orelse
        return eval_real(branch, env, context)
    if isinstance(expr, Let):
        scope = dict(env)
        if expr.sequential:
            for name, value in expr.bindings:
                scope[name] = eval_real(value, scope, context)
        else:
            evaluated = [
                (name, eval_real(value, env, context)) for name, value in expr.bindings
            ]
            scope.update(evaluated)
        return eval_real(expr.body, scope)
    if isinstance(expr, While):
        return _eval_while(expr, env, lambda e, s: eval_real(e, s, context))
    if isinstance(expr, Op):
        if expr.op in COMPARISON_OPS:
            values = [eval_real(a, env, context) for a in expr.args]
            return _compare_chain(expr.op, values, is_real=True)
        if expr.op in BOOLEAN_OPS:
            if expr.op == "not":
                return not eval_real(expr.args[0], env, context)
            if expr.op == "and":
                return all(eval_real(a, env, context) for a in expr.args)
            return any(eval_real(a, env, context) for a in expr.args)
        if expr.op in CLASSIFICATION_OPS:
            value = eval_real(expr.args[0], env, context)
            return _classify_real(expr.op, value)
        values = [eval_real(a, env, context) for a in expr.args]
        try:
            return apply(expr.op, values, context)
        except KeyError:
            raise EvaluationError(f"unknown operator: {expr.op}") from None
    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


def _classify_real(op: str, value: BigFloat) -> bool:
    if op == "isnan":
        return value.is_nan()
    if op == "isinf":
        return value.is_inf()
    if op == "isfinite":
        return value.is_finite()
    if op == "isnormal":
        return value.is_finite() and not value.is_zero()
    return value.is_negative()  # signbit


def _eval_while(expr: While, env: Mapping, evaluate) -> object:
    scope: Dict[str, object] = dict(env)
    if expr.sequential:
        for name, init, __ in expr.bindings:
            scope[name] = evaluate(init, scope)
    else:
        initial = [(name, evaluate(init, env)) for name, init, __ in expr.bindings]
        scope.update(initial)
    iterations = 0
    while evaluate(expr.cond, scope):
        iterations += 1
        if iterations > MAX_LOOP_ITERATIONS:
            raise EvaluationError("while loop exceeded the iteration cap")
        if expr.sequential:
            for name, __, update in expr.bindings:
                scope[name] = evaluate(update, scope)
        else:
            updated = [
                (name, evaluate(update, scope)) for name, __, update in expr.bindings
            ]
            scope.update(updated)
    return evaluate(expr.body, scope)
