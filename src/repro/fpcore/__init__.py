"""FPCore (FPBench) frontend: AST, parser, printer, evaluators, corpus.

FPCore plays three roles in the reproduction, mirroring its roles around
Herbgrind: it is the benchmark format of the evaluation suite (Section
8), the report format for extracted root causes (Section 3), and the
input format of the Herbie-style improver.
"""

from repro.fpcore.ast import (
    BOOLEAN_OPS,
    COMPARISON_OPS,
    CONSTANTS,
    Const,
    Expr,
    FPCore,
    If,
    Let,
    Num,
    Op,
    Var,
    While,
    expression_depth,
    expression_size,
    free_variables,
    num,
    substitute,
)
from repro.fpcore.evaluator import (
    EvaluationError,
    eval_double,
    eval_real,
)
from repro.fpcore.parser import (
    FPCoreSyntaxError,
    parse_expr,
    parse_fpcore,
    parse_fpcores,
)
from repro.fpcore.printer import format_expr, format_fpcore
from repro.fpcore.corpus import corpus_by_name, families, load_corpus

__all__ = [
    "BOOLEAN_OPS",
    "COMPARISON_OPS",
    "CONSTANTS",
    "Const",
    "EvaluationError",
    "Expr",
    "FPCore",
    "FPCoreSyntaxError",
    "If",
    "Let",
    "Num",
    "Op",
    "Var",
    "While",
    "corpus_by_name",
    "eval_double",
    "eval_real",
    "expression_depth",
    "expression_size",
    "families",
    "format_expr",
    "format_fpcore",
    "free_variables",
    "load_corpus",
    "num",
    "parse_expr",
    "parse_fpcore",
    "parse_fpcores",
    "substitute",
]
