"""The benchmark corpus: 86 FPCore programs in the FPBench style.

The paper's evaluation (Section 8.1) runs Herbgrind over the 86-program
FPBench suite.  FPBench itself is re-authored here from its published
benchmark families:

* ``paper``     — the worked examples from the paper itself (Sections 2-3).
* ``hamming``   — the NMSE cancellation problems from Hamming's
                  *Numerical Methods* chapter 3 (Herbie's original suite).
* ``quadratic`` — quadratic-formula variants.
* ``fptaylor``  — the FPTaylor/Rosa verification kernels (doppler,
                  turbine, kepler, jet engine, rigid body, ...).
* ``misc``      — classic one-liner accuracy traps (log1p, midpoint,
                  Heron's formula, Wilkinson polynomial, ...), including
                  deliberately *stable* versions as negative controls.
* ``loops``     — small while-loop kernels (accumulation drift).

Each benchmark carries a :pre giving the sampling box used by the
evaluation harness.  Families are recorded in the :herbgrind-family
property.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fpcore.ast import FPCore
from repro.fpcore.parser import parse_fpcores

_PAPER = r"""
(FPCore (x y z) :name "paper-foo-bar"
  :description "Sections 2.1: error across function boundaries and structs"
  :herbgrind-family paper
  :pre (and (<= 1e12 x 1e16) (<= 0 y 1) (<= 0 z 1))
  (* (- (+ x y) (+ x z)) x))

(FPCore (x) :name "paper-baz"
  :description "Section 2.1: non-uniform error around x = 113"
  :herbgrind-family paper
  :pre (<= 100 x 200)
  (- (+ (/ 1 (- x 113)) PI) (/ 1 (- x 113))))

(FPCore (x y) :name "paper-csqrt-imag"
  :description "Section 3: the complex-sqrt fragment Herbgrind extracts"
  :herbgrind-family paper
  :pre (and (<= -2.1e-9 x 0.25) (<= -2.7e-9 y 2.7e-9))
  (- (sqrt (+ (* x x) (* y y))) x))

(FPCore (x) :name "paper-x-plus-1-minus-x"
  :description "Section 2.1: (x+1)-x evaluates to 0 near 1e16"
  :herbgrind-family paper
  :pre (<= 1e14 x 1e17)
  (- (+ x 1) x))
"""

_HAMMING = r"""
(FPCore (x) :name "nmse-ex-3-1"
  :herbgrind-family hamming
  :pre (<= 0.001 x 1e9)
  (- (sqrt (+ x 1)) (sqrt x)))

(FPCore (x) :name "nmse-ex-3-3"
  :herbgrind-family hamming
  :pre (<= 0.01 x 1e9)
  (- (/ 1 (+ x 1)) (/ 1 x)))

(FPCore (x) :name "nmse-ex-3-4"
  :herbgrind-family hamming
  :pre (<= 1e-9 x 1)
  (/ (- 1 (cos x)) (sin x)))

(FPCore (N) :name "nmse-ex-3-5"
  :herbgrind-family hamming
  :pre (<= 1 N 1e8)
  (- (atan (+ N 1)) (atan N)))

(FPCore (x) :name "nmse-ex-3-6"
  :herbgrind-family hamming
  :pre (<= 0.1 x 1e9)
  (- (/ 1 (sqrt x)) (/ 1 (sqrt (+ x 1)))))

(FPCore (x) :name "nmse-ex-3-7"
  :herbgrind-family hamming
  :pre (<= 1e-12 x 1e-6)
  (- (exp x) 1))

(FPCore (N) :name "nmse-ex-3-8"
  :herbgrind-family hamming
  :pre (<= 1 N 1e8)
  (- (- (* (+ N 1) (log (+ N 1))) (* N (log N))) 1))

(FPCore (x) :name "nmse-ex-3-9"
  :herbgrind-family hamming
  :pre (<= 1e-6 x 1)
  (- (/ 1 x) (/ 1 (tan x))))

(FPCore (x) :name "nmse-ex-3-10"
  :herbgrind-family hamming
  :pre (<= 1e-12 x 0.1)
  (/ (log (- 1 x)) (log (+ 1 x))))

(FPCore (x) :name "nmse-ex-3-11"
  :herbgrind-family hamming
  :pre (<= 1e-12 x 1)
  (/ (exp x) (- (exp x) 1)))

(FPCore (x) :name "nmse-p-3-3-1"
  :herbgrind-family hamming
  :pre (<= 100 x 1e8)
  (+ (- (/ 1 (+ x 1)) (/ 2 x)) (/ 1 (- x 1))))

(FPCore (x eps) :name "nmse-p-3-3-2"
  :herbgrind-family hamming
  :pre (and (<= 0 x 6.28) (<= 1e-12 eps 1e-8))
  (- (sin (+ x eps)) (sin x)))

(FPCore (x eps) :name "nmse-p-3-3-3"
  :herbgrind-family hamming
  :pre (and (<= 0.1 x 1.4) (<= 1e-12 eps 1e-8))
  (- (tan (+ x eps)) (tan x)))

(FPCore (x eps) :name "nmse-p-3-3-5"
  :herbgrind-family hamming
  :pre (and (<= 0 x 6.28) (<= 1e-12 eps 1e-8))
  (- (cos (+ x eps)) (cos x)))

(FPCore (N) :name "nmse-p-3-3-6"
  :herbgrind-family hamming
  :pre (<= 10 N 1e10)
  (- (log (+ N 1)) (log N)))

(FPCore (x) :name "nmse-p-3-3-7"
  :herbgrind-family hamming
  :pre (<= 1e-8 x 1e-5)
  (+ (- (exp x) 2) (exp (- x))))

(FPCore (x) :name "nmse-p-3-4-1"
  :herbgrind-family hamming
  :pre (<= 1e-8 x 1)
  (/ (- 1 (cos x)) (* x x)))

(FPCore (a b eps) :name "nmse-p-3-4-2"
  :herbgrind-family hamming
  :pre (and (<= 1 a 10) (<= 1 b 10) (<= 1e-12 eps 1e-7))
  (/ (* eps (- (exp (* (+ a b) eps)) 1))
     (* (- (exp (* a eps)) 1) (- (exp (* b eps)) 1))))

(FPCore (eps) :name "nmse-p-3-4-3"
  :herbgrind-family hamming
  :pre (<= 1e-10 eps 0.5)
  (log (/ (- 1 eps) (+ 1 eps))))

(FPCore (x) :name "nmse-p-3-4-4"
  :herbgrind-family hamming
  :pre (<= 1e-8 x 1)
  (sqrt (/ (- (exp (* 2 x)) 1) (- (exp x) 1))))

(FPCore (x) :name "nmse-p-3-4-5"
  :herbgrind-family hamming
  :pre (<= 1e-6 x 1)
  (/ (- x (sin x)) (- x (tan x))))

(FPCore (x n) :name "nmse-p-3-4-6"
  :herbgrind-family hamming
  :pre (and (<= 1 x 1e8) (<= 2 n 10))
  (- (pow (+ x 1) (/ 1 n)) (pow x (/ 1 n))))

(FPCore (a x) :name "nmse-section-3-5"
  :herbgrind-family hamming
  :pre (and (<= -1 a 1) (<= 1e-10 x 1e-6))
  (- (exp (* a x)) 1))

(FPCore (x) :name "expq2"
  :herbgrind-family hamming
  :pre (<= 1e-12 x 1)
  (/ x (- (exp x) 1)))
"""

_QUADRATIC = r"""
(FPCore (a b c) :name "quadp"
  :herbgrind-family quadratic
  :pre (and (<= 0.001 a 10) (<= 100 b 1e7) (<= 0.001 c 10))
  (/ (+ (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))

(FPCore (a b c) :name "quadm"
  :herbgrind-family quadratic
  :pre (and (<= 0.001 a 10) (<= 100 b 1e7) (<= 0.001 c 10))
  (/ (- (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))

(FPCore (a b c) :name "quad2p"
  :herbgrind-family quadratic
  :pre (and (<= 0.001 a 10) (<= 100 b 1e7) (<= 0.001 c 10))
  (/ (* 2 c) (- (- b) (sqrt (- (* b b) (* 4 (* a c)))))))

(FPCore (a b c) :name "quad2m"
  :herbgrind-family quadratic
  :pre (and (<= 0.001 a 10) (<= 100 b 1e7) (<= 0.001 c 10))
  (/ (* 2 c) (+ (- b) (sqrt (- (* b b) (* 4 (* a c)))))))

(FPCore (a b c) :name "quad-discriminant"
  :herbgrind-family quadratic
  :pre (and (<= 1 a 2) (<= 1.9 b 2.1) (<= 0.5 c 1.5))
  (- (* b b) (* 4 (* a c))))

(FPCore (a b c) :name "quad-root-sum"
  :herbgrind-family quadratic
  :pre (and (<= 0.001 a 10) (<= 100 b 1e6) (<= 0.001 c 10))
  (+ (/ (+ (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a))
     (/ (- (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a))))
"""

_FPTAYLOR = r"""
(FPCore (u v T) :name "doppler1"
  :herbgrind-family fptaylor
  :pre (and (<= -100 u 100) (<= 20 v 20000) (<= -30 T 50))
  (let ([t1 (+ 331.4 (* 0.6 T))])
    (/ (* (- t1) v) (* (+ t1 u) (+ t1 u)))))

(FPCore (u v T) :name "doppler2"
  :herbgrind-family fptaylor
  :pre (and (<= -125 u 125) (<= 15 v 25000) (<= -40 T 60))
  (let ([t1 (+ 331.4 (* 0.6 T))])
    (/ (* (- t1) v) (* (+ t1 u) (+ t1 u)))))

(FPCore (u v T) :name "doppler3"
  :herbgrind-family fptaylor
  :pre (and (<= -30 u 120) (<= 320 v 20300) (<= -50 T 30))
  (let ([t1 (+ 331.4 (* 0.6 T))])
    (/ (* (- t1) v) (* (+ t1 u) (+ t1 u)))))

(FPCore (x1 x2 x3) :name "rigidbody1"
  :herbgrind-family fptaylor
  :pre (and (<= -15 x1 15) (<= -15 x2 15) (<= -15 x3 15))
  (- (- (- (* (- x1) x2) (* 2 (* x2 x3))) x1) x3))

(FPCore (x1 x2 x3) :name "rigidbody2"
  :herbgrind-family fptaylor
  :pre (and (<= -15 x1 15) (<= -15 x2 15) (<= -15 x3 15))
  (- (+ (- (+ (* 2 (* x1 (* x2 x3))) (* 3 (* x3 x3)))
           (* (* (* x2 x1) x2) x3))
        (* 3 (* x3 x3)))
     x2))

(FPCore (v w r) :name "turbine1"
  :herbgrind-family fptaylor
  :pre (and (<= -4.5 v -0.3) (<= 0.4 w 0.9) (<= 3.8 r 7.8))
  (- (- (+ 3 (/ 2 (* r r)))
        (/ (* (* 0.125 (- 3 (* 2 v))) (* (* w w) (* r r))) (- 1 v)))
     4.5))

(FPCore (v w r) :name "turbine2"
  :herbgrind-family fptaylor
  :pre (and (<= -4.5 v -0.3) (<= 0.4 w 0.9) (<= 3.8 r 7.8))
  (- (- (* 6 v) (/ (* (* 0.5 v) (* (* w w) (* r r))) (- 1 v))) 2.5))

(FPCore (v w r) :name "turbine3"
  :herbgrind-family fptaylor
  :pre (and (<= -4.5 v -0.3) (<= 0.4 w 0.9) (<= 3.8 r 7.8))
  (- (- (- 3 (/ 2 (* r r)))
        (/ (* (* 0.125 (+ 1 (* 2 v))) (* (* w w) (* r r))) (- 1 v)))
     0.5))

(FPCore (x) :name "verhulst"
  :herbgrind-family fptaylor
  :pre (<= 0.1 x 0.3)
  (/ (* 4 x) (+ 1 (/ x 1.11))))

(FPCore (x) :name "predator-prey"
  :herbgrind-family fptaylor
  :pre (<= 0.1 x 0.3)
  (/ (* 4 (* x x)) (+ 1 (* (/ x 1.11) (/ x 1.11)))))

(FPCore (v) :name "carbon-gas"
  :herbgrind-family fptaylor
  :pre (<= 0.1 v 0.5)
  (- (* (+ 3.5e7 (* 0.401 (* (/ 1000 v) (/ 1000 v))))
        (- v (* 1000 42.7e-6)))
     (* 1.3806503e-23 (* 1000 300))))

(FPCore (x1 x2) :name "jet-engine"
  :herbgrind-family fptaylor
  :pre (and (<= -5 x1 5) (<= -20 x2 5))
  (let ([t (/ (+ (- (* 3 (* x1 x1)) x1) (* 2 x2)) (+ (* x1 x1) 1))])
    (+ (+ (+ x1
             (* (+ (* (* 2 x1) (* t (- t 3)))
                   (* (* x1 x1) (- (* 4 t) 6)))
                (+ (* x1 x1) 1)))
          (* (* 3 (* x1 x1)) t))
       (+ (* (* x1 x1) x1) (+ x1 (* 3 t))))))

(FPCore (x1 x2 x3 x4 x5 x6) :name "kepler0"
  :herbgrind-family fptaylor
  :pre (and (<= 4 x1 6.36) (<= 4 x2 6.36) (<= 4 x3 6.36)
            (<= 4 x4 6.36) (<= 4 x5 6.36) (<= 4 x6 6.36))
  (+ (- (- (+ (* x2 x5) (* x3 x6)) (* x2 x3)) (* x5 x6))
     (* x1 (+ (+ (+ (- (- x1) x2) x3) (- x4 x5)) x6))))

(FPCore (x1 x2 x3 x4) :name "kepler1"
  :herbgrind-family fptaylor
  :pre (and (<= 4 x1 6.36) (<= 4 x2 6.36) (<= 4 x3 6.36) (<= 4 x4 6.36))
  (- (- (- (+ (+ (* (* x1 x4) (+ (+ (- (- x1) x2) x3) x4))
                 (* x2 (+ (+ (- x1 x2) x3) x4)))
              (* x3 (+ (- (+ x1 x2) x3) x4)))
           (* (* (* x2 x3) x4) 1))
        (* x1 x3))
     (+ (* x1 x2) x4)))

(FPCore (x1 x2 x3 x4 x5 x6) :name "kepler2"
  :herbgrind-family fptaylor
  :pre (and (<= 4 x1 6.36) (<= 4 x2 6.36) (<= 4 x3 6.36)
            (<= 4 x4 6.36) (<= 4 x5 6.36) (<= 4 x6 6.36))
  (- (- (- (+ (+ (* (* x1 x4) (+ (+ (+ (- (- x1) x2) x3) (- x4 x5)) x6))
                 (* (* x2 x5) (+ (+ (- (- x1 x2) x3) (+ x4 x5)) (- x6))))
              (* (* x3 x6) (+ (- (+ (+ x1 x2) (- x3)) x4) (- x5 x6))))
           (* (* x2 x3) x4))
        (* (* x1 x3) x5))
     (+ (* (* x1 x2) x6) (* (* x4 x5) x6))))

(FPCore (x) :name "sine-taylor"
  :herbgrind-family fptaylor
  :pre (<= -1.57 x 1.57)
  (+ (- (+ (- x (/ (* (* x x) x) 6))
           (/ (* (* (* (* x x) x) x) x) 120))
        (/ (* (* (* (* (* (* x x) x) x) x) x) x) 5040))
     0))

(FPCore (x) :name "sine-order3"
  :herbgrind-family fptaylor
  :pre (<= -2 x 2)
  (- (* 0.954929658551372 x) (* 0.12900613773279798 (* (* x x) x))))

(FPCore (x) :name "sqroot-poly"
  :herbgrind-family fptaylor
  :pre (<= 0 x 1)
  (- (+ (- (+ 1 (* 0.5 x)) (* 0.125 (* x x)))
        (* 0.0625 (* (* x x) x)))
     (* 0.0390625 (* (* (* x x) x) x))))

(FPCore (t) :name "intro-example"
  :herbgrind-family fptaylor
  :pre (<= 0 t 999)
  (/ t (+ t 1)))

(FPCore (x y) :name "sec4-example"
  :herbgrind-family fptaylor
  :pre (and (<= 1.001 x 2) (<= 1.001 y 2))
  (let ([t (* x y)])
    (/ (- t 1) (- (* t t) 1))))
"""

_MISC = r"""
(FPCore (a b) :name "midpoint-naive"
  :herbgrind-family misc
  :pre (and (<= 1e304 a 1.7e308) (<= 1e304 b 1.7e308))
  (/ (+ a b) 2))

(FPCore (a b) :name "midpoint-stable"
  :herbgrind-family misc
  :pre (and (<= 1e304 a 1.7e308) (<= 1e304 b 1.7e308))
  (+ a (/ (- b a) 2)))

(FPCore (x y) :name "hypot-naive"
  :herbgrind-family misc
  :pre (and (<= 1e160 x 1e170) (<= 1e160 y 1e170))
  (sqrt (+ (* x x) (* y y))))

(FPCore (x y) :name "logsumexp2"
  :herbgrind-family misc
  :pre (and (<= 500 x 800) (<= 500 y 800))
  (log (+ (exp x) (exp y))))

(FPCore (x) :name "sigmoid"
  :herbgrind-family misc
  :pre (<= -40 x 40)
  (/ 1 (+ 1 (exp (- x)))))

(FPCore (x) :name "softplus"
  :herbgrind-family misc
  :pre (<= -50 x 50)
  (log (+ 1 (exp x))))

(FPCore (x) :name "logit"
  :herbgrind-family misc
  :pre (<= 1e-10 x 0.9999)
  (log (/ x (- 1 x))))

(FPCore (x) :name "pythagorean-identity"
  :herbgrind-family misc
  :pre (<= 0.1 x 6)
  (- (- 1 (* (cos x) (cos x))) (* (sin x) (sin x))))

(FPCore (x y) :name "diff-squares-naive"
  :herbgrind-family misc
  :pre (and (<= 1e7 x 1e8) (<= 1e7 y 1e8))
  (- (* x x) (* y y)))

(FPCore (x y) :name "diff-squares-stable"
  :herbgrind-family misc
  :pre (and (<= 1e7 x 1e8) (<= 1e7 y 1e8))
  (* (- x y) (+ x y)))

(FPCore (a b c) :name "heron-area"
  :herbgrind-family misc
  :pre (and (<= 1 a 1.001) (<= 1 b 1.001) (<= 1e-4 c 1e-3))
  (let ([s (/ (+ (+ a b) c) 2)])
    (sqrt (* s (* (- s a) (* (- s b) (- s c)))))))

(FPCore (r n) :name "compound-interest"
  :herbgrind-family misc
  :pre (and (<= 0.01 r 0.1) (<= 1e6 n 1e9))
  (pow (+ 1 (/ r n)) n))

(FPCore (x) :name "log-diff-scaled"
  :herbgrind-family misc
  :pre (<= 1e8 x 1e15)
  (* x (- (log (+ x 1)) (log x))))

(FPCore (sx2 sx n) :name "naive-variance"
  :herbgrind-family misc
  :pre (and (<= 9.9e9 sx2 1e10) (<= 9.9e4 sx 1.005e5) (<= 1000 n 10000))
  (/ (- sx2 (* (/ sx n) sx)) (- n 1)))

(FPCore (x y z) :name "norm3d-overflow"
  :herbgrind-family misc
  :pre (and (<= 1e150 x 1e160) (<= 1e150 y 1e160) (<= 1e150 z 1e160))
  (sqrt (+ (+ (* x x) (* y y)) (* z z))))

(FPCore (x y) :name "unit-vector-x"
  :herbgrind-family misc
  :pre (and (<= 1e160 x 1e170) (<= 1e160 y 1e170))
  (/ x (sqrt (+ (* x x) (* y y)))))

(FPCore (x) :name "asin-near-one"
  :herbgrind-family misc
  :pre (<= 1e-16 x 1e-8)
  (asin (- 1 x)))

(FPCore (x) :name "acos-near-one"
  :herbgrind-family misc
  :pre (<= 1e-16 x 1e-8)
  (acos (- 1 x)))

(FPCore (x) :name "atanh-near-one"
  :herbgrind-family misc
  :pre (<= 1e-16 x 1e-8)
  (atanh (- 1 x)))

(FPCore (x) :name "log1p-naive"
  :herbgrind-family misc
  :pre (<= 1e-17 x 1e-14)
  (log (+ 1 x)))

(FPCore (x) :name "cosh-minus-one"
  :herbgrind-family misc
  :pre (<= 1e-9 x 1e-6)
  (- (cosh x) 1))

(FPCore (x) :name "tan-near-pole"
  :herbgrind-family misc
  :pre (<= 1.57079 x 1.5708)
  (tan x))

(FPCore (a b c) :name "mul-add-cancel"
  :herbgrind-family misc
  :pre (and (<= 1e7 a 1e8) (<= 1e7 b 1e8) (<= -1e16 c -9.9e15))
  (+ (* a b) c))

(FPCore (a b c d) :name "sum4-cancel"
  :herbgrind-family misc
  :pre (and (<= 1e15 a 1e16) (<= -1e16 b -1e15)
            (<= 1e15 c 1e16) (<= -1e16 d -1e15))
  (+ (+ a b) (+ c d)))

(FPCore (x) :name "log-exp-roundtrip"
  :herbgrind-family misc
  :pre (<= 600 x 800)
  (log (exp x)))

(FPCore (x) :name "wilkinson-monomial"
  :herbgrind-family misc
  :pre (<= 0.9 x 5.1)
  (- (+ (* 274 x)
        (- (+ (* 85 (* (* x x) x))
              (* (* (* (* x x) x) x) x))
           (+ (* 15 (* (* (* x x) x) x))
              (* 225 (* x x)))))
     120))

(FPCore (x) :name "wilkinson-horner"
  :herbgrind-family misc
  :pre (<= 0.9 x 5.1)
  (+ (* (+ (* (+ (* (+ (* (+ x -15) x) 85) x) -225) x) 274) x) -120))

(FPCore (x h) :name "difference-quotient"
  :herbgrind-family misc
  :pre (and (<= 0 x 6) (<= 1e-12 h 1e-8))
  (/ (- (sin (+ x h)) (sin x)) h))

(FPCore (x) :name "expm1-over-x"
  :herbgrind-family misc
  :pre (<= 1e-14 x 1e-8)
  (/ (- (exp x) 1) x))
"""

_LOOPS = r"""
(FPCore (n) :name "loop-tenth-accumulate"
  :herbgrind-family loops
  :pre (<= 100 n 5000)
  (while* (< i n)
    ([i 0 (+ i 1)]
     [acc 0 (+ acc 0.1)])
    acc))

(FPCore (n) :name "loop-geometric"
  :herbgrind-family loops
  :pre (<= 10 n 60)
  (while* (< i n)
    ([i 0 (+ i 1)]
     [acc 0 (+ acc (pow 0.5 i))])
    acc))

(FPCore (n) :name "loop-harmonic"
  :herbgrind-family loops
  :pre (<= 10 n 2000)
  (while* (< i n)
    ([i 1 (+ i 1)]
     [acc 0 (+ acc (/ 1 i))])
    acc))
"""

_SOURCES = {
    "paper": _PAPER,
    "hamming": _HAMMING,
    "quadratic": _QUADRATIC,
    "fptaylor": _FPTAYLOR,
    "misc": _MISC,
    "loops": _LOOPS,
}


def load_corpus() -> List[FPCore]:
    """Parse and return every benchmark, in family order."""
    benchmarks: List[FPCore] = []
    for source in _SOURCES.values():
        benchmarks.extend(parse_fpcores(source))
    return benchmarks


def corpus_by_name() -> Dict[str, FPCore]:
    """The corpus indexed by benchmark name."""
    result = {}
    for core in load_corpus():
        if core.name in result:
            raise ValueError(f"duplicate benchmark name: {core.name}")
        result[core.name] = core
    return result


def families() -> Dict[str, List[FPCore]]:
    """Benchmarks grouped by :herbgrind-family."""
    result: Dict[str, List[FPCore]] = {}
    for core in load_corpus():
        family = str(core.properties.get("herbgrind-family", "misc"))
        result.setdefault(family, []).append(core)
    return result
