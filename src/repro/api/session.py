"""The :class:`AnalysisSession` façade — configure once, analyze many.

A session owns the cross-call caches (compiled programs and sampled
input sets, keyed by benchmark source text) and routes every request
through the backend registry.  ``analyze_batch`` fans a corpus out
over a ``multiprocessing`` pool; results are byte-identical to
sequential execution with the same seed because all sampling is
seeded per-benchmark and every serialized list is deterministically
ordered (see :mod:`repro.api.results`).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.backends import get_backend
from repro.api.requests import AnalysisRequest, CoreLike, coerce_core
from repro.api.results import AnalysisResult
from repro.api.sampling import sample_inputs
from repro.core.config import AnalysisConfig
from repro.fpcore.ast import FPCore
from repro.fpcore.printer import format_fpcore
from repro.machine import isa
from repro.machine.compiler import compile_fpcore

RequestLike = Union[CoreLike, AnalysisRequest]


def _execute(request: AnalysisRequest) -> AnalysisResult:
    """Run one request from scratch (no caches) — the worker path."""
    program = compile_fpcore(request.core)
    points = request.points
    if points is None:
        points = sample_inputs(
            request.core, request.num_points, seed=request.seed
        )
    backend = get_backend(request.backend)
    return backend.run(program, points, request)


def _worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: dict in, dict out — keeps everything picklable."""
    return _execute(AnalysisRequest.from_dict(payload)).to_dict()


class AnalysisSession:
    """One configured analysis context, reusable across many calls.

    >>> session = AnalysisSession(config=AnalysisConfig(shadow_precision=256))
    >>> result = session.analyze("(FPCore (x) :pre (<= 1e15 x 1e16) (- (+ x 1) x))")
    >>> result.max_output_error > 5
    True
    """

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        backend: str = "herbgrind",
        num_points: int = 16,
        seed: int = 0,
        wrap_libraries: bool = True,
    ) -> None:
        self.config = config if config is not None else AnalysisConfig()
        self.backend = backend
        self.num_points = num_points
        self.seed = seed
        self.wrap_libraries = wrap_libraries
        self._programs: Dict[str, isa.Program] = {}
        self._points: Dict[Tuple[str, int, int], List[List[float]]] = {}
        self._cores: Dict[str, FPCore] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------

    def _key(self, core: FPCore) -> str:
        return format_fpcore(core)

    def compiled(self, core: CoreLike) -> isa.Program:
        """The compiled program for ``core``, cached by source text."""
        core = coerce_core(core)
        key = self._key(core)
        program = self._programs.get(key)
        if program is None:
            self.cache_misses += 1
            program = compile_fpcore(core)
            self._programs[key] = program
            self._cores[key] = core
        else:
            self.cache_hits += 1
        return program

    def sampled(
        self,
        core: CoreLike,
        count: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> List[List[float]]:
        """Sampled inputs for ``core``, cached by (source, count, seed)."""
        core = coerce_core(core)
        count = self.num_points if count is None else count
        seed = self.seed if seed is None else seed
        key = (self._key(core), count, seed)
        points = self._points.get(key)
        if points is None:
            self.cache_misses += 1
            points = sample_inputs(core, count, seed=seed)
            self._points[key] = points
        else:
            self.cache_hits += 1
        return points

    def clear_caches(self) -> None:
        self._programs.clear()
        self._points.clear()
        self._cores.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def cache_stats(self) -> Dict[str, int]:
        return {
            "programs": len(self._programs),
            "input_sets": len(self._points),
            "hits": self.cache_hits,
            "misses": self.cache_misses,
        }

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    _OVERRIDE_KEYS = frozenset(
        ("backend", "num_points", "seed", "points", "config",
         "wrap_libraries", "libm")
    )

    def request(self, core: RequestLike, **overrides) -> AnalysisRequest:
        """Build a request from session defaults plus ``overrides``."""
        unknown = set(overrides) - self._OVERRIDE_KEYS
        if unknown:
            raise TypeError(
                f"unknown analysis override(s): {sorted(unknown)} "
                f"(expected from {sorted(self._OVERRIDE_KEYS)})"
            )
        if isinstance(core, AnalysisRequest):
            if overrides:
                raise TypeError(
                    "cannot combine overrides with a prebuilt "
                    "AnalysisRequest; set the fields on the request"
                )
            return core
        return AnalysisRequest.build(
            core,
            backend=overrides.get("backend", self.backend),
            num_points=overrides.get("num_points", self.num_points),
            seed=overrides.get("seed", self.seed),
            points=overrides.get("points"),
            config=overrides.get("config", self.config),
            wrap_libraries=overrides.get(
                "wrap_libraries", self.wrap_libraries
            ),
            libm=overrides.get("libm"),
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def analyze(self, core: RequestLike, **overrides) -> AnalysisResult:
        """Analyze one benchmark through the configured backend.

        Compiled programs and sampled input sets are reused across
        calls with the same source/count/seed.
        """
        request = self.request(core, **overrides)
        program = self.compiled(request.core)
        points = request.points
        if points is None:
            points = self.sampled(
                request.core, request.num_points, request.seed
            )
        backend = get_backend(request.backend)
        return backend.run(program, points, request)

    def analyze_batch(
        self,
        cores: Sequence[RequestLike],
        workers: int = 1,
        **overrides,
    ) -> List[AnalysisResult]:
        """Analyze a corpus, optionally over a process pool.

        ``workers=1`` runs sequentially in-process (and warms this
        session's caches); ``workers=N`` fans out over N processes.
        Either way the results arrive in corpus order and serialize to
        byte-identical JSON for the same seed.
        """
        requests = [self.request(core, **overrides) for core in cores]
        if workers <= 1 or len(requests) <= 1:
            return [self.analyze(request) for request in requests]
        payloads = [request.to_dict() for request in requests]
        with multiprocessing.Pool(processes=workers) as pool:
            dicts = pool.map(_worker, payloads, chunksize=1)
        return [AnalysisResult.from_dict(d) for d in dicts]
