"""The :class:`AnalysisSession` façade — configure once, analyze many.

A session owns the cross-call caches (compiled programs and sampled
input sets, keyed by benchmark source text; full analysis results,
keyed by the request digest) and routes every request through the
backend registry.  ``analyze_batch`` fans a corpus out over a
``multiprocessing`` pool; results are byte-identical to sequential
execution with the same seed because all sampling is seeded
per-benchmark and every serialized list is deterministically ordered
(see :mod:`repro.api.results`).

Result caching: every fully specified request has a stable digest —
the SHA-256 of its canonical JSON serialization, which covers the
benchmark source, backend, sampling parameters (or explicit points),
the whole :class:`AnalysisConfig`, library wrapping, and the result
schema version.  Identical work is skipped: in-memory hits return the
original :class:`AnalysisResult` object (``raw`` intact), and an
optional on-disk store (``cache_dir``) persists results in the sharded
``<digest[:2]>/<digest>.json`` layout of
:class:`repro.api.store.ShardedResultStore` — the same store format
the serving subsystem (:mod:`repro.serve`) uses — so *separate
processes and later runs* skip it too
(disk hits have ``raw=None``, like results that crossed a process
boundary).  Requests carrying an in-process ``libm`` override are
never cached.
"""

from __future__ import annotations

import collections
import hashlib
import json
import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.backends import get_backend
from repro.api.requests import AnalysisRequest, CoreLike, coerce_core
from repro.api.results import RESULT_SCHEMA_VERSION, AnalysisResult
from repro.api.sampling import sample_inputs
from repro.api.store import ShardedResultStore
from repro.core.config import AnalysisConfig
from repro.fpcore.ast import FPCore
from repro.fpcore.printer import format_fpcore
from repro.machine import isa
from repro.machine.compiler import compile_fpcore

RequestLike = Union[CoreLike, AnalysisRequest]


def request_digest(request: AnalysisRequest) -> str:
    """The stable cache key of a fully specified request.

    Covers the whole request *and* the result schema version, so a
    schema bump invalidates persisted cache entries instead of
    serving stale shapes.
    """
    payload = request.to_dict()
    payload["result_schema_version"] = RESULT_SCHEMA_VERSION
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


class ResultCache:
    """An LRU of :class:`AnalysisResult` with an optional disk layer.

    The memory layer stores result *objects* (so an in-process hit
    keeps ``raw``); the disk layer is a
    :class:`~repro.api.store.ShardedResultStore` rooted at
    ``cache_dir`` — digest-prefix shard directories with atomic
    writes, shared with the serving subsystem (:mod:`repro.serve`) so
    offline sessions and servers read and write one store format.
    Flat ``<cache_dir>/<digest>.json`` entries written by older
    versions are still read (and promoted into the sharded layout).
    """

    def __init__(self, capacity: int = 256,
                 cache_dir: Optional[str] = None) -> None:
        if capacity < 0:
            raise ValueError("result cache capacity must be >= 0")
        #: capacity 0 = no memory layer (disk-only, when cache_dir set).
        self.capacity = capacity
        self.cache_dir = cache_dir
        #: The shared on-disk layer, or None for a memory-only cache.
        self.store: Optional[ShardedResultStore] = (
            ShardedResultStore(cache_dir) if cache_dir is not None else None
        )
        self._memory: "collections.OrderedDict[str, AnalysisResult]" = \
            collections.OrderedDict()

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: str) -> Optional[AnalysisResult]:
        result = self._memory.get(key)
        if result is not None:
            self._memory.move_to_end(key)
            return result
        if self.store is not None:
            text = self.store.get_text(key)
            if text is not None:
                try:
                    result = AnalysisResult.from_json(text)
                except (ValueError, KeyError, TypeError):
                    return None  # corrupt entry: treat as a miss
                self._insert(key, result)
                return result
        return None

    def put(self, key: str, result: AnalysisResult) -> None:
        self._insert(key, result)
        if self.store is not None:
            # A failed disk write is never fatal: the result was
            # computed, the caller gets it, the entry is just a miss
            # next time (mirrors get()'s corrupt-entry handling).
            self.store.put_text(key, result.to_json())

    def _insert(self, key: str, result: AnalysisResult) -> None:
        if self.capacity == 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def clear(self) -> None:
        """Drop the memory layer (the disk layer, if any, persists)."""
        self._memory.clear()


def _run_request(
    request: AnalysisRequest,
    program: isa.Program,
    points: List[List[float]],
    degrade: Optional[bool] = None,
) -> AnalysisResult:
    """One backend run behind the degradation ladder.

    Every analysis execution — in-process, batch worker, serve worker —
    funnels through here, so a classified failure (kernel fault, engine
    fault, resource exhaustion, MachineError) retries down the ladder
    (:mod:`repro.resilience.ladder`) instead of propagating, unless
    degradation is disabled (``degrade=False`` or ``REPRO_DEGRADE=0``).
    """
    from repro.resilience.ladder import run_with_ladder

    def execute(req: AnalysisRequest) -> AnalysisResult:
        return get_backend(req.backend).run(program, points, req)

    return run_with_ladder(request, execute, enabled=degrade)


def _execute(request: AnalysisRequest,
             degrade: Optional[bool] = None) -> AnalysisResult:
    """Run one request from scratch (no caches) — the worker path."""
    program = compile_fpcore(request.core)
    points = request.points
    if points is None:
        points = sample_inputs(
            request.core, request.num_points, seed=request.seed
        )
    return _run_request(request, program, points, degrade)


def _worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: dict in, dict out — keeps everything picklable."""
    result = _execute(AnalysisRequest.from_dict(payload))
    data = result.to_dict()
    degradation = result.extra.get("degradation")
    if degradation is not None:
        # to_dict() strips the degradation record (byte-identity of
        # the serialized result); smuggle it next to the payload so
        # analyze_batch can reattach it for in-process observers.
        data["__degradation__"] = degradation
    return data


class AnalysisSession:
    """One configured analysis context, reusable across many calls.

    >>> session = AnalysisSession(config=AnalysisConfig(shadow_precision=256))
    >>> result = session.analyze("(FPCore (x) :pre (<= 1e15 x 1e16) (- (+ x 1) x))")
    >>> result.max_output_error > 5
    True
    """

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        backend: str = "herbgrind",
        num_points: int = 16,
        seed: int = 0,
        wrap_libraries: bool = True,
        result_cache_size: int = 256,
        cache_dir: Optional[str] = None,
        point_cache_size: int = 1024,
        degrade: Optional[bool] = None,
    ) -> None:
        self.config = config if config is not None else AnalysisConfig()
        self.backend = backend
        self.num_points = num_points
        self.seed = seed
        self.wrap_libraries = wrap_libraries
        #: Degradation-ladder switch: True/False force it, None defers
        #: to the ``REPRO_DEGRADE`` environment default (on).
        self.degrade = degrade
        self._programs: Dict[str, isa.Program] = {}
        #: Sampled-input LRU, bounded like :class:`ResultCache`'s
        #: memory layer: a corpus swept at many (count, seed)
        #: combinations would otherwise grow this without limit.
        self.point_cache_size = point_cache_size
        self._points: (
            "collections.OrderedDict[Tuple[str, int, int], List[List[float]]]"
        ) = (
            collections.OrderedDict()
        )
        self._cores: Dict[str, FPCore] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        #: Full-result cache; ``result_cache_size=0`` disables the
        #: memory layer (disk-only if ``cache_dir`` is also given),
        #: and with no ``cache_dir`` disables result caching entirely.
        self._results: Optional[ResultCache] = (
            ResultCache(result_cache_size, cache_dir)
            if result_cache_size > 0 or cache_dir is not None else None
        )
        self.result_hits = 0
        self.result_misses = 0

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------

    def _key(self, core: FPCore) -> str:
        return format_fpcore(core)

    def compiled(self, core: CoreLike) -> isa.Program:
        """The compiled program for ``core``, cached by source text."""
        core = coerce_core(core)
        key = self._key(core)
        program = self._programs.get(key)
        if program is None:
            self.cache_misses += 1
            program = compile_fpcore(core)
            self._programs[key] = program
            self._cores[key] = core
        else:
            self.cache_hits += 1
        return program

    def sampled(
        self,
        core: CoreLike,
        count: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> List[List[float]]:
        """Sampled inputs for ``core``, cached by (source, count, seed)."""
        core = coerce_core(core)
        count = self.num_points if count is None else count
        seed = self.seed if seed is None else seed
        key = (self._key(core), count, seed)
        points = self._points.get(key)
        if points is None:
            self.cache_misses += 1
            points = sample_inputs(core, count, seed=seed)
            if self.point_cache_size > 0:
                self._points[key] = points
                self._points.move_to_end(key)
                while len(self._points) > self.point_cache_size:
                    self._points.popitem(last=False)
        else:
            self.cache_hits += 1
            self._points.move_to_end(key)
        return points

    def clear_caches(self) -> None:
        self._programs.clear()
        self._points.clear()
        self._cores.clear()
        if self._results is not None:
            self._results.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.result_hits = 0
        self.result_misses = 0

    def cache_stats(self) -> Dict[str, int]:
        return {
            "programs": len(self._programs),
            "input_sets": len(self._points),
            "input_set_capacity": self.point_cache_size,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "results": len(self._results) if self._results else 0,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
        }

    def _result_key(self, request: AnalysisRequest) -> Optional[str]:
        """The cache key for ``request``, or None when uncacheable."""
        if self._results is None or request.libm is not None:
            return None
        return request_digest(request)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    _OVERRIDE_KEYS = frozenset(
        ("backend", "num_points", "seed", "points", "config",
         "wrap_libraries", "profile", "libm")
    )

    def request(self, core: RequestLike, **overrides) -> AnalysisRequest:
        """Build a request from session defaults plus ``overrides``."""
        unknown = set(overrides) - self._OVERRIDE_KEYS
        if unknown:
            raise TypeError(
                f"unknown analysis override(s): {sorted(unknown)} "
                f"(expected from {sorted(self._OVERRIDE_KEYS)})"
            )
        if isinstance(core, AnalysisRequest):
            if overrides:
                raise TypeError(
                    "cannot combine overrides with a prebuilt "
                    "AnalysisRequest; set the fields on the request"
                )
            return core
        return AnalysisRequest.build(
            core,
            backend=overrides.get("backend", self.backend),
            num_points=overrides.get("num_points", self.num_points),
            seed=overrides.get("seed", self.seed),
            points=overrides.get("points"),
            config=overrides.get("config", self.config),
            wrap_libraries=overrides.get(
                "wrap_libraries", self.wrap_libraries
            ),
            profile=overrides.get("profile", False),
            libm=overrides.get("libm"),
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def analyze(self, core: RequestLike, **overrides) -> AnalysisResult:
        """Analyze one benchmark through the configured backend.

        Compiled programs, sampled input sets, and *full results* are
        reused across calls: an identical request (same source,
        backend, sampling, and configuration) returns its cached
        :class:`AnalysisResult` without re-running the analysis.
        """
        request = self.request(core, **overrides)
        key = self._result_key(request)
        if key is not None:
            cached = self._results.get(key)
            if cached is not None:
                self.result_hits += 1
                return cached
            self.result_misses += 1
        program = self.compiled(request.core)
        points = request.points
        if points is None:
            points = self.sampled(
                request.core, request.num_points, request.seed
            )
        result = _run_request(request, program, points, self.degrade)
        if key is not None:
            self._results.put(key, result)
        return result

    def analyze_batch(
        self,
        cores: Sequence[RequestLike],
        workers: int = 1,
        **overrides,
    ) -> List[AnalysisResult]:
        """Analyze a corpus, optionally over a process pool.

        ``workers=1`` runs sequentially in-process (and warms this
        session's caches); ``workers=N`` fans out over N processes.
        Either way the results arrive in corpus order and serialize to
        byte-identical JSON for the same seed.  Cached results are
        served without touching the pool, and duplicate requests
        within one batch are executed once.
        """
        requests = [self.request(core, **overrides) for core in cores]
        if workers <= 1 or len(requests) <= 1:
            return [self.analyze(request) for request in requests]
        results: List[Optional[AnalysisResult]] = [None] * len(requests)
        pending: List[Tuple[int, Optional[str]]] = []
        first_index: Dict[str, int] = {}
        duplicates: List[Tuple[int, int]] = []
        for index, request in enumerate(requests):
            key = self._result_key(request)
            if key is not None:
                cached = self._results.get(key)
                if cached is not None:
                    self.result_hits += 1
                    results[index] = cached
                    continue
                owner = first_index.get(key)
                if owner is not None:
                    self.result_hits += 1
                    duplicates.append((index, owner))
                    continue
                first_index[key] = index
                self.result_misses += 1
            pending.append((index, key))
        if pending:
            payloads = [requests[i].to_dict() for i, __ in pending]
            with multiprocessing.Pool(processes=workers) as pool:
                dicts = pool.map(_worker, payloads, chunksize=1)
            for (index, key), data in zip(pending, dicts):
                degradation = data.pop("__degradation__", None)
                result = AnalysisResult.from_dict(data)
                if degradation is not None:
                    result.extra["degradation"] = degradation
                results[index] = result
                if key is not None:
                    self._results.put(key, result)
        for index, owner in duplicates:
            results[index] = results[owner]
        return results
